/**
 * @file
 * Characterize the paper's full application suite — five shared-memory
 * applications via the dynamic strategy (4x4-mesh CC-NUMA) and two
 * NAS message-passing applications via the static strategy (8-rank
 * SP2-model run, trace replayed into a 4x2 mesh) — and print one
 * summary table, the reproduction of the paper's per-application
 * characterization results.
 */

#include <iostream>
#include <memory>
#include <vector>

#include "apps/cholesky.hh"
#include "apps/fft1d.hh"
#include "apps/fft3d.hh"
#include "apps/is.hh"
#include "apps/maxflow.hh"
#include "apps/mg.hh"
#include "apps/nbody.hh"
#include "core/core.hh"

int
main()
{
    using namespace cchar;

    ccnuma::MachineConfig machine;
    machine.mesh.width = 4;
    machine.mesh.height = 4;
    mp::MpConfig world;
    world.mesh.width = 4;
    world.mesh.height = 2;

    core::CharacterizationPipeline pipeline;
    std::vector<core::CharacterizationReport> reports;

    std::cout << "Running the shared-memory suite (dynamic strategy, "
              << "16 processors)...\n";
    {
        apps::Fft1D app;
        reports.push_back(pipeline.runDynamic(app, machine));
    }
    {
        apps::IntegerSort app;
        reports.push_back(pipeline.runDynamic(app, machine));
    }
    {
        apps::SparseCholesky app;
        reports.push_back(pipeline.runDynamic(app, machine));
    }
    {
        apps::Maxflow app;
        reports.push_back(pipeline.runDynamic(app, machine));
    }
    {
        apps::Nbody app;
        reports.push_back(pipeline.runDynamic(app, machine));
    }

    std::cout << "Running the message-passing suite (static strategy, "
              << "8 ranks)...\n";
    {
        apps::Fft3D app;
        reports.push_back(pipeline.runStatic(app, world));
    }
    {
        apps::Multigrid app;
        reports.push_back(pipeline.runStatic(app, world));
    }

    std::cout << "\napp          messages  meanLen(B)  meanIAT(us)"
              << "     CV  temporal fit            spatial pattern\n";
    std::cout << std::string(100, '-') << "\n";
    bool allVerified = true;
    for (const auto &report : reports) {
        std::cout << report.summaryRow()
                  << (report.verified ? "" : "  [VERIFY FAILED]")
                  << "\n";
        allVerified = allVerified && report.verified;
    }
    return allVerified ? 0 : 1;
}
