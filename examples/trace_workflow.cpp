/**
 * @file
 * The static-strategy artifacts: collect an application-level trace
 * from a message-passing run (the SP2 trace-utility step), save it to
 * disk in the textual trace format, reload it, and replay it into the
 * 2-D mesh simulator.
 */

#include <iostream>

#include "apps/fft3d.hh"
#include "core/core.hh"

int
main()
{
    using namespace cchar;

    // 1. Execute 3D-FFT on the SP2-model runtime with tracing on.
    apps::Fft3D::Params params;
    params.nx = params.ny = params.nz = 8;
    params.iterations = 2;
    apps::Fft3D app{params};

    desim::Simulator sim;
    mp::MpConfig cfg;
    cfg.mesh.width = 4;
    cfg.mesh.height = 2;
    mp::MpWorld world{sim, cfg};
    world.enableTracing();
    apps::launch(world, app);
    world.run();
    std::cout << "application verified: "
              << (app.verify() ? "yes" : "NO") << "\n";

    const trace::Trace &collected = world.collectedTrace();
    std::cout << "collected " << collected.size()
              << " application-level events\n";

    // 2. Persist and reload the trace (the portable artifact).
    const std::string path = "/tmp/cchar-3dfft.trace";
    collected.saveFile(path);
    trace::Trace reloaded = trace::Trace::loadFile(path);
    std::cout << "round-tripped trace through " << path << " ("
              << reloaded.size() << " events)\n";

    // 3. Replay into the mesh and report network behaviour.
    auto replayed = core::TraceReplayer::replay(reloaded, cfg.mesh);
    std::cout << "replay: " << replayed.log.size()
              << " messages, latency mean " << replayed.latencyMean
              << "us, contention mean " << replayed.contentionMean
              << "us, makespan " << replayed.makespan << "us\n";

    // 4. Analyze the replayed log.
    core::CharacterizationPipeline pipeline;
    core::NetworkSummary net;
    net.latencyMean = replayed.latencyMean;
    net.latencyMax = replayed.latencyMax;
    net.contentionMean = replayed.contentionMean;
    net.makespan = replayed.makespan;
    net.avgChannelUtilization = replayed.avgChannelUtilization;
    net.maxChannelUtilization = replayed.maxChannelUtilization;
    auto report = pipeline.analyze(replayed.log, cfg.mesh, "3d-fft",
                                   core::Strategy::Static, net);
    std::cout << "\n";
    report.print(std::cout);
    return app.verify() ? 0 : 1;
}
