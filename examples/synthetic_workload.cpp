/**
 * @file
 * The methodology's payoff: turn a characterization into a synthetic
 * workload model and use it in place of the application.
 *
 * Characterizes IS (Integer Sort), extracts the fitted per-source
 * inter-arrival and destination distributions, drives the same 2-D
 * mesh with synthetic traffic drawn from those distributions, and
 * compares the resulting network behaviour with the original
 * application-driven run.
 */

#include <cmath>
#include <iomanip>
#include <iostream>

#include "apps/is.hh"
#include "core/core.hh"

int
main()
{
    using namespace cchar;

    apps::IntegerSort::Params params;
    params.n = 1024;
    params.buckets = 32;
    apps::IntegerSort app{params};

    ccnuma::MachineConfig machine;
    machine.mesh.width = 4;
    machine.mesh.height = 4;

    std::cout << "1. Characterizing IS on a 4x4 CC-NUMA machine...\n";
    core::CharacterizationPipeline pipeline;
    auto report = pipeline.runDynamic(app, machine);
    std::cout << "   " << report.volume.messageCount
              << " messages, temporal fit "
              << report.temporalAggregate.fit.dist->describe()
              << ", spatial " << report.spatialAggregate.describe()
              << "\n";

    std::cout << "2. Building the synthetic model from the fitted "
              << "distributions...\n";
    auto model = core::SyntheticModel::fromReport(report);
    std::cout << "   " << model.sources.size()
              << " source models, length PMF of "
              << model.lengthPmf.size() << " sizes\n";

    std::cout << "3. Driving the mesh with synthetic traffic...\n";
    auto synthetic = core::SyntheticTrafficGenerator::run(model, 2024);

    std::cout << "4. Original vs synthetic network behaviour:\n";
    auto row = [](const char *name, double orig, double synth) {
        double err = orig != 0.0 ? (synth - orig) / orig * 100.0 : 0.0;
        std::cout << "   " << std::left << std::setw(22) << name
                  << std::right << std::fixed << std::setprecision(4)
                  << std::setw(12) << orig << std::setw(12) << synth
                  << std::setw(9) << std::setprecision(1) << err
                  << "%\n";
    };
    std::cout << "   metric                     original   synthetic"
              << "    error\n";
    row("latency mean (us)", report.network.latencyMean,
        synthetic.latencyMean);
    row("contention mean (us)", report.network.contentionMean,
        synthetic.contentionMean);
    row("avg channel util", report.network.avgChannelUtilization,
        synthetic.avgChannelUtilization);

    double err = std::fabs(synthetic.latencyMean -
                           report.network.latencyMean) /
                 report.network.latencyMean;
    std::cout << "\nSynthetic model "
              << (err < 1.0 ? "reproduces" : "FAILS to reproduce")
              << " the original latency within a factor of two.\n";
    return err < 1.0 ? 0 : 1;
}
