/**
 * @file
 * Writing your own workload against the public API.
 *
 * Implements a small 1-D ghost-exchange stencil as a custom
 * SharedMemoryApp: each processor owns a block of a shared vector,
 * repeatedly averages with its neighbours' boundary elements, and
 * synchronizes with barriers. The example then characterizes it and
 * shows the nearest-neighbour locality in the hop-distance profile.
 */

#include <iostream>

#include "core/core.hh"

namespace {

using namespace cchar;

/** 1-D Jacobi stencil with block ownership and ghost reads. */
class StencilApp : public apps::SharedMemoryApp
{
  public:
    StencilApp(std::size_t cells, int iterations)
        : cells_(cells), iterations_(iterations)
    {}

    std::string name() const override { return "stencil-1d"; }

    void
    setup(ccnuma::Machine &machine) override
    {
        data_ = std::make_unique<ccnuma::SharedArray<double>>(
            machine, cells_, ccnuma::Placement::Blocked);
        next_ = std::make_unique<ccnuma::SharedArray<double>>(
            machine, cells_, ccnuma::Placement::Blocked);
        for (std::size_t i = 0; i < cells_; ++i)
            (*data_)[i] = (i == 0 || i == cells_ - 1) ? 100.0 : 0.0;
    }

    desim::Task<void>
    runProcess(ccnuma::ProcContext ctx) override
    {
        std::size_t block =
            cells_ / static_cast<std::size_t>(ctx.nprocs());
        std::size_t lo = static_cast<std::size_t>(ctx.self()) * block;
        std::size_t hi = lo + block;
        for (int iter = 0; iter < iterations_; ++iter) {
            auto &src = (iter % 2 == 0) ? *data_ : *next_;
            auto &dst = (iter % 2 == 0) ? *next_ : *data_;
            for (std::size_t i = std::max(lo, std::size_t{1});
                 i < std::min(hi, cells_ - 1); ++i) {
                // Boundary reads of i-1 / i+1 touch the neighbour
                // processor's block at the block edges.
                double left = co_await src.get(ctx, i - 1);
                double right = co_await src.get(ctx, i + 1);
                double mid = co_await src.get(ctx, i);
                co_await dst.put(ctx, i,
                                 0.25 * left + 0.5 * mid + 0.25 * right);
                co_await ctx.compute(0.05);
            }
            co_await ctx.barrier(0);
        }
    }

    bool
    verify() const override
    {
        // Heat flows inward: interior next to the boundary must have
        // warmed up, and all values stay within [0, 100].
        const auto &result = (iterations_ % 2 == 0) ? *data_ : *next_;
        for (std::size_t i = 0; i < cells_; ++i) {
            if (result[i] < -1e-9 || result[i] > 100.0 + 1e-9)
                return false;
        }
        return result[1] > 0.0 && result[cells_ - 2] > 0.0;
    }

  private:
    std::size_t cells_;
    int iterations_;
    std::unique_ptr<ccnuma::SharedArray<double>> data_;
    std::unique_ptr<ccnuma::SharedArray<double>> next_;
};

} // namespace

int
main()
{
    StencilApp app{256, 4};

    ccnuma::MachineConfig machine;
    machine.mesh.width = 4;
    machine.mesh.height = 4;

    core::CharacterizationPipeline pipeline;
    auto report = pipeline.runDynamic(app, machine);

    std::cout << "custom app '" << report.application
              << "' verified: " << (report.verified ? "yes" : "NO")
              << "\n";
    std::cout << "messages: " << report.volume.messageCount << "\n";
    std::cout << "temporal fit: "
              << report.temporalAggregate.fit.dist->describe() << "\n";
    std::cout << "hop-distance profile (locality signature):\n";
    for (std::size_t h = 0; h < report.hopDistancePmf.size(); ++h) {
        std::cout << "  " << h << " hops: "
                  << report.hopDistancePmf[h] * 100.0 << "%\n";
    }
    return report.verified ? 0 : 1;
}
