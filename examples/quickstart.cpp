/**
 * @file
 * Quickstart: characterize one application's communication in ~20
 * lines.
 *
 * Runs the 1D-FFT workload on a simulated 4x4-mesh CC-NUMA machine
 * (the paper's dynamic strategy) and prints the full
 * characterization report: temporal, spatial and volume attributes
 * plus the observed network behaviour.
 */

#include <iostream>

#include "apps/fft1d.hh"
#include "core/core.hh"

int
main()
{
    using namespace cchar;

    // 1. Pick an application and a machine.
    apps::Fft1D::Params params;
    params.n = 256; // complex points
    apps::Fft1D app{params};

    ccnuma::MachineConfig machine;
    machine.mesh.width = 4;
    machine.mesh.height = 4;

    // 2. Run the dynamic-strategy pipeline: execute the application
    //    on the simulated machine, log every network message, and fit
    //    the three communication attributes.
    core::CharacterizationPipeline pipeline;
    core::CharacterizationReport report =
        pipeline.runDynamic(app, machine);

    // 3. Inspect the results.
    std::cout << "application verified: "
              << (report.verified ? "yes" : "NO") << "\n\n";
    report.print(std::cout);

    std::cout << "\nBest temporal fit: "
              << report.temporalAggregate.fit.dist->describe()
              << "  (R^2 = " << report.temporalAggregate.fit.gof.r2
              << ")\n";
    std::cout << "Aggregate spatial pattern: "
              << report.spatialAggregate.describe() << "\n";
    return report.verified ? 0 : 1;
}
