/**
 * @file
 * Deterministic, seed-driven fault-injection runtime.
 *
 * A FaultInjector turns a FaultPlan into the per-packet / per-hop
 * decisions the mesh simulator consults while a worm advances:
 *
 *  - linkDown(from, to, now): is the directed link down right now?
 *    A worm about to traverse a down link is tail-dropped at that
 *    router (and the loss is accounted here);
 *  - routerStallUs(node, now): extra head delay through a router;
 *  - drawDrop(now) / drawCorrupt(now): Bernoulli decisions against
 *    the plan's probabilities, drawn from one seeded RNG stream.
 *
 * Determinism: the simulation itself is deterministic, so the
 * sequence of draw calls — and therefore every fault decision — is a
 * pure function of (plan, seed). Two runs with the same seed and the
 * same plan produce byte-identical traffic, metrics and reports.
 *
 * Accounting: the injector keeps its own exact counters (always) and
 * mirrors them into the installed obs registry (when present) under
 * fault.* so fault activity lands in --metrics-out and the reports'
 * Resilience section.
 */

#ifndef CCHAR_FAULT_INJECTOR_HH
#define CCHAR_FAULT_INJECTOR_HH

#include <cstdint>
#include <limits>
#include <vector>

#include "obs/obs.hh"
#include "plan.hh"
#include "stats/rng.hh"

namespace cchar::fault {

/** Runtime oracle for fault decisions; owned by the driver. */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    const FaultPlan &plan() const { return plan_; }

    /**
     * True if the directed link from->to is down at time `now`.
     *
     * Called per hop on the mesh hot path, so the common case — no
     * link-down window open right now — is an inline pair of compares
     * against the aggregate [min begin, max end) of all link clauses;
     * the clause scan only runs while some window could be open.
     */
    bool linkDown(int from, int to, double now) const
    {
        if (now < linkWinBegin_ || now >= linkWinEnd_)
            return false;
        return linkDownScan(from, to, now);
    }

    /** Extra head delay through `node` at time `now` (us). */
    double routerStallUs(int node, double now) const
    {
        if (now < stallWinBegin_ || now >= stallWinEnd_)
            return 0.0;
        return routerStallScan(node, now);
    }

    /** Any Bernoulli drop clause active (avoids dead RNG draws)? */
    bool dropsConfigured() const { return dropConfigured_; }
    bool corruptsConfigured() const { return corruptConfigured_; }
    /** Any link-down clause present (gates adaptive-routing checks)? */
    bool linksConfigured() const { return linkConfigured_; }

    /** Draw the drop decision for a packet injected at `now`. */
    bool drawDrop(double now);

    /** Draw the corruption decision for a packet injected at `now`. */
    bool drawCorrupt(double now);

    // ------------- accounting (called by the mesh) -------------

    void noteLinkDrop();
    void noteDrop();
    void noteCorrupt();
    void noteRouterStall(double stallUs);
    void noteReroute(int extraHops);

    /** Packets dropped on a down link. */
    std::uint64_t linkDrops() const { return linkDrops_; }
    /** Packets dropped by a Bernoulli drop clause. */
    std::uint64_t drops() const { return drops_; }
    /** Packets delivered corrupted. */
    std::uint64_t corrupts() const { return corrupts_; }
    /** Head traversals delayed by a router-stall clause. */
    std::uint64_t routerStalls() const { return routerStalls_; }
    /** All packets lost in the network (link drops + drops). */
    std::uint64_t lostPackets() const { return linkDrops_ + drops_; }
    /** Packets steered around a down link by adaptive routing. */
    std::uint64_t reroutes() const { return reroutes_; }
    /** Hops taken beyond the minimal path across all reroutes. */
    std::uint64_t rerouteExtraHops() const { return rerouteExtraHops_; }

  private:
    bool linkDownScan(int from, int to, double now) const;
    double routerStallScan(int node, double now) const;

    FaultPlan plan_;
    stats::Rng rng_;
    bool dropConfigured_ = false;
    bool corruptConfigured_ = false;
    bool linkConfigured_ = false;
    // Aggregate activity windows (empty when no such clause exists):
    // outside them the hot-path queries answer inline without scanning.
    double linkWinBegin_ = std::numeric_limits<double>::infinity();
    double linkWinEnd_ = -std::numeric_limits<double>::infinity();
    double stallWinBegin_ = std::numeric_limits<double>::infinity();
    double stallWinEnd_ = -std::numeric_limits<double>::infinity();

    std::uint64_t linkDrops_ = 0;
    std::uint64_t drops_ = 0;
    std::uint64_t corrupts_ = 0;
    std::uint64_t routerStalls_ = 0;
    std::uint64_t reroutes_ = 0;
    std::uint64_t rerouteExtraHops_ = 0;

    // Mirrors into the installed obs registry (detached when absent).
    obs::Counter linkDropCtr_;
    obs::Counter dropCtr_;
    obs::Counter corruptCtr_;
    obs::Counter routerStallCtr_;
    obs::Histogram stallHist_;
    obs::Gauge plannedDowntimeGauge_;
};

} // namespace cchar::fault

#endif // CCHAR_FAULT_INJECTOR_HH
