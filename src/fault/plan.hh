/**
 * @file
 * Declarative fault plans: what goes wrong, where, and when.
 *
 * A FaultPlan is a deterministic, seed-driven description of the
 * faults to inject into a run. It is parsed from a compact spec
 * grammar (CLI friendly) or from a small JSON document, and consumed
 * by the FaultInjector the mesh consults in sim time.
 *
 * Spec grammar — one fault per clause, clauses separated by ';' or
 * newlines, '#' starts a comment:
 *
 *   link:A->B:down[@[T1,T2]]      take the directed link A->B down
 *                                 during [T1,T2) (whole run if no
 *                                 window); worms routed over a down
 *                                 link are dropped at that router
 *   drop:p=P[@[T1,T2]]            drop each packet with probability P
 *                                 (tail drop at the destination)
 *   corrupt:p=P[@[T1,T2]]         deliver each packet corrupted with
 *                                 probability P (receivers discard)
 *   router:N:stall=D[@[T1,T2]]    add D of extra pipeline delay to
 *                                 every head traversal of router N
 *   seed=S                        seed of the fault RNG stream
 *   retry:timeout=T,max=M,backoff=F,window=W
 *                                 retransmission protocol parameters
 *                                 (max=0 retries forever — pair it
 *                                 with a watchdog; window=1 is
 *                                 stop-and-wait, window>1 a sliding
 *                                 window with cumulative + selective
 *                                 acks)
 *
 * Times accept us/ms/s suffixes ("10ms", "5us", "0.5s"); a bare
 * number is microseconds (the project-wide convention).
 *
 * JSON form (restricted schema, no external parser dependency):
 *
 *   {"seed": 42,
 *    "retry": {"timeout_us": 500, "max_attempts": 5, "backoff": 2,
 *              "window": 8},
 *    "faults": ["link:0->1:down@[0,1ms]", "drop:p=0.001"]}
 */

#ifndef CCHAR_FAULT_PLAN_HH
#define CCHAR_FAULT_PLAN_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace cchar::fault {

/** What kind of fault a clause describes. */
enum class FaultKind
{
    LinkDown,    ///< directed link outage window
    Drop,        ///< Bernoulli packet loss
    Corrupt,     ///< Bernoulli payload corruption
    RouterStall, ///< extra per-traversal router delay
};

/** Name of a FaultKind value. */
std::string toString(FaultKind kind);

/** Half-open activity window [begin, end) in sim microseconds. */
struct TimeWindow
{
    double begin = 0.0;
    double end = std::numeric_limits<double>::infinity();

    bool contains(double t) const { return t >= begin && t < end; }
    bool bounded() const { return end < std::numeric_limits<double>::infinity(); }
    double span() const { return bounded() ? end - begin : end; }
};

/** One parsed fault clause. */
struct FaultSpec
{
    FaultKind kind = FaultKind::Drop;
    /** LinkDown: source router. RouterStall: the stalled router. */
    int node = -1;
    /** LinkDown: destination router of the directed link. */
    int peer = -1;
    /** Drop / Corrupt: per-packet probability. */
    double probability = 0.0;
    /** RouterStall: extra delay per head traversal (us). */
    double stallUs = 0.0;
    TimeWindow window{};

    /** Round-trippable rendering in the spec grammar. */
    std::string describe() const;
};

/** Retransmission protocol parameters. */
struct RetryConfig
{
    /** Ack timeout of the first attempt (us). */
    double ackTimeoutUs = 500.0;
    /** Timeout multiplier per retry (exponential backoff). */
    double backoffFactor = 2.0;
    /**
     * Total send attempts before a delivery is declared failed.
     * 0 = retry forever (pair with a watchdog).
     */
    int maxAttempts = 5;
    /**
     * Maximum unacknowledged data packets in flight per destination.
     * 1 (the default) is the original stop-and-wait protocol;
     * larger windows pipeline sends with cumulative + selective acks
     * and in-order delivery at the receiver.
     */
    int window = 1;

    bool unbounded() const { return maxAttempts <= 0; }
};

/** A complete, parseable fault plan. */
class FaultPlan
{
  public:
    FaultPlan() = default;

    /**
     * Parse a plan from the spec grammar or the JSON form (detected
     * by a leading '{').
     * @throws core::CCharError with StatusCode::ParseError.
     */
    static FaultPlan parse(const std::string &text);

    /** Parse one spec clause into an existing plan. */
    void addSpec(const std::string &clause);

    void add(const FaultSpec &spec) { faults_.push_back(spec); }

    const std::vector<FaultSpec> &faults() const { return faults_; }
    bool empty() const { return faults_.empty(); }

    std::uint64_t seed() const { return seed_; }
    void setSeed(std::uint64_t seed) { seed_ = seed; }

    const RetryConfig &retry() const { return retry_; }
    void setRetry(const RetryConfig &retry) { retry_ = retry; }

    /** Planned downtime summed over all bounded link-down windows. */
    double plannedLinkDowntimeUs() const;

    /** One-line plan summary for reports ("2 faults, seed 42: ..."). */
    std::string describe() const;

  private:
    std::vector<FaultSpec> faults_;
    RetryConfig retry_{};
    std::uint64_t seed_ = 0x5eed5eedULL;
};

} // namespace cchar::fault

#endif // CCHAR_FAULT_PLAN_HH
