#include "plan.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "core/jsonscan.hh"
#include "core/status.hh"

namespace cchar::fault {

namespace {

using core::CCharError;
using core::StatusCode;

[[noreturn]] void
parseFail(const std::string &what)
{
    throw CCharError(StatusCode::ParseError, "fault plan: " + what);
}

/** Parse "10ms" / "5us" / "0.5s" / bare-us into microseconds. */
double
parseTimeUs(const std::string &text)
{
    if (text.empty())
        parseFail("empty time value");
    const char *begin = text.c_str();
    char *end = nullptr;
    double v = std::strtod(begin, &end);
    if (end == begin)
        parseFail("bad time value '" + text + "'");
    std::string unit{end};
    if (unit.empty() || unit == "us")
        return v;
    if (unit == "ms")
        return v * 1e3;
    if (unit == "s")
        return v * 1e6;
    parseFail("unknown time unit '" + unit + "' in '" + text + "'");
}

double
parseProbability(const std::string &text)
{
    const char *begin = text.c_str();
    char *end = nullptr;
    double p = std::strtod(begin, &end);
    if (end == begin || *end != '\0')
        parseFail("bad probability '" + text + "'");
    if (p < 0.0 || p > 1.0)
        parseFail("probability out of [0,1]: '" + text + "'");
    return p;
}

int
parseNode(const std::string &text)
{
    const char *begin = text.c_str();
    char *end = nullptr;
    long n = std::strtol(begin, &end, 10);
    if (end == begin || *end != '\0' || n < 0)
        parseFail("bad node id '" + text + "'");
    return static_cast<int>(n);
}

/**
 * Split a trailing "@[T1,T2]" window off a clause. Returns the clause
 * without the window part.
 */
std::string
splitWindow(const std::string &clause, TimeWindow &window)
{
    auto at = clause.find("@[");
    if (at == std::string::npos)
        return clause;
    if (clause.back() != ']')
        parseFail("unterminated window in '" + clause + "'");
    std::string body = clause.substr(at + 2, clause.size() - at - 3);
    auto comma = body.find(',');
    if (comma == std::string::npos)
        parseFail("window needs two times in '" + clause + "'");
    window.begin = parseTimeUs(body.substr(0, comma));
    window.end = parseTimeUs(body.substr(comma + 1));
    if (window.end <= window.begin)
        parseFail("empty window in '" + clause + "'");
    return clause.substr(0, at);
}

std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::string cur;
    for (char c : text) {
        if (c == sep) {
            parts.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    parts.push_back(cur);
    return parts;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** key=value with a required key. */
std::string
expectKeyValue(const std::string &part, const std::string &key,
               const std::string &clause)
{
    auto eq = part.find('=');
    if (eq == std::string::npos || part.substr(0, eq) != key)
        parseFail("expected '" + key + "=...' in '" + clause + "'");
    return part.substr(eq + 1);
}

FaultPlan
parseJson(const std::string &text)
{
    FaultPlan plan;
    core::JsonScanner js{text, "fault plan"};
    js.expect('{');
    if (!js.consumeIf('}')) {
        for (;;) {
            std::string key = js.readString();
            js.expect(':');
            if (key == "seed") {
                plan.setSeed(
                    static_cast<std::uint64_t>(js.readNumber()));
            } else if (key == "retry") {
                RetryConfig retry;
                js.expect('{');
                if (!js.consumeIf('}')) {
                    for (;;) {
                        std::string rk = js.readString();
                        js.expect(':');
                        double v = js.readNumber();
                        if (rk == "timeout_us")
                            retry.ackTimeoutUs = v;
                        else if (rk == "max_attempts")
                            retry.maxAttempts = static_cast<int>(v);
                        else if (rk == "backoff")
                            retry.backoffFactor = v;
                        else if (rk == "window") {
                            retry.window = static_cast<int>(v);
                            if (retry.window < 1)
                                parseFail("retry window must be >= 1");
                        } else
                            parseFail("unknown retry key '" + rk + "'");
                        if (!js.consumeIf(','))
                            break;
                    }
                    js.expect('}');
                }
                plan.setRetry(retry);
            } else if (key == "faults") {
                js.expect('[');
                if (!js.consumeIf(']')) {
                    for (;;) {
                        plan.addSpec(js.readString());
                        if (!js.consumeIf(','))
                            break;
                    }
                    js.expect(']');
                }
            } else {
                parseFail("unknown plan key '" + key + "'");
            }
            if (!js.consumeIf(','))
                break;
        }
        js.expect('}');
    }
    if (!js.atEnd())
        parseFail("trailing characters after JSON plan");
    return plan;
}

} // namespace

std::string
toString(FaultKind kind)
{
    switch (kind) {
    case FaultKind::LinkDown:
        return "link-down";
    case FaultKind::Drop:
        return "drop";
    case FaultKind::Corrupt:
        return "corrupt";
    case FaultKind::RouterStall:
        return "router-stall";
    }
    return "drop";
}

std::string
FaultSpec::describe() const
{
    std::ostringstream os;
    switch (kind) {
    case FaultKind::LinkDown:
        os << "link:" << node << "->" << peer << ":down";
        break;
    case FaultKind::Drop:
        os << "drop:p=" << probability;
        break;
    case FaultKind::Corrupt:
        os << "corrupt:p=" << probability;
        break;
    case FaultKind::RouterStall:
        os << "router:" << node << ":stall=" << stallUs << "us";
        break;
    }
    if (window.begin > 0.0 || window.bounded()) {
        os << "@[" << window.begin << "us,";
        if (window.bounded())
            os << window.end << "us";
        else
            os << "inf";
        os << "]";
    }
    return os.str();
}

void
FaultPlan::addSpec(const std::string &rawClause)
{
    std::string clause = trim(rawClause);
    if (clause.empty() || clause[0] == '#')
        return;

    // Plan-level assignments.
    if (clause.rfind("seed=", 0) == 0) {
        const char *begin = clause.c_str() + 5;
        char *end = nullptr;
        unsigned long long seed = std::strtoull(begin, &end, 10);
        if (end == begin || *end != '\0')
            parseFail("bad seed in '" + clause + "'");
        seed_ = static_cast<std::uint64_t>(seed);
        return;
    }
    if (clause.rfind("retry:", 0) == 0) {
        for (const std::string &rawPart :
             splitOn(clause.substr(6), ',')) {
            std::string part = trim(rawPart);
            auto eq = part.find('=');
            if (eq == std::string::npos)
                parseFail("expected key=value in '" + clause + "'");
            std::string key = part.substr(0, eq);
            std::string value = part.substr(eq + 1);
            if (key == "timeout") {
                retry_.ackTimeoutUs = parseTimeUs(value);
                if (retry_.ackTimeoutUs <= 0.0)
                    parseFail("retry timeout must be positive");
            } else if (key == "max") {
                retry_.maxAttempts = parseNode(value);
            } else if (key == "backoff") {
                const char *begin = value.c_str();
                char *end = nullptr;
                retry_.backoffFactor = std::strtod(begin, &end);
                if (end == begin || *end != '\0' ||
                    retry_.backoffFactor < 1.0)
                    parseFail("retry backoff must be >= 1");
            } else if (key == "window") {
                retry_.window = parseNode(value);
                if (retry_.window < 1)
                    parseFail("retry window must be >= 1");
            } else {
                parseFail("unknown retry key '" + key + "'");
            }
        }
        return;
    }

    FaultSpec spec;
    std::string body = splitWindow(clause, spec.window);
    auto parts = splitOn(body, ':');

    if (parts[0] == "link") {
        if (parts.size() != 3 || parts[2] != "down")
            parseFail("expected 'link:A->B:down' in '" + clause + "'");
        auto arrow = parts[1].find("->");
        if (arrow == std::string::npos)
            parseFail("expected 'A->B' in '" + clause + "'");
        spec.kind = FaultKind::LinkDown;
        spec.node = parseNode(parts[1].substr(0, arrow));
        spec.peer = parseNode(parts[1].substr(arrow + 2));
        if (spec.node == spec.peer)
            parseFail("link endpoints must differ in '" + clause + "'");
    } else if (parts[0] == "drop" || parts[0] == "corrupt") {
        if (parts.size() != 2)
            parseFail("expected '" + parts[0] + ":p=P' in '" + clause +
                      "'");
        spec.kind = parts[0] == "drop" ? FaultKind::Drop
                                       : FaultKind::Corrupt;
        spec.probability = parseProbability(
            expectKeyValue(parts[1], "p", clause));
    } else if (parts[0] == "router") {
        if (parts.size() != 3)
            parseFail("expected 'router:N:stall=D' in '" + clause + "'");
        spec.kind = FaultKind::RouterStall;
        spec.node = parseNode(parts[1]);
        spec.stallUs =
            parseTimeUs(expectKeyValue(parts[2], "stall", clause));
        if (spec.stallUs < 0.0)
            parseFail("negative stall in '" + clause + "'");
    } else {
        parseFail("unknown fault kind '" + parts[0] + "'");
    }
    faults_.push_back(spec);
}

FaultPlan
FaultPlan::parse(const std::string &text)
{
    std::string trimmed = trim(text);
    if (!trimmed.empty() && trimmed[0] == '{')
        return parseJson(trimmed);

    FaultPlan plan;
    std::string clause;
    for (char c : text) {
        if (c == ';' || c == '\n') {
            plan.addSpec(clause);
            clause.clear();
        } else {
            clause += c;
        }
    }
    plan.addSpec(clause);
    return plan;
}

double
FaultPlan::plannedLinkDowntimeUs() const
{
    double total = 0.0;
    for (const auto &spec : faults_) {
        if (spec.kind == FaultKind::LinkDown && spec.window.bounded())
            total += spec.window.span();
    }
    return total;
}

std::string
FaultPlan::describe() const
{
    std::ostringstream os;
    os << faults_.size() << " fault" << (faults_.size() == 1 ? "" : "s")
       << ", seed " << seed_;
    for (std::size_t i = 0; i < faults_.size(); ++i)
        os << (i == 0 ? ": " : "; ") << faults_[i].describe();
    return os.str();
}

} // namespace cchar::fault
