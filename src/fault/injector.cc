#include "injector.hh"

#include <algorithm>

namespace cchar::fault {

FaultInjector::FaultInjector(const FaultPlan &plan)
    : plan_(plan), rng_(plan.seed())
{
    for (const auto &spec : plan_.faults()) {
        if (spec.kind == FaultKind::Drop && spec.probability > 0.0)
            dropConfigured_ = true;
        if (spec.kind == FaultKind::Corrupt && spec.probability > 0.0)
            corruptConfigured_ = true;
        if (spec.kind == FaultKind::LinkDown) {
            linkConfigured_ = true;
            linkWinBegin_ = std::min(linkWinBegin_, spec.window.begin);
            linkWinEnd_ = std::max(linkWinEnd_, spec.window.end);
        }
        if (spec.kind == FaultKind::RouterStall) {
            stallWinBegin_ = std::min(stallWinBegin_, spec.window.begin);
            stallWinEnd_ = std::max(stallWinEnd_, spec.window.end);
        }
    }
    if (obs::MetricsRegistry *reg = obs::metrics()) {
        linkDropCtr_ = reg->counter("fault.link_drops");
        dropCtr_ = reg->counter("fault.drops");
        corruptCtr_ = reg->counter("fault.corrupts");
        routerStallCtr_ = reg->counter("fault.router_stalls");
        stallHist_ = reg->histogram("fault.router_stall_us");
        plannedDowntimeGauge_ = reg->gauge("fault.planned_downtime_us");
        plannedDowntimeGauge_.set(plan_.plannedLinkDowntimeUs());
    }
}

bool
FaultInjector::linkDownScan(int from, int to, double now) const
{
    for (const auto &spec : plan_.faults()) {
        if (spec.kind == FaultKind::LinkDown && spec.node == from &&
            spec.peer == to && spec.window.contains(now))
            return true;
    }
    return false;
}

double
FaultInjector::routerStallScan(int node, double now) const
{
    double stall = 0.0;
    for (const auto &spec : plan_.faults()) {
        if (spec.kind == FaultKind::RouterStall && spec.node == node &&
            spec.window.contains(now))
            stall += spec.stallUs;
    }
    return stall;
}

bool
FaultInjector::drawDrop(double now)
{
    bool dropped = false;
    for (const auto &spec : plan_.faults()) {
        if (spec.kind != FaultKind::Drop || spec.probability <= 0.0 ||
            !spec.window.contains(now))
            continue;
        // Always consume exactly one draw per active clause so the
        // stream position stays a pure function of the event sequence.
        if (rng_.chance(spec.probability))
            dropped = true;
    }
    return dropped;
}

bool
FaultInjector::drawCorrupt(double now)
{
    bool corrupted = false;
    for (const auto &spec : plan_.faults()) {
        if (spec.kind != FaultKind::Corrupt ||
            spec.probability <= 0.0 || !spec.window.contains(now))
            continue;
        if (rng_.chance(spec.probability))
            corrupted = true;
    }
    return corrupted;
}

void
FaultInjector::noteLinkDrop()
{
    ++linkDrops_;
    linkDropCtr_.add(1);
}

void
FaultInjector::noteDrop()
{
    ++drops_;
    dropCtr_.add(1);
}

void
FaultInjector::noteCorrupt()
{
    ++corrupts_;
    corruptCtr_.add(1);
}

void
FaultInjector::noteRouterStall(double stallUs)
{
    ++routerStalls_;
    routerStallCtr_.add(1);
    stallHist_.record(stallUs);
}

void
FaultInjector::noteReroute(int extraHops)
{
    // The mesh owns the obs mirrors (mesh.rerouted_packets /
    // mesh.reroute_extra_hops); the injector keeps the exact totals
    // so drivers can fill the Resilience summary without a registry.
    ++reroutes_;
    rerouteExtraHops_ += static_cast<std::uint64_t>(extraHops);
}

} // namespace cchar::fault
