#include "record.hh"

#include <algorithm>

namespace cchar::trace {

std::string
toString(MessageKind kind)
{
    switch (kind) {
      case MessageKind::Data:
        return "data";
      case MessageKind::Control:
        return "control";
      case MessageKind::Sync:
        return "sync";
    }
    return "?";
}

std::vector<double>
TrafficLog::interArrivalTimes(int src) const
{
    std::vector<double> injections;
    injections.reserve(records_.size());
    for (const auto &r : records_) {
        if (src < 0 || r.src == src)
            injections.push_back(r.injectTime);
    }
    std::sort(injections.begin(), injections.end());
    std::vector<double> gaps;
    if (injections.size() < 2)
        return gaps;
    gaps.reserve(injections.size() - 1);
    for (std::size_t i = 1; i < injections.size(); ++i)
        gaps.push_back(injections[i] - injections[i - 1]);
    return gaps;
}

std::vector<double>
TrafficLog::destinationCounts(int src) const
{
    std::vector<double> counts(static_cast<std::size_t>(nprocs_), 0.0);
    for (const auto &r : records_) {
        if (r.src == src && r.dst >= 0 && r.dst < nprocs_)
            counts[static_cast<std::size_t>(r.dst)] += 1.0;
    }
    return counts;
}

std::vector<double>
TrafficLog::destinationBytes(int src) const
{
    std::vector<double> bytes(static_cast<std::size_t>(nprocs_), 0.0);
    for (const auto &r : records_) {
        if (r.src == src && r.dst >= 0 && r.dst < nprocs_)
            bytes[static_cast<std::size_t>(r.dst)] += r.bytes;
    }
    return bytes;
}

std::vector<double>
TrafficLog::sourceCounts() const
{
    std::vector<double> counts(static_cast<std::size_t>(nprocs_), 0.0);
    for (const auto &r : records_) {
        if (r.src >= 0 && r.src < nprocs_)
            counts[static_cast<std::size_t>(r.src)] += 1.0;
    }
    return counts;
}

std::vector<double>
TrafficLog::messageLengths() const
{
    std::vector<double> lens;
    lens.reserve(records_.size());
    for (const auto &r : records_)
        lens.push_back(r.bytes);
    return lens;
}

std::vector<double>
TrafficLog::latencies() const
{
    std::vector<double> ls;
    ls.reserve(records_.size());
    for (const auto &r : records_)
        ls.push_back(r.latency());
    return ls;
}

std::vector<double>
TrafficLog::contentions() const
{
    std::vector<double> cs;
    cs.reserve(records_.size());
    for (const auto &r : records_)
        cs.push_back(r.contention);
    return cs;
}

double
TrafficLog::lastDeliverTime() const
{
    double t = 0.0;
    for (const auto &r : records_)
        t = std::max(t, r.deliverTime);
    return t;
}

TrafficLog
TrafficLog::filterKind(MessageKind kind) const
{
    TrafficLog out{nprocs_};
    for (const auto &r : records_) {
        if (r.kind == kind)
            out.add(r);
    }
    return out;
}

} // namespace cchar::trace
