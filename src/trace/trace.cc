#include "trace.hh"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cchar::trace {

namespace {

MessageKind
kindFromString(const std::string &s)
{
    if (s == "data")
        return MessageKind::Data;
    if (s == "control")
        return MessageKind::Control;
    if (s == "sync")
        return MessageKind::Sync;
    throw std::runtime_error("trace: unknown message kind '" + s + "'");
}

} // namespace

std::vector<TraceEvent>
Trace::eventsOfSource(int src) const
{
    std::vector<TraceEvent> out;
    for (const auto &ev : events_) {
        if (ev.src == src)
            out.push_back(ev);
    }
    return out;
}

void
Trace::save(std::ostream &os) const
{
    os << "cchar-trace v1 " << nprocs_ << " " << events_.size() << "\n";
    for (const auto &ev : events_) {
        os << ev.src << " " << ev.dst << " " << ev.bytes << " "
           << toString(ev.kind) << " " << ev.sinceLast << "\n";
    }
}

Trace
Trace::load(std::istream &is)
{
    std::string magic, version;
    int nprocs = 0;
    std::size_t count = 0;
    if (!(is >> magic >> version >> nprocs >> count) ||
        magic != "cchar-trace" || version != "v1") {
        throw std::runtime_error("trace: bad header");
    }
    if (nprocs <= 0)
        throw std::runtime_error("trace: invalid processor count");

    Trace t{nprocs};
    for (std::size_t i = 0; i < count; ++i) {
        TraceEvent ev;
        std::string kind;
        if (!(is >> ev.src >> ev.dst >> ev.bytes >> kind >> ev.sinceLast))
            throw std::runtime_error("trace: truncated event list");
        if (ev.src < 0 || ev.src >= nprocs || ev.dst < 0 ||
            ev.dst >= nprocs) {
            throw std::runtime_error("trace: node id out of range");
        }
        if (ev.bytes < 0 || ev.sinceLast < 0.0)
            throw std::runtime_error("trace: negative field");
        ev.kind = kindFromString(kind);
        t.add(ev);
    }
    return t;
}

void
Trace::saveFile(const std::string &path) const
{
    std::ofstream f{path};
    if (!f)
        throw std::runtime_error("trace: cannot open " + path);
    save(f);
}

Trace
Trace::loadFile(const std::string &path)
{
    std::ifstream f{path};
    if (!f)
        throw std::runtime_error("trace: cannot open " + path);
    return load(f);
}

} // namespace cchar::trace
