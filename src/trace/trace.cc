#include "trace.hh"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/fsio.hh"
#include "core/status.hh"

namespace cchar::trace {

namespace {

bool
kindFromString(const std::string &s, MessageKind &out)
{
    if (s == "data")
        out = MessageKind::Data;
    else if (s == "control")
        out = MessageKind::Control;
    else if (s == "sync")
        out = MessageKind::Sync;
    else
        return false;
    return true;
}

bool
isBlank(const std::string &line)
{
    for (char c : line) {
        if (c != ' ' && c != '\t' && c != '\r')
            return false;
    }
    return true;
}

/**
 * Parse one event line. Returns an empty string on success, else the
 * reason the record is malformed.
 */
std::string
parseEventLine(const std::string &line, int nprocs, TraceEvent &ev)
{
    std::istringstream fields{line};
    std::string kind;
    if (!(fields >> ev.src >> ev.dst >> ev.bytes >> kind >> ev.sinceLast))
        return "malformed record";
    std::string extra;
    if (fields >> extra)
        return "trailing fields";
    if (ev.src < 0 || ev.src >= nprocs || ev.dst < 0 || ev.dst >= nprocs)
        return "node id out of range";
    if (ev.bytes < 0 || ev.sinceLast < 0.0)
        return "negative field";
    if (!kindFromString(kind, ev.kind))
        return "unknown message kind '" + kind + "'";
    return {};
}

} // namespace

std::vector<TraceEvent>
Trace::eventsOfSource(int src) const
{
    std::vector<TraceEvent> out;
    for (const auto &ev : events_) {
        if (ev.src == src)
            out.push_back(ev);
    }
    return out;
}

void
Trace::save(std::ostream &os) const
{
    os << "cchar-trace v1 " << nprocs_ << " " << events_.size() << "\n";
    for (const auto &ev : events_) {
        os << ev.src << " " << ev.dst << " " << ev.bytes << " "
           << toString(ev.kind) << " " << ev.sinceLast << "\n";
    }
}

Trace
Trace::load(std::istream &is)
{
    return load(is, TraceLoadOptions{});
}

Trace
Trace::load(std::istream &is, const TraceLoadOptions &opts)
{
    bool lenient = opts.errors == ErrorMode::Lenient;

    // Header: first non-blank line. A broken header is never
    // recoverable — without nprocs no record can be validated.
    std::string line;
    std::size_t lineNo = 0;
    bool haveHeader = false;
    while (std::getline(is, line)) {
        ++lineNo;
        if (!isBlank(line)) {
            haveHeader = true;
            break;
        }
    }
    std::istringstream header{line};
    std::string magic, version;
    int nprocs = 0;
    std::size_t count = 0;
    if (!haveHeader || !(header >> magic >> version >> nprocs >> count) ||
        magic != "cchar-trace" || version != "v1") {
        throw core::CCharError(core::StatusCode::ParseError,
                               "trace: bad header");
    }
    if (nprocs <= 0) {
        throw core::CCharError(core::StatusCode::ParseError,
                               "trace: invalid processor count");
    }

    Trace t{nprocs};
    std::size_t consumed = 0; // record lines seen, good or skipped
    while (consumed < count && std::getline(is, line)) {
        ++lineNo;
        if (isBlank(line))
            continue;
        ++consumed;
        TraceEvent ev;
        std::string err = parseEventLine(line, nprocs, ev);
        if (err.empty()) {
            t.add(ev);
            continue;
        }
        std::string msg =
            "trace: line " + std::to_string(lineNo) + ": " + err;
        if (!lenient)
            throw core::CCharError(core::StatusCode::ParseError, msg);
        ++t.skipped_;
        core::reportDiagnostic(core::DiagSeverity::Warning, msg);
    }
    if (consumed < count) {
        std::string msg = "trace: truncated event list (header "
                          "promises " +
                          std::to_string(count) + " events, found " +
                          std::to_string(t.events_.size()) + ")";
        if (!lenient)
            throw core::CCharError(core::StatusCode::ParseError, msg);
        // The missing records are data loss too: count them so the
        // resilience accounting reflects the shortfall.
        t.skipped_ += count - consumed;
        core::reportDiagnostic(core::DiagSeverity::Warning, msg);
    }
    return t;
}

void
Trace::saveFile(const std::string &path) const
{
    core::AtomicFileWriter writer{path, "trace"};
    save(writer.stream());
    writer.commit();
}

Trace
Trace::loadFile(const std::string &path)
{
    return loadFile(path, TraceLoadOptions{});
}

Trace
Trace::loadFile(const std::string &path, const TraceLoadOptions &opts)
{
    std::ifstream f{path};
    if (!f) {
        throw core::CCharError(core::StatusCode::IoError,
                               "trace: cannot open " + path);
    }
    return load(f, opts);
}

} // namespace cchar::trace
