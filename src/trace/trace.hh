/**
 * @file
 * Application-level communication traces (the static strategy).
 *
 * The paper's static strategy runs message-passing applications on an
 * IBM SP2 under an application-level trace utility and feeds the trace
 * "intelligently" to the 2-D mesh simulator: each record carries the
 * message's source, destination, length and the time since the last
 * network activity at the source, so the replayer preserves per-source
 * compute/communication dependences instead of absolute timestamps —
 * avoiding the classic pitfalls of trace-driven simulation.
 */

#ifndef CCHAR_TRACE_TRACE_HH
#define CCHAR_TRACE_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "record.hh"

namespace cchar::trace {

/** How the trace loader treats malformed records. */
enum class ErrorMode
{
    /** Any malformed record aborts the load (ParseError). */
    Strict,
    /**
     * Malformed records are skipped and reported to the installed
     * diagnostic sink; the load returns every parseable record.
     */
    Lenient,
};

/** Knobs of Trace::load. */
struct TraceLoadOptions
{
    ErrorMode errors = ErrorMode::Strict;
};

/** One traced communication event. */
struct TraceEvent
{
    std::int32_t src = 0;
    std::int32_t dst = 0;
    std::int32_t bytes = 0;
    MessageKind kind = MessageKind::Data;
    /**
     * Compute time (us) elapsed at the source since its previous
     * network activity completed ("time since the last network
     * activity at the source").
     */
    double sinceLast = 0.0;
};

/** A complete application trace. */
class Trace
{
  public:
    Trace() = default;
    explicit Trace(int nprocs) : nprocs_(nprocs) {}

    int nprocs() const { return nprocs_; }
    void setNprocs(int n) { nprocs_ = n; }

    void add(const TraceEvent &ev) { events_.push_back(ev); }
    const std::vector<TraceEvent> &events() const { return events_; }
    std::size_t size() const { return events_.size(); }

    /** Events of one source, preserving their recorded order. */
    std::vector<TraceEvent> eventsOfSource(int src) const;

    /** Serialize to the textual "cchar-trace v1" format. */
    void save(std::ostream &os) const;

    /**
     * Parse the textual format (strict mode).
     * @throws core::CCharError (ParseError; derives
     *         std::runtime_error) on malformed input.
     */
    static Trace load(std::istream &is);

    /**
     * Parse the textual format under an explicit error mode. A bad
     * header always aborts; in lenient mode malformed event records
     * are skipped (counted in skippedRecords() and reported to the
     * installed diagnostic sink) instead of aborting.
     */
    static Trace load(std::istream &is, const TraceLoadOptions &opts);

    /** Convenience file wrappers (IoError when the file is missing). */
    void saveFile(const std::string &path) const;
    static Trace loadFile(const std::string &path);
    static Trace loadFile(const std::string &path,
                          const TraceLoadOptions &opts);

    /** Malformed records skipped by a lenient load (0 when strict). */
    std::uint64_t skippedRecords() const { return skipped_; }

  private:
    int nprocs_ = 0;
    std::vector<TraceEvent> events_;
    std::uint64_t skipped_ = 0;
};

} // namespace cchar::trace

#endif // CCHAR_TRACE_TRACE_HH
