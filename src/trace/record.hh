/**
 * @file
 * Network activity records: the schema of the log the paper's 2-D mesh
 * simulator emits and the SAS analysis consumes ("from this log, we
 * obtain the source-destination information of the messages along with
 * the message length and time of injection").
 */

#ifndef CCHAR_TRACE_RECORD_HH
#define CCHAR_TRACE_RECORD_HH

#include <cstdint>
#include <string>
#include <vector>

namespace cchar::trace {

/** Broad message categories for per-class analysis. */
enum class MessageKind : std::uint8_t
{
    Data,      ///< cache-line / application payload carrier
    Control,   ///< protocol request/ack without payload
    Sync,      ///< lock / barrier traffic
};

/** Name of a MessageKind value. */
std::string toString(MessageKind kind);

/** One message's journey through the interconnection network. */
struct MessageRecord
{
    std::int32_t src = 0;
    std::int32_t dst = 0;
    std::int32_t bytes = 0;
    MessageKind kind = MessageKind::Data;
    /** Time the message was offered to the network interface (us). */
    double injectTime = 0.0;
    /** Time the tail flit drained at the destination (us). */
    double deliverTime = 0.0;
    /** Path length in hops. */
    std::int32_t hops = 0;
    /** Queueing/blocking component of the latency (us). */
    double contention = 0.0;
    /**
     * False when fault injection dropped the message in-network
     * (always true in fault-free runs). Dropped messages are not
     * appended to the TrafficLog.
     */
    bool delivered = true;
    /** True when fault injection corrupted the delivered payload. */
    bool corrupted = false;

    double latency() const { return deliverTime - injectTime; }
};

/**
 * Accumulated network log of one application run; the raw material of
 * the characterization pipeline.
 */
class TrafficLog
{
  public:
    explicit TrafficLog(int nprocs = 0) : nprocs_(nprocs) {}

    void add(const MessageRecord &rec) { records_.push_back(rec); }

    const std::vector<MessageRecord> &records() const { return records_; }
    std::size_t size() const { return records_.size(); }
    bool empty() const { return records_.empty(); }
    int nprocs() const { return nprocs_; }
    void setNprocs(int n) { nprocs_ = n; }

    /**
     * Inter-arrival times between successive injections.
     * @param src  Restrict to one source processor, or -1 for the
     *             aggregate arrival process at the network.
     */
    std::vector<double> interArrivalTimes(int src = -1) const;

    /** Message counts from `src` to every destination. */
    std::vector<double> destinationCounts(int src) const;

    /** Byte volume from `src` to every destination. */
    std::vector<double> destinationBytes(int src) const;

    /** Messages injected by each processor. */
    std::vector<double> sourceCounts() const;

    /** All message lengths, in injection order. */
    std::vector<double> messageLengths() const;

    /** All end-to-end latencies. */
    std::vector<double> latencies() const;

    /** All contention components. */
    std::vector<double> contentions() const;

    /** Time of the last delivery (run makespan proxy). */
    double lastDeliverTime() const;

    /** Subset view containing only messages of one kind. */
    TrafficLog filterKind(MessageKind kind) const;

  private:
    int nprocs_;
    std::vector<MessageRecord> records_;
};

} // namespace cchar::trace

#endif // CCHAR_TRACE_RECORD_HH
