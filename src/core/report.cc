#include "report.hh"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "stats/distributions.hh"

namespace cchar::core {

std::string
toString(Strategy strategy)
{
    return strategy == Strategy::Dynamic ? "dynamic" : "static";
}

namespace {

void
printTemporal(std::ostream &os, const TemporalFit &fit)
{
    os << "    mean=" << std::setprecision(4) << fit.stats.mean
       << "us cv=" << fit.stats.cv << " n=" << fit.stats.count;
    if (fit.fit.dist) {
        os << "  fit=" << fit.fit.dist->describe()
           << "  R2=" << std::setprecision(4) << fit.fit.gof.r2
           << " KS=" << fit.fit.gof.ks;
    }
    os << "\n";
}

} // namespace

void
CharacterizationReport::print(std::ostream &os) const
{
    os << "=== Communication characterization: " << application
       << " (" << toString(strategy) << " strategy, " << nprocs
       << " processors, " << mesh.width << "x" << mesh.height
       << " mesh) ===\n";

    os << "-- Temporal attribute (message inter-arrival time) --\n";
    os << "  aggregate:\n";
    printTemporal(os, temporalAggregate);
    for (const auto &fit : temporalPerSource) {
        os << "  p" << fit.source << ":\n";
        printTemporal(os, fit);
    }

    os << "-- Spatial attribute (destination distribution) --\n";
    os << "  aggregate: " << spatialAggregate.describe()
       << " (tvd=" << std::setprecision(3) << spatialAggregate.modelTvd
       << ")\n";
    for (const auto &fit : spatialPerSource) {
        os << "  p" << fit.source << ": "
           << fit.classification.describe() << " (tvd="
           << std::setprecision(3) << fit.classification.modelTvd
           << ")\n";
    }
    os << "  hop-distance pmf:";
    for (std::size_t h = 0; h < hopDistancePmf.size(); ++h)
        os << " " << h << ":" << std::setprecision(3)
           << hopDistancePmf[h];
    os << "\n";

    os << "  structured pattern: " << structured.describe() << "\n";

    os << "-- Volume attribute (message count and length) --\n";
    os << "  messages=" << volume.messageCount
       << " totalBytes=" << std::setprecision(6) << volume.totalBytes
       << " meanLength=" << std::setprecision(4)
       << volume.lengthStats.mean << "B\n";
    os << "  length pmf:";
    for (const auto &[bytes, prob] : volume.lengthPmf)
        os << " " << bytes << "B:" << std::setprecision(3) << prob;
    os << "\n";
    for (const auto &kb : perKind) {
        os << "  class " << trace::toString(kb.kind) << ": msgs="
           << kb.volume.messageCount << " bytes="
           << std::setprecision(6) << kb.volume.totalBytes
           << " IAT mean=" << std::setprecision(4)
           << kb.temporal.stats.mean << "us cv="
           << kb.temporal.stats.cv;
        if (kb.temporal.fit.dist)
            os << " fit=" << kb.temporal.fit.dist->name();
        os << "\n";
    }

    if (!phases.empty()) {
        os << "-- Execution phases (change-point segmentation) --\n";
        for (const auto &ph : phases) {
            os << "  phase " << ph.index << ": ["
               << std::setprecision(6) << ph.tBegin << "us, "
               << ph.tEnd << "us) msgs=" << ph.messageCount
               << " rate=" << std::setprecision(4) << ph.injectionRate
               << "/us meanLength=" << ph.meanBytes
               << "B dstEntropy=" << std::setprecision(3)
               << ph.dstEntropy << "\n";
            os << "    IAT mean=" << std::setprecision(4)
               << ph.temporal.stats.mean << "us cv="
               << ph.temporal.stats.cv;
            if (ph.temporal.fit.dist)
                os << " fit=" << ph.temporal.fit.dist->name();
            os << "  spatial=" << ph.spatial.describe() << "\n";
        }
    }

    os << "-- Network behaviour --\n";
    os << "  latency mean=" << std::setprecision(4)
       << network.latencyMean << "us max=" << network.latencyMax
       << "us contention mean=" << network.contentionMean
       << "us avgHops=" << network.avgHops << "\n";
    os << "  makespan=" << network.makespan
       << "us channel-util avg=" << network.avgChannelUtilization
       << " max=" << network.maxChannelUtilization << "\n";

    if (synthFidelity.enabled) {
        const SynthesisFidelity &sf = synthFidelity;
        os << "-- Synthesis fidelity (model replay) --\n";
        os << "  model: " << sf.modelSource << " ("
           << sf.modelApplication << ", " << sf.modelProcs
           << " procs) seed=" << sf.seed << "\n";
        os << "  scale: tiles=" << sf.scaleTiles << " messageScale="
           << std::setprecision(4) << sf.messageScale
           << " syntheticMessages=" << sf.syntheticMessages << "\n";
        os << "  KS divergence: temporal=" << std::setprecision(4)
           << sf.temporalKs << " (" << sf.temporalSources
           << " sources) spatial=" << sf.spatialKs
           << " volume=" << sf.volumeKs
           << " max=" << sf.maxKs() << "\n";
    }

    if (resilience.enabled) {
        os << "-- Resilience (fault injection) --\n";
        os << "  plan: " << resilience.planDescription << "\n";
        os << "  lost: linkDrops=" << resilience.linkDrops
           << " drops=" << resilience.droppedPackets
           << " corrupted=" << resilience.corruptedPackets
           << " routerStalls=" << resilience.routerStalls << "\n";
        os << "  recovery: retransmits=" << resilience.retransmits
           << " deliveryFailures=" << resilience.deliveryFailures
           << " traceRecordsSkipped="
           << resilience.traceRecordsSkipped << "\n";
        if (!resilience.rankRetransmits.empty()) {
            os << "  per-rank (retransmits/corruptDiscards):";
            for (std::size_t r = 0;
                 r < resilience.rankRetransmits.size(); ++r) {
                std::uint64_t discards =
                    r < resilience.rankCorruptDiscards.size()
                        ? resilience.rankCorruptDiscards[r]
                        : 0;
                os << " p" << r << "="
                   << resilience.rankRetransmits[r] << "/" << discards;
            }
            os << "\n";
        }
        os << "  planned link downtime="
           << std::setprecision(6) << resilience.plannedLinkDowntimeUs
           << "us\n";
        os << "-- Degraded routing --\n";
        os << "  reroutedPackets=" << resilience.reroutedPackets
           << " rerouteExtraHops=" << resilience.rerouteExtraHops
           << "\n";
    }

    if (rankActivity.enabled) {
        const RankActivitySummary &ra = rankActivity;
        os << "-- Rank activity (desynchronization) --\n";
        os << "  runEnd=" << std::setprecision(6) << ra.runEndUs
           << "us skewSamples=" << ra.markerSamples
           << " maxAbsSkew=" << std::setprecision(4) << ra.maxAbsSkewUs
           << "us waves=" << ra.waves.size() << "\n";
        for (const auto &row : ra.ranks) {
            os << "  p" << row.rank << ": compute="
               << std::setprecision(6) << row.computeUs
               << "us blockedSend=" << row.blockedSendUs
               << "us blockedRecv=" << row.blockedRecvUs
               << "us comm=" << row.commUs << "us idle="
               << std::setprecision(3) << row.idleFraction
               << " skew mean=" << std::setprecision(4)
               << row.meanSkewUs << "us max=" << row.maxAbsSkewUs
               << "us\n";
        }
        for (std::size_t i = 0; i < ra.waves.size(); ++i) {
            const IdleWave &w = ra.waves[i];
            os << "  wave " << i << ": ranks " << w.rankBegin << "->"
               << w.rankEnd << " (extent " << w.extent << ", "
               << (w.direction > 0 ? "up" : "down") << ") over ["
               << std::setprecision(6) << w.tBeginUs << "us, "
               << w.tEndUs << "us] speed=" << std::setprecision(4)
               << w.speedRanksPerUs << " ranks/us";
            if (w.phase >= 0)
                os << " phase=" << w.phase;
            os << "\n";
        }
        if (ra.droppedRecords > 0) {
            os << "  warning: " << ra.droppedRecords
               << " activity records dropped (tracker capacity)\n";
        }
    }

    if (linkStats.enabled) {
        const LinkWeatherSummary &lw = linkStats;
        os << "-- Network weather (per-link utilization) --\n";
        os << "  runEnd=" << std::setprecision(6) << lw.runEndUs
           << "us channelLinks=" << lw.totalLinks << " (+"
           << lw.injectionLinks << " injection) util avg="
           << std::setprecision(4) << lw.avgUtilization
           << " max=" << lw.maxUtilization
           << " median=" << lw.medianUtilization
           << " gini=" << std::setprecision(3) << lw.gini << "\n";
        os << "  hotspots=" << lw.hotspotCount
           << " holStalls=" << lw.holStalls << " ("
           << std::setprecision(6) << lw.holStallUs
           << "us) offered=" << lw.offeredBytes << "B delivered="
           << lw.deliveredBytes << "B\n";
        if (lw.congestionOnsetLoad > 0.0) {
            os << "  congestion onset: load=" << std::setprecision(4)
               << lw.congestionOnsetLoad << "B/us at t="
               << std::setprecision(6) << lw.congestionOnsetUs << "us";
            if (lw.congestionPhase >= 0)
                os << " phase=" << lw.congestionPhase;
            os << "\n";
        } else {
            os << "  congestion onset: none detected\n";
        }
        for (std::size_t i = 0; i < lw.links.size(); ++i) {
            const LinkWeatherRow &row = lw.links[i];
            os << "  #" << i << " " << row.node << "->" << row.toNode
               << " " << obs::linkDirName(row.dir) << " v" << row.vc
               << ": util=" << std::setprecision(4) << row.utilization
               << " pkts=" << row.packets << " bytes=" << row.bytes
               << " stalls=" << row.stalls << " stall="
               << std::setprecision(6) << row.stallUs
               << "us queue mean=" << std::setprecision(3)
               << row.meanQueueDepth << " peak=" << row.peakBacklog;
            if (row.hotspot)
                os << " [hotspot sustained="
                   << std::setprecision(3) << row.sustainedFraction
                   << "]";
            os << "\n";
        }
        if (lw.elidedLinks > 0) {
            os << "  (" << lw.elidedLinks
               << " lower-ranked links elided; raise --top-links to "
                  "see them)\n";
        }
        if (!lw.routers.empty()) {
            os << "  top routers (by forwards):";
            for (const RouterLoadRow &rr : lw.routers)
                os << " " << rr.node << ":" << rr.forwards << "("
                   << rr.bytes << "B)";
            os << "\n";
        }
        if (lw.droppedFacts > 0) {
            os << "  warning: " << lw.droppedFacts
               << " link facts dropped (tracker capacity)\n";
        }
    }
}

namespace {

/** Minimal JSON emission helpers (no external dependency). */
void
jsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
    os << '"';
}

void
jsonTemporal(std::ostream &os, const TemporalFit &fit)
{
    os << "{\"source\":" << fit.source << ",\"count\":"
       << fit.stats.count << ",\"mean\":" << fit.stats.mean
       << ",\"cv\":" << fit.stats.cv;
    if (fit.fit.dist) {
        os << ",\"family\":";
        jsonString(os, fit.fit.dist->name());
        // Erlang's params() carries only the rate (the stage count k
        // is fixed from moments, never optimized), so k must ride
        // along separately or a model round-trip would lose it.
        if (fit.fit.dist->name() == "erlang") {
            const auto *erl =
                static_cast<const stats::Erlang *>(fit.fit.dist.get());
            os << ",\"stages\":" << erl->stages();
        }
        os << ",\"params\":[";
        auto ps = fit.fit.dist->params();
        for (std::size_t i = 0; i < ps.size(); ++i)
            os << (i ? "," : "") << ps[i];
        os << "],\"r2\":" << fit.fit.gof.r2 << ",\"ks\":"
           << fit.fit.gof.ks;
    }
    os << "}";
}

} // namespace

void
CharacterizationReport::writeJson(std::ostream &os) const
{
    os << "{\"application\":";
    jsonString(os, application);
    os << ",\"strategy\":";
    jsonString(os, toString(strategy));
    os << ",\"nprocs\":" << nprocs << ",\"verified\":"
       << (verified ? "true" : "false");
    os << ",\"mesh\":{\"width\":" << mesh.width << ",\"height\":"
       << mesh.height << ",\"topology\":";
    jsonString(os, mesh.topology == mesh::Topology::Torus ? "torus"
                                                          : "mesh");
    os << ",\"vcs\":" << mesh.virtualChannels << "}";

    os << ",\"temporal\":{\"aggregate\":";
    jsonTemporal(os, temporalAggregate);
    os << ",\"perSource\":[";
    for (std::size_t i = 0; i < temporalPerSource.size(); ++i) {
        if (i)
            os << ",";
        jsonTemporal(os, temporalPerSource[i]);
    }
    os << "]}";

    os << ",\"spatial\":{\"aggregatePattern\":";
    jsonString(os, stats::toString(spatialAggregate.pattern));
    os << ",\"structured\":";
    jsonString(os, structured.describe());
    os << ",\"perSource\":[";
    for (std::size_t i = 0; i < spatialPerSource.size(); ++i) {
        const auto &sf = spatialPerSource[i];
        if (i)
            os << ",";
        os << "{\"source\":" << sf.source << ",\"pattern\":";
        jsonString(os, stats::toString(sf.classification.pattern));
        os << ",\"tvd\":" << sf.classification.modelTvd
           << ",\"pmf\":[";
        for (std::size_t d = 0; d < sf.observed.size(); ++d)
            os << (d ? "," : "") << sf.observed[d];
        os << "]}";
    }
    os << "],\"hopDistancePmf\":[";
    for (std::size_t h = 0; h < hopDistancePmf.size(); ++h)
        os << (h ? "," : "") << hopDistancePmf[h];
    os << "]}";

    os << ",\"volume\":{\"messages\":" << volume.messageCount
       << ",\"totalBytes\":" << volume.totalBytes
       << ",\"meanLength\":" << volume.lengthStats.mean
       << ",\"lengthPmf\":[";
    for (std::size_t i = 0; i < volume.lengthPmf.size(); ++i) {
        if (i)
            os << ",";
        os << "{\"bytes\":" << volume.lengthPmf[i].first
           << ",\"p\":" << volume.lengthPmf[i].second << "}";
    }
    os << "],\"perSourceCounts\":[";
    for (std::size_t i = 0; i < volume.perSourceCounts.size(); ++i)
        os << (i ? "," : "") << volume.perSourceCounts[i];
    os << "]}";

    // Emitted only when phase detection ran: a run analyzed without
    // it renders byte-identically to earlier versions.
    if (!phases.empty()) {
        os << ",\"phases\":[";
        for (std::size_t i = 0; i < phases.size(); ++i) {
            const auto &ph = phases[i];
            if (i)
                os << ",";
            os << "{\"index\":" << ph.index
               << ",\"tBegin\":" << ph.tBegin << ",\"tEnd\":"
               << ph.tEnd << ",\"messages\":" << ph.messageCount
               << ",\"totalBytes\":" << ph.totalBytes
               << ",\"injectionRate\":" << ph.injectionRate
               << ",\"meanBytes\":" << ph.meanBytes
               << ",\"dstEntropy\":" << ph.dstEntropy
               << ",\"temporal\":";
            jsonTemporal(os, ph.temporal);
            os << ",\"spatialPattern\":";
            jsonString(os, stats::toString(ph.spatial.pattern));
            os << "}";
        }
        os << "]";
    }

    os << ",\"network\":{\"latencyMean\":" << network.latencyMean
       << ",\"latencyMax\":" << network.latencyMax
       << ",\"contentionMean\":" << network.contentionMean
       << ",\"makespan\":" << network.makespan
       << ",\"avgChannelUtilization\":"
       << network.avgChannelUtilization << ",\"avgHops\":"
       << network.avgHops << "}";

    // Emitted only for `synth` replays: a report produced by
    // `characterize` renders byte-identically to earlier versions.
    if (synthFidelity.enabled) {
        const SynthesisFidelity &sf = synthFidelity;
        os << ",\"synthFidelity\":{\"modelSource\":";
        jsonString(os, sf.modelSource);
        os << ",\"modelApplication\":";
        jsonString(os, sf.modelApplication);
        os << ",\"modelProcs\":" << sf.modelProcs
           << ",\"scaleTiles\":" << sf.scaleTiles
           << ",\"messageScale\":" << sf.messageScale
           << ",\"seed\":" << sf.seed
           << ",\"syntheticMessages\":" << sf.syntheticMessages
           << ",\"temporalKs\":" << sf.temporalKs
           << ",\"temporalSources\":" << sf.temporalSources
           << ",\"spatialKs\":" << sf.spatialKs
           << ",\"volumeKs\":" << sf.volumeKs
           << ",\"maxKs\":" << sf.maxKs() << "}";
    }

    // Emitted only for faulted runs: a fault-free report renders
    // byte-identically to earlier versions.
    if (resilience.enabled) {
        os << ",\"resilience\":{\"plan\":";
        jsonString(os, resilience.planDescription);
        os << ",\"faultsPlanned\":" << resilience.faultsPlanned
           << ",\"linkDrops\":" << resilience.linkDrops
           << ",\"droppedPackets\":" << resilience.droppedPackets
           << ",\"corruptedPackets\":" << resilience.corruptedPackets
           << ",\"routerStalls\":" << resilience.routerStalls
           << ",\"retransmits\":" << resilience.retransmits
           << ",\"deliveryFailures\":" << resilience.deliveryFailures
           << ",\"traceRecordsSkipped\":"
           << resilience.traceRecordsSkipped
           << ",\"plannedLinkDowntimeUs\":"
           << resilience.plannedLinkDowntimeUs
           << ",\"reroutedPackets\":" << resilience.reroutedPackets
           << ",\"rerouteExtraHops\":"
           << resilience.rerouteExtraHops;
        if (!resilience.rankRetransmits.empty()) {
            os << ",\"rankRetransmits\":[";
            for (std::size_t r = 0;
                 r < resilience.rankRetransmits.size(); ++r)
                os << (r ? "," : "")
                   << resilience.rankRetransmits[r];
            os << "],\"rankCorruptDiscards\":[";
            for (std::size_t r = 0;
                 r < resilience.rankCorruptDiscards.size(); ++r)
                os << (r ? "," : "")
                   << resilience.rankCorruptDiscards[r];
            os << "]";
        }
        os << "}";
    }

    // Emitted only for --rank-activity runs: a report without the
    // flag renders byte-identically to earlier versions.
    if (rankActivity.enabled) {
        const RankActivitySummary &ra = rankActivity;
        os << ",\"rankActivity\":{\"runEndUs\":" << ra.runEndUs
           << ",\"markerSamples\":" << ra.markerSamples
           << ",\"maxAbsSkewUs\":" << ra.maxAbsSkewUs
           << ",\"droppedRecords\":" << ra.droppedRecords
           << ",\"windowUs\":" << ra.windowUs << ",\"ranks\":[";
        for (std::size_t i = 0; i < ra.ranks.size(); ++i) {
            const RankActivityRow &row = ra.ranks[i];
            if (i)
                os << ",";
            os << "{\"rank\":" << row.rank << ",\"computeUs\":"
               << row.computeUs << ",\"blockedSendUs\":"
               << row.blockedSendUs << ",\"blockedRecvUs\":"
               << row.blockedRecvUs << ",\"commUs\":" << row.commUs
               << ",\"idleFraction\":" << row.idleFraction
               << ",\"meanSkewUs\":" << row.meanSkewUs
               << ",\"maxAbsSkewUs\":" << row.maxAbsSkewUs
               << ",\"blockedIntervals\":" << row.blockedIntervals
               << ",\"markers\":" << row.markers << ",\"idleWindows\":[";
            if (i < ra.idleWindows.size()) {
                const auto &wins = ra.idleWindows[i];
                for (std::size_t w = 0; w < wins.size(); ++w)
                    os << (w ? "," : "") << wins[w];
            }
            os << "],\"timeline\":[";
            if (i < ra.timeline.size()) {
                const auto &tl = ra.timeline[i];
                for (std::size_t t = 0; t < tl.size(); ++t) {
                    if (t)
                        os << ",";
                    os << "{\"state\":";
                    jsonString(os, obs::rankStateName(tl[t].state));
                    os << ",\"beginUs\":" << tl[t].beginUs
                       << ",\"endUs\":" << tl[t].endUs << "}";
                }
            }
            os << "]}";
        }
        os << "],\"waves\":[";
        for (std::size_t i = 0; i < ra.waves.size(); ++i) {
            const IdleWave &w = ra.waves[i];
            if (i)
                os << ",";
            os << "{\"tBeginUs\":" << w.tBeginUs << ",\"tEndUs\":"
               << w.tEndUs << ",\"rankBegin\":" << w.rankBegin
               << ",\"rankEnd\":" << w.rankEnd << ",\"extent\":"
               << w.extent << ",\"direction\":" << w.direction
               << ",\"speedRanksPerUs\":" << w.speedRanksPerUs
               << ",\"phase\":" << w.phase << "}";
        }
        os << "],\"timelineDropped\":" << ra.timelineDropped << "}";
    }

    // Emitted only for --link-stats runs: a report without the flag
    // renders byte-identically to earlier versions.
    if (linkStats.enabled) {
        const LinkWeatherSummary &lw = linkStats;
        os << ",\"linkStats\":{\"runEndUs\":" << lw.runEndUs
           << ",\"windowUs\":" << lw.windowUs
           << ",\"totalLinks\":" << lw.totalLinks
           << ",\"injectionLinks\":" << lw.injectionLinks
           << ",\"elidedLinks\":" << lw.elidedLinks
           << ",\"avgUtilization\":" << lw.avgUtilization
           << ",\"maxUtilization\":" << lw.maxUtilization
           << ",\"medianUtilization\":" << lw.medianUtilization
           << ",\"gini\":" << lw.gini
           << ",\"hotspotCount\":" << lw.hotspotCount
           << ",\"holStalls\":" << lw.holStalls
           << ",\"holStallUs\":" << lw.holStallUs
           << ",\"offeredBytes\":" << lw.offeredBytes
           << ",\"deliveredBytes\":" << lw.deliveredBytes
           << ",\"congestionOnsetLoad\":" << lw.congestionOnsetLoad
           << ",\"congestionOnsetUs\":" << lw.congestionOnsetUs
           << ",\"congestionPhase\":" << lw.congestionPhase
           << ",\"droppedFacts\":" << lw.droppedFacts << ",\"links\":[";
        for (std::size_t i = 0; i < lw.links.size(); ++i) {
            const LinkWeatherRow &row = lw.links[i];
            if (i)
                os << ",";
            os << "{\"node\":" << row.node << ",\"toNode\":"
               << row.toNode << ",\"dir\":";
            jsonString(os, obs::linkDirName(row.dir));
            os << ",\"vc\":" << row.vc << ",\"utilization\":"
               << row.utilization << ",\"packets\":" << row.packets
               << ",\"bytes\":" << row.bytes << ",\"stalls\":"
               << row.stalls << ",\"stallUs\":" << row.stallUs
               << ",\"meanQueueDepth\":" << row.meanQueueDepth
               << ",\"peakBacklog\":" << row.peakBacklog
               << ",\"hotspot\":" << (row.hotspot ? "true" : "false")
               << ",\"sustainedFraction\":" << row.sustainedFraction
               << ",\"sparkline\":[";
            for (std::size_t w = 0; w < row.sparkline.size(); ++w)
                os << (w ? "," : "") << row.sparkline[w];
            os << "]}";
        }
        os << "],\"routers\":[";
        for (std::size_t i = 0; i < lw.routers.size(); ++i) {
            const RouterLoadRow &rr = lw.routers[i];
            if (i)
                os << ",";
            os << "{\"node\":" << rr.node << ",\"forwards\":"
               << rr.forwards << ",\"bytes\":" << rr.bytes << "}";
        }
        os << "],\"offeredSeries\":[";
        for (std::size_t w = 0; w < lw.offeredSeries.size(); ++w)
            os << (w ? "," : "") << lw.offeredSeries[w];
        os << "],\"deliveredSeries\":[";
        for (std::size_t w = 0; w < lw.deliveredSeries.size(); ++w)
            os << (w ? "," : "") << lw.deliveredSeries[w];
        os << "]}";
    }
    os << "}\n";
}

std::string
CharacterizationReport::summaryRow() const
{
    std::ostringstream os;
    os << std::left << std::setw(10) << application << std::right
       << std::setw(9) << volume.messageCount << std::setw(11)
       << std::fixed << std::setprecision(2) << volume.lengthStats.mean
       << std::setw(12) << temporalAggregate.stats.mean << std::setw(8)
       << std::setprecision(2) << temporalAggregate.stats.cv
       << "  " << std::left << std::setw(24)
       << (temporalAggregate.fit.dist
               ? temporalAggregate.fit.dist->name()
               : std::string{"-"})
       << std::left << std::setw(18)
       << stats::toString(spatialAggregate.pattern);
    return os.str();
}

} // namespace cchar::core
