/**
 * @file
 * The communication characterization data model — the paper's output:
 * for one application run, the temporal attribute (inter-arrival time
 * distribution per source and aggregate), the spatial attribute
 * (destination distribution per source, classified against standard
 * patterns), and the volume attribute (message count and length
 * distribution), plus a summary of the observed network behaviour.
 */

#ifndef CCHAR_CORE_REPORT_HH
#define CCHAR_CORE_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "mesh/mesh.hh"
#include "obs/link_stats.hh"
#include "obs/rank_activity.hh"
#include "patterns.hh"
#include "stats/stats.hh"
#include "trace/record.hh"

namespace cchar::core {

/** Temporal attribute of one source (or the aggregate). */
struct TemporalFit
{
    int source = -1; ///< -1 = aggregate over all sources
    stats::SummaryStats stats;
    stats::FitResult fit;
};

/** Spatial attribute of one source. */
struct SpatialFit
{
    int source = 0;
    stats::DiscretePmf observed;
    stats::SpatialClassification classification;
};

/** Volume attribute of the run. */
struct VolumeCharacterization
{
    std::size_t messageCount = 0;
    double totalBytes = 0.0;
    stats::SummaryStats lengthStats;
    /** Distinct message sizes and their probability. */
    std::vector<std::pair<int, double>> lengthPmf;
    /** Messages injected per source. */
    std::vector<double> perSourceCounts;
};

/**
 * Characterization of one automatically detected execution phase.
 *
 * The paper observes that parallel applications alternate between
 * distinct communication regimes (local compute vs transpose in the
 * FFTs, red/black sweeps in SOR). The phase analyzer segments the run
 * with a change-point detector over windowed signals and re-runs the
 * temporal/spatial/volume characterization inside each segment.
 */
struct PhaseCharacterization
{
    int index = 0;
    /** Phase time span (us). */
    double tBegin = 0.0;
    double tEnd = 0.0;
    std::size_t messageCount = 0;
    double totalBytes = 0.0;
    /** Messages injected per microsecond inside the phase. */
    double injectionRate = 0.0;
    double meanBytes = 0.0;
    /** Normalized destination entropy (1 = uniform spread). */
    double dstEntropy = 0.0;
    /** Aggregate arrival-process fit inside the phase. */
    TemporalFit temporal;
    /** Source-averaged destination classification inside the phase. */
    stats::SpatialClassification spatial;
};

/** Observed network behaviour of the run. */
struct NetworkSummary
{
    double latencyMean = 0.0;
    double latencyMax = 0.0;
    double contentionMean = 0.0;
    double makespan = 0.0;
    double avgChannelUtilization = 0.0;
    double maxChannelUtilization = 0.0;
    double avgHops = 0.0;
};

/**
 * Fault-injection and recovery accounting of one run. Only rendered
 * (text, JSON, HTML) when enabled — fault-free reports are unchanged.
 */
struct ResilienceSummary
{
    /** True when the run executed under a fault plan. */
    bool enabled = false;
    /** Human-readable plan summary (FaultPlan::describe()). */
    std::string planDescription;
    /** Clauses in the plan. */
    std::size_t faultsPlanned = 0;
    std::uint64_t droppedPackets = 0;
    std::uint64_t corruptedPackets = 0;
    std::uint64_t linkDrops = 0;
    std::uint64_t routerStalls = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t deliveryFailures = 0;
    /** Malformed trace records skipped by a lenient ingest. */
    std::uint64_t traceRecordsSkipped = 0;
    /** Sum of bounded link-down windows in the plan (us). */
    double plannedLinkDowntimeUs = 0.0;
    /** Packets steered around a down link by adaptive routing. */
    std::uint64_t reroutedPackets = 0;
    /** Hops beyond the minimal path summed over all reroutes. */
    std::uint64_t rerouteExtraHops = 0;
    /** Per-rank retransmissions (sender-attributed; empty when the
     *  driver has no rank-level protocol, e.g. replay). */
    std::vector<std::uint64_t> rankRetransmits;
    /** Per-rank corrupt discards (receiver-attributed). */
    std::vector<std::uint64_t> rankCorruptDiscards;
};

/** One rank's activity totals and skew statistics. */
struct RankActivityRow
{
    int rank = 0;
    /** Time not inside any blocking primitive (us). */
    double computeUs = 0.0;
    double blockedSendUs = 0.0;
    double blockedRecvUs = 0.0;
    /** Merged in-network time of packets sourced by the rank (us). */
    double commUs = 0.0;
    /** Blocked (send + recv) time over the run duration. */
    double idleFraction = 0.0;
    /** Signed mean deviation from mean progress at markers (us). */
    double meanSkewUs = 0.0;
    double maxAbsSkewUs = 0.0;
    std::size_t blockedIntervals = 0;
    std::size_t markers = 0;
};

/**
 * One idle wave: a front of long blocked intervals starting on
 * consecutive neighboring ranks at strictly increasing times — the
 * propagating signature of a localized slowdown (arXiv 2205.13963).
 */
struct IdleWave
{
    /** Front arrival at the first / last rank of the chain (us). */
    double tBeginUs = 0.0;
    double tEndUs = 0.0;
    int rankBegin = 0;
    int rankEnd = 0;
    /** Ranks the front traversed (chain length). */
    int extent = 0;
    /** +1 = toward higher ranks, -1 = toward lower. */
    int direction = 1;
    double speedRanksPerUs = 0.0;
    /** Index of the detected phase containing tBegin, or -1. */
    int phase = -1;
};

/**
 * Per-rank activity, desynchronization and idle-wave analysis. Only
 * rendered (text, JSON, HTML) when enabled — reports without
 * --rank-activity are unchanged.
 */
struct RankActivitySummary
{
    /** True when the run was tracked with --rank-activity. */
    bool enabled = false;
    /** Analysis horizon: end of the tracked run (us). */
    double runEndUs = 0.0;
    /** Skew samples used (min marker count across ranks). */
    std::size_t markerSamples = 0;
    /** Fleet-wide worst |skew| over all markers and ranks (us). */
    double maxAbsSkewUs = 0.0;
    /** Facts lost to tracker capacity limits. */
    std::uint64_t droppedRecords = 0;
    std::vector<RankActivityRow> ranks;
    std::vector<IdleWave> waves;
    /**
     * Bounded per-rank render timeline: blocked intervals plus merged
     * comm spans, by begin time. Totals above are exact even when the
     * timeline is truncated (timelineDropped counts the cut spans).
     */
    std::vector<std::vector<obs::RankInterval>> timeline;
    std::size_t timelineDropped = 0;
    /** Idle fraction per rank per analysis window (ranks x windows). */
    std::vector<std::vector<double>> idleWindows;
    /** Width of one idle-fraction window (us). */
    double windowUs = 0.0;
};

/** Network weather of one directed link (ranked by utilization). */
struct LinkWeatherRow
{
    int node = 0;    ///< router whose outgoing lane this is
    int toNode = -1; ///< neighbor the link feeds (-1 = local inject)
    int dir = 0;     ///< 0..3 = E/W/N/S, obs::kLinkInject = injection
    int vc = 0;
    double utilization = 0.0;
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    /** Head-of-line blocking: acquires that waited, and for how long. */
    std::uint64_t stalls = 0;
    double stallUs = 0.0;
    /** Time-weighted mean queue depth (worms waiting for the lane). */
    double meanQueueDepth = 0.0;
    int peakBacklog = 0;
    /** Utilization >= hotspot threshold and sustained across windows. */
    bool hotspot = false;
    /** Fraction of run windows with busy fraction >= fleet median. */
    double sustainedFraction = 0.0;
    /** Busy fraction per analysis window (sparkline source). */
    std::vector<double> sparkline;
};

/** Forwarding totals of one router (ranked by forwards). */
struct RouterLoadRow
{
    int node = 0;
    std::uint64_t forwards = 0;
    std::uint64_t bytes = 0;
};

/**
 * Per-link utilization, hotspot and saturation analysis. Only
 * rendered (text, JSON, HTML) when enabled — reports without
 * --link-stats are unchanged.
 */
struct LinkWeatherSummary
{
    /** True when the run was tracked with --link-stats. */
    bool enabled = false;
    /** Analysis horizon: end of the tracked run (us). */
    double runEndUs = 0.0;
    /** Tracked channel lanes (idle ones included). */
    int totalLinks = 0;
    /** Tracked injection ports. */
    int injectionLinks = 0;
    /** Ranked links beyond the top-N bound (logged, not silent). */
    int elidedLinks = 0;
    /** Channel-lane utilization aggregates (injection excluded). */
    double avgUtilization = 0.0;
    double maxUtilization = 0.0;
    double medianUtilization = 0.0;
    /** Load-imbalance Gini coefficient across channel lanes. */
    double gini = 0.0;
    int hotspotCount = 0;
    std::uint64_t holStalls = 0;
    double holStallUs = 0.0;
    std::uint64_t offeredBytes = 0;
    std::uint64_t deliveredBytes = 0;
    /** Offered load (bytes/us) at the congestion knee; 0 = none. */
    double congestionOnsetLoad = 0.0;
    /** Start of the earliest congested window (us); < 0 = none. */
    double congestionOnsetUs = -1.0;
    /** Detected phase containing the onset, or -1. */
    int congestionPhase = -1;
    /** Width of one analysis window (us). */
    double windowUs = 0.0;
    /** Facts lost to tracker capacity limits. */
    std::uint64_t droppedFacts = 0;
    /** Top-N links by utilization (see elidedLinks). */
    std::vector<LinkWeatherRow> links;
    /** Top-N routers by forwards. */
    std::vector<RouterLoadRow> routers;
    /**
     * Utilization per direction per node (4 x nodes; max over VCs,
     * -1 where the topology has no such link) — HTML heatmap source.
     */
    std::vector<std::vector<double>> dirUtil;
    /** Offered / delivered throughput per window (bytes/us). */
    std::vector<double> offeredSeries;
    std::vector<double> deliveredSeries;
};

/**
 * Per-attribute divergence of a synthetic replay against the model it
 * was generated from — the closed loop of the methodology: the
 * re-characterized synthetic run is compared attribute by attribute
 * (temporal / spatial / volume) with the distributions that drove it.
 * Only rendered (text, JSON, HTML) when enabled — reports produced by
 * `characterize` are unchanged.
 */
struct SynthesisFidelity
{
    /** True when the report describes a `cchar synth` replay. */
    bool enabled = false;
    /** Model provenance: file path, or "report" for --synthetic. */
    std::string modelSource;
    /** Application named by the originating characterization. */
    std::string modelApplication;
    /** Proc count of the originating characterization. */
    int modelProcs = 0;
    /** Topology tiles replicated by --scale-procs (1 = unscaled). */
    int scaleTiles = 1;
    /** Message-budget multiplier applied to the model counts. */
    double messageScale = 1.0;
    /** Generator seed of the replay. */
    std::uint64_t seed = 0;
    /** Synthetic messages delivered through the mesh. */
    std::size_t syntheticMessages = 0;
    /**
     * Temporal attribute: message-count-weighted mean KS distance of
     * each source's observed inter-arrival sample against the
     * distribution that generated it.
     */
    double temporalKs = 1.0;
    /** Sources that contributed a temporal KS term. */
    std::size_t temporalSources = 0;
    /**
     * Spatial attribute: sup CDF distance (destination-index order)
     * between the model's expected aggregate destination PMF and the
     * observed synthetic one.
     */
    double spatialKs = 1.0;
    /**
     * Volume attribute: sup CDF distance (byte-size order) between
     * the model length PMF and the observed synthetic one.
     */
    double volumeKs = 1.0;

    /** Worst attribute divergence — the number the golden suite gates. */
    double
    maxKs() const
    {
        double m = temporalKs;
        if (spatialKs > m)
            m = spatialKs;
        if (volumeKs > m)
            m = volumeKs;
        return m;
    }
};

/** Acquisition strategy used for the run. */
enum class Strategy
{
    Dynamic, ///< execution-driven CC-NUMA (SPASM substitute)
    Static,  ///< trace from the MP runtime replayed into the mesh
};

std::string toString(Strategy strategy);

/** Full characterization of one application run. */
struct CharacterizationReport
{
    std::string application;
    Strategy strategy = Strategy::Dynamic;
    int nprocs = 0;
    mesh::MeshConfig mesh;
    /** Result of the application's self-verification. */
    bool verified = false;

    TemporalFit temporalAggregate;
    std::vector<TemporalFit> temporalPerSource;
    std::vector<SpatialFit> spatialPerSource;
    /** Attribute breakdown per message class (control/data/sync). */
    struct KindBreakdown
    {
        trace::MessageKind kind;
        VolumeCharacterization volume;
        TemporalFit temporal;
    };
    std::vector<KindBreakdown> perKind;
    /** Structured global pattern explanation (ring/butterfly/...). */
    StructuredPatternMatch structured;
    /** Destination distribution aggregated over sources. */
    stats::SpatialClassification spatialAggregate;
    /** Fraction of traffic at each hop distance (index = hops). */
    std::vector<double> hopDistancePmf;
    VolumeCharacterization volume;
    NetworkSummary network;
    /** Detected execution phases (empty if detection was disabled). */
    std::vector<PhaseCharacterization> phases;
    /** Fault activity and recovery (rendered only when enabled). */
    ResilienceSummary resilience;
    /** Per-rank activity and desync (rendered only when enabled). */
    RankActivitySummary rankActivity;
    /** Per-link network weather (rendered only when enabled). */
    LinkWeatherSummary linkStats;
    /** Model-replay divergence (rendered only for `synth` runs). */
    SynthesisFidelity synthFidelity;

    /** Paper-style multi-section text rendering. */
    void print(std::ostream &os) const;

    /** One summary row: app, msgs, rate, fit, pattern. */
    std::string summaryRow() const;

    /** Machine-readable JSON rendering (all attributes and fits). */
    void writeJson(std::ostream &os) const;
};

} // namespace cchar::core

#endif // CCHAR_CORE_REPORT_HH
