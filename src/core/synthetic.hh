/**
 * @file
 * Synthetic traffic generation from fitted characterizations — the
 * paper's end goal: "These distributions can be used in the analysis
 * of ICNs for developing realistic performance models."
 *
 * A SyntheticModel captures, per source, the fitted inter-arrival
 * distribution and the fitted destination distribution, plus the
 * global message-length PMF. The generator drives the same 2-D mesh
 * simulator with this model, and the validator compares the resulting
 * network behaviour against the original application-driven run —
 * closing the methodology loop.
 */

#ifndef CCHAR_CORE_SYNTHETIC_HH
#define CCHAR_CORE_SYNTHETIC_HH

#include <memory>
#include <vector>

#include "replay.hh"
#include "report.hh"

namespace cchar::core {

/** Distribution-level description of one application's traffic. */
struct SyntheticModel
{
    struct SourceModel
    {
        int source = 0;
        /** Fitted inter-arrival time distribution. */
        std::unique_ptr<stats::Distribution> interArrival;
        /** Fitted destination PMF. */
        stats::DiscretePmf destination;
        /** Messages this source injects. */
        std::size_t messageCount = 0;
    };

    mesh::MeshConfig mesh;
    int nprocs = 0;
    std::vector<SourceModel> sources;
    /** Global message-length PMF (bytes, probability). */
    std::vector<std::pair<int, double>> lengthPmf;

    /**
     * Build the model from a characterization report: per-source
     * temporal fits where available (aggregate fit otherwise), the
     * classified spatial model per source, and the observed length
     * PMF.
     */
    static SyntheticModel fromReport(const CharacterizationReport &report);
};

/** Drives a mesh with synthetic traffic drawn from a model. */
class SyntheticTrafficGenerator
{
  public:
    /**
     * Generate each source's messageCount messages (open-loop
     * injection at fitted inter-arrival times) and return the
     * resulting network log and statistics.
     *
     * @param time_scale Multiplier on every inter-arrival gap:
     *        values < 1 increase the offered load (load sweeps),
     *        1.0 reproduces the fitted rate.
     * @param max_outstanding Per-source cap on in-flight messages
     *        (0 = unbounded open loop). Fitted marginal distributions
     *        lose the original traffic's correlation structure; for
     *        very bursty applications an unbounded open loop piles up
     *        unboundedly deep queues that the real (feedback-limited)
     *        execution never formed. A small cap models the finite
     *        network-interface buffering of a real node.
     */
    static DriveResult run(const SyntheticModel &model,
                           std::uint64_t seed = 42,
                           double time_scale = 1.0,
                           int max_outstanding = 0);
};

/** Original-vs-synthetic comparison of network behaviour. */
struct ValidationResult
{
    double originalLatencyMean = 0.0;
    double syntheticLatencyMean = 0.0;
    double originalContentionMean = 0.0;
    double syntheticContentionMean = 0.0;
    double originalAvgUtilization = 0.0;
    double syntheticAvgUtilization = 0.0;

    double
    latencyError() const
    {
        return originalLatencyMean != 0.0
                   ? (syntheticLatencyMean - originalLatencyMean) /
                         originalLatencyMean
                   : 0.0;
    }
};

/**
 * Run the synthetic model derived from `report` and compare the
 * network behaviour with the original run recorded in `report`.
 *
 * @param max_outstanding see SyntheticTrafficGenerator::run.
 */
ValidationResult validateModel(const CharacterizationReport &report,
                               std::uint64_t seed = 42,
                               int max_outstanding = 0);

} // namespace cchar::core

#endif // CCHAR_CORE_SYNTHETIC_HH
