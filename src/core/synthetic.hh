/**
 * @file
 * Synthetic traffic generation from fitted characterizations — the
 * paper's end goal: "These distributions can be used in the analysis
 * of ICNs for developing realistic performance models."
 *
 * A SyntheticModel captures, per source, the fitted inter-arrival
 * distribution and the fitted destination distribution, plus the
 * global message-length PMF and (when phase detection ran) the phase
 * schedule. Models come from two places:
 *
 *  - fromReport: directly from an in-memory CharacterizationReport
 *    (the legacy `--synthetic` validation path);
 *  - fromJson / fromJsonFile: from a characterization JSON document
 *    written by `cchar characterize --json` — the `cchar synth`
 *    replay path. The report JSON *is* the model format; there is no
 *    second schema to keep in sync.
 *
 * A loaded model can be re-projected onto a larger machine with
 * scaleTo (topology tiling + message-budget scaling), so a 16-process
 * characterization can drive a 64-node mesh with millions of
 * messages. The generator drives the same 2-D mesh simulator with the
 * model, and computeSynthFidelity closes the methodology loop by
 * measuring the per-attribute KS divergence between the model and the
 * re-characterized synthetic run.
 */

#ifndef CCHAR_CORE_SYNTHETIC_HH
#define CCHAR_CORE_SYNTHETIC_HH

#include <memory>
#include <string>
#include <vector>

#include "replay.hh"
#include "report.hh"

namespace cchar::core {

/** Distribution-level description of one application's traffic. */
struct SyntheticModel
{
    struct SourceModel
    {
        int source = 0;
        /** Fitted inter-arrival time distribution. */
        std::unique_ptr<stats::Distribution> interArrival;
        /** Fitted destination PMF. */
        stats::DiscretePmf destination;
        /** Messages this source injects. */
        std::size_t messageCount = 0;
    };

    /**
     * One detected execution phase of the originating run. During
     * generation (SynthRunOptions::usePhases) every source's drawn
     * gap is multiplied by the gapScale of the phase containing the
     * current simulation time, so the replay reproduces the run's
     * alternation of fast and slow communication regimes on top of
     * the whole-run marginal fits.
     */
    struct PhaseModel
    {
        int index = 0;
        double tBegin = 0.0;
        double tEnd = 0.0;
        std::size_t messageCount = 0;
        /** Aggregate injection rate inside the phase (msgs/us). */
        double injectionRate = 0.0;
        /**
         * globalRate / injectionRate: < 1 compresses gaps inside a
         * hot phase, > 1 stretches them in a quiet one. 1.0 when
         * either rate is degenerate.
         */
        double gapScale = 1.0;
    };

    mesh::MeshConfig mesh;
    int nprocs = 0;
    /** Application named by the originating characterization. */
    std::string application;
    std::vector<SourceModel> sources;
    /** Phase schedule (empty when phase detection did not run). */
    std::vector<PhaseModel> phases;
    /** Global message-length PMF (bytes, probability). */
    std::vector<std::pair<int, double>> lengthPmf;

    /**
     * Build the model from a characterization report: per-source
     * temporal fits where available (aggregate fit otherwise), the
     * classified spatial model per source, and the observed length
     * PMF.
     */
    static SyntheticModel fromReport(const CharacterizationReport &report);

    /**
     * Parse a characterization JSON document (the `--json` output of
     * `cchar characterize`) into a model. Every malformed or
     * semantically invalid input throws CCharError(ParseError) whose
     * message names the offending field; nothing ever aborts.
     */
    static SyntheticModel fromJson(const std::string &text);

    /** fromJson over a file; missing file throws CCharError(IoError). */
    static SyntheticModel fromJsonFile(const std::string &path);

    /** Sum of the per-source message counts. */
    std::size_t totalMessages() const;

    /** Deep copy (SourceModel owns its distribution). */
    SyntheticModel clone() const;

    /**
     * Re-project the model onto a larger machine.
     *
     * @param target_procs  Total node count of the scaled topology;
     *        must be a positive multiple of mesh.nodes() (the original
     *        board is replicated as near-square tiles, and every
     *        source's destination PMF is remapped into its own tile so
     *        the hop-distance structure is preserved). 0 keeps the
     *        original topology.
     * @param target_messages  Total message budget, distributed over
     *        the tiled sources proportionally to their original
     *        counts. 0 keeps the per-source counts of every clone
     *        (total grows with the tile count).
     * @throws CCharError(UsageError) when target_procs is not a
     *         multiple of the model's node count.
     */
    SyntheticModel scaleTo(int target_procs,
                           std::size_t target_messages) const;
};

/** Knobs of one synthetic generation run. */
struct SynthRunOptions
{
    std::uint64_t seed = 42;
    /**
     * Multiplier on every inter-arrival gap: values < 1 increase the
     * offered load (load sweeps), 1.0 reproduces the fitted rate.
     */
    double timeScale = 1.0;
    /**
     * Per-source cap on in-flight messages (0 = unbounded open loop).
     * Fitted marginal distributions lose the original traffic's
     * correlation structure; for very bursty applications an unbounded
     * open loop piles up unboundedly deep queues that the real
     * (feedback-limited) execution never formed. A small cap models
     * the finite network-interface buffering of a real node.
     */
    int maxOutstanding = 0;
    /**
     * Modulate gaps by the model's phase schedule (see PhaseModel).
     * Off by default: a run without phases is byte-identical to the
     * pre-phase generator.
     */
    bool usePhases = false;
};

/** Drives a mesh with synthetic traffic drawn from a model. */
class SyntheticTrafficGenerator
{
  public:
    /**
     * Generate each source's messageCount messages (open-loop
     * injection at fitted inter-arrival times) and return the
     * resulting network log and statistics. Deterministic: the same
     * model and options produce a byte-identical log.
     */
    static DriveResult run(const SyntheticModel &model,
                           const SynthRunOptions &opts);

    /** Positional legacy form of run (see SynthRunOptions). */
    static DriveResult run(const SyntheticModel &model,
                           std::uint64_t seed = 42,
                           double time_scale = 1.0,
                           int max_outstanding = 0);
};

/**
 * Close the characterization loop: compare the traffic a synthetic run
 * actually produced (its network log) against the model that drove it,
 * one KS distance per attribute. Provenance fields (modelSource, seed,
 * scaleTiles, messageScale) are left for the caller to fill.
 */
SynthesisFidelity computeSynthFidelity(const SyntheticModel &model,
                                       const trace::TrafficLog &log);

/** Original-vs-synthetic comparison of network behaviour. */
struct ValidationResult
{
    double originalLatencyMean = 0.0;
    double syntheticLatencyMean = 0.0;
    double originalContentionMean = 0.0;
    double syntheticContentionMean = 0.0;
    double originalAvgUtilization = 0.0;
    double syntheticAvgUtilization = 0.0;

    double
    latencyError() const
    {
        return originalLatencyMean != 0.0
                   ? (syntheticLatencyMean - originalLatencyMean) /
                         originalLatencyMean
                   : 0.0;
    }
};

/**
 * Run the synthetic model derived from `report` and compare the
 * network behaviour with the original run recorded in `report`.
 *
 * @param max_outstanding see SynthRunOptions.
 */
ValidationResult validateModel(const CharacterizationReport &report,
                               std::uint64_t seed = 42,
                               int max_outstanding = 0);

} // namespace cchar::core

#endif // CCHAR_CORE_SYNTHETIC_HH
