#include "analytic.hh"

#include <algorithm>
#include <cmath>

namespace cchar::core {

namespace {

enum Direction { East = 0, West = 1, North = 2, South = 3 };

/** Per-source rate (msg/us) from the fitted temporal attribute. */
std::vector<double>
sourceRates(const CharacterizationReport &report)
{
    std::vector<double> rates(static_cast<std::size_t>(report.nprocs),
                              0.0);
    // Rate per source: messages / makespan (robust even when a
    // per-source fit is unavailable).
    double makespan = report.network.makespan;
    if (makespan <= 0.0)
        return rates;
    for (int src = 0; src < report.nprocs; ++src) {
        rates[static_cast<std::size_t>(src)] =
            report.volume.perSourceCounts[static_cast<std::size_t>(src)] /
            makespan;
    }
    return rates;
}

/** Walk the XY route, invoking fn(channelIndex) per hop. */
template <typename Fn>
void
walkRoute(const mesh::MeshConfig &mesh, int src, int dst, Fn &&fn)
{
    int x = src % mesh.width, y = src / mesh.width;
    int dx = dst % mesh.width, dy = dst / mesh.width;
    while (x != dx) {
        int node = y * mesh.width + x;
        if (dx > x) {
            fn(node * 4 + East);
            ++x;
        } else {
            fn(node * 4 + West);
            --x;
        }
    }
    while (y != dy) {
        int node = y * mesh.width + x;
        if (dy > y) {
            fn(node * 4 + North);
            ++y;
        } else {
            fn(node * 4 + South);
            --y;
        }
    }
}

/** First two moments of the channel service time (per message). */
void
serviceMoments(const CharacterizationReport &report, double &mean,
               double &second)
{
    // A message holds a channel for the header hop delay plus the
    // body serialization (FullPipeline holding makes the per-channel
    // occupancy approximately the downstream drain time; we use the
    // single-hop service as the M/G/1 service and let the per-hop sum
    // capture the path).
    const mesh::MeshConfig &mesh = report.mesh;
    mean = 0.0;
    second = 0.0;
    for (const auto &[bytes, prob] : report.volume.lengthPmf) {
        int flits = 1 + (bytes + mesh.flitBytes - 1) / mesh.flitBytes;
        double s = mesh.routerDelay +
                   static_cast<double>(flits) * mesh.flitTime;
        mean += prob * s;
        second += prob * s * s;
    }
}

} // namespace

std::vector<double>
AnalyticMeshModel::channelLoads(const CharacterizationReport &report,
                                double load_factor)
{
    const mesh::MeshConfig &mesh = report.mesh;
    std::vector<double> loads(
        static_cast<std::size_t>(mesh.nodes()) * 4, 0.0);
    auto rates = sourceRates(report);
    for (const auto &spatial : report.spatialPerSource) {
        int src = spatial.source;
        double rate =
            rates[static_cast<std::size_t>(src)] * load_factor;
        if (rate <= 0.0)
            continue;
        const auto &pmf = spatial.classification.model;
        for (std::size_t dst = 0; dst < pmf.size(); ++dst) {
            double p = pmf[dst];
            if (p <= 0.0 || static_cast<int>(dst) == src)
                continue;
            walkRoute(mesh, src, static_cast<int>(dst),
                      [&](int ch) {
                          loads[static_cast<std::size_t>(ch)] +=
                              rate * p;
                      });
        }
    }
    return loads;
}

AnalyticPrediction
AnalyticMeshModel::evaluate(const CharacterizationReport &report,
                            double load_factor)
{
    AnalyticPrediction out;
    const mesh::MeshConfig &mesh = report.mesh;
    if (report.nprocs <= 1 || report.volume.messageCount == 0)
        return out;

    double sMean = 0.0, sSecond = 0.0;
    serviceMoments(report, sMean, sSecond);
    if (sMean <= 0.0)
        return out;

    // Arrival burstiness from the fitted aggregate process.
    double cva2 = 1.0;
    {
        double cv = report.temporalAggregate.stats.cv;
        if (cv > 0.0)
            cva2 = cv * cv;
    }

    auto loads = channelLoads(report, load_factor);

    // Per-channel waiting times (M/G/1 with a burstiness correction;
    // reduces to Pollaczek-Khinchine for CV_a = 1).
    std::vector<double> wait(loads.size(), 0.0);
    double utilSum = 0.0;
    int utilCount = 0;
    for (std::size_t ch = 0; ch < loads.size(); ++ch) {
        double lambda = loads[ch];
        if (lambda <= 0.0)
            continue;
        double rho = lambda * sMean;
        utilSum += std::min(rho, 1.0);
        ++utilCount;
        out.maxChannelUtilization =
            std::max(out.maxChannelUtilization, rho);
        if (rho >= 1.0) {
            out.stable = false;
            wait[ch] = 1e6; // saturated channel sentinel
            continue;
        }
        double pk = lambda * sSecond / (2.0 * (1.0 - rho));
        wait[ch] = pk * (cva2 + 1.0) / 2.0;
    }
    out.avgChannelUtilization =
        utilCount ? utilSum / static_cast<double>(utilCount) : 0.0;

    // Route-weighted mean latency.
    auto rates = sourceRates(report);
    double totalRate = 0.0, accLatency = 0.0, accWait = 0.0;
    for (const auto &spatial : report.spatialPerSource) {
        int src = spatial.source;
        double rate =
            rates[static_cast<std::size_t>(src)] * load_factor;
        if (rate <= 0.0)
            continue;
        const auto &pmf = spatial.classification.model;
        for (std::size_t dst = 0; dst < pmf.size(); ++dst) {
            double p = pmf[dst];
            if (p <= 0.0 || static_cast<int>(dst) == src)
                continue;
            double flowRate = rate * p;
            int hops = 0;
            double w = 0.0;
            walkRoute(mesh, src, static_cast<int>(dst), [&](int ch) {
                ++hops;
                w += wait[static_cast<std::size_t>(ch)];
            });
            // No-load part: header per hop + mean body drain.
            double body = sMean - mesh.routerDelay;
            double noLoad =
                static_cast<double>(hops) * mesh.routerDelay + body;
            accLatency += flowRate * (noLoad + w);
            accWait += flowRate * w;
            totalRate += flowRate;
        }
    }
    if (totalRate > 0.0) {
        out.latencyMean = accLatency / totalRate;
        out.contentionMean = accWait / totalRate;
    }
    return out;
}

} // namespace cchar::core
