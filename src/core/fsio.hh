/**
 * @file
 * Crash-safe file output helpers.
 *
 * Every report the tool chain produces (aggregate sweep JSON/CSV,
 * metrics exports, Chrome traces, HTML run reports) used to be
 * written straight through an ofstream: a crash or SIGKILL mid-write
 * left a truncated, half-valid document at the destination path — the
 * worst failure mode for files whose consumers byte-compare or
 * json.load them.
 *
 * AtomicFileWriter gives every such output the standard
 * write-to-temp-then-rename discipline:
 *
 *   1. all bytes go to `<path>.tmp` in the destination directory;
 *   2. commit() flushes, fsyncs and closes the temp file, then
 *      renames it over `<path>` (rename(2) is atomic on POSIX for
 *      paths on one filesystem — which `<path>.tmp` guarantees);
 *   3. a destructor without commit() (exception unwind, early
 *      return) deletes the temp file and leaves any previous
 *      `<path>` untouched.
 *
 * So at every instant the destination either holds the complete old
 * document or the complete new one, never a prefix of either.
 *
 * Header-only, like status.hh, so the CLI and lower layers can use
 * it without new link-time dependencies.
 */

#ifndef CCHAR_CORE_FSIO_HH
#define CCHAR_CORE_FSIO_HH

#include <cstdio>
#include <fstream>
#include <string>

#ifdef _WIN32
#else
#include <fcntl.h>
#include <unistd.h>
#endif

#include "status.hh"

namespace cchar::core {

namespace detail {

/** Best-effort fsync of a path (no-op where unsupported). */
inline void
fsyncPath(const std::string &path)
{
#ifndef _WIN32
    int fd = ::open(path.c_str(), O_WRONLY);
    if (fd >= 0) {
        (void)::fsync(fd);
        (void)::close(fd);
    }
#else
    (void)path;
#endif
}

} // namespace detail

/**
 * Write-to-temp-then-rename file writer. Usage:
 *
 *   core::AtomicFileWriter out{path, "sweep"};
 *   result.writeJson(out.stream());
 *   out.commit();
 *
 * Throws CCharError(IoError) when the temp file cannot be opened,
 * written, or renamed into place.
 */
class AtomicFileWriter
{
  public:
    /**
     * @param path    Final destination path.
     * @param context Error-message prefix ("sweep", "cchar"...).
     */
    explicit AtomicFileWriter(std::string path,
                              std::string context = "cchar")
        : path_(std::move(path)), tmp_(path_ + ".tmp"),
          context_(std::move(context)), out_(tmp_, std::ios::binary)
    {
        if (!out_) {
            throw CCharError(StatusCode::IoError,
                             context_ + ": cannot write '" + path_ +
                                 "'");
        }
    }

    AtomicFileWriter(const AtomicFileWriter &) = delete;
    AtomicFileWriter &operator=(const AtomicFileWriter &) = delete;

    ~AtomicFileWriter()
    {
        if (!committed_) {
            out_.close();
            (void)std::remove(tmp_.c_str());
        }
    }

    /** The stream to write the document to. */
    std::ostream &stream() { return out_; }

    /**
     * Flush, fsync, and atomically rename the temp file over the
     * destination. After commit() the writer is inert.
     * @throws CCharError(IoError) on any failure (the temp file is
     *         removed; a previous destination file is untouched).
     */
    void
    commit()
    {
        if (committed_)
            return;
        out_.flush();
        bool ok = static_cast<bool>(out_);
        out_.close();
        if (ok)
            detail::fsyncPath(tmp_);
        if (!ok || std::rename(tmp_.c_str(), path_.c_str()) != 0) {
            (void)std::remove(tmp_.c_str());
            throw CCharError(StatusCode::IoError,
                             context_ + ": cannot write '" + path_ +
                                 "'");
        }
        committed_ = true;
    }

  private:
    std::string path_;
    std::string tmp_;
    std::string context_;
    std::ofstream out_;
    bool committed_ = false;
};

} // namespace cchar::core

#endif // CCHAR_CORE_FSIO_HH
