/**
 * @file
 * Restricted JSON scanner shared by the small config-style parsers.
 *
 * The project deliberately takes no external JSON dependency; the few
 * inputs that accept JSON (fault plans, sweep specs) use a restricted
 * schema — objects, arrays, strings, numbers, booleans — and parse it
 * with this scanner. Every malformed document becomes a
 * CCharError(ParseError) whose message carries the caller's context
 * prefix, so the CLI maps it onto the documented input-error exit
 * code instead of aborting.
 */

#ifndef CCHAR_CORE_JSONSCAN_HH
#define CCHAR_CORE_JSONSCAN_HH

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "status.hh"

namespace cchar::core {

/** Recursive-descent token reader over a JSON document. */
class JsonScanner
{
  public:
    /**
     * @param text    The document (must outlive the scanner).
     * @param context Error-message prefix ("fault plan", ...).
     */
    JsonScanner(const std::string &text, std::string context)
        : text_(text), context_(std::move(context))
    {}

    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw CCharError(StatusCode::ParseError,
                         context_ + ": " + what);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of JSON");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string{"expected '"} + c + "' in JSON");
        ++pos_;
    }

    bool
    consumeIf(char c)
    {
        if (pos_ < text_.size() && peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    std::string
    readString()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size())
                    fail("bad escape in JSON string");
                char esc = text_[pos_++];
                // Decode the standard single-character escapes so a
                // string written by a conforming serializer (e.g. the
                // sweep job journal, whose error messages carry
                // newlines) round-trips exactly; unrecognized escapes
                // keep the escaped character verbatim, preserving the
                // scanner's historical tolerance.
                switch (esc) {
                case 'n':
                    out += '\n';
                    break;
                case 't':
                    out += '\t';
                    break;
                case 'r':
                    out += '\r';
                    break;
                case 'b':
                    out += '\b';
                    break;
                case 'f':
                    out += '\f';
                    break;
                default:
                    out += esc;
                }
            } else {
                out += c;
            }
        }
        if (pos_ >= text_.size())
            fail("unterminated JSON string");
        ++pos_; // closing quote
        return out;
    }

    /**
     * Exact unsigned 64-bit integer. readNumber() goes through a
     * double and silently loses precision past 2^53, which is not
     * acceptable for event counters round-tripping through the sweep
     * job journal.
     */
    std::uint64_t
    readUInt()
    {
        skipWs();
        if (pos_ >= text_.size() ||
            !std::isdigit(static_cast<unsigned char>(text_[pos_])))
            fail("expected JSON unsigned integer");
        const char *begin = text_.c_str() + pos_;
        char *end = nullptr;
        unsigned long long v = std::strtoull(begin, &end, 10);
        pos_ += static_cast<std::size_t>(end - begin);
        return static_cast<std::uint64_t>(v);
    }

    double
    readNumber()
    {
        skipWs();
        const char *begin = text_.c_str() + pos_;
        char *end = nullptr;
        double v = std::strtod(begin, &end);
        if (end == begin)
            fail("bad JSON number");
        pos_ += static_cast<std::size_t>(end - begin);
        return v;
    }

    bool
    readBool()
    {
        skipWs();
        if (text_.compare(pos_, 4, "true") == 0) {
            pos_ += 4;
            return true;
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
            return false;
        }
        fail("expected JSON boolean");
    }

    bool
    atEnd()
    {
        skipWs();
        return pos_ >= text_.size();
    }

  private:
    const std::string &text_;
    std::string context_;
    std::size_t pos_ = 0;
};

} // namespace cchar::core

#endif // CCHAR_CORE_JSONSCAN_HH
