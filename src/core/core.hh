/**
 * @file
 * Umbrella header for the characterization methodology core.
 */

#ifndef CCHAR_CORE_CORE_HH
#define CCHAR_CORE_CORE_HH

#include "analytic.hh"
#include "analyzers.hh"
#include "fsio.hh"
#include "patterns.hh"
#include "pipeline.hh"
#include "replay.hh"
#include "report.hh"
#include "report_html.hh"
#include "status.hh"
#include "synthetic.hh"
#include "telemetry.hh"

#endif // CCHAR_CORE_CORE_HH
