#include "replay.hh"

#include <sstream>
#include <stdexcept>

#include "core/status.hh"
#include "desim/desim.hh"
#include "telemetry.hh"

namespace cchar::core {

namespace {

/** Source-side retry tallies shared by all replay processes. */
struct ReplayResilience
{
    std::uint64_t retransmits = 0;
    std::uint64_t deliveryFailures = 0;
};

desim::Task<void>
sourceProcess(mesh::MeshNetwork *net, std::vector<trace::TraceEvent> evs,
              bool blocking, obs::Counter msgCtr, obs::Histogram lagHist,
              const fault::RetryConfig *retry, ReplayResilience *res)
{
    // The pure trace clock: where this source would be if only its
    // recorded compute gaps were charged. The replay clock trails it
    // by the cumulative network drain time — the "replay lag".
    double traceClock = 0.0;
    for (const auto &ev : evs) {
        co_await net->sim().delay(ev.sinceLast);
        traceClock += ev.sinceLast;
        msgCtr.add(1);
        lagHist.record(net->sim().now() - traceClock);
        mesh::Packet pkt;
        pkt.src = ev.src;
        pkt.dst = ev.dst;
        pkt.bytes = ev.bytes;
        pkt.kind = ev.kind;
        if (!blocking) {
            net->post(std::move(pkt));
            continue;
        }
        if (!retry) {
            (void)co_await net->transfer(std::move(pkt));
            continue;
        }
        // Source-driven reliability: a blocking transfer reports its
        // own outcome, so a transport-level nack suffices — no acks.
        double backoff = retry->ackTimeoutUs;
        for (int attempt = 1;; ++attempt) {
            trace::MessageRecord rec = co_await net->transfer(pkt);
            if (rec.delivered && !rec.corrupted)
                break;
            if (!retry->unbounded() && attempt >= retry->maxAttempts) {
                ++res->deliveryFailures;
                std::ostringstream os;
                os << "replay: delivery failure " << ev.src << "->"
                   << ev.dst << " bytes=" << ev.bytes << " after "
                   << attempt << " attempts";
                reportDiagnostic(DiagSeverity::Error, os.str());
                break;
            }
            ++res->retransmits;
            co_await net->sim().delay(backoff);
            backoff *= retry->backoffFactor;
        }
    }
}

/** Drain every packet delivered to a node (replay has no consumers). */
desim::Task<void>
sinkProcess(mesh::MeshNetwork *net, int node)
{
    for (;;)
        (void)co_await net->rxQueue(node).receive();
}

} // namespace

DriveResult
TraceReplayer::replay(const trace::Trace &trace,
                      const mesh::MeshConfig &mesh,
                      const ReplayOptions &opts)
{
    if (trace.nprocs() > mesh.width * mesh.height)
        throw std::invalid_argument("replay: trace does not fit on "
                                    "the mesh");
    obs::Counter msgCtr;
    obs::Histogram lagHist;
    if (obs::MetricsRegistry *reg = obs::metrics()) {
        msgCtr = reg->counter("replay.messages");
        lagHist = reg->histogram("replay.lag_us");
    }

    mesh::MeshConfig meshCfg = mesh;
    if (opts.faults)
        meshCfg.faults = opts.faults;
    const fault::RetryConfig *retry = nullptr;
    if (opts.faults && opts.blocking)
        retry = &opts.faults->plan().retry();

    DriveResult result;
    ReplayResilience resilience;
    desim::Simulator sim;
    mesh::MeshNetwork net{sim, meshCfg, &result.log};
    desim::Watchdog watchdog{sim, opts.watchdog};
    if (opts.enableWatchdog) {
        // Progress = delivered messages plus resolved delivery
        // failures: a bounded retry budget burning down on a hostile
        // plan is progress toward the accounted delivery-failure
        // exit, not livelock. Retries that never resolve (a
        // permanently down link under an unbounded budget) advance
        // neither term and still trip the watchdog.
        watchdog.setProgressProbe([&net, &resilience] {
            return net.messageCount() + resilience.deliveryFailures;
        });
        watchdog.arm();
    }
    if (opts.sampler && opts.samplePeriodUs > 0.0)
        attachNetworkTelemetry(sim, net, *opts.sampler,
                               opts.samplePeriodUs);
    for (int node = 0; node < mesh.width * mesh.height; ++node)
        sim.spawn(sinkProcess(&net, node), "sink");
    for (int src = 0; src < trace.nprocs(); ++src) {
        auto evs = trace.eventsOfSource(src);
        if (!evs.empty()) {
            sim.spawn(sourceProcess(&net, std::move(evs), opts.blocking,
                                    msgCtr, lagHist, retry, &resilience),
                      "replay-src-" + std::to_string(src));
        }
    }
    sim.run();

    result.makespan = result.log.lastDeliverTime();
    result.latencyMean = net.latencyStats().mean();
    result.latencyMax = net.latencyStats().max();
    result.contentionMean = net.contentionStats().mean();
    result.avgChannelUtilization =
        net.averageChannelUtilization(sim.now());
    result.maxChannelUtilization = net.maxChannelUtilization(sim.now());
    result.retransmits = resilience.retransmits;
    result.deliveryFailures = resilience.deliveryFailures;
    if (opts.faults) {
        result.droppedPackets = opts.faults->drops();
        result.corruptedPackets = opts.faults->corrupts();
        result.linkDrops = opts.faults->linkDrops();
    }
    return result;
}

DriveResult
TraceReplayer::replay(const trace::Trace &trace,
                      const mesh::MeshConfig &mesh, bool blocking,
                      obs::WindowedSampler *sampler, double samplePeriodUs)
{
    ReplayOptions opts;
    opts.blocking = blocking;
    opts.sampler = sampler;
    opts.samplePeriodUs = samplePeriodUs;
    return replay(trace, mesh, opts);
}

} // namespace cchar::core
