#include "replay.hh"

#include <stdexcept>

#include "desim/desim.hh"

namespace cchar::core {

namespace {

desim::Task<void>
sourceProcess(mesh::MeshNetwork *net, std::vector<trace::TraceEvent> evs,
              bool blocking)
{
    for (const auto &ev : evs) {
        co_await net->sim().delay(ev.sinceLast);
        mesh::Packet pkt;
        pkt.src = ev.src;
        pkt.dst = ev.dst;
        pkt.bytes = ev.bytes;
        pkt.kind = ev.kind;
        if (blocking)
            (void)co_await net->transfer(std::move(pkt));
        else
            net->post(std::move(pkt));
    }
}

/** Drain every packet delivered to a node (replay has no consumers). */
desim::Task<void>
sinkProcess(mesh::MeshNetwork *net, int node)
{
    for (;;)
        (void)co_await net->rxQueue(node).receive();
}

} // namespace

DriveResult
TraceReplayer::replay(const trace::Trace &trace,
                      const mesh::MeshConfig &mesh, bool blocking)
{
    if (trace.nprocs() > mesh.width * mesh.height)
        throw std::invalid_argument("replay: trace does not fit on "
                                    "the mesh");
    DriveResult result;
    desim::Simulator sim;
    mesh::MeshNetwork net{sim, mesh, &result.log};
    for (int node = 0; node < mesh.width * mesh.height; ++node)
        sim.spawn(sinkProcess(&net, node), "sink");
    for (int src = 0; src < trace.nprocs(); ++src) {
        auto evs = trace.eventsOfSource(src);
        if (!evs.empty()) {
            sim.spawn(sourceProcess(&net, std::move(evs), blocking),
                      "replay-src-" + std::to_string(src));
        }
    }
    sim.run();

    result.makespan = result.log.lastDeliverTime();
    result.latencyMean = net.latencyStats().mean();
    result.latencyMax = net.latencyStats().max();
    result.contentionMean = net.contentionStats().mean();
    result.avgChannelUtilization =
        net.averageChannelUtilization(sim.now());
    result.maxChannelUtilization = net.maxChannelUtilization(sim.now());
    return result;
}

} // namespace cchar::core
