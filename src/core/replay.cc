#include "replay.hh"

#include <stdexcept>

#include "desim/desim.hh"
#include "telemetry.hh"

namespace cchar::core {

namespace {

desim::Task<void>
sourceProcess(mesh::MeshNetwork *net, std::vector<trace::TraceEvent> evs,
              bool blocking, obs::Counter msgCtr, obs::Histogram lagHist)
{
    // The pure trace clock: where this source would be if only its
    // recorded compute gaps were charged. The replay clock trails it
    // by the cumulative network drain time — the "replay lag".
    double traceClock = 0.0;
    for (const auto &ev : evs) {
        co_await net->sim().delay(ev.sinceLast);
        traceClock += ev.sinceLast;
        msgCtr.add(1);
        lagHist.record(net->sim().now() - traceClock);
        mesh::Packet pkt;
        pkt.src = ev.src;
        pkt.dst = ev.dst;
        pkt.bytes = ev.bytes;
        pkt.kind = ev.kind;
        if (blocking)
            (void)co_await net->transfer(std::move(pkt));
        else
            net->post(std::move(pkt));
    }
}

/** Drain every packet delivered to a node (replay has no consumers). */
desim::Task<void>
sinkProcess(mesh::MeshNetwork *net, int node)
{
    for (;;)
        (void)co_await net->rxQueue(node).receive();
}

} // namespace

DriveResult
TraceReplayer::replay(const trace::Trace &trace,
                      const mesh::MeshConfig &mesh, bool blocking,
                      obs::WindowedSampler *sampler, double samplePeriodUs)
{
    if (trace.nprocs() > mesh.width * mesh.height)
        throw std::invalid_argument("replay: trace does not fit on "
                                    "the mesh");
    obs::Counter msgCtr;
    obs::Histogram lagHist;
    if (obs::MetricsRegistry *reg = obs::metrics()) {
        msgCtr = reg->counter("replay.messages");
        lagHist = reg->histogram("replay.lag_us");
    }

    DriveResult result;
    desim::Simulator sim;
    mesh::MeshNetwork net{sim, mesh, &result.log};
    if (sampler && samplePeriodUs > 0.0)
        attachNetworkTelemetry(sim, net, *sampler, samplePeriodUs);
    for (int node = 0; node < mesh.width * mesh.height; ++node)
        sim.spawn(sinkProcess(&net, node), "sink");
    for (int src = 0; src < trace.nprocs(); ++src) {
        auto evs = trace.eventsOfSource(src);
        if (!evs.empty()) {
            sim.spawn(sourceProcess(&net, std::move(evs), blocking,
                                    msgCtr, lagHist),
                      "replay-src-" + std::to_string(src));
        }
    }
    sim.run();

    result.makespan = result.log.lastDeliverTime();
    result.latencyMean = net.latencyStats().mean();
    result.latencyMax = net.latencyStats().max();
    result.contentionMean = net.contentionStats().mean();
    result.avgChannelUtilization =
        net.averageChannelUtilization(sim.now());
    result.maxChannelUtilization = net.maxChannelUtilization(sim.now());
    return result;
}

} // namespace cchar::core
