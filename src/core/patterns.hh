/**
 * @file
 * Structured traffic-pattern detection over the full source->destination
 * matrix.
 *
 * The per-source classifier (stats::SpatialClassifier) recognizes
 * uniform / bimodal-uniform / single-destination shapes. Many parallel
 * algorithms additionally induce *structured* global patterns that the
 * ICN literature models directly — ring shifts, butterfly/cube
 * (rank XOR mask), bit-reverse, transpose, and hot-spot convergence.
 * This analyzer tests the observed traffic matrix against each of
 * those generators and reports the best structural explanation, giving
 * the characterization a vocabulary matching classic synthetic
 * workloads.
 */

#ifndef CCHAR_CORE_PATTERNS_HH
#define CCHAR_CORE_PATTERNS_HH

#include <string>
#include <vector>

#include "trace/record.hh"

namespace cchar::core {

/** Structured global patterns tested against the traffic matrix. */
enum class StructuredPattern
{
    RingShift,   ///< dst = (src + k) mod P for a fixed k
    Butterfly,   ///< dst = src XOR m for a fixed mask m
    BitReverse,  ///< dst = bit-reverse(src) (P a power of two)
    Transpose,   ///< dst = transpose of src on the rank grid
    HotSpot,     ///< a single destination receives most traffic
    None,        ///< no structural generator explains the matrix
};

std::string toString(StructuredPattern pattern);

/** Outcome of the structural analysis. */
struct StructuredPatternMatch
{
    StructuredPattern pattern = StructuredPattern::None;
    /** Pattern parameter: shift k, XOR mask m, or hot node id. */
    int parameter = 0;
    /** Fraction of all messages explained by the generator. */
    double coverage = 0.0;
    /** Runner-up matches ordered by coverage. */
    std::vector<std::pair<StructuredPattern, double>> alternatives;

    std::string describe() const;
};

/** Detects structured global patterns in a traffic log. */
class StructuredPatternDetector
{
  public:
    struct Options
    {
        /** Minimum coverage to report a match. */
        double minCoverage = 0.5;
        /** Rank-grid width for the transpose test (0 = square). */
        int gridWidth = 0;
    };

    StructuredPatternDetector() : opts_(Options{}) {}
    explicit StructuredPatternDetector(Options opts) : opts_(opts) {}

    /** Analyze a log's src->dst message-count matrix. */
    StructuredPatternMatch analyze(const trace::TrafficLog &log) const;

    /** Analyze a raw P x P count matrix (row = source). */
    StructuredPatternMatch
    analyzeMatrix(const std::vector<std::vector<double>> &matrix) const;

  private:
    Options opts_;
};

/** Build the P x P message-count matrix of a log. */
std::vector<std::vector<double>>
trafficMatrix(const trace::TrafficLog &log);

} // namespace cchar::core

#endif // CCHAR_CORE_PATTERNS_HH
