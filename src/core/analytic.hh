/**
 * @file
 * Analytical wormhole-network performance model driven by fitted
 * characterizations.
 *
 * The paper's closing claim is that the fitted distributions "can be
 * used in the analysis of ICNs for developing realistic performance
 * models" (in the tradition of the mesh models of Adve & Vernon and
 * the wormhole models of Kim & Das it cites). This module provides
 * such a model: an open M/G/1-style queueing approximation of the
 * dimension-ordered wormhole mesh, parameterized entirely by a
 * CharacterizationReport —
 *
 *  - per-source message rates from the fitted inter-arrival means,
 *  - the squared coefficient of variation of the fitted arrival
 *    process (burstiness enters the waiting time),
 *  - per-source destination PMFs (the spatial attribute) routed with
 *    the same XY algorithm as the simulator to produce per-channel
 *    loads,
 *  - the message-length PMF for the channel service time.
 *
 * Per channel c: utilization rho_c = lambda_c * E[S]; mean wait by an
 * M/G/1 Pollaczek-Khinchine form with the arrival-process CV folded
 * in (an approximation, exact for Poisson arrivals):
 *
 *   W_c = rho_c * E[S] * (1 + CV_s^2) / (2 (1 - rho_c)) *
 *         (CV_a^2 + 1) / 2
 *
 * Message latency = no-load latency + sum of W_c along the route.
 * The model is compared against the event-driven simulator in
 * bench_analytic_model.
 */

#ifndef CCHAR_CORE_ANALYTIC_HH
#define CCHAR_CORE_ANALYTIC_HH

#include <vector>

#include "report.hh"

namespace cchar::core {

/** Outcome of the analytical evaluation. */
struct AnalyticPrediction
{
    /** Mean end-to-end message latency (us). */
    double latencyMean = 0.0;
    /** Mean queueing (contention) component (us). */
    double contentionMean = 0.0;
    /** Mean channel utilization over used channels. */
    double avgChannelUtilization = 0.0;
    /** Peak channel utilization. */
    double maxChannelUtilization = 0.0;
    /** True if every channel is stable (rho < 1). */
    bool stable = true;
};

/** M/G/1-style wormhole mesh model. */
class AnalyticMeshModel
{
  public:
    /**
     * Evaluate the model for the traffic described by `report`.
     *
     * @param load_factor Multiplier on every source rate (load
     *        sweeps); 1.0 evaluates the fitted operating point.
     */
    static AnalyticPrediction evaluate(const CharacterizationReport &report,
                                       double load_factor = 1.0);

    /**
     * Per-channel arrival rates (messages/us) implied by the spatial
     * attribute under XY routing. Index: node*4 + direction
     * (E=0, W=1, N=2, S=3). Exposed for tests.
     */
    static std::vector<double>
    channelLoads(const CharacterizationReport &report,
                 double load_factor = 1.0);
};

} // namespace cchar::core

#endif // CCHAR_CORE_ANALYTIC_HH
