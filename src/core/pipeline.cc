#include "pipeline.hh"

#include "telemetry.hh"

namespace cchar::core {

namespace {

double
averageHops(const trace::TrafficLog &log)
{
    if (log.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &rec : log.records())
        sum += rec.hops;
    return sum / static_cast<double>(log.size());
}

} // namespace

CharacterizationReport
CharacterizationPipeline::analyze(const trace::TrafficLog &log,
                                  const mesh::MeshConfig &mesh,
                                  const std::string &application,
                                  Strategy strategy,
                                  const NetworkSummary &network) const
{
    CharacterizationReport report;
    report.application = application;
    report.strategy = strategy;
    report.nprocs = log.nprocs();
    report.mesh = mesh;
    report.network = network;
    report.network.avgHops = averageHops(log);

    TemporalAnalyzer temporal{opts_.fitter};
    report.temporalAggregate = temporal.analyzeAggregate(log);
    if (opts_.perSource) {
        report.temporalPerSource =
            temporal.analyzeAllSources(log, opts_.minSamplesPerSource);
    }

    SpatialAnalyzer spatial{opts_.classifier};
    report.spatialPerSource = spatial.analyzeAllSources(log);
    report.spatialAggregate = spatial.analyzeAggregate(log);
    report.hopDistancePmf = SpatialAnalyzer::hopDistanceProfile(log, mesh);

    report.volume = VolumeAnalyzer{}.analyze(log);

    // Per-message-class breakdown and structured global pattern.
    for (trace::MessageKind kind :
         {trace::MessageKind::Data, trace::MessageKind::Control,
          trace::MessageKind::Sync}) {
        trace::TrafficLog sub = log.filterKind(kind);
        if (sub.empty())
            continue;
        CharacterizationReport::KindBreakdown kb;
        kb.kind = kind;
        kb.volume = VolumeAnalyzer{}.analyze(sub);
        kb.temporal = temporal.analyzeAggregate(sub);
        report.perKind.push_back(std::move(kb));
    }
    report.structured = StructuredPatternDetector{}.analyze(log);

    if (opts_.detectPhases) {
        PhaseAnalyzer phaser{opts_.phase, opts_.fitter,
                             opts_.classifier};
        report.phases = phaser.analyze(log);
    }
    return report;
}

CharacterizationReport
CharacterizationPipeline::runDynamic(apps::SharedMemoryApp &app,
                                     const ccnuma::MachineConfig &cfg) const
{
    desim::Simulator sim;
    ccnuma::Machine machine{sim, cfg};
    if (opts_.sampler && opts_.samplePeriodUs > 0.0) {
        attachNetworkTelemetry(sim, machine.network(), *opts_.sampler,
                               opts_.samplePeriodUs);
    }
    apps::launch(machine, app);
    machine.run();

    NetworkSummary net;
    net.latencyMean = machine.network().latencyStats().mean();
    net.latencyMax = machine.network().latencyStats().max();
    net.contentionMean = machine.network().contentionStats().mean();
    net.makespan = machine.log().lastDeliverTime();
    net.avgChannelUtilization =
        machine.network().averageChannelUtilization(sim.now());
    net.maxChannelUtilization =
        machine.network().maxChannelUtilization(sim.now());

    CharacterizationReport report = analyze(
        machine.log(), cfg.mesh, app.name(), Strategy::Dynamic, net);
    report.verified = app.verify();
    return report;
}

CharacterizationReport
CharacterizationPipeline::runStatic(apps::MessagePassingApp &app,
                                    const mp::MpConfig &cfg,
                                    trace::Trace *trace_out) const
{
    // Phase 1: execute on the SP2-model runtime, collecting the
    // application-level trace.
    desim::Simulator sim;
    mp::MpWorld world{sim, cfg};
    world.enableTracing();
    apps::launch(world, app);
    world.run();
    bool verified = app.verify();
    trace::Trace trace = world.collectedTrace();
    if (trace_out)
        *trace_out = trace;

    // Phase 2: intelligent replay into the 2-D mesh simulator.
    DriveResult replayed = TraceReplayer::replay(
        trace, cfg.mesh, true, opts_.sampler, opts_.samplePeriodUs);

    NetworkSummary net;
    net.latencyMean = replayed.latencyMean;
    net.latencyMax = replayed.latencyMax;
    net.contentionMean = replayed.contentionMean;
    net.makespan = replayed.makespan;
    net.avgChannelUtilization = replayed.avgChannelUtilization;
    net.maxChannelUtilization = replayed.maxChannelUtilization;

    CharacterizationReport report = analyze(
        replayed.log, cfg.mesh, app.name(), Strategy::Static, net);
    report.verified = verified;
    return report;
}

} // namespace cchar::core
