/**
 * @file
 * Trace replay into the 2-D mesh — the paper's static strategy.
 *
 * "These traces are then fed intelligently to our network simulator to
 * avoid the traditional pitfalls of trace-driven simulation. Since the
 * order of execution of events on our network simulator would be the
 * same as the order of execution on any machine, the event generator
 * does not have to be informed or stalled."
 *
 * One replay process per source preserves each source's event order
 * and re-applies the recorded compute gap ("time since the last
 * network activity at the source") between its messages, while the
 * network itself determines delivery times and contention.
 */

#ifndef CCHAR_CORE_REPLAY_HH
#define CCHAR_CORE_REPLAY_HH

#include "mesh/mesh.hh"
#include "obs/obs.hh"
#include "trace/record.hh"
#include "trace/trace.hh"

namespace cchar::core {

/** Outcome of driving the mesh with a message stream. */
struct DriveResult
{
    trace::TrafficLog log;
    double makespan = 0.0;
    double latencyMean = 0.0;
    double latencyMax = 0.0;
    double contentionMean = 0.0;
    double avgChannelUtilization = 0.0;
    double maxChannelUtilization = 0.0;
};

/** Replays application traces into a mesh network. */
class TraceReplayer
{
  public:
    /**
     * Replay a trace on a fresh mesh of the given configuration.
     *
     * When a metrics sink is installed (obs::setMetrics), the replay
     * records its lag behind the pure trace clock — the cumulative
     * network-drain time separating the replayed injection times from
     * the recorded compute gaps — in the "replay.lag_us" histogram.
     *
     * @param blocking If true (default), a source waits for each of
     *        its messages to drain before its next compute gap —
     *        preserving per-source dependences. If false, messages
     *        are injected open-loop (the ablation mode).
     * @param sampler Optional windowed telemetry sampler; when given,
     *        the standard network series are registered on it and it
     *        is driven every samplePeriodUs of simulated time.
     */
    static DriveResult replay(const trace::Trace &trace,
                              const mesh::MeshConfig &mesh,
                              bool blocking = true,
                              obs::WindowedSampler *sampler = nullptr,
                              double samplePeriodUs = 0.0);
};

} // namespace cchar::core

#endif // CCHAR_CORE_REPLAY_HH
