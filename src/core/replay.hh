/**
 * @file
 * Trace replay into the 2-D mesh — the paper's static strategy.
 *
 * "These traces are then fed intelligently to our network simulator to
 * avoid the traditional pitfalls of trace-driven simulation. Since the
 * order of execution of events on our network simulator would be the
 * same as the order of execution on any machine, the event generator
 * does not have to be informed or stalled."
 *
 * One replay process per source preserves each source's event order
 * and re-applies the recorded compute gap ("time since the last
 * network activity at the source") between its messages, while the
 * network itself determines delivery times and contention.
 */

#ifndef CCHAR_CORE_REPLAY_HH
#define CCHAR_CORE_REPLAY_HH

#include "desim/desim.hh"
#include "fault/injector.hh"
#include "mesh/mesh.hh"
#include "obs/obs.hh"
#include "trace/record.hh"
#include "trace/trace.hh"

namespace cchar::core {

/** Outcome of driving the mesh with a message stream. */
struct DriveResult
{
    trace::TrafficLog log;
    double makespan = 0.0;
    double latencyMean = 0.0;
    double latencyMax = 0.0;
    double contentionMean = 0.0;
    double avgChannelUtilization = 0.0;
    double maxChannelUtilization = 0.0;

    // Resilience accounting (all zero in fault-free runs).
    /** Source-level retries after a drop or corruption. */
    std::uint64_t retransmits = 0;
    /** Replayed messages abandoned after the retry budget. */
    std::uint64_t deliveryFailures = 0;
    /** Packets lost to a Bernoulli drop clause. */
    std::uint64_t droppedPackets = 0;
    /** Packets delivered corrupted (then discarded and retried). */
    std::uint64_t corruptedPackets = 0;
    /** Packets tail-dropped on a down link. */
    std::uint64_t linkDrops = 0;
};

/** Knobs of TraceReplayer::replay. */
struct ReplayOptions
{
    /**
     * If true (default), a source waits for each of its messages to
     * drain before its next compute gap — preserving per-source
     * dependences. If false, messages are injected open-loop (the
     * ablation mode; faulted outcomes cannot be retried open-loop).
     */
    bool blocking = true;
    /** Optional windowed telemetry sampler (see replay()). */
    obs::WindowedSampler *sampler = nullptr;
    double samplePeriodUs = 0.0;
    /**
     * Fault oracle wired into the replay mesh (non-owning; may be
     * null). When set and blocking, a source retries a message whose
     * transfer reports a drop or corruption, with the plan's retry
     * backoff, until delivered intact or the attempt budget is spent.
     */
    fault::FaultInjector *faults = nullptr;
    /**
     * Arm a no-progress watchdog on the replay simulation (probe:
     * delivered-message count). WatchdogError propagates out of
     * replay(). Pair with an unbounded retry budget.
     */
    bool enableWatchdog = false;
    desim::WatchdogConfig watchdog{};
};

/** Replays application traces into a mesh network. */
class TraceReplayer
{
  public:
    /**
     * Replay a trace on a fresh mesh of the given configuration.
     *
     * When a metrics sink is installed (obs::setMetrics), the replay
     * records its lag behind the pure trace clock — the cumulative
     * network-drain time separating the replayed injection times from
     * the recorded compute gaps — in the "replay.lag_us" histogram.
     */
    static DriveResult replay(const trace::Trace &trace,
                              const mesh::MeshConfig &mesh,
                              const ReplayOptions &opts);

    /** Back-compat wrapper over the ReplayOptions overload. */
    static DriveResult replay(const trace::Trace &trace,
                              const mesh::MeshConfig &mesh,
                              bool blocking = true,
                              obs::WindowedSampler *sampler = nullptr,
                              double samplePeriodUs = 0.0);
};

} // namespace cchar::core

#endif // CCHAR_CORE_REPLAY_HH
