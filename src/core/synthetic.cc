#include "synthetic.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "desim/desim.hh"
#include "jsonscan.hh"

namespace cchar::core {

namespace {

/**
 * Fill gapScale for every phase: the ratio of the run's mean injection
 * rate to the phase's own rate. Degenerate rates (zero, negative,
 * non-finite) leave the phase neutral at 1.0.
 */
void
computePhaseGapScales(std::vector<SyntheticModel::PhaseModel> &phases)
{
    if (phases.empty())
        return;
    double total = 0.0;
    for (const auto &ph : phases)
        total += static_cast<double>(ph.messageCount);
    double span = phases.back().tEnd - phases.front().tBegin;
    double globalRate = span > 0.0 ? total / span : 0.0;
    for (auto &ph : phases) {
        ph.gapScale = 1.0;
        if (globalRate > 0.0 && ph.injectionRate > 0.0 &&
            std::isfinite(ph.injectionRate)) {
            double s = globalRate / ph.injectionRate;
            if (std::isfinite(s) && s > 0.0)
                ph.gapScale = s;
        }
    }
}

} // namespace

SyntheticModel
SyntheticModel::fromReport(const CharacterizationReport &report)
{
    SyntheticModel model;
    model.mesh = report.mesh;
    model.nprocs = report.nprocs;
    model.application = report.application;
    model.lengthPmf = report.volume.lengthPmf;

    // Index per-source temporal fits.
    std::vector<const TemporalFit *> bySource(
        static_cast<std::size_t>(report.nprocs), nullptr);
    for (const auto &fit : report.temporalPerSource) {
        if (fit.source >= 0 && fit.source < report.nprocs)
            bySource[static_cast<std::size_t>(fit.source)] = &fit;
    }

    for (const auto &spatial : report.spatialPerSource) {
        int src = spatial.source;
        auto count = static_cast<std::size_t>(
            report.volume.perSourceCounts[static_cast<std::size_t>(src)]);
        if (count == 0)
            continue;
        SourceModel sm;
        sm.source = src;
        sm.messageCount = count;
        const TemporalFit *tf = bySource[static_cast<std::size_t>(src)];
        const stats::FitResult &fit =
            (tf && tf->fit.dist) ? tf->fit : report.temporalAggregate.fit;
        if (!fit.dist)
            continue; // no usable temporal model for this source
        sm.interArrival = fit.dist->clone();
        sm.destination = spatial.classification.model;
        model.sources.push_back(std::move(sm));
    }

    for (const auto &ph : report.phases) {
        PhaseModel pm;
        pm.index = ph.index;
        pm.tBegin = ph.tBegin;
        pm.tEnd = ph.tEnd;
        pm.messageCount = ph.messageCount;
        pm.injectionRate = ph.injectionRate;
        model.phases.push_back(pm);
    }
    computePhaseGapScales(model.phases);
    return model;
}

// ---------------------------------------------------------------
// Characterization-JSON model loader.

namespace {

/** Guard against hostile "[[[[..." documents blowing the stack. */
constexpr int kMaxJsonDepth = 64;

/** Largest mesh a loaded model may describe (fuzz OOM guard). */
constexpr int kMaxModelNodes = 1 << 20;

/** Per-source message-count ceiling (keeps arithmetic sane). */
constexpr double kMaxSourceMessages = 1e15;

void
skipValue(JsonScanner &s, int depth)
{
    if (depth > kMaxJsonDepth)
        s.fail("JSON nested too deeply");
    char c = s.peek();
    if (c == '{') {
        s.expect('{');
        if (s.consumeIf('}'))
            return;
        do {
            s.readString();
            s.expect(':');
            skipValue(s, depth + 1);
        } while (s.consumeIf(','));
        s.expect('}');
    } else if (c == '[') {
        s.expect('[');
        if (s.consumeIf(']'))
            return;
        do {
            skipValue(s, depth + 1);
        } while (s.consumeIf(','));
        s.expect(']');
    } else if (c == '"') {
        s.readString();
    } else if (c == 't' || c == 'f') {
        s.readBool();
    } else {
        s.readNumber();
    }
}

/** {"key": value, ...}; onKey consumes each value. */
template <typename F>
void
parseObject(JsonScanner &s, F &&onKey)
{
    s.expect('{');
    if (s.consumeIf('}'))
        return;
    do {
        std::string key = s.readString();
        s.expect(':');
        onKey(key);
    } while (s.consumeIf(','));
    s.expect('}');
}

/** [value, ...]; onItem consumes each element. */
template <typename F>
void
parseArray(JsonScanner &s, F &&onItem)
{
    s.expect('[');
    if (s.consumeIf(']'))
        return;
    do {
        onItem();
    } while (s.consumeIf(','));
    s.expect(']');
}

double
readFinite(JsonScanner &s, const char *field)
{
    double v = s.readNumber();
    if (!std::isfinite(v))
        s.fail(std::string{field} + " must be finite");
    return v;
}

int
readIntField(JsonScanner &s, const char *field)
{
    double v = readFinite(s, field);
    if (v != std::floor(v) || v < -2147483648.0 || v > 2147483647.0)
        s.fail(std::string{field} + " must be an integer");
    return static_cast<int>(v);
}

/** One parsed temporal-fit JSON object (family absent = no fit). */
struct TemporalJson
{
    int source = -1;
    std::string family;
    int stages = 0;
    std::vector<double> params;
    bool hasFit = false;
};

TemporalJson
parseTemporalFit(JsonScanner &s, const char *where)
{
    TemporalJson t;
    parseObject(s, [&](const std::string &key) {
        if (key == "source") {
            t.source = readIntField(s, "temporal source");
        } else if (key == "family") {
            t.family = s.readString();
            t.hasFit = true;
        } else if (key == "stages") {
            t.stages = readIntField(s, "temporal stages");
        } else if (key == "params") {
            parseArray(s, [&] {
                t.params.push_back(readFinite(s, "temporal param"));
            });
        } else {
            skipValue(s, 0);
        }
    });
    if (t.hasFit && t.family.empty())
        s.fail(std::string{where} + " has an empty family name");
    return t;
}

std::unique_ptr<stats::Distribution>
buildDistribution(JsonScanner &s, const TemporalJson &t,
                  const std::string &where)
{
    auto dist = stats::distributionFromName(t.family, t.params, t.stages);
    if (!dist) {
        std::ostringstream msg;
        msg << where << ": family '" << t.family << "' with "
            << t.params.size() << " params";
        if (t.family == "erlang")
            msg << " and stages=" << t.stages;
        msg << " is not a valid model";
        s.fail(msg.str());
    }
    return dist;
}

/** One parsed spatial.perSource entry. */
struct SpatialJson
{
    int source = -1;
    std::vector<double> pmf;
};

} // namespace

SyntheticModel
SyntheticModel::fromJson(const std::string &text)
{
    JsonScanner s{text, "synth model"};

    SyntheticModel model;
    TemporalJson aggregate;
    std::vector<TemporalJson> perSource;
    std::vector<SpatialJson> spatial;
    std::vector<double> perSourceCounts;
    bool sawMesh = false, sawTemporal = false, sawSpatial = false;
    bool sawVolume = false, sawCounts = false;
    std::string topology = "mesh";
    int vcs = 1;

    parseObject(s, [&](const std::string &key) {
        if (key == "application") {
            model.application = s.readString();
        } else if (key == "nprocs") {
            model.nprocs = readIntField(s, "nprocs");
        } else if (key == "mesh") {
            sawMesh = true;
            parseObject(s, [&](const std::string &mk) {
                if (mk == "width")
                    model.mesh.width = readIntField(s, "mesh.width");
                else if (mk == "height")
                    model.mesh.height = readIntField(s, "mesh.height");
                else if (mk == "topology")
                    topology = s.readString();
                else if (mk == "vcs")
                    vcs = readIntField(s, "mesh.vcs");
                else
                    skipValue(s, 0);
            });
        } else if (key == "temporal") {
            sawTemporal = true;
            parseObject(s, [&](const std::string &tk) {
                if (tk == "aggregate") {
                    aggregate = parseTemporalFit(s, "temporal.aggregate");
                } else if (tk == "perSource") {
                    parseArray(s, [&] {
                        perSource.push_back(parseTemporalFit(
                            s, "temporal.perSource entry"));
                    });
                } else {
                    skipValue(s, 0);
                }
            });
        } else if (key == "spatial") {
            sawSpatial = true;
            parseObject(s, [&](const std::string &sk) {
                if (sk == "perSource") {
                    parseArray(s, [&] {
                        SpatialJson sj;
                        parseObject(s, [&](const std::string &pk) {
                            if (pk == "source") {
                                sj.source = readIntField(
                                    s, "spatial.perSource source");
                            } else if (pk == "pmf") {
                                parseArray(s, [&] {
                                    double p = readFinite(
                                        s, "spatial.perSource pmf entry");
                                    if (p < 0.0)
                                        s.fail("spatial.perSource pmf "
                                               "entry must be >= 0");
                                    sj.pmf.push_back(p);
                                });
                            } else {
                                skipValue(s, 0);
                            }
                        });
                        spatial.push_back(std::move(sj));
                    });
                } else {
                    skipValue(s, 0);
                }
            });
        } else if (key == "volume") {
            sawVolume = true;
            parseObject(s, [&](const std::string &vk) {
                if (vk == "lengthPmf") {
                    parseArray(s, [&] {
                        int bytes = 0;
                        double p = 0.0;
                        parseObject(s, [&](const std::string &lk) {
                            if (lk == "bytes")
                                bytes = readIntField(
                                    s, "volume.lengthPmf bytes");
                            else if (lk == "p")
                                p = readFinite(s, "volume.lengthPmf p");
                            else
                                skipValue(s, 0);
                        });
                        if (bytes < 0)
                            s.fail("volume.lengthPmf bytes must be "
                                   ">= 0");
                        if (p < 0.0)
                            s.fail("volume.lengthPmf p must be >= 0");
                        model.lengthPmf.emplace_back(bytes, p);
                    });
                } else if (vk == "perSourceCounts") {
                    sawCounts = true;
                    parseArray(s, [&] {
                        double c = readFinite(
                            s, "volume.perSourceCounts entry");
                        if (c < 0.0 || c > kMaxSourceMessages)
                            s.fail("volume.perSourceCounts entry out "
                                   "of range");
                        perSourceCounts.push_back(c);
                    });
                } else {
                    skipValue(s, 0);
                }
            });
        } else if (key == "phases") {
            parseArray(s, [&] {
                PhaseModel pm;
                parseObject(s, [&](const std::string &pk) {
                    if (pk == "index") {
                        pm.index = readIntField(s, "phase index");
                    } else if (pk == "tBegin") {
                        pm.tBegin = readFinite(s, "phase tBegin");
                    } else if (pk == "tEnd") {
                        pm.tEnd = readFinite(s, "phase tEnd");
                    } else if (pk == "messages") {
                        double m = readFinite(s, "phase messages");
                        if (m < 0.0 || m > kMaxSourceMessages)
                            s.fail("phase messages out of range");
                        pm.messageCount =
                            static_cast<std::size_t>(m);
                    } else if (pk == "injectionRate") {
                        pm.injectionRate =
                            readFinite(s, "phase injectionRate");
                    } else {
                        skipValue(s, 0);
                    }
                });
                if (pm.tEnd < pm.tBegin)
                    s.fail("phase tEnd must be >= tBegin");
                model.phases.push_back(pm);
            });
        } else {
            skipValue(s, 0);
        }
    });
    if (!s.atEnd())
        s.fail("trailing content after JSON document");

    // Structural validation with named fields.
    if (model.nprocs < 1)
        s.fail("nprocs must be >= 1");
    if (!sawMesh)
        s.fail("mesh object is missing");
    if (model.mesh.width < 1 || model.mesh.height < 1)
        s.fail("mesh.width and mesh.height must be >= 1");
    if (model.mesh.nodes() > kMaxModelNodes)
        s.fail("mesh describes more than 2^20 nodes");
    if (model.nprocs > model.mesh.nodes())
        s.fail("nprocs exceeds the mesh node count");
    if (topology == "torus")
        model.mesh.topology = mesh::Topology::Torus;
    else if (topology == "mesh")
        model.mesh.topology = mesh::Topology::Mesh;
    else
        s.fail("mesh.topology must be \"mesh\" or \"torus\"");
    if (vcs < 1 || vcs > 16)
        s.fail("mesh.vcs out of range [1, 16]");
    model.mesh.virtualChannels =
        model.mesh.topology == mesh::Topology::Torus
            ? std::max(vcs, 2)
            : vcs;
    if (!sawTemporal)
        s.fail("temporal object is missing");
    if (!sawSpatial)
        s.fail("spatial object is missing");
    if (!sawVolume)
        s.fail("volume object is missing");
    if (!sawCounts)
        s.fail("volume.perSourceCounts is missing (regenerate the "
               "report with a build that emits it)");

    // Assemble the per-source models.
    std::unique_ptr<stats::Distribution> aggDist;
    if (aggregate.hasFit)
        aggDist = buildDistribution(s, aggregate, "temporal.aggregate");
    std::vector<const TemporalJson *> bySource(
        static_cast<std::size_t>(model.nprocs), nullptr);
    for (const auto &t : perSource) {
        if (t.source < 0 || t.source >= model.nprocs)
            s.fail("temporal.perSource source out of range");
        bySource[static_cast<std::size_t>(t.source)] = &t;
    }
    for (const auto &sj : spatial) {
        if (sj.source < 0 || sj.source >= model.nprocs)
            s.fail("spatial.perSource source out of range");
        double count =
            sj.source < static_cast<int>(perSourceCounts.size())
                ? perSourceCounts[static_cast<std::size_t>(sj.source)]
                : 0.0;
        if (count < 1.0)
            continue;
        double mass = 0.0;
        for (double p : sj.pmf)
            mass += p;
        if (mass <= 0.0)
            s.fail("spatial.perSource pmf of source " +
                   std::to_string(sj.source) + " has no mass");
        SourceModel sm;
        sm.source = sj.source;
        sm.messageCount = static_cast<std::size_t>(count);
        const TemporalJson *tf =
            bySource[static_cast<std::size_t>(sj.source)];
        if (tf && tf->hasFit) {
            sm.interArrival = buildDistribution(
                s, *tf,
                "temporal.perSource[" + std::to_string(sj.source) + "]");
        } else if (aggDist) {
            sm.interArrival = aggDist->clone();
        } else {
            continue; // no usable temporal model for this source
        }
        sm.destination = stats::DiscretePmf{sj.pmf};
        model.sources.push_back(std::move(sm));
    }
    if (model.sources.empty())
        s.fail("no source has both traffic and a usable temporal fit");

    computePhaseGapScales(model.phases);
    return model;
}

SyntheticModel
SyntheticModel::fromJsonFile(const std::string &path)
{
    std::ifstream in{path, std::ios::binary};
    if (!in)
        throw CCharError(StatusCode::IoError,
                         "synth model: cannot read '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return fromJson(buf.str());
}

std::size_t
SyntheticModel::totalMessages() const
{
    std::size_t total = 0;
    for (const auto &sm : sources)
        total += sm.messageCount;
    return total;
}

SyntheticModel
SyntheticModel::clone() const
{
    SyntheticModel out;
    out.mesh = mesh;
    out.nprocs = nprocs;
    out.application = application;
    out.phases = phases;
    out.lengthPmf = lengthPmf;
    out.sources.reserve(sources.size());
    for (const auto &sm : sources) {
        SourceModel c;
        c.source = sm.source;
        c.interArrival = sm.interArrival->clone();
        c.destination = sm.destination;
        c.messageCount = sm.messageCount;
        out.sources.push_back(std::move(c));
    }
    return out;
}

SyntheticModel
SyntheticModel::scaleTo(int target_procs,
                        std::size_t target_messages) const
{
    int nodes = mesh.nodes();
    int tiles = 1;
    if (target_procs > 0) {
        if (target_procs % nodes != 0)
            throw CCharError(
                StatusCode::UsageError,
                "synth: --scale-procs must be a positive multiple of "
                "the model's " +
                    std::to_string(nodes) + " nodes");
        tiles = target_procs / nodes;
    }
    // Near-square tile grid: the largest ty <= sqrt(tiles) dividing it.
    int ty = 1;
    for (int d = 1; d * d <= tiles; ++d)
        if (tiles % d == 0)
            ty = d;
    int tx = tiles / ty;

    SyntheticModel out;
    out.mesh = mesh;
    out.mesh.width = mesh.width * tx;
    out.mesh.height = mesh.height * ty;
    out.nprocs = target_procs > 0 ? target_procs : nprocs;
    out.application = application;
    out.phases = phases;
    out.lengthPmf = lengthPmf;

    double total = static_cast<double>(totalMessages());
    double scale = 1.0;
    if (target_messages > 0 && total > 0.0)
        scale = static_cast<double>(target_messages) /
                (total * static_cast<double>(tiles));

    const int w = mesh.width, h = mesh.height;
    const int wScaled = out.mesh.width;
    out.sources.reserve(sources.size() *
                        static_cast<std::size_t>(tiles));
    for (int tj = 0; tj < ty; ++tj) {
        for (int ti = 0; ti < tx; ++ti) {
            for (const auto &sm : sources) {
                int x = sm.source % w, y = sm.source / w;
                SourceModel c;
                c.source = (y + h * tj) * wScaled + (x + w * ti);
                c.interArrival = sm.interArrival->clone();
                c.messageCount = static_cast<std::size_t>(std::llround(
                    static_cast<double>(sm.messageCount) * scale));
                // Remap the destination PMF into this clone's own
                // tile: relative geometry (and thus hop distances on
                // the mesh) is preserved exactly.
                std::vector<double> weights(
                    static_cast<std::size_t>(out.mesh.nodes()), 0.0);
                const auto &p = sm.destination.probabilities();
                for (std::size_t d = 0;
                     d < p.size() &&
                     d < static_cast<std::size_t>(nodes);
                     ++d) {
                    if (p[d] <= 0.0)
                        continue;
                    int dx = static_cast<int>(d) % w;
                    int dy = static_cast<int>(d) / w;
                    weights[static_cast<std::size_t>(
                        (dy + h * tj) * wScaled + (dx + w * ti))] =
                        p[d];
                }
                c.destination = stats::DiscretePmf{std::move(weights)};
                out.sources.push_back(std::move(c));
            }
        }
    }
    return out;
}

// ---------------------------------------------------------------
// Generation.

namespace {

/** Shared per-run generation state (outlives every coroutine). */
struct GenContext
{
    const SyntheticModel *model = nullptr;
    stats::DiscreteSampler length;
    bool usePhases = false;
};

double
gapScaleAt(const std::vector<SyntheticModel::PhaseModel> &phases,
           double t)
{
    auto it = std::upper_bound(
        phases.begin(), phases.end(), t,
        [](double tv, const SyntheticModel::PhaseModel &ph) {
            return tv < ph.tBegin;
        });
    if (it != phases.begin())
        --it;
    return it->gapScale;
}

/** Bounded-outstanding transfer: releases its slot when drained. */
desim::Task<void>
pacedTransfer(mesh::MeshNetwork *net,
              std::shared_ptr<desim::Resource> slots, mesh::Packet pkt)
{
    (void)co_await net->transfer(std::move(pkt));
    slots->release();
}

desim::Task<void>
syntheticSource(mesh::MeshNetwork *net,
                const SyntheticModel::SourceModel *sm,
                const stats::DiscreteSampler *destination,
                const GenContext *ctx, std::uint64_t seed,
                double time_scale, int max_outstanding)
{
    stats::Rng rng{seed};
    std::shared_ptr<desim::Resource> slots;
    if (max_outstanding > 0) {
        slots = std::make_shared<desim::Resource>(
            net->sim(), max_outstanding,
            "ni-" + std::to_string(sm->source));
    }
    for (std::size_t i = 0; i < sm->messageCount; ++i) {
        double gap = sm->interArrival->sample(rng) * time_scale;
        if (ctx->usePhases)
            gap *= gapScaleAt(ctx->model->phases, net->sim().now());
        // A degenerate model (loaded rate underflow) may draw a
        // non-finite gap; clamping keeps the run terminating without
        // touching any finite-gap byte stream.
        if (!std::isfinite(gap))
            gap = 0.0;
        co_await net->sim().delay(gap);
        int dst = destination->sample(rng);
        if (dst == sm->source) {
            // Fitted models keep a structural zero at the source; a
            // numerically degenerate draw falls back to the most
            // likely other destination.
            dst = sm->destination.argmax() == sm->source
                      ? (sm->source + 1) % net->config().nodes()
                      : sm->destination.argmax();
        }
        mesh::Packet pkt;
        pkt.src = sm->source;
        pkt.dst = dst;
        pkt.bytes = ctx->length.sample(rng);
        if (slots) {
            co_await slots->acquire();
            net->sim().spawn(
                pacedTransfer(net, slots, std::move(pkt)),
                "synth-paced");
        } else {
            net->post(std::move(pkt));
        }
    }
}

desim::Task<void>
syntheticSink(mesh::MeshNetwork *net, int node)
{
    for (;;)
        (void)co_await net->rxQueue(node).receive();
}

} // namespace

DriveResult
SyntheticTrafficGenerator::run(const SyntheticModel &model,
                               const SynthRunOptions &opts)
{
    if (model.nprocs > model.mesh.nodes())
        throw std::invalid_argument("synthetic: model does not fit on "
                                    "the mesh");
    DriveResult result;
    desim::Simulator sim;
    mesh::MeshNetwork net{sim, model.mesh, &result.log};

    GenContext ctx;
    ctx.model = &model;
    ctx.usePhases = opts.usePhases && !model.phases.empty();
    ctx.length = stats::DiscreteSampler::fromLengthPmf(model.lengthPmf, 8);
    // Destination CDFs are cached once per source: at replay scale
    // (millions of messages) the per-draw linear scan of DiscretePmf
    // would dominate the run.
    std::vector<stats::DiscreteSampler> destinations;
    destinations.reserve(model.sources.size());
    for (const auto &sm : model.sources)
        destinations.push_back(
            stats::DiscreteSampler::fromPmf(sm.destination));

    for (int node = 0; node < model.mesh.nodes(); ++node)
        sim.spawn(syntheticSink(&net, node), "sink");
    for (std::size_t i = 0; i < model.sources.size(); ++i) {
        const auto &sm = model.sources[i];
        sim.spawn(syntheticSource(&net, &sm, &destinations[i], &ctx,
                                  opts.seed +
                                      static_cast<std::uint64_t>(
                                          sm.source) *
                                          7919,
                                  opts.timeScale, opts.maxOutstanding),
                  "synth-src-" + std::to_string(sm.source));
    }
    sim.run();

    result.makespan = result.log.lastDeliverTime();
    result.latencyMean = net.latencyStats().mean();
    result.latencyMax = net.latencyStats().max();
    result.contentionMean = net.contentionStats().mean();
    result.avgChannelUtilization =
        net.averageChannelUtilization(sim.now());
    result.maxChannelUtilization = net.maxChannelUtilization(sim.now());
    return result;
}

DriveResult
SyntheticTrafficGenerator::run(const SyntheticModel &model,
                               std::uint64_t seed, double time_scale,
                               int max_outstanding)
{
    SynthRunOptions opts;
    opts.seed = seed;
    opts.timeScale = time_scale;
    opts.maxOutstanding = max_outstanding;
    return run(model, opts);
}

// ---------------------------------------------------------------
// Fidelity: model vs re-observed synthetic traffic.

SynthesisFidelity
computeSynthFidelity(const SyntheticModel &model,
                     const trace::TrafficLog &log)
{
    SynthesisFidelity sf;
    sf.enabled = true;
    sf.modelApplication = model.application;
    sf.modelProcs = model.nprocs;
    sf.syntheticMessages = log.size();

    // Temporal: per-source KS of the observed inter-arrival sample
    // against the distribution that generated it (open-loop injection
    // makes the per-source gaps exactly the drawn sample), weighted by
    // sample size.
    double weightSum = 0.0, ksSum = 0.0;
    std::size_t included = 0;
    for (const auto &sm : model.sources) {
        std::vector<double> iat = log.interArrivalTimes(sm.source);
        if (iat.size() < 8)
            continue;
        stats::GoodnessOfFit gof =
            stats::DistributionFitter::evaluate(*sm.interArrival, iat);
        double w = static_cast<double>(iat.size());
        ksSum += gof.ks * w;
        weightSum += w;
        ++included;
    }
    sf.temporalSources = included;
    sf.temporalKs = weightSum > 0.0 ? ksSum / weightSum : 1.0;

    // Spatial: sup CDF distance (destination-index order) between the
    // count-weighted mixture of the per-source destination PMFs and
    // the observed aggregate destination distribution.
    std::size_t n = static_cast<std::size_t>(model.mesh.nodes());
    std::vector<double> expect(n, 0.0), observed(n, 0.0);
    double expectSum = 0.0, observedSum = 0.0;
    for (const auto &sm : model.sources) {
        const auto &p = sm.destination.probabilities();
        double count = static_cast<double>(sm.messageCount);
        for (std::size_t d = 0; d < p.size() && d < n; ++d)
            expect[d] += p[d] * count;
        expectSum += count;
    }
    for (const auto &rec : log.records()) {
        if (rec.dst >= 0 && static_cast<std::size_t>(rec.dst) < n) {
            observed[static_cast<std::size_t>(rec.dst)] += 1.0;
            observedSum += 1.0;
        }
    }
    if (expectSum > 0.0 && observedSum > 0.0) {
        double ce = 0.0, co = 0.0, sup = 0.0;
        for (std::size_t d = 0; d < n; ++d) {
            ce += expect[d] / expectSum;
            co += observed[d] / observedSum;
            sup = std::max(sup, std::fabs(ce - co));
        }
        sf.spatialKs = sup;
    }

    // Volume: sup CDF distance over the union of byte-size supports
    // between the model length PMF and the observed lengths.
    std::map<int, double> modelMass, observedMass;
    double modelSum = 0.0, lenSum = 0.0;
    for (const auto &[bytes, p] : model.lengthPmf) {
        if (p > 0.0) {
            modelMass[bytes] += p;
            modelSum += p;
        }
    }
    for (const auto &rec : log.records()) {
        observedMass[rec.bytes] += 1.0;
        lenSum += 1.0;
    }
    if (modelSum > 0.0 && lenSum > 0.0) {
        double cm = 0.0, co = 0.0, sup = 0.0;
        auto im = modelMass.begin();
        auto io = observedMass.begin();
        while (im != modelMass.end() || io != observedMass.end()) {
            int b;
            if (im == modelMass.end())
                b = io->first;
            else if (io == observedMass.end())
                b = im->first;
            else
                b = std::min(im->first, io->first);
            if (im != modelMass.end() && im->first == b) {
                cm += im->second / modelSum;
                ++im;
            }
            if (io != observedMass.end() && io->first == b) {
                co += io->second / lenSum;
                ++io;
            }
            sup = std::max(sup, std::fabs(cm - co));
        }
        sf.volumeKs = sup;
    }
    return sf;
}

ValidationResult
validateModel(const CharacterizationReport &report, std::uint64_t seed,
              int max_outstanding)
{
    SyntheticModel model = SyntheticModel::fromReport(report);
    DriveResult synth = SyntheticTrafficGenerator::run(
        model, seed, 1.0, max_outstanding);

    ValidationResult v;
    v.originalLatencyMean = report.network.latencyMean;
    v.syntheticLatencyMean = synth.latencyMean;
    v.originalContentionMean = report.network.contentionMean;
    v.syntheticContentionMean = synth.contentionMean;
    v.originalAvgUtilization = report.network.avgChannelUtilization;
    v.syntheticAvgUtilization = synth.avgChannelUtilization;
    return v;
}

} // namespace cchar::core
