#include "synthetic.hh"

#include <stdexcept>

#include "desim/desim.hh"

namespace cchar::core {

SyntheticModel
SyntheticModel::fromReport(const CharacterizationReport &report)
{
    SyntheticModel model;
    model.mesh = report.mesh;
    model.nprocs = report.nprocs;
    model.lengthPmf = report.volume.lengthPmf;

    // Index per-source temporal fits.
    std::vector<const TemporalFit *> bySource(
        static_cast<std::size_t>(report.nprocs), nullptr);
    for (const auto &fit : report.temporalPerSource) {
        if (fit.source >= 0 && fit.source < report.nprocs)
            bySource[static_cast<std::size_t>(fit.source)] = &fit;
    }

    for (const auto &spatial : report.spatialPerSource) {
        int src = spatial.source;
        auto count = static_cast<std::size_t>(
            report.volume.perSourceCounts[static_cast<std::size_t>(src)]);
        if (count == 0)
            continue;
        SourceModel sm;
        sm.source = src;
        sm.messageCount = count;
        const TemporalFit *tf = bySource[static_cast<std::size_t>(src)];
        const stats::FitResult &fit =
            (tf && tf->fit.dist) ? tf->fit : report.temporalAggregate.fit;
        if (!fit.dist)
            continue; // no usable temporal model for this source
        sm.interArrival = fit.dist->clone();
        sm.destination = spatial.classification.model;
        model.sources.push_back(std::move(sm));
    }
    return model;
}

namespace {

int
sampleLength(const std::vector<std::pair<int, double>> &pmf,
             stats::Rng &rng)
{
    double u = rng.uniform01();
    double acc = 0.0;
    for (const auto &[bytes, prob] : pmf) {
        acc += prob;
        if (u < acc)
            return bytes;
    }
    return pmf.empty() ? 8 : pmf.back().first;
}

/** Bounded-outstanding transfer: releases its slot when drained. */
desim::Task<void>
pacedTransfer(mesh::MeshNetwork *net,
              std::shared_ptr<desim::Resource> slots, mesh::Packet pkt)
{
    (void)co_await net->transfer(std::move(pkt));
    slots->release();
}

desim::Task<void>
syntheticSource(mesh::MeshNetwork *net,
                const SyntheticModel::SourceModel *sm,
                const std::vector<std::pair<int, double>> *length_pmf,
                std::uint64_t seed, double time_scale,
                int max_outstanding)
{
    stats::Rng rng{seed};
    std::shared_ptr<desim::Resource> slots;
    if (max_outstanding > 0) {
        slots = std::make_shared<desim::Resource>(
            net->sim(), max_outstanding,
            "ni-" + std::to_string(sm->source));
    }
    for (std::size_t i = 0; i < sm->messageCount; ++i) {
        double gap = sm->interArrival->sample(rng) * time_scale;
        co_await net->sim().delay(gap);
        int dst = sm->destination.sample(rng);
        if (dst == sm->source) {
            // Fitted models keep a structural zero at the source; a
            // numerically degenerate draw falls back to the most
            // likely other destination.
            dst = sm->destination.argmax() == sm->source
                      ? (sm->source + 1) % net->config().nodes()
                      : sm->destination.argmax();
        }
        mesh::Packet pkt;
        pkt.src = sm->source;
        pkt.dst = dst;
        pkt.bytes = sampleLength(*length_pmf, rng);
        if (slots) {
            co_await slots->acquire();
            net->sim().spawn(
                pacedTransfer(net, slots, std::move(pkt)),
                "synth-paced");
        } else {
            net->post(std::move(pkt));
        }
    }
}

desim::Task<void>
syntheticSink(mesh::MeshNetwork *net, int node)
{
    for (;;)
        (void)co_await net->rxQueue(node).receive();
}

} // namespace

DriveResult
SyntheticTrafficGenerator::run(const SyntheticModel &model,
                               std::uint64_t seed, double time_scale,
                               int max_outstanding)
{
    if (model.nprocs > model.mesh.nodes())
        throw std::invalid_argument("synthetic: model does not fit on "
                                    "the mesh");
    DriveResult result;
    desim::Simulator sim;
    mesh::MeshNetwork net{sim, model.mesh, &result.log};
    for (int node = 0; node < model.mesh.nodes(); ++node)
        sim.spawn(syntheticSink(&net, node), "sink");
    for (const auto &sm : model.sources) {
        sim.spawn(syntheticSource(&net, &sm, &model.lengthPmf,
                                  seed + static_cast<std::uint64_t>(
                                             sm.source) * 7919,
                                  time_scale, max_outstanding),
                  "synth-src-" + std::to_string(sm.source));
    }
    sim.run();

    result.makespan = result.log.lastDeliverTime();
    result.latencyMean = net.latencyStats().mean();
    result.latencyMax = net.latencyStats().max();
    result.contentionMean = net.contentionStats().mean();
    result.avgChannelUtilization =
        net.averageChannelUtilization(sim.now());
    result.maxChannelUtilization = net.maxChannelUtilization(sim.now());
    return result;
}

ValidationResult
validateModel(const CharacterizationReport &report, std::uint64_t seed,
              int max_outstanding)
{
    SyntheticModel model = SyntheticModel::fromReport(report);
    DriveResult synth = SyntheticTrafficGenerator::run(
        model, seed, 1.0, max_outstanding);

    ValidationResult v;
    v.originalLatencyMean = report.network.latencyMean;
    v.syntheticLatencyMean = synth.latencyMean;
    v.originalContentionMean = report.network.contentionMean;
    v.syntheticContentionMean = synth.contentionMean;
    v.originalAvgUtilization = report.network.avgChannelUtilization;
    v.syntheticAvgUtilization = synth.avgChannelUtilization;
    return v;
}

} // namespace cchar::core
