#include "analyzers.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>

namespace cchar::core {

// ---------------------------------------------------------------
// TemporalAnalyzer

TemporalFit
TemporalAnalyzer::analyzeAggregate(const trace::TrafficLog &log) const
{
    TemporalFit out;
    out.source = -1;
    auto gaps = log.interArrivalTimes(-1);
    out.stats = stats::SummaryStats::compute(gaps);
    out.fit = fitter_.bestFit(gaps);
    return out;
}

TemporalFit
TemporalAnalyzer::analyzeSource(const trace::TrafficLog &log,
                                int source) const
{
    TemporalFit out;
    out.source = source;
    auto gaps = log.interArrivalTimes(source);
    out.stats = stats::SummaryStats::compute(gaps);
    out.fit = fitter_.bestFit(gaps);
    return out;
}

std::vector<TemporalFit>
TemporalAnalyzer::analyzeAllSources(const trace::TrafficLog &log,
                                    std::size_t min_samples) const
{
    std::vector<TemporalFit> fits;
    for (int src = 0; src < log.nprocs(); ++src) {
        auto gaps = log.interArrivalTimes(src);
        if (gaps.size() < min_samples)
            continue;
        fits.push_back(analyzeSource(log, src));
    }
    return fits;
}

std::vector<TemporalFit>
TemporalAnalyzer::analyzeWindows(const trace::TrafficLog &log,
                                 int windows,
                                 std::size_t min_samples) const
{
    std::vector<TemporalFit> fits;
    if (windows <= 0 || log.empty())
        return fits;
    double end = log.lastDeliverTime();
    if (end <= 0.0)
        return fits;
    double width = end / static_cast<double>(windows);

    // Bucket injection times by window.
    std::vector<std::vector<double>> buckets(
        static_cast<std::size_t>(windows));
    for (const auto &rec : log.records()) {
        auto w = static_cast<std::size_t>(rec.injectTime / width);
        if (w >= buckets.size())
            w = buckets.size() - 1;
        buckets[w].push_back(rec.injectTime);
    }
    for (int w = 0; w < windows; ++w) {
        auto &times = buckets[static_cast<std::size_t>(w)];
        std::sort(times.begin(), times.end());
        std::vector<double> gaps;
        for (std::size_t i = 1; i < times.size(); ++i)
            gaps.push_back(times[i] - times[i - 1]);
        TemporalFit fit;
        fit.source = w; // window index doubles as the label
        fit.stats = stats::SummaryStats::compute(gaps);
        if (gaps.size() >= min_samples)
            fit.fit = fitter_.bestFit(gaps);
        fits.push_back(std::move(fit));
    }
    return fits;
}

// ---------------------------------------------------------------
// PhaseAnalyzer

int
PhaseAnalyzer::windowsFor(const trace::TrafficLog &log) const
{
    if (cfg_.windows > 0)
        return cfg_.windows;
    // Auto: aim for ~32 messages per window so the rate signal's
    // sampling noise stays well below a phase-level change, but keep
    // enough windows (> warmup + confirm) for detection to engage.
    auto n = static_cast<int>(log.size() / 32);
    return std::clamp(n, 16, 96);
}

std::vector<obs::Phase>
PhaseAnalyzer::detect(const trace::TrafficLog &log) const
{
    std::vector<obs::Phase> phases;
    if (log.empty())
        return phases;
    double end = log.lastDeliverTime();
    if (end <= 0.0)
        return phases;
    int windows = windowsFor(log);
    double width = end / static_cast<double>(windows);

    // Per-window signal accumulators.
    struct Window
    {
        double count = 0.0;
        double bytes = 0.0;
        std::map<int, double> dsts;
    };
    std::vector<Window> wins(static_cast<std::size_t>(windows));
    for (const auto &rec : log.records()) {
        auto w = static_cast<std::size_t>(rec.injectTime / width);
        if (w >= wins.size())
            w = wins.size() - 1;
        wins[w].count += 1.0;
        wins[w].bytes += rec.bytes;
        wins[w].dsts[rec.dst] += 1.0;
    }

    double hMax =
        log.nprocs() > 1 ? std::log2(static_cast<double>(log.nprocs()))
                         : 1.0;
    obs::PhaseDetector detector(3, cfg_.detector);
    for (int w = 0; w < windows; ++w) {
        const Window &win = wins[static_cast<std::size_t>(w)];
        double rate = win.count / width;
        double meanBytes =
            win.count > 0.0 ? win.bytes / win.count : 0.0;
        double entropy = 0.0;
        if (!win.dsts.empty()) {
            std::vector<double> counts;
            counts.reserve(win.dsts.size());
            for (const auto &[dst, c] : win.dsts)
                counts.push_back(c);
            entropy =
                stats::DiscretePmf::fromCounts(counts).entropy() / hMax;
        }
        detector.observe(width * w, width * (w + 1),
                         {rate, meanBytes, entropy});
    }
    return detector.finish();
}

std::vector<PhaseCharacterization>
PhaseAnalyzer::analyze(const trace::TrafficLog &log) const
{
    std::vector<PhaseCharacterization> out;
    auto phases = detect(log);
    if (phases.empty())
        return out;

    SpatialAnalyzer spatial{classifier_};
    double hMax =
        log.nprocs() > 1 ? std::log2(static_cast<double>(log.nprocs()))
                         : 1.0;
    for (std::size_t i = 0; i < phases.size(); ++i) {
        const obs::Phase &ph = phases[i];
        // Sub-log of messages injected inside the phase span. The last
        // phase takes a closed upper bound so the final record is not
        // orphaned by floating-point division.
        trace::TrafficLog sub(log.nprocs());
        bool last = i + 1 == phases.size();
        for (const auto &rec : log.records()) {
            if (rec.injectTime >= ph.tBegin &&
                (rec.injectTime < ph.tEnd ||
                 (last && rec.injectTime <= ph.tEnd))) {
                sub.add(rec);
            }
        }

        PhaseCharacterization pc;
        pc.index = static_cast<int>(i);
        pc.tBegin = ph.tBegin;
        pc.tEnd = ph.tEnd;
        pc.messageCount = sub.size();
        double span = ph.tEnd - ph.tBegin;
        for (const auto &rec : sub.records())
            pc.totalBytes += rec.bytes;
        pc.injectionRate =
            span > 0.0 ? static_cast<double>(sub.size()) / span : 0.0;
        pc.meanBytes = sub.empty() ? 0.0
                                   : pc.totalBytes /
                                         static_cast<double>(sub.size());
        if (!sub.empty()) {
            std::map<int, double> dsts;
            for (const auto &rec : sub.records())
                dsts[rec.dst] += 1.0;
            std::vector<double> counts;
            for (const auto &[dst, c] : dsts)
                counts.push_back(c);
            pc.dstEntropy =
                stats::DiscretePmf::fromCounts(counts).entropy() / hMax;
            pc.temporal.source = -1;
            auto gaps = sub.interArrivalTimes(-1);
            pc.temporal.stats = stats::SummaryStats::compute(gaps);
            if (gaps.size() >= cfg_.minSamples)
                pc.temporal.fit = fitter_.bestFit(gaps);
            pc.spatial = spatial.analyzeAggregate(sub);
        }
        out.push_back(std::move(pc));
    }
    return out;
}

// ---------------------------------------------------------------
// SpatialAnalyzer

SpatialFit
SpatialAnalyzer::analyzeSource(const trace::TrafficLog &log,
                               int source) const
{
    SpatialFit out;
    out.source = source;
    out.observed =
        stats::DiscretePmf::fromCounts(log.destinationCounts(source));
    out.classification = classifier_.classify(out.observed, source);
    return out;
}

std::vector<SpatialFit>
SpatialAnalyzer::analyzeAllSources(const trace::TrafficLog &log) const
{
    std::vector<SpatialFit> fits;
    auto counts = log.sourceCounts();
    for (int src = 0; src < log.nprocs(); ++src) {
        if (counts[static_cast<std::size_t>(src)] > 0.0)
            fits.push_back(analyzeSource(log, src));
    }
    return fits;
}

stats::SpatialClassification
SpatialAnalyzer::analyzeAggregate(const trace::TrafficLog &log) const
{
    // Average the per-source destination PMFs ("a simple averaging of
    // the means of all the processors can be done to define a single
    // expression"), then classify. Self-destinations are structurally
    // zero per source, so the aggregate PMF has no meaningful self
    // entry: classify with self = -1.
    int n = log.nprocs();
    std::vector<double> avg(static_cast<std::size_t>(n), 0.0);
    int contributing = 0;
    for (int src = 0; src < n; ++src) {
        auto pmf =
            stats::DiscretePmf::fromCounts(log.destinationCounts(src));
        if (pmf.size() == 0)
            continue;
        bool any = false;
        for (std::size_t i = 0; i < pmf.size(); ++i) {
            avg[i] += pmf[i];
            if (pmf[i] > 0.0)
                any = true;
        }
        if (any)
            ++contributing;
    }
    stats::SpatialClassification out;
    if (contributing == 0)
        return out;
    return classifier_.classify(stats::DiscretePmf{std::move(avg)}, -1);
}

std::vector<double>
SpatialAnalyzer::hopDistanceProfile(const trace::TrafficLog &log,
                                    const mesh::MeshConfig &mesh)
{
    bool torus = mesh.topology == mesh::Topology::Torus;
    int maxHops = torus ? mesh.width / 2 + mesh.height / 2
                        : (mesh.width - 1) + (mesh.height - 1);
    std::vector<double> counts(static_cast<std::size_t>(maxHops) + 1,
                               0.0);
    double total = 0.0;
    auto dist1d = [torus](int a, int b, int extent) {
        int d = std::abs(a - b);
        return torus ? std::min(d, extent - d) : d;
    };
    for (const auto &rec : log.records()) {
        int sx = rec.src % mesh.width, sy = rec.src / mesh.width;
        int dx = rec.dst % mesh.width, dy = rec.dst / mesh.width;
        int hops = dist1d(sx, dx, mesh.width) +
                   dist1d(sy, dy, mesh.height);
        counts[static_cast<std::size_t>(hops)] += 1.0;
        total += 1.0;
    }
    if (total > 0.0) {
        for (double &c : counts)
            c /= total;
    }
    return counts;
}

// ---------------------------------------------------------------
// BandwidthAnalyzer

std::vector<double>
BandwidthAnalyzer::profile(const trace::TrafficLog &log, int windows,
                           int source)
{
    std::vector<double> out;
    if (windows <= 0 || log.empty())
        return out;
    double end = log.lastDeliverTime();
    if (end <= 0.0)
        return out;
    double width = end / static_cast<double>(windows);
    out.assign(static_cast<std::size_t>(windows), 0.0);
    for (const auto &rec : log.records()) {
        if (source >= 0 && rec.src != source)
            continue;
        auto w = static_cast<std::size_t>(rec.injectTime / width);
        if (w >= out.size())
            w = out.size() - 1;
        out[w] += rec.bytes;
    }
    for (double &bytes : out)
        bytes /= width;
    return out;
}

double
BandwidthAnalyzer::peakToMean(const std::vector<double> &profile)
{
    if (profile.empty())
        return 0.0;
    double sum = 0.0, peak = 0.0;
    for (double v : profile) {
        sum += v;
        peak = std::max(peak, v);
    }
    double mean = sum / static_cast<double>(profile.size());
    return mean > 0.0 ? peak / mean : 0.0;
}

// ---------------------------------------------------------------
// VolumeAnalyzer

VolumeCharacterization
VolumeAnalyzer::analyze(const trace::TrafficLog &log) const
{
    VolumeCharacterization out;
    out.messageCount = log.size();
    auto lengths = log.messageLengths();
    out.lengthStats = stats::SummaryStats::compute(lengths);
    for (double b : lengths)
        out.totalBytes += b;
    std::map<int, double> sizes;
    for (const auto &rec : log.records())
        sizes[rec.bytes] += 1.0;
    for (auto &[bytes, count] : sizes) {
        out.lengthPmf.emplace_back(
            bytes, count / static_cast<double>(out.messageCount));
    }
    out.perSourceCounts = log.sourceCounts();
    return out;
}

// ---------------------------------------------------------------
// RankActivityAnalyzer

namespace {

/** Sort by begin and merge overlapping/adjacent spans. */
std::vector<obs::RankInterval>
mergeSpans(std::vector<obs::RankInterval> spans)
{
    std::sort(spans.begin(), spans.end(),
              [](const obs::RankInterval &a, const obs::RankInterval &b) {
                  return a.beginUs < b.beginUs;
              });
    std::vector<obs::RankInterval> merged;
    for (const obs::RankInterval &s : spans) {
        if (!merged.empty() && s.beginUs <= merged.back().endUs) {
            if (s.endUs > merged.back().endUs)
                merged.back().endUs = s.endUs;
        } else {
            merged.push_back(s);
        }
    }
    return merged;
}

/** A candidate idle-wave front: one long blocked interval. */
struct FrontEvent
{
    double tUs = 0.0;
    bool used = false;
};

} // namespace

RankActivitySummary
RankActivityAnalyzer::analyze(
    const obs::RankActivityTracker &tracker,
    const std::vector<PhaseCharacterization> &phases) const
{
    RankActivitySummary out;
    out.enabled = true;
    out.droppedRecords = tracker.dropped();
    int nranks = tracker.ranks();
    if (nranks == 0)
        return out;
    double runEnd = tracker.endUs();
    if (runEnd <= 0.0)
        runEnd = 1.0; // degenerate zero-length run: avoid 0/0 below
    out.runEndUs = tracker.endUs();

    int windows = std::max(1, cfg_.idleWindows);
    out.windowUs = runEnd / windows;
    out.ranks.resize(static_cast<std::size_t>(nranks));
    out.timeline.resize(static_cast<std::size_t>(nranks));
    out.idleWindows.assign(static_cast<std::size_t>(nranks),
                           std::vector<double>(
                               static_cast<std::size_t>(windows), 0.0));

    for (int r = 0; r < nranks; ++r) {
        const obs::RankRecord &rec = tracker.record(r);
        RankActivityRow &row = out.ranks[static_cast<std::size_t>(r)];
        row.rank = r;
        row.blockedIntervals = rec.blocked.size();
        row.markers = rec.markers.size();
        double blockedTotal = 0.0;
        auto &wins = out.idleWindows[static_cast<std::size_t>(r)];
        for (const obs::RankInterval &iv : rec.blocked) {
            double d = iv.durationUs();
            blockedTotal += d;
            if (iv.state == obs::RankState::BlockedSend)
                row.blockedSendUs += d;
            else
                row.blockedRecvUs += d;
            // Spread the interval over the idle-fraction windows.
            int w0 = std::clamp(
                static_cast<int>(iv.beginUs / out.windowUs), 0,
                windows - 1);
            int w1 = std::clamp(static_cast<int>(iv.endUs / out.windowUs),
                                0, windows - 1);
            for (int w = w0; w <= w1; ++w) {
                double lo = std::max(iv.beginUs, w * out.windowUs);
                double hi = std::min(iv.endUs, (w + 1) * out.windowUs);
                if (hi > lo)
                    wins[static_cast<std::size_t>(w)] += hi - lo;
            }
        }
        for (double &w : wins)
            w /= out.windowUs;
        row.computeUs = std::max(0.0, runEnd - blockedTotal);
        row.idleFraction = blockedTotal / runEnd;

        std::vector<obs::RankInterval> comm = mergeSpans(rec.comm);
        for (const obs::RankInterval &iv : comm)
            row.commUs += iv.durationUs();

        // Render timeline: blocked spans first (non-overlapping by
        // construction), merged comm spans after, each capped.
        auto &tl = out.timeline[static_cast<std::size_t>(r)];
        std::size_t nb = std::min(rec.blocked.size(), cfg_.timelineCap);
        std::size_t nc = std::min(comm.size(), cfg_.timelineCap);
        out.timelineDropped +=
            rec.blocked.size() - nb + comm.size() - nc;
        tl.assign(rec.blocked.begin(),
                  rec.blocked.begin() + static_cast<std::ptrdiff_t>(nb));
        tl.insert(tl.end(), comm.begin(),
                  comm.begin() + static_cast<std::ptrdiff_t>(nc));
        std::stable_sort(
            tl.begin(), tl.end(),
            [](const obs::RankInterval &a, const obs::RankInterval &b) {
                return a.beginUs < b.beginUs;
            });
    }

    // Skew at synchronization markers: marker k across ranks is skew
    // sample k; a rank leads (negative) or trails (positive) the mean.
    std::size_t samples = std::numeric_limits<std::size_t>::max();
    for (int r = 0; r < nranks; ++r)
        samples = std::min(samples, tracker.record(r).markers.size());
    if (samples == std::numeric_limits<std::size_t>::max())
        samples = 0;
    out.markerSamples = samples;
    for (std::size_t k = 0; k < samples; ++k) {
        double mean = 0.0;
        for (int r = 0; r < nranks; ++r)
            mean += tracker.record(r).markers[k];
        mean /= nranks;
        for (int r = 0; r < nranks; ++r) {
            double skew = tracker.record(r).markers[k] - mean;
            RankActivityRow &row =
                out.ranks[static_cast<std::size_t>(r)];
            row.meanSkewUs += skew;
            row.maxAbsSkewUs =
                std::max(row.maxAbsSkewUs, std::abs(skew));
            out.maxAbsSkewUs =
                std::max(out.maxAbsSkewUs, std::abs(skew));
        }
    }
    if (samples > 0) {
        for (RankActivityRow &row : out.ranks)
            row.meanSkewUs /= static_cast<double>(samples);
    }

    // Idle-wave fronts: long blocked intervals whose start times march
    // across consecutive neighboring ranks with strictly positive lag
    // bounded by maxLagUs. Greedy earliest-match chaining, seeded in
    // global front-time order (a wave's origin is its earliest front,
    // wherever it sits in the fleet), is deterministic and never
    // reuses a front for two waves.
    std::vector<std::vector<FrontEvent>> fronts(
        static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
        for (const obs::RankInterval &iv : tracker.record(r).blocked) {
            if (iv.durationUs() >= cfg_.minBlockedUs)
                fronts[static_cast<std::size_t>(r)].push_back(
                    {iv.beginUs, false});
        }
        std::sort(fronts[static_cast<std::size_t>(r)].begin(),
                  fronts[static_cast<std::size_t>(r)].end(),
                  [](const FrontEvent &a, const FrontEvent &b) {
                      return a.tUs < b.tUs;
                  });
    }
    auto chainFrom = [&](int rank, std::size_t idx, int dir) {
        std::vector<std::pair<int, std::size_t>> chain{{rank, idx}};
        double t = fronts[static_cast<std::size_t>(rank)][idx].tUs;
        for (int nr = rank + dir; nr >= 0 && nr < nranks; nr += dir) {
            auto &cand = fronts[static_cast<std::size_t>(nr)];
            std::size_t pick = cand.size();
            for (std::size_t i = 0; i < cand.size(); ++i) {
                if (cand[i].used || cand[i].tUs <= t)
                    continue;
                if (cand[i].tUs - t > cfg_.maxLagUs)
                    break;
                pick = i;
                break;
            }
            if (pick == cand.size())
                break;
            chain.emplace_back(nr, pick);
            t = cand[pick].tUs;
        }
        return chain;
    };
    struct Seed
    {
        double tUs;
        int rank;
        std::size_t idx;
    };
    std::vector<Seed> seeds;
    for (int r = 0; r < nranks; ++r) {
        auto &evs = fronts[static_cast<std::size_t>(r)];
        for (std::size_t i = 0; i < evs.size(); ++i)
            seeds.push_back({evs[i].tUs, r, i});
    }
    std::sort(seeds.begin(), seeds.end(),
              [](const Seed &a, const Seed &b) {
                  if (a.tUs != b.tUs)
                      return a.tUs < b.tUs;
                  if (a.rank != b.rank)
                      return a.rank < b.rank;
                  return a.idx < b.idx;
              });
    for (int dir : {+1, -1}) {
        for (const Seed &seed : seeds) {
            if (fronts[static_cast<std::size_t>(seed.rank)][seed.idx]
                    .used)
                continue;
            auto chain = chainFrom(seed.rank, seed.idx, dir);
            if (static_cast<int>(chain.size()) < cfg_.minRanks)
                continue;
            IdleWave wave;
            wave.rankBegin = chain.front().first;
            wave.rankEnd = chain.back().first;
            wave.extent = static_cast<int>(chain.size());
            wave.direction = dir;
            wave.tBeginUs =
                fronts[static_cast<std::size_t>(
                           chain.front().first)][chain.front().second]
                    .tUs;
            wave.tEndUs =
                fronts[static_cast<std::size_t>(
                           chain.back().first)][chain.back().second]
                    .tUs;
            double dt = wave.tEndUs - wave.tBeginUs;
            if (dt > 0.0)
                wave.speedRanksPerUs = (wave.extent - 1) / dt;
            for (auto [cr, ci] : chain)
                fronts[static_cast<std::size_t>(cr)][ci].used = true;
            // Cross-reference with the detected phases (note: on the
            // static strategy phase times come from the trace replay
            // clock, which approximates the app clock).
            for (const PhaseCharacterization &ph : phases) {
                if (wave.tBeginUs >= ph.tBegin &&
                    wave.tBeginUs < ph.tEnd) {
                    wave.phase = ph.index;
                    break;
                }
            }
            out.waves.push_back(wave);
        }
    }
    std::sort(out.waves.begin(), out.waves.end(),
              [](const IdleWave &a, const IdleWave &b) {
                  if (a.tBeginUs != b.tBeginUs)
                      return a.tBeginUs < b.tBeginUs;
                  return a.rankBegin < b.rankBegin;
              });
    return out;
}

void
publishRankMetrics(obs::MetricsRegistry &registry,
                   const RankActivitySummary &summary)
{
    std::uint64_t intervals = 0;
    std::uint64_t markers = 0;
    double idleMax = 0.0;
    double idleSum = 0.0;
    for (const RankActivityRow &row : summary.ranks) {
        intervals += row.blockedIntervals;
        markers += row.markers;
        idleMax = std::max(idleMax, row.idleFraction);
        idleSum += row.idleFraction;
    }
    registry.counter("rank.blocked_intervals").add(intervals);
    registry.counter("rank.markers").add(markers);
    registry.counter("rank.waves")
        .add(static_cast<std::uint64_t>(summary.waves.size()));
    registry.counter("rank.dropped").add(summary.droppedRecords);
    registry.gauge("rank.skew_max_us").set(summary.maxAbsSkewUs);
    registry.gauge("rank.idle_fraction_max").set(idleMax);
    registry.gauge("rank.idle_fraction_mean")
        .set(summary.ranks.empty()
                 ? 0.0
                 : idleSum / static_cast<double>(summary.ranks.size()));
    double speedMax = 0.0;
    for (const IdleWave &w : summary.waves)
        speedMax = std::max(speedMax, w.speedRanksPerUs);
    registry.gauge("rank.wave_speed_max").set(speedMax);
}

// ---------------------------------------------------------------
// LinkWeatherAnalyzer

namespace {

/** Node a directed mesh link feeds (wrap-aware), or -1 (injection). */
int
linkNeighbor(int node, int dir, const mesh::MeshConfig &mesh)
{
    int x = node % mesh.width, y = node / mesh.width;
    switch (dir) {
    case 0: // East
        x = (x + 1) % mesh.width;
        break;
    case 1: // West
        x = (x - 1 + mesh.width) % mesh.width;
        break;
    case 2: // North
        y = (y + 1) % mesh.height;
        break;
    case 3: // South
        y = (y - 1 + mesh.height) % mesh.height;
        break;
    default: // injection port
        return -1;
    }
    return y * mesh.width + x;
}

/**
 * Gini coefficient of a load vector (0 = perfectly even, -> 1 = all
 * load on one link). Sorts ascending; zero total load is 0.
 */
double
giniOf(std::vector<double> values)
{
    std::size_t n = values.size();
    if (n < 2)
        return 0.0;
    std::sort(values.begin(), values.end());
    double sum = 0.0, weighted = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        sum += values[i];
        weighted += static_cast<double>(i + 1) * values[i];
    }
    if (sum <= 0.0)
        return 0.0;
    double dn = static_cast<double>(n);
    return 2.0 * weighted / (dn * sum) - (dn + 1.0) / dn;
}

} // namespace

LinkWeatherSummary
LinkWeatherAnalyzer::analyze(
    const obs::LinkStatsTracker &tracker, const mesh::MeshConfig &mesh,
    const std::vector<PhaseCharacterization> &phases) const
{
    LinkWeatherSummary out;
    out.enabled = true;
    out.droppedFacts = tracker.dropped();
    out.runEndUs = tracker.endUs();
    double runEnd = out.runEndUs > 0.0 ? out.runEndUs : 1.0;
    out.windowUs = tracker.windowUs();

    // Effective analysis windows: those covering [0, runEnd].
    int nWin = std::clamp(
        static_cast<int>(runEnd / out.windowUs) + 1, 1,
        obs::LinkStatsTracker::kWindows);

    // ---- per-link utilization over the channel-lane universe ----
    out.avgUtilization = tracker.avgChannelUtilization(runEnd);
    out.maxUtilization = tracker.maxChannelUtilization(runEnd);
    std::vector<double> channelUtils;
    std::vector<LinkWeatherRow> rows;
    out.dirUtil.assign(4, std::vector<double>(
                              static_cast<std::size_t>(mesh.nodes()),
                              -1.0));
    for (int id = 0; id < tracker.links(); ++id) {
        const obs::LinkRecord &rec = tracker.link(id);
        if (rec.dir >= obs::kLinkInject) {
            ++out.injectionLinks;
            continue;
        }
        ++out.totalLinks;
        double util = rec.busyUs(runEnd) / runEnd;
        channelUtils.push_back(util);

        LinkWeatherRow row;
        row.node = rec.node;
        row.toNode = linkNeighbor(rec.node, rec.dir, mesh);
        row.dir = rec.dir;
        row.vc = rec.vc;
        row.utilization = util;
        row.packets = rec.packets;
        row.bytes = rec.bytes;
        row.stalls = rec.stalls;
        row.stallUs = rec.stallUs;
        row.meanQueueDepth = rec.depthIntegralUs / runEnd;
        row.peakBacklog = rec.peakBacklog;
        row.sparkline.reserve(static_cast<std::size_t>(nWin));
        for (int w = 0; w < nWin; ++w) {
            double width = std::min(out.windowUs,
                                    runEnd - w * out.windowUs);
            row.sparkline.push_back(
                width > 0.0
                    ? rec.busyWindowUs[static_cast<std::size_t>(w)] /
                          width
                    : 0.0);
        }
        rows.push_back(std::move(row));

        if (rec.node >= 0 && rec.node < mesh.nodes()) {
            double &cell =
                out.dirUtil[static_cast<std::size_t>(rec.dir)]
                           [static_cast<std::size_t>(rec.node)];
            cell = std::max(cell, util);
        }

        out.holStalls += rec.stalls;
        out.holStallUs += rec.stallUs;
    }

    {
        std::vector<double> sorted = channelUtils;
        std::sort(sorted.begin(), sorted.end());
        out.medianUtilization =
            sorted.empty() ? 0.0 : sorted[sorted.size() / 2];
    }
    out.gini = giniOf(channelUtils);

    // ---- sustained-hotspot detection ----
    double threshold = std::max(cfg_.minHotspotUtil,
                                cfg_.hotspotFactor *
                                    out.medianUtilization);
    for (LinkWeatherRow &row : rows) {
        int above = 0;
        for (double frac : row.sparkline) {
            if (frac >= out.medianUtilization && frac > 0.0)
                ++above;
        }
        row.sustainedFraction =
            row.sparkline.empty()
                ? 0.0
                : static_cast<double>(above) /
                      static_cast<double>(row.sparkline.size());
        row.hotspot = row.utilization >= threshold &&
                      row.sustainedFraction >= cfg_.sustainedFraction;
        if (row.hotspot)
            ++out.hotspotCount;
    }

    // ---- utilization ranking, bounded by --top-links ----
    std::sort(rows.begin(), rows.end(),
              [](const LinkWeatherRow &a, const LinkWeatherRow &b) {
                  if (a.utilization != b.utilization)
                      return a.utilization > b.utilization;
                  if (a.node != b.node)
                      return a.node < b.node;
                  if (a.dir != b.dir)
                      return a.dir < b.dir;
                  return a.vc < b.vc;
              });
    std::size_t keep = std::min(
        rows.size(), static_cast<std::size_t>(std::max(cfg_.topLinks, 0)));
    out.elidedLinks = static_cast<int>(rows.size() - keep);
    rows.resize(keep);
    // Sparklines are rendered for hotspots only; drop the rest so the
    // report payload stays proportional to what is drawn.
    for (LinkWeatherRow &row : rows) {
        if (!row.hotspot)
            row.sparkline.clear();
    }
    out.links = std::move(rows);

    // ---- per-router forwarding totals ----
    std::vector<RouterLoadRow> routers;
    for (int nodeId = 0; nodeId < tracker.routers(); ++nodeId) {
        const obs::RouterRecord &rr = tracker.router(nodeId);
        if (rr.forwards == 0)
            continue;
        routers.push_back({nodeId, rr.forwards, rr.bytes});
    }
    std::sort(routers.begin(), routers.end(),
              [](const RouterLoadRow &a, const RouterLoadRow &b) {
                  if (a.forwards != b.forwards)
                      return a.forwards > b.forwards;
                  return a.node < b.node;
              });
    if (routers.size() >
        static_cast<std::size_t>(std::max(cfg_.topLinks, 0)))
        routers.resize(static_cast<std::size_t>(cfg_.topLinks));
    out.routers = std::move(routers);

    // ---- offered vs delivered throughput and the congestion knee ----
    out.offeredBytes = tracker.offeredBytes();
    out.deliveredBytes = tracker.deliveredBytes();
    const auto &offered = tracker.offeredWindowBytes();
    const auto &delivered = tracker.deliveredWindowBytes();
    out.offeredSeries.reserve(static_cast<std::size_t>(nWin));
    out.deliveredSeries.reserve(static_cast<std::size_t>(nWin));
    for (int w = 0; w < nWin; ++w) {
        out.offeredSeries.push_back(
            offered[static_cast<std::size_t>(w)] / out.windowUs);
        out.deliveredSeries.push_back(
            delivered[static_cast<std::size_t>(w)] / out.windowUs);
    }
    struct LoadPoint
    {
        double offered;
        double efficiency;
        int window;
    };
    std::vector<LoadPoint> active;
    for (int w = 0; w < nWin; ++w) {
        double off = out.offeredSeries[static_cast<std::size_t>(w)];
        if (off <= 0.0)
            continue;
        active.push_back(
            {off, out.deliveredSeries[static_cast<std::size_t>(w)] / off,
             w});
    }
    if (static_cast<int>(active.size()) >= cfg_.minKneeWindows) {
        std::vector<LoadPoint> byLoad = active;
        std::sort(byLoad.begin(), byLoad.end(),
                  [](const LoadPoint &a, const LoadPoint &b) {
                      if (a.offered != b.offered)
                          return a.offered < b.offered;
                      return a.window < b.window;
                  });
        // Baseline efficiency: median of the lowest-offered quartile,
        // where the network is assumed uncongested.
        std::size_t quartile = std::max<std::size_t>(
            1, byLoad.size() / 4);
        std::vector<double> eff;
        for (std::size_t i = 0; i < quartile; ++i)
            eff.push_back(byLoad[i].efficiency);
        std::sort(eff.begin(), eff.end());
        double baseline = eff[eff.size() / 2];
        double cutoff = cfg_.kneeEfficiency * baseline;
        double onsetLoad = 0.0;
        int onsetWindow = -1;
        for (const LoadPoint &p : byLoad) {
            if (p.efficiency < cutoff) {
                onsetLoad = p.offered;
                break;
            }
        }
        if (onsetLoad > 0.0) {
            for (const LoadPoint &p : active) {
                double off = p.offered;
                if (off >= onsetLoad && p.efficiency < cutoff) {
                    onsetWindow = p.window;
                    break;
                }
            }
        }
        if (onsetWindow >= 0) {
            out.congestionOnsetLoad = onsetLoad;
            out.congestionOnsetUs = onsetWindow * out.windowUs;
            for (const PhaseCharacterization &ph : phases) {
                if (out.congestionOnsetUs >= ph.tBegin &&
                    out.congestionOnsetUs < ph.tEnd) {
                    out.congestionPhase = ph.index;
                    break;
                }
            }
        }
    }
    return out;
}

void
publishLinkMetrics(obs::MetricsRegistry &registry,
                   const LinkWeatherSummary &summary)
{
    registry.counter("link.hol_stalls").add(summary.holStalls);
    registry.counter("link.hotspots")
        .add(static_cast<std::uint64_t>(summary.hotspotCount));
    registry.counter("link.offered_bytes").add(summary.offeredBytes);
    registry.counter("link.delivered_bytes")
        .add(summary.deliveredBytes);
    registry.counter("link.dropped").add(summary.droppedFacts);
    registry.gauge("link.max_util").set(summary.maxUtilization);
    registry.gauge("link.avg_util").set(summary.avgUtilization);
    registry.gauge("link.gini").set(summary.gini);
    registry.gauge("link.onset_load").set(summary.congestionOnsetLoad);
    registry.gauge("link.tracked_links")
        .set(static_cast<double>(summary.totalLinks));
}

} // namespace cchar::core
