#include "analyzers.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>

namespace cchar::core {

// ---------------------------------------------------------------
// TemporalAnalyzer

TemporalFit
TemporalAnalyzer::analyzeAggregate(const trace::TrafficLog &log) const
{
    TemporalFit out;
    out.source = -1;
    auto gaps = log.interArrivalTimes(-1);
    out.stats = stats::SummaryStats::compute(gaps);
    out.fit = fitter_.bestFit(gaps);
    return out;
}

TemporalFit
TemporalAnalyzer::analyzeSource(const trace::TrafficLog &log,
                                int source) const
{
    TemporalFit out;
    out.source = source;
    auto gaps = log.interArrivalTimes(source);
    out.stats = stats::SummaryStats::compute(gaps);
    out.fit = fitter_.bestFit(gaps);
    return out;
}

std::vector<TemporalFit>
TemporalAnalyzer::analyzeAllSources(const trace::TrafficLog &log,
                                    std::size_t min_samples) const
{
    std::vector<TemporalFit> fits;
    for (int src = 0; src < log.nprocs(); ++src) {
        auto gaps = log.interArrivalTimes(src);
        if (gaps.size() < min_samples)
            continue;
        fits.push_back(analyzeSource(log, src));
    }
    return fits;
}

std::vector<TemporalFit>
TemporalAnalyzer::analyzeWindows(const trace::TrafficLog &log,
                                 int windows,
                                 std::size_t min_samples) const
{
    std::vector<TemporalFit> fits;
    if (windows <= 0 || log.empty())
        return fits;
    double end = log.lastDeliverTime();
    if (end <= 0.0)
        return fits;
    double width = end / static_cast<double>(windows);

    // Bucket injection times by window.
    std::vector<std::vector<double>> buckets(
        static_cast<std::size_t>(windows));
    for (const auto &rec : log.records()) {
        auto w = static_cast<std::size_t>(rec.injectTime / width);
        if (w >= buckets.size())
            w = buckets.size() - 1;
        buckets[w].push_back(rec.injectTime);
    }
    for (int w = 0; w < windows; ++w) {
        auto &times = buckets[static_cast<std::size_t>(w)];
        std::sort(times.begin(), times.end());
        std::vector<double> gaps;
        for (std::size_t i = 1; i < times.size(); ++i)
            gaps.push_back(times[i] - times[i - 1]);
        TemporalFit fit;
        fit.source = w; // window index doubles as the label
        fit.stats = stats::SummaryStats::compute(gaps);
        if (gaps.size() >= min_samples)
            fit.fit = fitter_.bestFit(gaps);
        fits.push_back(std::move(fit));
    }
    return fits;
}

// ---------------------------------------------------------------
// PhaseAnalyzer

int
PhaseAnalyzer::windowsFor(const trace::TrafficLog &log) const
{
    if (cfg_.windows > 0)
        return cfg_.windows;
    // Auto: aim for ~32 messages per window so the rate signal's
    // sampling noise stays well below a phase-level change, but keep
    // enough windows (> warmup + confirm) for detection to engage.
    auto n = static_cast<int>(log.size() / 32);
    return std::clamp(n, 16, 96);
}

std::vector<obs::Phase>
PhaseAnalyzer::detect(const trace::TrafficLog &log) const
{
    std::vector<obs::Phase> phases;
    if (log.empty())
        return phases;
    double end = log.lastDeliverTime();
    if (end <= 0.0)
        return phases;
    int windows = windowsFor(log);
    double width = end / static_cast<double>(windows);

    // Per-window signal accumulators.
    struct Window
    {
        double count = 0.0;
        double bytes = 0.0;
        std::map<int, double> dsts;
    };
    std::vector<Window> wins(static_cast<std::size_t>(windows));
    for (const auto &rec : log.records()) {
        auto w = static_cast<std::size_t>(rec.injectTime / width);
        if (w >= wins.size())
            w = wins.size() - 1;
        wins[w].count += 1.0;
        wins[w].bytes += rec.bytes;
        wins[w].dsts[rec.dst] += 1.0;
    }

    double hMax =
        log.nprocs() > 1 ? std::log2(static_cast<double>(log.nprocs()))
                         : 1.0;
    obs::PhaseDetector detector(3, cfg_.detector);
    for (int w = 0; w < windows; ++w) {
        const Window &win = wins[static_cast<std::size_t>(w)];
        double rate = win.count / width;
        double meanBytes =
            win.count > 0.0 ? win.bytes / win.count : 0.0;
        double entropy = 0.0;
        if (!win.dsts.empty()) {
            std::vector<double> counts;
            counts.reserve(win.dsts.size());
            for (const auto &[dst, c] : win.dsts)
                counts.push_back(c);
            entropy =
                stats::DiscretePmf::fromCounts(counts).entropy() / hMax;
        }
        detector.observe(width * w, width * (w + 1),
                         {rate, meanBytes, entropy});
    }
    return detector.finish();
}

std::vector<PhaseCharacterization>
PhaseAnalyzer::analyze(const trace::TrafficLog &log) const
{
    std::vector<PhaseCharacterization> out;
    auto phases = detect(log);
    if (phases.empty())
        return out;

    SpatialAnalyzer spatial{classifier_};
    double hMax =
        log.nprocs() > 1 ? std::log2(static_cast<double>(log.nprocs()))
                         : 1.0;
    for (std::size_t i = 0; i < phases.size(); ++i) {
        const obs::Phase &ph = phases[i];
        // Sub-log of messages injected inside the phase span. The last
        // phase takes a closed upper bound so the final record is not
        // orphaned by floating-point division.
        trace::TrafficLog sub(log.nprocs());
        bool last = i + 1 == phases.size();
        for (const auto &rec : log.records()) {
            if (rec.injectTime >= ph.tBegin &&
                (rec.injectTime < ph.tEnd ||
                 (last && rec.injectTime <= ph.tEnd))) {
                sub.add(rec);
            }
        }

        PhaseCharacterization pc;
        pc.index = static_cast<int>(i);
        pc.tBegin = ph.tBegin;
        pc.tEnd = ph.tEnd;
        pc.messageCount = sub.size();
        double span = ph.tEnd - ph.tBegin;
        for (const auto &rec : sub.records())
            pc.totalBytes += rec.bytes;
        pc.injectionRate =
            span > 0.0 ? static_cast<double>(sub.size()) / span : 0.0;
        pc.meanBytes = sub.empty() ? 0.0
                                   : pc.totalBytes /
                                         static_cast<double>(sub.size());
        if (!sub.empty()) {
            std::map<int, double> dsts;
            for (const auto &rec : sub.records())
                dsts[rec.dst] += 1.0;
            std::vector<double> counts;
            for (const auto &[dst, c] : dsts)
                counts.push_back(c);
            pc.dstEntropy =
                stats::DiscretePmf::fromCounts(counts).entropy() / hMax;
            pc.temporal.source = -1;
            auto gaps = sub.interArrivalTimes(-1);
            pc.temporal.stats = stats::SummaryStats::compute(gaps);
            if (gaps.size() >= cfg_.minSamples)
                pc.temporal.fit = fitter_.bestFit(gaps);
            pc.spatial = spatial.analyzeAggregate(sub);
        }
        out.push_back(std::move(pc));
    }
    return out;
}

// ---------------------------------------------------------------
// SpatialAnalyzer

SpatialFit
SpatialAnalyzer::analyzeSource(const trace::TrafficLog &log,
                               int source) const
{
    SpatialFit out;
    out.source = source;
    out.observed =
        stats::DiscretePmf::fromCounts(log.destinationCounts(source));
    out.classification = classifier_.classify(out.observed, source);
    return out;
}

std::vector<SpatialFit>
SpatialAnalyzer::analyzeAllSources(const trace::TrafficLog &log) const
{
    std::vector<SpatialFit> fits;
    auto counts = log.sourceCounts();
    for (int src = 0; src < log.nprocs(); ++src) {
        if (counts[static_cast<std::size_t>(src)] > 0.0)
            fits.push_back(analyzeSource(log, src));
    }
    return fits;
}

stats::SpatialClassification
SpatialAnalyzer::analyzeAggregate(const trace::TrafficLog &log) const
{
    // Average the per-source destination PMFs ("a simple averaging of
    // the means of all the processors can be done to define a single
    // expression"), then classify. Self-destinations are structurally
    // zero per source, so the aggregate PMF has no meaningful self
    // entry: classify with self = -1.
    int n = log.nprocs();
    std::vector<double> avg(static_cast<std::size_t>(n), 0.0);
    int contributing = 0;
    for (int src = 0; src < n; ++src) {
        auto pmf =
            stats::DiscretePmf::fromCounts(log.destinationCounts(src));
        if (pmf.size() == 0)
            continue;
        bool any = false;
        for (std::size_t i = 0; i < pmf.size(); ++i) {
            avg[i] += pmf[i];
            if (pmf[i] > 0.0)
                any = true;
        }
        if (any)
            ++contributing;
    }
    stats::SpatialClassification out;
    if (contributing == 0)
        return out;
    return classifier_.classify(stats::DiscretePmf{std::move(avg)}, -1);
}

std::vector<double>
SpatialAnalyzer::hopDistanceProfile(const trace::TrafficLog &log,
                                    const mesh::MeshConfig &mesh)
{
    bool torus = mesh.topology == mesh::Topology::Torus;
    int maxHops = torus ? mesh.width / 2 + mesh.height / 2
                        : (mesh.width - 1) + (mesh.height - 1);
    std::vector<double> counts(static_cast<std::size_t>(maxHops) + 1,
                               0.0);
    double total = 0.0;
    auto dist1d = [torus](int a, int b, int extent) {
        int d = std::abs(a - b);
        return torus ? std::min(d, extent - d) : d;
    };
    for (const auto &rec : log.records()) {
        int sx = rec.src % mesh.width, sy = rec.src / mesh.width;
        int dx = rec.dst % mesh.width, dy = rec.dst / mesh.width;
        int hops = dist1d(sx, dx, mesh.width) +
                   dist1d(sy, dy, mesh.height);
        counts[static_cast<std::size_t>(hops)] += 1.0;
        total += 1.0;
    }
    if (total > 0.0) {
        for (double &c : counts)
            c /= total;
    }
    return counts;
}

// ---------------------------------------------------------------
// BandwidthAnalyzer

std::vector<double>
BandwidthAnalyzer::profile(const trace::TrafficLog &log, int windows,
                           int source)
{
    std::vector<double> out;
    if (windows <= 0 || log.empty())
        return out;
    double end = log.lastDeliverTime();
    if (end <= 0.0)
        return out;
    double width = end / static_cast<double>(windows);
    out.assign(static_cast<std::size_t>(windows), 0.0);
    for (const auto &rec : log.records()) {
        if (source >= 0 && rec.src != source)
            continue;
        auto w = static_cast<std::size_t>(rec.injectTime / width);
        if (w >= out.size())
            w = out.size() - 1;
        out[w] += rec.bytes;
    }
    for (double &bytes : out)
        bytes /= width;
    return out;
}

double
BandwidthAnalyzer::peakToMean(const std::vector<double> &profile)
{
    if (profile.empty())
        return 0.0;
    double sum = 0.0, peak = 0.0;
    for (double v : profile) {
        sum += v;
        peak = std::max(peak, v);
    }
    double mean = sum / static_cast<double>(profile.size());
    return mean > 0.0 ? peak / mean : 0.0;
}

// ---------------------------------------------------------------
// VolumeAnalyzer

VolumeCharacterization
VolumeAnalyzer::analyze(const trace::TrafficLog &log) const
{
    VolumeCharacterization out;
    out.messageCount = log.size();
    auto lengths = log.messageLengths();
    out.lengthStats = stats::SummaryStats::compute(lengths);
    for (double b : lengths)
        out.totalBytes += b;
    std::map<int, double> sizes;
    for (const auto &rec : log.records())
        sizes[rec.bytes] += 1.0;
    for (auto &[bytes, count] : sizes) {
        out.lengthPmf.emplace_back(
            bytes, count / static_cast<double>(out.messageCount));
    }
    out.perSourceCounts = log.sourceCounts();
    return out;
}

} // namespace cchar::core
