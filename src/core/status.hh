/**
 * @file
 * Structured error model and bounded diagnostic sink.
 *
 * Replaces raw throw-to-death error handling in trace ingestion,
 * replay and the runtimes: every failure is classified with a
 * StatusCode (which maps 1:1 onto the cchar CLI's documented exit
 * codes), carried by a CCharError exception, and — for recoverable
 * problems in lenient mode — reported to a DiagnosticSink instead of
 * aborting the run.
 *
 * The sink is bounded: it keeps the first `maxEntries` diagnostics
 * verbatim and only counts the rest, so a trace with a million
 * malformed records cannot blow up memory or drown the report.
 *
 * This header is deliberately header-only so that the lower layers
 * (trace, mp, ccnuma) can use the classification without a link-time
 * dependency on the core library.
 */

#ifndef CCHAR_CORE_STATUS_HH
#define CCHAR_CORE_STATUS_HH

#include <cstdint>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace cchar::core {

/** Failure classification; maps onto the cchar CLI exit codes. */
enum class StatusCode
{
    Ok = 0,
    /** Bad command line / API usage (cchar exit 2). */
    UsageError,
    /** Malformed input: trace file, fault plan... (cchar exit 3). */
    ParseError,
    /** Missing or unwritable file (cchar exit 3). */
    IoError,
    /** The simulation failed: deadlock, event cap... (cchar exit 4). */
    SimError,
    /** The no-progress watchdog tripped (cchar exit 5). */
    WatchdogTrip,
    /**
     * A wall-clock job deadline expired (cchar exit 6). Raised by the
     * sweep orchestrator when --job-timeout converts a hung or
     * livelocked job into a recorded per-job failure.
     */
    DeadlineExceeded,
    /**
     * The run was interrupted (SIGINT/SIGTERM) after a graceful
     * drain; completed work was journaled and the run is resumable
     * with `cchar sweep --resume` (cchar exit 7).
     */
    Interrupted,
};

/** Documented process exit code of a status class. */
constexpr int
exitCodeOf(StatusCode code)
{
    switch (code) {
    case StatusCode::Ok:
        return 0;
    case StatusCode::UsageError:
        return 2;
    case StatusCode::ParseError:
    case StatusCode::IoError:
        return 3;
    case StatusCode::SimError:
        return 4;
    case StatusCode::WatchdogTrip:
        return 5;
    case StatusCode::DeadlineExceeded:
        return 6;
    case StatusCode::Interrupted:
        return 7;
    }
    return 4;
}

/** Short lowercase tag of a status class ("parse-error"...). */
inline const char *
toString(StatusCode code)
{
    switch (code) {
    case StatusCode::Ok:
        return "ok";
    case StatusCode::UsageError:
        return "usage-error";
    case StatusCode::ParseError:
        return "parse-error";
    case StatusCode::IoError:
        return "io-error";
    case StatusCode::SimError:
        return "sim-error";
    case StatusCode::WatchdogTrip:
        return "watchdog-trip";
    case StatusCode::DeadlineExceeded:
        return "deadline-exceeded";
    case StatusCode::Interrupted:
        return "interrupted";
    }
    return "sim-error";
}

/** A classified success/failure value. */
class Status
{
  public:
    Status() = default;

    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {}

    static Status ok() { return Status{}; }

    static Status
    parseError(std::string message)
    {
        return Status{StatusCode::ParseError, std::move(message)};
    }

    static Status
    ioError(std::string message)
    {
        return Status{StatusCode::IoError, std::move(message)};
    }

    static Status
    simError(std::string message)
    {
        return Status{StatusCode::SimError, std::move(message)};
    }

    static Status
    usageError(std::string message)
    {
        return Status{StatusCode::UsageError, std::move(message)};
    }

    bool isOk() const { return code_ == StatusCode::Ok; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_{};
};

/**
 * Exception carrying a Status. Derives std::runtime_error so existing
 * catch sites (and tests) keep working; new code can catch CCharError
 * and map status().code() onto an exit code.
 */
class CCharError : public std::runtime_error
{
  public:
    explicit CCharError(Status status)
        : std::runtime_error(status.message()), status_(std::move(status))
    {}

    CCharError(StatusCode code, const std::string &message)
        : CCharError(Status{code, message})
    {}

    const Status &status() const { return status_; }

  private:
    Status status_;
};

/** Severity of a recoverable diagnostic. */
enum class DiagSeverity
{
    Info,
    Warning,
    Error,
};

inline const char *
toString(DiagSeverity severity)
{
    switch (severity) {
    case DiagSeverity::Info:
        return "info";
    case DiagSeverity::Warning:
        return "warning";
    case DiagSeverity::Error:
        return "error";
    }
    return "info";
}

/** One recoverable diagnostic. */
struct Diagnostic
{
    DiagSeverity severity = DiagSeverity::Warning;
    std::string message;
};

/**
 * Bounded collector of recoverable diagnostics. Keeps the first
 * `maxEntries` messages verbatim; everything past the cap is only
 * counted (total() keeps growing, suppressed() says how many messages
 * were dropped).
 */
class DiagnosticSink
{
  public:
    explicit DiagnosticSink(std::size_t maxEntries = 64)
        : maxEntries_(maxEntries)
    {}

    void
    report(DiagSeverity severity, std::string message)
    {
        ++total_;
        switch (severity) {
        case DiagSeverity::Info:
            ++infos_;
            break;
        case DiagSeverity::Warning:
            ++warnings_;
            break;
        case DiagSeverity::Error:
            ++errors_;
            break;
        }
        if (entries_.size() < maxEntries_)
            entries_.push_back({severity, std::move(message)});
        else
            ++suppressed_;
    }

    const std::vector<Diagnostic> &entries() const { return entries_; }
    std::uint64_t total() const { return total_; }
    std::uint64_t suppressed() const { return suppressed_; }
    std::uint64_t infos() const { return infos_; }
    std::uint64_t warnings() const { return warnings_; }
    std::uint64_t errors() const { return errors_; }
    bool empty() const { return total_ == 0; }

    void
    clear()
    {
        entries_.clear();
        total_ = suppressed_ = infos_ = warnings_ = errors_ = 0;
    }

    /** Human-readable dump ("warning: ..." per line + suppression note). */
    void
    writeText(std::ostream &os) const
    {
        for (const auto &d : entries_)
            os << toString(d.severity) << ": " << d.message << "\n";
        if (suppressed_ > 0) {
            os << "(" << suppressed_
               << " further diagnostics suppressed)\n";
        }
    }

  private:
    std::size_t maxEntries_;
    std::vector<Diagnostic> entries_;
    std::uint64_t total_ = 0;
    std::uint64_t suppressed_ = 0;
    std::uint64_t infos_ = 0;
    std::uint64_t warnings_ = 0;
    std::uint64_t errors_ = 0;
};

namespace detail {

inline DiagnosticSink *&
diagnosticsSlot()
{
    // Thread-local so concurrent sweep workers each report to their
    // own sink; a single-threaded driver sees no difference.
    thread_local DiagnosticSink *slot = nullptr;
    return slot;
}

} // namespace detail

/** This thread's currently installed diagnostic sink, or nullptr. */
inline DiagnosticSink *
diagnostics()
{
    return detail::diagnosticsSlot();
}

/** Install (or with nullptr, remove) this thread's sink. */
inline void
setDiagnostics(DiagnosticSink *sink)
{
    detail::diagnosticsSlot() = sink;
}

/** Report to this thread's sink if one is installed (else no-op). */
inline void
reportDiagnostic(DiagSeverity severity, std::string message)
{
    if (DiagnosticSink *sink = diagnostics())
        sink->report(severity, std::move(message));
}

/** RAII installer for the process-wide sink (tests, CLI). */
class ScopedDiagnostics
{
  public:
    explicit ScopedDiagnostics(DiagnosticSink *sink) : prev_(diagnostics())
    {
        setDiagnostics(sink);
    }

    ScopedDiagnostics(const ScopedDiagnostics &) = delete;
    ScopedDiagnostics &operator=(const ScopedDiagnostics &) = delete;

    ~ScopedDiagnostics() { setDiagnostics(prev_); }

  private:
    DiagnosticSink *prev_;
};

} // namespace cchar::core

#endif // CCHAR_CORE_STATUS_HH
