/**
 * @file
 * Self-contained HTML run report.
 *
 * Renders one characterization run — metrics snapshot, detected phase
 * timeline, end-to-end latency decomposition, spatial traffic heatmap
 * and windowed telemetry — into a single HTML document with inline
 * SVG and CSS only: no external assets, no scripts beyond one
 * embedded machine-readable JSON block, and byte-deterministic output
 * (two identical runs produce identical files).
 *
 * The raw data backing every figure is embedded verbatim in
 * <script type="application/json" id="cchar-report-data">, so the
 * file doubles as an archive of the run.
 */

#ifndef CCHAR_CORE_REPORT_HTML_HH
#define CCHAR_CORE_REPORT_HTML_HH

#include <iosfwd>

#include "obs/obs.hh"
#include "report.hh"

namespace cchar::core {

/** Everything the HTML report can render; only `report` is required. */
struct HtmlReportInputs
{
    const CharacterizationReport *report = nullptr;
    /** Metrics snapshot + latency-decomposition histograms. */
    const obs::MetricsRegistry *registry = nullptr;
    /** Windowed telemetry (injection-rate timeline). */
    const obs::WindowedSampler *sampler = nullptr;
    /** Message-lifecycle records. */
    const obs::FlowTracker *flows = nullptr;
};

/**
 * Write the report document.
 * @throws std::invalid_argument when inputs.report is null.
 */
void writeHtmlReport(std::ostream &os, const HtmlReportInputs &inputs);

} // namespace cchar::core

#endif // CCHAR_CORE_REPORT_HTML_HH
