/**
 * @file
 * The end-to-end characterization pipeline — the paper's methodology.
 *
 * Dynamic strategy: execute a shared-memory application on the
 * simulated CC-NUMA machine (execution-driven, with network feedback),
 * log every coherence/synchronization message the 2-D mesh carries,
 * and run the statistical analysis on the log.
 *
 * Static strategy: execute a message-passing application on the
 * SP2-model runtime with application-level tracing, replay the trace
 * into the same 2-D mesh simulator, and analyze the replayed log.
 */

#ifndef CCHAR_CORE_PIPELINE_HH
#define CCHAR_CORE_PIPELINE_HH

#include "analyzers.hh"
#include "apps/app.hh"
#include "replay.hh"
#include "report.hh"

namespace cchar::core {

/** Analysis knobs of the pipeline. */
struct PipelineOptions
{
    stats::DistributionFitter fitter{};
    stats::SpatialClassifier classifier{};
    /** Minimum messages for a per-source temporal fit. */
    std::size_t minSamplesPerSource = 8;
    /** Produce per-source fits (aggregate only if false). */
    bool perSource = true;
    /**
     * Optional windowed telemetry sink. When set, the standard
     * network series (see attachNetworkTelemetry) are captured every
     * samplePeriodUs of simulated time during the run — for the
     * static strategy, during the replay phase. Must outlive the run.
     */
    obs::WindowedSampler *sampler = nullptr;
    double samplePeriodUs = 50.0;
    /**
     * Run the phase detector and characterize each detected phase
     * (report.phases). Off by default: reports analyzed without it
     * render byte-identically to earlier versions.
     */
    bool detectPhases = false;
    /** Phase-detection parameters (used when detectPhases is set). */
    PhaseAnalysisConfig phase{};
};

/** Runs applications and produces characterization reports. */
class CharacterizationPipeline
{
  public:
    CharacterizationPipeline() : opts_() {}

    explicit CharacterizationPipeline(PipelineOptions opts)
        : opts_(std::move(opts))
    {}

    /**
     * Dynamic strategy: run `app` on a CC-NUMA machine of the given
     * configuration and characterize the generated traffic.
     */
    CharacterizationReport
    runDynamic(apps::SharedMemoryApp &app,
               const ccnuma::MachineConfig &cfg) const;

    /**
     * Static strategy: run `app` on the MP runtime with tracing,
     * replay the trace into the mesh, and characterize the replayed
     * traffic.
     *
     * @param trace_out Optional sink for the collected trace.
     */
    CharacterizationReport
    runStatic(apps::MessagePassingApp &app, const mp::MpConfig &cfg,
              trace::Trace *trace_out = nullptr) const;

    /** Shared analysis step on an existing network log. */
    CharacterizationReport
    analyze(const trace::TrafficLog &log, const mesh::MeshConfig &mesh,
            const std::string &application, Strategy strategy,
            const NetworkSummary &network) const;

  private:
    PipelineOptions opts_;
};

} // namespace cchar::core

#endif // CCHAR_CORE_PIPELINE_HH
