/**
 * @file
 * Wiring between the observability layer and a running simulation:
 * the standard windowed network telemetry series, and the combined
 * metrics document the `cchar --metrics-out` flag emits.
 */

#ifndef CCHAR_CORE_TELEMETRY_HH
#define CCHAR_CORE_TELEMETRY_HH

#include <iosfwd>

#include "desim/desim.hh"
#include "mesh/mesh.hh"
#include "obs/obs.hh"

namespace cchar::core {

/**
 * Register the standard network time series on `sampler` and drive it
 * from the simulator clock every `periodUs`:
 *
 *  - injection_rate_per_us: messages injected per microsecond in the
 *    elapsed window;
 *  - avg_channel_utilization: mean lane utilization over the window;
 *  - mean_msg_bytes: mean payload length of the window's messages;
 *  - busy_lanes: lanes held by a worm at the sample instant (VC
 *    occupancy);
 *  - queued_worms: worms blocked on a lane or injection port;
 *  - calendar_depth: pending events in the simulator calendar.
 *
 * Must be called before sim.run() and before the sampler's first
 * sample. The sampler must outlive the run.
 */
void attachNetworkTelemetry(desim::Simulator &sim,
                            mesh::MeshNetwork &net,
                            obs::WindowedSampler &sampler,
                            double periodUs);

/**
 * Combined observability document:
 * {"metrics":{...},"telemetry":{...},"flows":{...}} — any part may be
 * null when the corresponding sink was absent.
 */
void writeMetricsJson(std::ostream &os,
                      const obs::MetricsRegistry *registry,
                      const obs::WindowedSampler *sampler,
                      const obs::FlowTracker *flows = nullptr);

} // namespace cchar::core

#endif // CCHAR_CORE_TELEMETRY_HH
