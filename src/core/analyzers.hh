/**
 * @file
 * The three attribute analyzers of the characterization methodology.
 *
 * Each analyzer consumes the network activity log and produces one of
 * the paper's three communication attributes: TemporalAnalyzer fits
 * the message inter-arrival time distribution (the SAS regression
 * step), SpatialAnalyzer classifies the destination distribution per
 * source, and VolumeAnalyzer summarizes message counts and lengths.
 */

#ifndef CCHAR_CORE_ANALYZERS_HH
#define CCHAR_CORE_ANALYZERS_HH

#include "obs/phases.hh"
#include "report.hh"

namespace cchar::core {

/** Fits inter-arrival time distributions. */
class TemporalAnalyzer
{
  public:
    explicit TemporalAnalyzer(stats::DistributionFitter fitter =
                                  stats::DistributionFitter{})
        : fitter_(std::move(fitter))
    {}

    /** Aggregate arrival process at the network. */
    TemporalFit analyzeAggregate(const trace::TrafficLog &log) const;

    /** One source's arrival process. */
    TemporalFit analyzeSource(const trace::TrafficLog &log,
                              int source) const;

    /** All sources (skips sources with < minSamples messages). */
    std::vector<TemporalFit>
    analyzeAllSources(const trace::TrafficLog &log,
                      std::size_t min_samples = 8) const;

    /**
     * Phase profile: split the run into `windows` equal time slices
     * and fit the aggregate arrival process of each slice
     * independently. Applications with compute/communicate phases
     * (e.g. the FFTs' local vs transpose stages) show markedly
     * different rates and families across windows.
     *
     * Windows with fewer than `min_samples` messages get summary
     * statistics but no fit (fit.dist left null).
     */
    std::vector<TemporalFit>
    analyzeWindows(const trace::TrafficLog &log, int windows,
                   std::size_t min_samples = 8) const;

  private:
    stats::DistributionFitter fitter_;
};

/** Classifies per-source destination distributions. */
class SpatialAnalyzer
{
  public:
    explicit SpatialAnalyzer(stats::SpatialClassifier classifier =
                                 stats::SpatialClassifier{})
        : classifier_(classifier)
    {}

    /** One source's destination PMF and classification. */
    SpatialFit analyzeSource(const trace::TrafficLog &log,
                             int source) const;

    /** All sources with at least one message. */
    std::vector<SpatialFit>
    analyzeAllSources(const trace::TrafficLog &log) const;

    /** Classification of the source-averaged destination PMF. */
    stats::SpatialClassification
    analyzeAggregate(const trace::TrafficLog &log) const;

    /** Fraction of messages at each hop distance on the given mesh. */
    static std::vector<double>
    hopDistanceProfile(const trace::TrafficLog &log,
                       const mesh::MeshConfig &mesh);

  private:
    stats::SpatialClassifier classifier_;
};

/** Phase-detection parameters of the PhaseAnalyzer. */
struct PhaseAnalysisConfig
{
    /**
     * Number of detector windows over the run; 0 picks one from the
     * log size (enough samples per window for stable signals, enough
     * windows for the detector's warmup).
     */
    int windows = 0;
    /** Change-point sensitivity. */
    obs::PhaseDetectorConfig detector{};
    /** Minimum messages in a phase for a temporal fit. */
    std::size_t minSamples = 8;
};

/**
 * Segments a run into execution phases and characterizes each.
 *
 * Feeds three per-window signals — injection rate, mean message
 * length, normalized destination entropy — to the streaming
 * obs::PhaseDetector, then re-runs the temporal and spatial
 * characterization on each detected segment of the log.
 */
class PhaseAnalyzer
{
  public:
    explicit PhaseAnalyzer(PhaseAnalysisConfig cfg = {},
                           stats::DistributionFitter fitter =
                               stats::DistributionFitter{},
                           stats::SpatialClassifier classifier =
                               stats::SpatialClassifier{})
        : cfg_(cfg), fitter_(std::move(fitter)), classifier_(classifier)
    {}

    /** Effective window count for a log (resolves windows == 0). */
    int windowsFor(const trace::TrafficLog &log) const;

    /** Raw segmentation: phase boundaries in time. */
    std::vector<obs::Phase> detect(const trace::TrafficLog &log) const;

    /** Segmentation plus per-phase characterization. */
    std::vector<PhaseCharacterization>
    analyze(const trace::TrafficLog &log) const;

  private:
    PhaseAnalysisConfig cfg_;
    stats::DistributionFitter fitter_;
    stats::SpatialClassifier classifier_;
};

/** Summarizes message counts and lengths. */
class VolumeAnalyzer
{
  public:
    VolumeCharacterization analyze(const trace::TrafficLog &log) const;
};

/**
 * Offered-bandwidth profile over time, after the bandwidth
 * requirements characterization the paper builds on: bytes offered to
 * the network per time window (aggregate or per source).
 */
class BandwidthAnalyzer
{
  public:
    /**
     * @param log     Network log.
     * @param windows Number of equal time slices.
     * @param source  Restrict to one source, or -1 for all.
     * @return bytes/us offered in each window.
     */
    static std::vector<double> profile(const trace::TrafficLog &log,
                                       int windows, int source = -1);

    /** Peak-to-mean ratio of the profile (burstiness indicator). */
    static double peakToMean(const std::vector<double> &profile);
};

/** Detection parameters of the RankActivityAnalyzer. */
struct RankActivityConfig
{
    /**
     * Blocked intervals shorter than this never join an idle wave.
     * The default sits well above the per-message software overhead
     * (~73 us for control messages), so routine recv waits in a
     * healthy run do not register as fronts while fault-induced
     * stalls (typically >= 1 ms) do.
     */
    double minBlockedUs = 300.0;
    /** Maximum front lag between neighboring ranks (us). */
    double maxLagUs = 2000.0;
    /** Minimum ranks a front must traverse to count as a wave. */
    int minRanks = 3;
    /** Idle-fraction windows over the run. */
    int idleWindows = 24;
    /** Rendered timeline spans kept per rank (totals stay exact). */
    std::size_t timelineCap = 512;
};

/**
 * Derives the desynchronization view from a RankActivityTracker:
 * per-rank time decomposition (compute / blocked-send / blocked-recv /
 * merged in-network time), skew at synchronization markers, windowed
 * idle fractions, and idle-wave fronts propagating across neighboring
 * ranks. Waves are cross-referenced against the detected phases by
 * start time.
 */
class RankActivityAnalyzer
{
  public:
    explicit RankActivityAnalyzer(RankActivityConfig cfg = {})
        : cfg_(cfg)
    {}

    RankActivitySummary
    analyze(const obs::RankActivityTracker &tracker,
            const std::vector<PhaseCharacterization> &phases = {}) const;

  private:
    RankActivityConfig cfg_;
};

/**
 * Register the rank.* metric family from an analyzed summary. Called
 * only on --rank-activity runs so a default metrics dump is unchanged.
 */
void publishRankMetrics(obs::MetricsRegistry &registry,
                        const RankActivitySummary &summary);

/** Detection parameters of the LinkWeatherAnalyzer. */
struct LinkWeatherConfig
{
    /** Ranked links / routers kept in the report (--top-links). */
    int topLinks = 16;
    /** A hotspot must exceed hotspotFactor x median utilization... */
    double hotspotFactor = 1.5;
    /** ...and this absolute utilization floor. */
    double minHotspotUtil = 0.02;
    /**
     * ...and stay above the fleet median in at least this fraction of
     * the run's windows (sustained, not a single burst).
     */
    double sustainedFraction = 0.5;
    /**
     * Congestion onset: a window is congested when its delivered /
     * offered ratio drops below kneeEfficiency x the baseline
     * efficiency of the lowest-offered-load quartile.
     */
    double kneeEfficiency = 0.75;
    /** Minimum active windows before a knee estimate is attempted. */
    int minKneeWindows = 8;
};

/**
 * Derives the network-weather view from a LinkStatsTracker: per-link
 * utilization ranking with sustained-hotspot detection, a
 * load-imbalance Gini coefficient across channel lanes, per-router
 * forwarding totals, and a congestion-onset estimate from the
 * windowed offered-load vs delivered-throughput knee. The onset is
 * cross-referenced against the detected phases by start time.
 */
class LinkWeatherAnalyzer
{
  public:
    explicit LinkWeatherAnalyzer(LinkWeatherConfig cfg = {}) : cfg_(cfg)
    {}

    LinkWeatherSummary
    analyze(const obs::LinkStatsTracker &tracker,
            const mesh::MeshConfig &mesh,
            const std::vector<PhaseCharacterization> &phases = {}) const;

  private:
    LinkWeatherConfig cfg_;
};

/**
 * Register the link.* metric family (aggregates only — per-link names
 * would blow the registry's fixed gauge capacity). Called only on
 * --link-stats runs so a default metrics dump is unchanged.
 */
void publishLinkMetrics(obs::MetricsRegistry &registry,
                        const LinkWeatherSummary &summary);

} // namespace cchar::core

#endif // CCHAR_CORE_ANALYZERS_HH
