#include "telemetry.hh"

#include <ostream>

namespace cchar::core {

void
attachNetworkTelemetry(desim::Simulator &sim, mesh::MeshNetwork &net,
                       obs::WindowedSampler &sampler, double periodUs)
{
    // Windowed probes carry their own previous-sample state; the
    // sampler only sees the finished per-window value.
    sampler.addSeries(
        "injection_rate_per_us",
        [&net, &sim, last = std::uint64_t{0},
         lastT = 0.0]() mutable -> double {
            std::uint64_t msgs = net.messageCount();
            double t = sim.now();
            double dt = t - lastT;
            double rate =
                dt > 0.0
                    ? static_cast<double>(msgs - last) / dt
                    : 0.0;
            last = msgs;
            lastT = t;
            return rate;
        });
    sampler.addSeries(
        "avg_channel_utilization",
        [&net, &sim, lastBusy = 0.0, lastT = 0.0]() mutable -> double {
            // utilization(t) is cumulative from 0; differentiate the
            // busy-time integral to get the in-window average.
            double t = sim.now();
            double busy = net.averageChannelUtilization(t) * t;
            double dt = t - lastT;
            double u = dt > 0.0 ? (busy - lastBusy) / dt : 0.0;
            lastBusy = busy;
            lastT = t;
            return u;
        });
    sampler.addSeries(
        "mean_msg_bytes",
        [&net, lastMsgs = std::uint64_t{0},
         lastBytes = std::uint64_t{0}]() mutable -> double {
            std::uint64_t msgs = net.messageCount();
            std::uint64_t bytes = net.payloadBytes();
            double mean =
                msgs > lastMsgs
                    ? static_cast<double>(bytes - lastBytes) /
                          static_cast<double>(msgs - lastMsgs)
                    : 0.0;
            lastMsgs = msgs;
            lastBytes = bytes;
            return mean;
        });
    sampler.addSeries("busy_lanes", [&net]() -> double {
        return static_cast<double>(net.busyLanes());
    });
    sampler.addSeries("queued_worms", [&net]() -> double {
        return static_cast<double>(net.queuedAcquires());
    });
    sampler.addSeries("calendar_depth", [&sim]() -> double {
        return static_cast<double>(sim.calendarSize());
    });
    sampler.addSeries("events_dispatched", [&sim]() -> double {
        return static_cast<double>(sim.processedEvents());
    });

    sim.attachPeriodic(
        [&sampler](desim::SimTime t) { sampler.sample(t); }, periodUs);
}

void
writeMetricsJson(std::ostream &os, const obs::MetricsRegistry *registry,
                 const obs::WindowedSampler *sampler,
                 const obs::FlowTracker *flows)
{
    os << "{\"metrics\":";
    if (registry)
        registry->writeJson(os);
    else
        os << "null";
    os << ",\"telemetry\":";
    if (sampler)
        sampler->writeJson(os);
    else
        os << "null";
    os << ",\"flows\":";
    if (flows)
        flows->writeJson(os);
    else
        os << "null";
    os << "}\n";
}

} // namespace cchar::core
