#include "patterns.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace cchar::core {

std::string
toString(StructuredPattern pattern)
{
    switch (pattern) {
      case StructuredPattern::RingShift:
        return "ring-shift";
      case StructuredPattern::Butterfly:
        return "butterfly";
      case StructuredPattern::BitReverse:
        return "bit-reverse";
      case StructuredPattern::Transpose:
        return "transpose";
      case StructuredPattern::HotSpot:
        return "hot-spot";
      case StructuredPattern::None:
        return "none";
    }
    return "?";
}

std::string
StructuredPatternMatch::describe() const
{
    std::ostringstream os;
    os << toString(pattern);
    switch (pattern) {
      case StructuredPattern::RingShift:
        os << "(k=" << parameter << ")";
        break;
      case StructuredPattern::Butterfly:
        os << "(mask=" << parameter << ")";
        break;
      case StructuredPattern::HotSpot:
        os << "(node=" << parameter << ")";
        break;
      default:
        break;
    }
    os << " coverage=" << coverage;
    return os.str();
}

std::vector<std::vector<double>>
trafficMatrix(const trace::TrafficLog &log)
{
    auto n = static_cast<std::size_t>(log.nprocs());
    std::vector<std::vector<double>> m(n, std::vector<double>(n, 0.0));
    for (const auto &rec : log.records()) {
        if (rec.src >= 0 && rec.src < log.nprocs() && rec.dst >= 0 &&
            rec.dst < log.nprocs()) {
            m[static_cast<std::size_t>(rec.src)]
             [static_cast<std::size_t>(rec.dst)] += 1.0;
        }
    }
    return m;
}

namespace {

bool
isPow2(int n)
{
    return n > 0 && (n & (n - 1)) == 0;
}

int
bitReverse(int value, int bits)
{
    int out = 0;
    for (int b = 0; b < bits; ++b) {
        out = (out << 1) | (value & 1);
        value >>= 1;
    }
    return out;
}

/** Coverage of the permutation dst = perm(src). */
double
permutationCoverage(const std::vector<std::vector<double>> &m,
                    const std::vector<int> &perm, double total)
{
    if (total <= 0.0)
        return 0.0;
    double hit = 0.0;
    for (std::size_t src = 0; src < m.size(); ++src) {
        int dst = perm[src];
        if (dst >= 0 && dst != static_cast<int>(src))
            hit += m[src][static_cast<std::size_t>(dst)];
    }
    return hit / total;
}

} // namespace

StructuredPatternMatch
StructuredPatternDetector::analyze(const trace::TrafficLog &log) const
{
    return analyzeMatrix(trafficMatrix(log));
}

StructuredPatternMatch
StructuredPatternDetector::analyzeMatrix(
    const std::vector<std::vector<double>> &matrix) const
{
    StructuredPatternMatch out;
    int p = static_cast<int>(matrix.size());
    if (p < 2)
        return out;

    double total = 0.0;
    std::vector<double> inbound(static_cast<std::size_t>(p), 0.0);
    for (int s = 0; s < p; ++s) {
        for (int d = 0; d < p; ++d) {
            total += matrix[static_cast<std::size_t>(s)]
                           [static_cast<std::size_t>(d)];
            inbound[static_cast<std::size_t>(d)] +=
                matrix[static_cast<std::size_t>(s)]
                      [static_cast<std::size_t>(d)];
        }
    }
    if (total <= 0.0)
        return out;

    struct Candidate
    {
        StructuredPattern pattern;
        int parameter;
        double coverage;
    };
    std::vector<Candidate> candidates;

    // Ring shifts.
    for (int k = 1; k < p; ++k) {
        std::vector<int> perm(static_cast<std::size_t>(p));
        for (int s = 0; s < p; ++s)
            perm[static_cast<std::size_t>(s)] = (s + k) % p;
        candidates.push_back({StructuredPattern::RingShift, k,
                              permutationCoverage(matrix, perm, total)});
    }

    if (isPow2(p)) {
        // Butterfly (XOR masks).
        for (int mask = 1; mask < p; ++mask) {
            std::vector<int> perm(static_cast<std::size_t>(p));
            for (int s = 0; s < p; ++s)
                perm[static_cast<std::size_t>(s)] = s ^ mask;
            candidates.push_back(
                {StructuredPattern::Butterfly, mask,
                 permutationCoverage(matrix, perm, total)});
        }
        // Bit reverse.
        int bits = 0;
        while ((1 << bits) < p)
            ++bits;
        std::vector<int> perm(static_cast<std::size_t>(p));
        for (int s = 0; s < p; ++s)
            perm[static_cast<std::size_t>(s)] = bitReverse(s, bits);
        candidates.push_back({StructuredPattern::BitReverse, 0,
                              permutationCoverage(matrix, perm, total)});
    }

    // Transpose on the rank grid.
    int width = opts_.gridWidth;
    if (width <= 0) {
        int root = static_cast<int>(std::lround(std::sqrt(p)));
        width = (root * root == p) ? root : 0;
    }
    if (width > 0 && p % width == 0) {
        int height = p / width;
        if (width == height) {
            std::vector<int> perm(static_cast<std::size_t>(p));
            for (int s = 0; s < p; ++s) {
                int x = s % width, y = s / width;
                perm[static_cast<std::size_t>(s)] = x * width + y;
            }
            candidates.push_back(
                {StructuredPattern::Transpose, 0,
                 permutationCoverage(matrix, perm, total)});
        }
    }

    // Hot spot: one destination absorbs most of the traffic.
    auto hotIt = std::max_element(inbound.begin(), inbound.end());
    candidates.push_back(
        {StructuredPattern::HotSpot,
         static_cast<int>(hotIt - inbound.begin()), *hotIt / total});

    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate &a, const Candidate &b) {
                         return a.coverage > b.coverage;
                     });

    for (const auto &cand : candidates)
        out.alternatives.emplace_back(cand.pattern, cand.coverage);
    if (!candidates.empty() &&
        candidates.front().coverage >= opts_.minCoverage) {
        out.pattern = candidates.front().pattern;
        out.parameter = candidates.front().parameter;
        out.coverage = candidates.front().coverage;
    } else if (!candidates.empty()) {
        out.coverage = candidates.front().coverage;
    }
    return out;
}

} // namespace cchar::core
