#include "report_html.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace cchar::core {

namespace {

// ---------------------------------------------------------------
// Formatting helpers (all deterministic: no locale, no time).

std::string
fmt(double v, int prec = 4)
{
    if (!std::isfinite(v))
        v = 0.0;
    std::ostringstream os;
    os << std::setprecision(prec) << v;
    return os.str();
}

std::string
htmlEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '&':
            out += "&amp;";
            break;
          case '<':
            out += "&lt;";
            break;
          case '>':
            out += "&gt;";
            break;
          case '"':
            out += "&quot;";
            break;
          default:
            out += c;
        }
    }
    return out;
}

/** Linear sRGB mix of two #rrggbb anchors. */
std::string
mixColor(const char *a, const char *b, double t)
{
    auto hex = [](const char *s, int i) {
        auto nib = [](char c) {
            return c <= '9' ? c - '0' : (c | 0x20) - 'a' + 10;
        };
        return nib(s[1 + 2 * i]) * 16 + nib(s[2 + 2 * i]);
    };
    t = std::clamp(t, 0.0, 1.0);
    std::ostringstream os;
    os << '#' << std::hex << std::setfill('0');
    for (int i = 0; i < 3; ++i) {
        int v = static_cast<int>(std::lround(
            hex(a, i) + (hex(b, i) - hex(a, i)) * t));
        os << std::setw(2) << v;
    }
    return os.str();
}

/**
 * Drop one "name":value member from a JSON object body. Used to strip
 * the kernel's wall-clock throughput gauge (desim.events_per_sec) —
 * the single non-simulation-derived value in a registry snapshot —
 * so the report stays byte-deterministic across identical runs.
 */
std::string
stripJsonMember(std::string json, const std::string &name)
{
    std::string key = '"' + name + "\":";
    auto pos = json.find(key);
    if (pos == std::string::npos)
        return json;
    auto end = json.find_first_of(",}", pos + key.size());
    if (end == std::string::npos)
        return json;
    if (json[end] == ',')
        ++end;
    else if (pos > 0 && json[pos - 1] == ',')
        --pos;
    json.erase(pos, end - pos);
    return json;
}

std::string
registryJson(const obs::MetricsRegistry &reg)
{
    std::ostringstream os;
    reg.writeJson(os);
    std::string s = os.str();
    while (!s.empty() && s.back() == '\n')
        s.pop_back();
    return stripJsonMember(std::move(s), "desim.events_per_sec");
}

/** Number of sequential-ramp steps exposed as CSS custom properties. */
constexpr int kSeqSteps = 7;

/** Quantize t in [0,1] to a sequential ramp step index. */
int
seqStep(double t)
{
    int i = static_cast<int>(t * kSeqSteps);
    return std::clamp(i, 0, kSeqSteps - 1);
}

void
writeCss(std::ostream &os)
{
    os << "<style>\n"
          ":root{--surface:#fcfcfb;--ink:#0b0b0b;--muted:#898781;"
          "--grid:#e1e0d9;--card:#f4f3ef;"
          "--cat-1:#2a78d6;--cat-2:#eb6834;--cat-3:#1baf7a;";
    for (int i = 0; i < kSeqSteps; ++i) {
        os << "--seq-" << i << ':'
           << mixColor("#cde2fb", "#0d366b",
                       static_cast<double>(i) / (kSeqSteps - 1))
           << ';';
    }
    os << "}\n"
          "@media (prefers-color-scheme:dark){:root{--surface:#1a1a19;"
          "--ink:#ffffff;--muted:#898781;--grid:#2c2c2a;--card:#232322;"
          "--cat-1:#3987e5;--cat-2:#d95926;--cat-3:#199e70;";
    for (int i = 0; i < kSeqSteps; ++i) {
        os << "--seq-" << i << ':'
           << mixColor("#16293f", "#9cc5f6",
                       static_cast<double>(i) / (kSeqSteps - 1))
           << ';';
    }
    os << "}}\n"
          "body{background:var(--surface);color:var(--ink);"
          "font:14px/1.5 system-ui,sans-serif;margin:0 auto;"
          "max-width:820px;padding:24px}\n"
          "h1{font-size:22px;margin:0 0 4px}\n"
          "h2{font-size:16px;margin:28px 0 8px}\n"
          ".muted{color:var(--muted)}\n"
          ".tiles{display:flex;flex-wrap:wrap;gap:8px;margin:16px 0}\n"
          ".tile{background:var(--card);border-radius:6px;"
          "padding:10px 14px;min-width:110px}\n"
          ".tile b{display:block;font-size:18px}\n"
          ".tile span{color:var(--muted);font-size:12px}\n"
          ".legend{display:flex;gap:16px;font-size:12px;"
          "color:var(--muted);margin:4px 0}\n"
          ".legend i{display:inline-block;width:10px;height:10px;"
          "border-radius:3px;margin-right:5px}\n"
          "svg{display:block;max-width:100%}\n"
          "svg text{fill:var(--ink);font:11px system-ui,sans-serif}\n"
          "svg text.muted{fill:var(--muted)}\n"
          "table{border-collapse:collapse;font-size:12px}\n"
          "td,th{border:1px solid var(--grid);padding:3px 8px;"
          "text-align:right}\n"
          "th{text-align:left}\n"
          "details{margin:8px 0}\n"
          "summary{cursor:pointer;color:var(--muted);font-size:12px}\n"
          "pre{background:var(--card);border-radius:6px;padding:10px;"
          "overflow-x:auto;font-size:11px}\n"
          "</style>\n";
}

// ---------------------------------------------------------------
// Sections

void
writeSummary(std::ostream &os, const CharacterizationReport &r)
{
    os << "<div class=\"tiles\">\n";
    auto tile = [&os](const std::string &value, const char *label) {
        os << "<div class=\"tile\"><b>" << value << "</b><span>"
           << label << "</span></div>\n";
    };
    tile(std::to_string(r.volume.messageCount), "messages");
    tile(fmt(r.volume.totalBytes / 1024.0, 4) + " KiB", "traffic");
    tile(fmt(r.volume.lengthStats.mean, 4) + " B", "mean length");
    tile(fmt(r.temporalAggregate.stats.mean, 4) + " us", "mean IAT");
    tile(fmt(r.network.latencyMean, 4) + " us", "mean latency");
    tile(fmt(r.network.makespan, 5) + " us", "makespan");
    tile(htmlEscape(stats::toString(r.spatialAggregate.pattern)),
         "spatial pattern");
    os << "</div>\n";
}

void
writePhaseTimeline(std::ostream &os, const CharacterizationReport &r)
{
    os << "<h2>Execution phases</h2>\n";
    if (r.phases.empty()) {
        os << "<p class=\"muted\">Phase detection did not run "
              "(or the run produced no windows).</p>\n";
        return;
    }
    double tMax = r.phases.back().tEnd;
    double rateMax = 0.0;
    for (const auto &ph : r.phases)
        rateMax = std::max(rateMax, ph.injectionRate);
    const double w = 720.0, h = 46.0, barY = 16.0, barH = 22.0;
    os << "<svg viewBox=\"0 0 " << w << ' ' << h
       << "\" role=\"img\" aria-label=\"phase timeline\">\n";
    for (const auto &ph : r.phases) {
        double x0 = tMax > 0.0 ? ph.tBegin / tMax * w : 0.0;
        double x1 = tMax > 0.0 ? ph.tEnd / tMax * w : 0.0;
        // 2px surface gap between adjacent segments.
        double bw = std::max(x1 - x0 - 2.0, 1.0);
        int step =
            seqStep(rateMax > 0.0 ? ph.injectionRate / rateMax : 0.0);
        os << "<rect x=\"" << fmt(x0, 6) << "\" y=\"" << barY
           << "\" width=\"" << fmt(bw, 6) << "\" height=\"" << barH
           << "\" rx=\"4\" fill=\"var(--seq-" << step << ")\"><title>"
           << "phase " << ph.index << ": " << fmt(ph.tBegin, 6)
           << "-" << fmt(ph.tEnd, 6) << " us, " << ph.messageCount
           << " msgs, " << fmt(ph.injectionRate, 4) << " msg/us, "
           << "mean " << fmt(ph.meanBytes, 4) << " B"
           << "</title></rect>\n";
        if (bw > 24.0) {
            os << "<text x=\"" << fmt(x0 + 4.0, 6)
               << "\" y=\"12\" class=\"muted\">p" << ph.index
               << "</text>\n";
        }
    }
    os << "<text x=\"0\" y=\"" << h
       << "\" class=\"muted\">0</text>\n"
       << "<text x=\"" << w << "\" y=\"" << h
       << "\" text-anchor=\"end\" class=\"muted\">" << fmt(tMax, 6)
       << " us</text>\n</svg>\n"
       << "<p class=\"legend\">shade encodes the phase injection rate "
          "(darker = faster)</p>\n";

    os << "<details><summary>phase table</summary><table>\n"
          "<tr><th>phase</th><td>t begin (us)</td><td>t end (us)</td>"
          "<td>msgs</td><td>rate (/us)</td><td>mean B</td>"
          "<td>dst entropy</td><td>IAT mean (us)</td>"
          "<td>IAT cv</td><th>spatial</th></tr>\n";
    for (const auto &ph : r.phases) {
        os << "<tr><th>" << ph.index << "</th><td>"
           << fmt(ph.tBegin, 6) << "</td><td>" << fmt(ph.tEnd, 6)
           << "</td><td>" << ph.messageCount << "</td><td>"
           << fmt(ph.injectionRate, 4) << "</td><td>"
           << fmt(ph.meanBytes, 4) << "</td><td>"
           << fmt(ph.dstEntropy, 3) << "</td><td>"
           << fmt(ph.temporal.stats.mean, 4) << "</td><td>"
           << fmt(ph.temporal.stats.cv, 3) << "</td><th>"
           << htmlEscape(stats::toString(ph.spatial.pattern))
           << "</th></tr>\n";
    }
    os << "</table></details>\n";
}

void
writeLatencyBreakdown(std::ostream &os, const obs::MetricsRegistry *reg)
{
    os << "<h2>Latency decomposition</h2>\n";
    struct Part
    {
        const char *metric;
        const char *label;
        int slot;
        const obs::HistogramData *data;
    };
    Part parts[] = {
        {"mesh.queue_us", "queueing (injection port)", 1, nullptr},
        {"mesh.stall_us", "stall (wormhole blocking)", 2, nullptr},
        {"mesh.transit_us", "transit (routing + body)", 3, nullptr},
    };
    std::uint64_t total = 0;
    if (reg) {
        for (auto &p : parts) {
            p.data = reg->histogramData(p.metric);
            if (p.data)
                total += p.data->count;
        }
    }
    if (total == 0) {
        os << "<p class=\"muted\">No latency-decomposition histograms "
              "captured (run with --metrics-out).</p>\n";
        return;
    }

    // Shared log2 bucket range and count scale across the parts.
    int lo = obs::HistogramData::kBuckets, hi = -1;
    std::uint64_t yMax = 1;
    for (const auto &p : parts) {
        if (!p.data)
            continue;
        for (int b = 0; b < obs::HistogramData::kBuckets; ++b) {
            std::uint64_t c = p.data->buckets[static_cast<std::size_t>(b)];
            if (c == 0)
                continue;
            lo = std::min(lo, b);
            hi = std::max(hi, b);
            yMax = std::max(yMax, c);
        }
    }
    if (hi < lo) {
        os << "<p class=\"muted\">All decomposition histograms are "
              "empty.</p>\n";
        return;
    }

    os << "<p class=\"legend\">";
    for (const auto &p : parts) {
        os << "<span><i style=\"background:var(--cat-" << p.slot
           << ")\"></i>" << p.label << " &middot; "
           << (p.data ? p.data->count : 0) << " msgs, mean "
           << fmt(p.data ? p.data->mean() : 0.0, 4) << " us</span> ";
    }
    os << "</p>\n";

    const double w = 720.0, chartH = 72.0, gap = 10.0, axisH = 16.0;
    int nb = hi - lo + 1;
    double bw = w / nb;
    double totalH = 3 * (chartH + gap) + axisH;
    os << "<svg viewBox=\"0 0 " << w << ' ' << totalH
       << "\" role=\"img\" aria-label=\"latency decomposition "
          "histograms\">\n";
    for (int row = 0; row < 3; ++row) {
        const Part &p = parts[row];
        double y0 = row * (chartH + gap);
        os << "<line x1=\"0\" y1=\"" << fmt(y0 + chartH, 6)
           << "\" x2=\"" << w << "\" y2=\"" << fmt(y0 + chartH, 6)
           << "\" stroke=\"var(--grid)\"/>\n";
        if (!p.data)
            continue;
        for (int b = lo; b <= hi; ++b) {
            std::uint64_t c =
                p.data->buckets[static_cast<std::size_t>(b)];
            if (c == 0)
                continue;
            // sqrt scale keeps rare-but-long tails visible.
            double frac = std::sqrt(static_cast<double>(c) /
                                    static_cast<double>(yMax));
            double bh = std::max(frac * (chartH - 14.0), 2.0);
            os << "<rect x=\"" << fmt((b - lo) * bw + 1.0, 6)
               << "\" y=\"" << fmt(y0 + chartH - bh, 6)
               << "\" width=\"" << fmt(bw - 2.0, 6) << "\" height=\""
               << fmt(bh, 6) << "\" rx=\"2\" fill=\"var(--cat-"
               << p.slot << ")\"><title>" << p.label << " &lt; "
               << fmt(obs::HistogramData::upperBound(b), 4)
               << " us: " << c << " msgs</title></rect>\n";
        }
    }
    // Shared x axis: a few bucket upper bounds.
    for (int b = lo; b <= hi; b += std::max(1, nb / 6)) {
        os << "<text x=\"" << fmt((b - lo + 1) * bw, 6) << "\" y=\""
           << fmt(totalH - 3.0, 6)
           << "\" text-anchor=\"end\" class=\"muted\">"
           << fmt(obs::HistogramData::upperBound(b), 3) << "</text>\n";
    }
    os << "</svg>\n";

    os << "<details><summary>bucket table</summary><table>\n"
          "<tr><th>bucket &lt; (us)</th><td>queue</td><td>stall</td>"
          "<td>transit</td></tr>\n";
    for (int b = lo; b <= hi; ++b) {
        os << "<tr><th>" << fmt(obs::HistogramData::upperBound(b), 4)
           << "</th>";
        for (const auto &p : parts) {
            os << "<td>"
               << (p.data
                       ? p.data->buckets[static_cast<std::size_t>(b)]
                       : 0)
               << "</td>";
        }
        os << "</tr>\n";
    }
    os << "</table></details>\n";
}

void
writeHeatmap(std::ostream &os, const CharacterizationReport &r)
{
    os << "<h2>Spatial traffic (messages from src to dst)</h2>\n";
    int n = r.nprocs;
    if (n <= 0 || r.spatialPerSource.empty()) {
        os << "<p class=\"muted\">No per-source spatial data.</p>\n";
        return;
    }
    // Reconstruct the count matrix from the per-source PMFs and the
    // per-source message counts (kept exact by the analyzers).
    std::vector<std::vector<double>> m(
        static_cast<std::size_t>(n),
        std::vector<double>(static_cast<std::size_t>(n), 0.0));
    double cellMax = 0.0;
    for (const auto &sf : r.spatialPerSource) {
        if (sf.source < 0 || sf.source >= n)
            continue;
        double count =
            sf.source <
                    static_cast<int>(r.volume.perSourceCounts.size())
                ? r.volume.perSourceCounts[static_cast<std::size_t>(
                      sf.source)]
                : 0.0;
        for (std::size_t d = 0;
             d < sf.observed.size() && d < static_cast<std::size_t>(n);
             ++d) {
            double v = sf.observed[d] * count;
            m[static_cast<std::size_t>(sf.source)][d] = v;
            cellMax = std::max(cellMax, v);
        }
    }

    const double cell = n <= 16 ? 20.0 : 10.0, pitch = cell + 2.0;
    const double ox = 30.0, oy = 16.0;
    double w = ox + n * pitch, h = oy + n * pitch + 4.0;
    int labelEvery = n <= 20 ? 1 : 4;
    os << "<svg viewBox=\"0 0 " << fmt(w, 6) << ' ' << fmt(h, 6)
       << "\" role=\"img\" aria-label=\"source-destination traffic "
          "heatmap\" style=\"max-width:"
       << fmt(w, 6) << "px\">\n";
    for (int s = 0; s < n; ++s) {
        if (s % labelEvery == 0) {
            os << "<text x=\"" << fmt(ox - 4.0, 6) << "\" y=\""
               << fmt(oy + s * pitch + cell - 4.0, 6)
               << "\" text-anchor=\"end\" class=\"muted\">" << s
               << "</text>\n";
        }
        for (int d = 0; d < n; ++d) {
            if (s == 0 && d % labelEvery == 0) {
                os << "<text x=\"" << fmt(ox + d * pitch, 6)
                   << "\" y=\"" << fmt(oy - 4.0, 6)
                   << "\" class=\"muted\">" << d << "</text>\n";
            }
            double v = m[static_cast<std::size_t>(s)]
                        [static_cast<std::size_t>(d)];
            std::string fill =
                v > 0.0 && cellMax > 0.0
                    ? "var(--seq-" +
                          std::to_string(seqStep(v / cellMax)) + ")"
                    : "var(--card)";
            os << "<rect x=\"" << fmt(ox + d * pitch, 6) << "\" y=\""
               << fmt(oy + s * pitch, 6) << "\" width=\"" << cell
               << "\" height=\"" << cell << "\" rx=\"2\" fill=\""
               << fill << "\"><title>" << s << " &rarr; " << d << ": "
               << fmt(v, 6) << " msgs</title></rect>\n";
        }
    }
    os << "</svg>\n"
       << "<p class=\"legend\">row = source, column = destination; "
          "darker = more messages (max " << fmt(cellMax, 6)
       << ")</p>\n";

    os << "<details><summary>matrix table</summary><table>\n<tr><th>"
          "src\\dst</th>";
    for (int d = 0; d < n; ++d)
        os << "<td>" << d << "</td>";
    os << "</tr>\n";
    for (int s = 0; s < n; ++s) {
        os << "<tr><th>" << s << "</th>";
        for (int d = 0; d < n; ++d) {
            os << "<td>"
               << fmt(m[static_cast<std::size_t>(s)]
                       [static_cast<std::size_t>(d)], 6)
               << "</td>";
        }
        os << "</tr>\n";
    }
    os << "</table></details>\n";
}

void
writeTelemetry(std::ostream &os, const CharacterizationReport &r,
               const obs::WindowedSampler *sampler)
{
    if (!sampler || sampler->sampleCount() < 2)
        return;
    // Find the injection-rate series.
    const std::vector<double> *values = nullptr;
    for (std::size_t i = 0; i < sampler->seriesCount(); ++i) {
        if (sampler->seriesName(i) == "injection_rate_per_us") {
            values = &sampler->seriesValues(i);
            break;
        }
    }
    if (!values)
        return;
    const auto &times = sampler->times();
    double tMax = times.back();
    double vMax = 0.0;
    for (double v : *values)
        vMax = std::max(vMax, v);
    if (tMax <= 0.0 || vMax <= 0.0)
        return;

    os << "<h2>Injection rate over time</h2>\n";
    const double w = 720.0, h = 120.0, plotH = 100.0;
    os << "<svg viewBox=\"0 0 " << w << ' ' << h
       << "\" role=\"img\" aria-label=\"windowed injection rate\">\n";
    for (int g = 0; g <= 4; ++g) {
        double y = plotH - g * plotH / 4.0;
        os << "<line x1=\"0\" y1=\"" << fmt(y, 6) << "\" x2=\"" << w
           << "\" y2=\"" << fmt(y, 6)
           << "\" stroke=\"var(--grid)\"/>\n";
    }
    // Phase boundaries as dashed verticals behind the line.
    for (std::size_t i = 1; i < r.phases.size(); ++i) {
        double x = r.phases[i].tBegin / tMax * w;
        os << "<line x1=\"" << fmt(x, 6) << "\" y1=\"0\" x2=\""
           << fmt(x, 6) << "\" y2=\"" << plotH
           << "\" stroke=\"var(--muted)\" stroke-dasharray=\"3 4\"/>"
              "\n";
    }
    os << "<polyline fill=\"none\" stroke=\"var(--cat-1)\" "
          "stroke-width=\"2\" points=\"";
    for (std::size_t i = 0; i < times.size(); ++i) {
        double x = times[i] / tMax * w;
        double y = plotH - (*values)[i] / vMax * (plotH - 6.0);
        os << fmt(x, 6) << ',' << fmt(y, 6) << ' ';
    }
    os << "\"/>\n<text x=\"0\" y=\"10\" class=\"muted\">"
       << fmt(vMax, 4) << " msg/us</text>\n"
       << "<text x=\"" << w << "\" y=\"" << fmt(h - 4.0, 6)
       << "\" text-anchor=\"end\" class=\"muted\">" << fmt(tMax, 6)
       << " us</text>\n</svg>\n";
    if (r.phases.size() > 1) {
        os << "<p class=\"legend\">dashed verticals mark detected "
              "phase boundaries</p>\n";
    }
}

void
writeFlowStats(std::ostream &os, const obs::FlowTracker *flows)
{
    if (!flows || flows->opened() == 0)
        return;
    os << "<h2>Message lifecycles</h2>\n";
    const auto &recs = flows->records();
    double sw = 0.0, q = 0.0, st = 0.0, tr = 0.0;
    std::size_t done = 0;
    for (const auto &rec : recs) {
        if (rec.tDeliver < rec.tInject)
            continue;
        ++done;
        sw += rec.softwareTime();
        q += rec.queueWait;
        st += rec.stallWait;
        tr += rec.transitTime();
    }
    os << "<p>" << flows->opened() << " flows opened, "
       << flows->completed() << " completed, " << recs.size()
       << " lifecycle records kept (stride " << flows->stride()
       << ", " << flows->droppedRecords() << " dropped).</p>\n";
    if (done > 0) {
        double dn = static_cast<double>(done);
        os << "<p class=\"muted\">sampled means: software "
           << fmt(sw / dn, 4) << " us, queue " << fmt(q / dn, 4)
           << " us, stall " << fmt(st / dn, 4) << " us, transit "
           << fmt(tr / dn, 4) << " us</p>\n";
    }
}

void
writeSynthFidelity(std::ostream &os, const CharacterizationReport &r)
{
    const SynthesisFidelity &sf = r.synthFidelity;
    if (!sf.enabled)
        return;
    os << "<h2>Synthesis fidelity</h2>\n";
    os << "<p class=\"muted\">synthetic replay of "
       << htmlEscape(sf.modelSource) << " ("
       << htmlEscape(sf.modelApplication) << ", " << sf.modelProcs
       << " procs) &middot; seed " << sf.seed << " &middot; "
       << sf.scaleTiles << " topology tile"
       << (sf.scaleTiles == 1 ? "" : "s") << " &middot; message scale "
       << fmt(sf.messageScale, 4) << " &middot; "
       << sf.syntheticMessages << " synthetic messages</p>\n";

    // One bar per attribute: KS distance between the driving model and
    // the re-characterized synthetic run (closer to 0 = higher
    // fidelity). Bars share a fixed [0, 0.5] scale so reports from
    // different runs compare visually.
    struct Attr
    {
        const char *label;
        double ks;
        int slot;
    };
    Attr attrs[] = {
        {"temporal (inter-arrival)", sf.temporalKs, 1},
        {"spatial (destination)", sf.spatialKs, 2},
        {"volume (message length)", sf.volumeKs, 3},
    };
    const double w = 720.0, rowH = 22.0, barX = 190.0;
    double h = 3 * rowH + 16.0;
    os << "<svg viewBox=\"0 0 " << w << ' ' << fmt(h, 6)
       << "\" role=\"img\" aria-label=\"per-attribute KS "
          "divergence\">\n";
    for (int i = 0; i < 3; ++i) {
        const Attr &a = attrs[i];
        double y0 = i * rowH;
        double frac = std::clamp(a.ks / 0.5, 0.0, 1.0);
        double bw = std::max(frac * (w - barX), 1.0);
        os << "<text x=\"" << fmt(barX - 6.0, 6) << "\" y=\""
           << fmt(y0 + 14.0, 6) << "\" text-anchor=\"end\">"
           << a.label << "</text>\n";
        os << "<rect x=\"" << fmt(barX, 6) << "\" y=\""
           << fmt(y0 + 4.0, 6) << "\" width=\"" << fmt(bw, 6)
           << "\" height=\"12\" rx=\"3\" fill=\"var(--cat-" << a.slot
           << ")\"><title>" << a.label << ": KS = " << fmt(a.ks, 4)
           << "</title></rect>\n";
        os << "<text x=\"" << fmt(barX + bw + 6.0, 6) << "\" y=\""
           << fmt(y0 + 14.0, 6) << "\" class=\"muted\">"
           << fmt(a.ks, 4) << "</text>\n";
    }
    os << "<text x=\"" << fmt(barX, 6) << "\" y=\"" << fmt(h - 2.0, 6)
       << "\" class=\"muted\">0</text>\n<text x=\"" << w << "\" y=\""
       << fmt(h - 2.0, 6) << "\" text-anchor=\"end\" "
          "class=\"muted\">0.5</text>\n</svg>\n";
    os << "<p class=\"legend\">KS distance between the driving model "
          "and the re-characterized synthetic run (0 = exact); "
          "temporal is averaged over " << sf.temporalSources
       << " source" << (sf.temporalSources == 1 ? "" : "s")
       << "; worst attribute = " << fmt(sf.maxKs(), 4) << "</p>\n";
}

void
writeResilience(std::ostream &os, const CharacterizationReport &r)
{
    const ResilienceSummary &rs = r.resilience;
    if (!rs.enabled)
        return;
    os << "<h2>Resilience</h2>\n";
    os << "<p class=\"muted\">fault plan: "
       << htmlEscape(rs.planDescription) << "</p>\n";
    os << "<table>\n"
          "<tr><th>link drops</th><th>drops</th><th>corrupted</th>"
          "<th>router stalls</th><th>retransmits</th>"
          "<th>delivery failures</th><th>trace records skipped</th>"
          "</tr>\n<tr><td>"
       << rs.linkDrops << "</td><td>" << rs.droppedPackets
       << "</td><td>" << rs.corruptedPackets << "</td><td>"
       << rs.routerStalls << "</td><td>" << rs.retransmits
       << "</td><td>" << rs.deliveryFailures << "</td><td>"
       << rs.traceRecordsSkipped << "</td></tr>\n</table>\n";
    if (!rs.rankRetransmits.empty()) {
        os << "<h3>Per-rank recovery</h3>\n<table>\n"
              "<tr><th>rank</th><th>retransmits</th>"
              "<th>corrupt discards</th></tr>\n";
        for (std::size_t r = 0; r < rs.rankRetransmits.size(); ++r) {
            std::uint64_t discards =
                r < rs.rankCorruptDiscards.size()
                    ? rs.rankCorruptDiscards[r]
                    : 0;
            os << "<tr><td>p" << r << "</td><td>"
               << rs.rankRetransmits[r] << "</td><td>" << discards
               << "</td></tr>\n";
        }
        os << "</table>\n";
    }
    os << "<h3>Degraded routing</h3>\n<table>\n"
          "<tr><th>rerouted packets</th><th>extra hops</th></tr>\n"
          "<tr><td>"
       << rs.reroutedPackets << "</td><td>" << rs.rerouteExtraHops
       << "</td></tr>\n</table>\n";
    if (rs.plannedLinkDowntimeUs > 0.0) {
        os << "<p class=\"muted\">planned link downtime: "
           << fmt(rs.plannedLinkDowntimeUs, 6) << " us</p>\n";
    }
}

void
writeRankActivity(std::ostream &os, const CharacterizationReport &r)
{
    const RankActivitySummary &ra = r.rankActivity;
    if (!ra.enabled)
        return;
    os << "<h2>Rank activity</h2>\n";
    int n = static_cast<int>(ra.ranks.size());
    if (n == 0 || ra.runEndUs <= 0.0) {
        os << "<p class=\"muted\">No rank activity was recorded.</p>\n";
        return;
    }
    double tMax = ra.runEndUs;

    // Per-rank Gantt: one lane per rank; blocked spans drawn over a
    // neutral compute background, merged in-network spans as a thin
    // strip under the lane.
    const double w = 720.0, ox = 30.0;
    const double laneH = 14.0, commH = 3.0, pitch = laneH + commH + 6.0;
    double h = n * pitch + 16.0;
    auto x = [&](double t) { return ox + t / tMax * (w - ox); };
    os << "<svg viewBox=\"0 0 " << w << ' ' << fmt(h, 6)
       << "\" role=\"img\" aria-label=\"per-rank activity "
          "timeline\">\n";
    for (int rk = 0; rk < n; ++rk) {
        double y0 = rk * pitch;
        os << "<text x=\"" << fmt(ox - 4.0, 6) << "\" y=\""
           << fmt(y0 + laneH - 3.0, 6)
           << "\" text-anchor=\"end\" class=\"muted\">" << rk
           << "</text>\n";
        os << "<rect x=\"" << fmt(ox, 6) << "\" y=\"" << fmt(y0, 6)
           << "\" width=\"" << fmt(w - ox, 6) << "\" height=\""
           << laneH << "\" rx=\"2\" fill=\"var(--card)\"/>\n";
        if (rk >= static_cast<int>(ra.timeline.size()))
            continue;
        for (const obs::RankInterval &iv :
             ra.timeline[static_cast<std::size_t>(rk)]) {
            bool comm = iv.state == obs::RankState::Comm;
            double bx = x(iv.beginUs);
            double bw =
                std::max(iv.durationUs() / tMax * (w - ox), 0.6);
            const char *slot =
                iv.state == obs::RankState::BlockedSend
                    ? "2"
                    : (comm ? "3" : "1");
            os << "<rect x=\"" << fmt(bx, 6) << "\" y=\""
               << fmt(comm ? y0 + laneH + 1.0 : y0, 6)
               << "\" width=\"" << fmt(bw, 6) << "\" height=\""
               << (comm ? commH : laneH)
               << "\" fill=\"var(--cat-" << slot << ")\"><title>p"
               << rk << ' ' << obs::rankStateName(iv.state) << ' '
               << fmt(iv.beginUs, 6) << "-" << fmt(iv.endUs, 6)
               << " us (" << fmt(iv.durationUs(), 4)
               << " us)</title></rect>\n";
        }
    }
    // Idle-wave fronts as dashed trajectories across the lanes.
    for (const IdleWave &wv : ra.waves) {
        os << "<line x1=\"" << fmt(x(wv.tBeginUs), 6) << "\" y1=\""
           << fmt(wv.rankBegin * pitch + laneH / 2.0, 6)
           << "\" x2=\"" << fmt(x(wv.tEndUs), 6) << "\" y2=\""
           << fmt(wv.rankEnd * pitch + laneH / 2.0, 6)
           << "\" stroke=\"var(--ink)\" stroke-width=\"1.5\" "
              "stroke-dasharray=\"5 3\"><title>idle wave: ranks "
           << wv.rankBegin << "&rarr;" << wv.rankEnd << ", "
           << fmt(wv.speedRanksPerUs, 4)
           << " ranks/us</title></line>\n";
    }
    os << "<text x=\"" << fmt(ox, 6) << "\" y=\"" << fmt(h - 4.0, 6)
       << "\" class=\"muted\">0</text>\n<text x=\"" << w << "\" y=\""
       << fmt(h - 4.0, 6) << "\" text-anchor=\"end\" class=\"muted\">"
       << fmt(tMax, 6) << " us</text>\n</svg>\n";
    os << "<p class=\"legend\">"
          "<span><i style=\"background:var(--cat-1)\"></i>blocked "
          "recv</span> "
          "<span><i style=\"background:var(--cat-2)\"></i>blocked "
          "send</span> "
          "<span><i style=\"background:var(--cat-3)\"></i>in-network "
          "(strip)</span> "
          "<span>dashed line = idle-wave front</span></p>\n";
    if (ra.timelineDropped > 0) {
        os << "<p class=\"muted\">" << ra.timelineDropped
           << " spans beyond the render cap are not drawn (totals "
              "below stay exact).</p>\n";
    }

    os << "<h2>Desynchronization</h2>\n";
    os << "<p class=\"muted\">" << ra.markerSamples
       << " skew samples (barrier markers), worst |skew| "
       << fmt(ra.maxAbsSkewUs, 4) << " us, " << ra.waves.size()
       << " idle wave" << (ra.waves.size() == 1 ? "" : "s")
       << " detected</p>\n";
    os << "<table>\n<tr><th>rank</th><td>compute (us)</td>"
          "<td>blocked send (us)</td><td>blocked recv (us)</td>"
          "<td>in-network (us)</td><td>idle fraction</td>"
          "<td>mean skew (us)</td><td>max |skew| (us)</td></tr>\n";
    for (const RankActivityRow &row : ra.ranks) {
        os << "<tr><th>" << row.rank << "</th><td>"
           << fmt(row.computeUs, 6) << "</td><td>"
           << fmt(row.blockedSendUs, 6) << "</td><td>"
           << fmt(row.blockedRecvUs, 6) << "</td><td>"
           << fmt(row.commUs, 6) << "</td><td>"
           << fmt(row.idleFraction, 3) << "</td><td>"
           << fmt(row.meanSkewUs, 4) << "</td><td>"
           << fmt(row.maxAbsSkewUs, 4) << "</td></tr>\n";
    }
    os << "</table>\n";
    if (!ra.waves.empty()) {
        os << "<table>\n<tr><th>wave</th><td>ranks</td>"
              "<td>direction</td><td>t begin (us)</td>"
              "<td>t end (us)</td><td>extent</td>"
              "<td>speed (ranks/us)</td><td>phase</td></tr>\n";
        for (std::size_t i = 0; i < ra.waves.size(); ++i) {
            const IdleWave &wv = ra.waves[i];
            os << "<tr><th>" << i << "</th><td>" << wv.rankBegin
               << "&rarr;" << wv.rankEnd << "</td><td>"
               << (wv.direction > 0 ? "up" : "down") << "</td><td>"
               << fmt(wv.tBeginUs, 6) << "</td><td>"
               << fmt(wv.tEndUs, 6) << "</td><td>" << wv.extent
               << "</td><td>" << fmt(wv.speedRanksPerUs, 4)
               << "</td><td>"
               << (wv.phase >= 0 ? std::to_string(wv.phase)
                                 : std::string{"-"})
               << "</td></tr>\n";
        }
        os << "</table>\n";
    }
}

/** Inline SVG sparkline of one link's per-window busy fraction. */
void
writeSparkline(std::ostream &os, const std::vector<double> &frac)
{
    if (frac.empty())
        return;
    const double w = 96.0, h = 16.0;
    double bw = w / static_cast<double>(frac.size());
    os << "<svg viewBox=\"0 0 " << w << ' ' << h
       << "\" style=\"display:inline-block;width:" << w
       << "px;height:" << h << "px;vertical-align:middle\">";
    for (std::size_t i = 0; i < frac.size(); ++i) {
        double f = std::clamp(frac[i], 0.0, 1.0);
        double bh = std::max(f * (h - 2.0), f > 0.0 ? 1.0 : 0.0);
        if (bh <= 0.0)
            continue;
        os << "<rect x=\"" << fmt(i * bw + 0.5, 6) << "\" y=\""
           << fmt(h - bh, 6) << "\" width=\"" << fmt(bw - 1.0, 6)
           << "\" height=\"" << fmt(bh, 6)
           << "\" fill=\"var(--cat-2)\"/>";
    }
    os << "</svg>";
}

void
writeLinkWeather(std::ostream &os, const CharacterizationReport &r)
{
    const LinkWeatherSummary &lw = r.linkStats;
    if (!lw.enabled)
        return;
    os << "<h2>Network weather</h2>\n";
    os << "<p class=\"muted\">" << lw.totalLinks << " channel lanes ("
       << lw.injectionLinks << " injection ports), utilization avg "
       << fmt(lw.avgUtilization, 4) << " / median "
       << fmt(lw.medianUtilization, 4) << " / max "
       << fmt(lw.maxUtilization, 4) << ", Gini " << fmt(lw.gini, 3)
       << ", " << lw.hotspotCount << " hotspot"
       << (lw.hotspotCount == 1 ? "" : "s") << ", " << lw.holStalls
       << " HoL stalls (" << fmt(lw.holStallUs, 4) << " us)</p>\n";
    if (lw.congestionOnsetLoad > 0.0) {
        os << "<p class=\"muted\">congestion onset at offered load "
           << fmt(lw.congestionOnsetLoad, 4) << " B/us (t = "
           << fmt(lw.congestionOnsetUs, 6) << " us"
           << (lw.congestionPhase >= 0
                   ? ", phase " + std::to_string(lw.congestionPhase)
                   : std::string{})
           << ")</p>\n";
    } else {
        os << "<p class=\"muted\">no congestion knee detected "
              "(delivered throughput tracked offered load)</p>\n";
    }

    // Topology heatmap: one grid per direction, each cell one
    // router's outgoing lane (max utilization over its VCs).
    int mw = r.mesh.width, mh = r.mesh.height;
    int nodes = mw * mh;
    double uMax = std::max(lw.maxUtilization, 1e-12);
    if (mw > 0 && mh > 0 &&
        static_cast<int>(lw.dirUtil.size()) == 4 &&
        std::all_of(lw.dirUtil.begin(), lw.dirUtil.end(),
                    [nodes](const std::vector<double> &v) {
                        return static_cast<int>(v.size()) == nodes;
                    })) {
        const double cell = nodes <= 64 ? 16.0 : 8.0;
        const double pitch = cell + 2.0, oy = 16.0;
        double gridW = mw * pitch;
        double gw = gridW + 14.0;
        double w = 4 * gw, h = oy + mh * pitch + 4.0;
        os << "<svg viewBox=\"0 0 " << fmt(w, 6) << ' ' << fmt(h, 6)
           << "\" role=\"img\" aria-label=\"per-direction link "
              "utilization heatmap\" style=\"max-width:" << fmt(w, 6)
           << "px\">\n";
        for (int dir = 0; dir < 4; ++dir) {
            double gx = dir * gw;
            os << "<text x=\"" << fmt(gx, 6) << "\" y=\"10\" "
                  "class=\"muted\">" << obs::linkDirName(dir)
               << "</text>\n";
            for (int node = 0; node < nodes; ++node) {
                double u =
                    lw.dirUtil[static_cast<std::size_t>(dir)]
                              [static_cast<std::size_t>(node)];
                double cx = gx + (node % mw) * pitch;
                double cy = oy + (node / mw) * pitch;
                std::string fill =
                    u < 0.0 ? "var(--grid)"
                    : u > 0.0
                        ? "var(--seq-" +
                              std::to_string(seqStep(u / uMax)) + ")"
                        : "var(--card)";
                os << "<rect x=\"" << fmt(cx, 6) << "\" y=\""
                   << fmt(cy, 6) << "\" width=\"" << cell
                   << "\" height=\"" << cell << "\" rx=\"2\" fill=\""
                   << fill << "\"><title>node " << node << ' '
                   << obs::linkDirName(dir) << ": "
                   << (u < 0.0 ? std::string{"no link"} : fmt(u, 4))
                   << "</title></rect>\n";
            }
        }
        os << "</svg>\n"
           << "<p class=\"legend\">each grid = outgoing links of one "
              "direction (row-major routers); darker = higher "
              "utilization (max " << fmt(lw.maxUtilization, 4)
           << ")</p>\n";
    }

    // Ranked congested-links table with hotspot badges + sparklines.
    if (!lw.links.empty()) {
        os << "<table>\n<tr><th>#</th><th>link</th><td>vc</td>"
              "<td>util</td><td>pkts</td><td>bytes</td>"
              "<td>stalls</td><td>stall (us)</td><td>queue mean</td>"
              "<td>peak</td><th>activity</th></tr>\n";
        for (std::size_t i = 0; i < lw.links.size(); ++i) {
            const LinkWeatherRow &row = lw.links[i];
            os << "<tr><th>" << (i + 1) << "</th><th>" << row.node
               << "&rarr;"
               << (row.toNode >= 0 ? std::to_string(row.toNode)
                                   : std::string{"inject"})
               << ' ' << obs::linkDirName(row.dir) << "</th><td>"
               << row.vc << "</td><td>" << fmt(row.utilization, 4)
               << "</td><td>" << row.packets << "</td><td>"
               << row.bytes << "</td><td>" << row.stalls
               << "</td><td>" << fmt(row.stallUs, 4) << "</td><td>"
               << fmt(row.meanQueueDepth, 3) << "</td><td>"
               << row.peakBacklog << "</td><th>";
            if (row.hotspot) {
                os << "<span style=\"color:var(--cat-2)\">&#9650; "
                      "hotspot " << fmt(row.sustainedFraction, 2)
                   << "</span> ";
            }
            writeSparkline(os, row.sparkline);
            os << "</th></tr>\n";
        }
        os << "</table>\n";
        if (lw.elidedLinks > 0) {
            os << "<p class=\"muted\">" << lw.elidedLinks
               << " lower-ranked links elided; raise --top-links to "
                  "see them.</p>\n";
        }
    }
    if (!lw.routers.empty()) {
        os << "<p class=\"muted\">top routers by forwards: ";
        for (std::size_t i = 0; i < lw.routers.size(); ++i) {
            const RouterLoadRow &rt = lw.routers[i];
            os << (i > 0 ? ", " : "") << "node " << rt.node << " ("
               << rt.forwards << " fwd, " << rt.bytes << " B)";
        }
        os << "</p>\n";
    }
    if (lw.droppedFacts > 0) {
        os << "<p class=\"muted\">" << lw.droppedFacts
           << " link facts dropped at the tracker capacity limit "
              "(totals above are lower bounds).</p>\n";
    }
}

} // namespace

void
writeHtmlReport(std::ostream &os, const HtmlReportInputs &inputs)
{
    if (!inputs.report)
        throw std::invalid_argument("report_html: report is required");
    const CharacterizationReport &r = *inputs.report;

    os << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
          "<meta charset=\"utf-8\">\n"
          "<meta name=\"viewport\" content=\"width=device-width,"
          "initial-scale=1\">\n"
          "<title>cchar report &mdash; "
       << htmlEscape(r.application) << "</title>\n";
    writeCss(os);
    os << "</head>\n<body>\n<h1>" << htmlEscape(r.application)
       << "</h1>\n<p class=\"muted\">" << toString(r.strategy)
       << " strategy &middot; " << r.nprocs << " processors &middot; "
       << r.mesh.width << "&times;" << r.mesh.height
       << (r.mesh.topology == mesh::Topology::Torus ? " torus"
                                                    : " mesh")
       << " &middot; "
       << (r.verified ? "verified" : "NOT verified") << "</p>\n";

    writeSummary(os, r);
    writePhaseTimeline(os, r);
    writeLatencyBreakdown(os, inputs.registry);
    writeHeatmap(os, r);
    writeTelemetry(os, r, inputs.sampler);
    writeFlowStats(os, inputs.flows);
    writeSynthFidelity(os, r);
    writeResilience(os, r);
    writeRankActivity(os, r);
    writeLinkWeather(os, r);

    if (inputs.registry) {
        os << "<h2>Metrics snapshot</h2>\n"
              "<details><summary>registry JSON</summary><pre>"
           << htmlEscape(registryJson(*inputs.registry))
           << "</pre></details>\n";
    }

    // Machine-readable archive of everything rendered above.
    os << "<script type=\"application/json\" "
          "id=\"cchar-report-data\">\n{\"report\":";
    {
        std::ostringstream json;
        r.writeJson(json);
        std::string s = json.str();
        while (!s.empty() && s.back() == '\n')
            s.pop_back();
        os << s;
    }
    auto part = [&os](const char *key, auto *obj) {
        os << ",\"" << key << "\":";
        if (obj) {
            std::ostringstream json;
            obj->writeJson(json);
            std::string s = json.str();
            while (!s.empty() && s.back() == '\n')
                s.pop_back();
            os << s;
        } else {
            os << "null";
        }
    };
    os << ",\"metrics\":"
       << (inputs.registry ? registryJson(*inputs.registry)
                           : std::string{"null"});
    part("telemetry", inputs.sampler);
    part("flows", inputs.flows);
    os << "}\n</script>\n</body>\n</html>\n";
}

} // namespace cchar::core
