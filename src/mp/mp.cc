#include "mp.hh"

#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "core/status.hh"

namespace cchar::mp {

MpWorld::MpWorld(desim::Simulator &sim, const MpConfig &cfg)
    : sim_(&sim), cfg_(cfg), log_(cfg.nranks()), trace_(cfg.nranks()),
      faultMode_(cfg.mesh.faults != nullptr)
{
    net_ = std::make_unique<mesh::MeshNetwork>(*sim_, cfg_.mesh, &log_);
    ranks_.resize(static_cast<std::size_t>(cfg_.nranks()));
    if (faultMode_) {
        windowMode_ = cfg_.mesh.faults->plan().retry().window > 1;
        rankRetransmits_.assign(
            static_cast<std::size_t>(cfg_.nranks()), 0);
        rankCorruptDiscards_.assign(
            static_cast<std::size_t>(cfg_.nranks()), 0);
    }
    if (obs::MetricsRegistry *reg = obs::metrics()) {
        sendCtr_ = reg->counter("mp.sends");
        recvCtr_ = reg->counter("mp.recvs");
        bytesSentCtr_ = reg->counter("mp.bytes_sent");
        if (faultMode_) {
            // Registered only in fault mode so a fault-free run's
            // metrics dump stays byte-identical.
            retransmitCtr_ = reg->counter("mp.retransmits");
            deliveryFailCtr_ = reg->counter("mp.delivery_failures");
            corruptDiscardCtr_ = reg->counter("mp.corrupt_discards");
            ackCtr_ = reg->counter("mp.acks");
            backoffHist_ = reg->histogram("mp.backoff_us");
        }
    }
    flows_ = obs::flows();
    activity_ = obs::rankActivity();
    for (int r = 0; r < cfg_.nranks(); ++r)
        sim_->spawn(dispatcher(r), "mp-dispatcher-" + std::to_string(r));
}

MpWorld::~MpWorld()
{
    sim_->destroyProcesses();
}

desim::Task<void>
MpWorld::dispatcher(int rank)
{
    auto &queue = net_->rxQueue(rank);
    auto &state = ranks_[static_cast<std::size_t>(rank)];
    for (;;) {
        mesh::Packet pkt = co_await queue.receive();
        auto msg = std::any_cast<MpMsg>(pkt.payload);
        if (faultMode_) {
            if (pkt.corrupted) {
                // Corrupted packets (data or ack) are discarded
                // unacknowledged; the sender's timeout recovers.
                ++corruptDiscards_;
                corruptDiscardCtr_.add(1);
                ++rankCorruptDiscards_[static_cast<std::size_t>(rank)];
                continue;
            }
            if (windowMode_) {
                if (msg.isAck) {
                    ++acksReceived_;
                    ackCtr_.add(1);
                    auto cit = connections_.find(
                        std::make_pair(rank,
                                       static_cast<int>(msg.srcRank)));
                    if (cit != connections_.end()) {
                        Connection &conn = cit->second;
                        // Cumulative first (recovers lost selective
                        // acks), then the selective ack itself.
                        while (!conn.flight.empty() &&
                               conn.flight.begin()->first <= msg.ack)
                            ackFlight(conn,
                                      conn.flight.begin()->first);
                        ackFlight(conn, msg.seq);
                    }
                    continue;
                }
                RecvConn &rconn =
                    state.recvConns[static_cast<int>(msg.srcRank)];
                bool fresh = rconn.seen.insert(msg.seq).second;
                if (fresh && msg.seq >= rconn.expected) {
                    if (msg.seq == rconn.expected) {
                        deliverData(rank, state, msg);
                        ++rconn.expected;
                    } else {
                        rconn.buffered.emplace(msg.seq, msg);
                    }
                }
                if (msg.winBase > rconn.maxBase)
                    rconn.maxBase = msg.winBase;
                // Flush: deliver consecutive buffered arrivals, and
                // skip holes the sender has resolved (a seq below its
                // window base was acked — then it is buffered or
                // delivered — or abandoned as a delivery failure).
                for (;;) {
                    auto bit = rconn.buffered.find(rconn.expected);
                    if (bit != rconn.buffered.end()) {
                        deliverData(rank, state, bit->second);
                        rconn.buffered.erase(bit);
                        ++rconn.expected;
                    } else if (rconn.expected < rconn.maxBase) {
                        ++rconn.expected;
                    } else {
                        break;
                    }
                }
                // Ack every intact arrival (duplicates included):
                // selective for this seq, cumulative for the in-order
                // prefix delivered so far.
                sendAck(rank, msg, rconn.expected - 1);
                continue;
            }
            if (msg.isAck) {
                ++acksReceived_;
                ackCtr_.add(1);
                auto it = pendingAcks_.find(msg.seq);
                if (it != pendingAcks_.end()) {
                    it->second->acked = true;
                    it->second->ev.trigger();
                    pendingAcks_.erase(it);
                }
                continue;
            }
            // Ack every intact data packet — a duplicate means the
            // earlier ack was lost, so it must be acked again.
            sendAck(rank, msg);
            if (!state.receivedSeqs.insert(msg.seq).second)
                continue; // retransmitted duplicate, already delivered
        }
        deliverData(rank, state, msg);
    }
}

void
MpWorld::deliverData(int rank, RankState &state, const MpMsg &msg)
{
    (void)rank;
    auto key = std::make_pair(static_cast<int>(msg.srcRank),
                              static_cast<int>(msg.tag));
    auto wit = state.waiters.find(key);
    if (wit != state.waiters.end() && !wit->second.empty()) {
        RecvWaiter w = wit->second.front();
        wit->second.pop_front();
        *w.bytesOut = msg.bytes;
        w.event->trigger();
    } else {
        state.arrived[key].push_back(msg.bytes);
    }
}

void
MpWorld::sendAck(int rank, const MpMsg &msg, std::uint64_t cumulative)
{
    mesh::Packet ack;
    ack.src = rank;
    ack.dst = msg.srcRank;
    ack.bytes = cfg_.controlBytes;
    ack.kind = trace::MessageKind::Control;
    ack.tag = static_cast<std::uint64_t>(msg.tag);
    ack.payload = MpMsg{static_cast<std::int32_t>(rank), msg.tag, 0,
                        msg.seq, true, cumulative};
    net_->post(std::move(ack));
}

std::uint64_t
MpWorld::windowBase(const Connection &conn)
{
    return conn.flight.empty() ? conn.nextSeq
                               : conn.flight.begin()->first;
}

void
MpWorld::wakeSlot(Connection &conn)
{
    if (!conn.slotWaiters.empty()) {
        conn.slotWaiters.front()->trigger();
        conn.slotWaiters.pop_front();
    }
}

void
MpWorld::ackFlight(Connection &conn, std::uint64_t seq)
{
    auto it = conn.flight.find(seq);
    if (it == conn.flight.end())
        return; // duplicate / stale ack for a resolved seq
    if (it->second) {
        it->second->acked = true;
        it->second->ev.trigger();
    }
    conn.flight.erase(it);
    wakeSlot(conn);
}

desim::Task<void>
MpWorld::transmitWindowed(int src, int dst, int bytes, int tag,
                          trace::MessageKind kind, std::uint64_t flowId)
{
    Connection &conn =
        connections_[std::make_pair(src, dst)];
    const fault::RetryConfig &rc = cfg_.mesh.faults->plan().retry();
    while (conn.flight.size() >= static_cast<std::size_t>(rc.window)) {
        // Window full: queue FIFO behind the oldest blocked sender so
        // admission order stays deterministic.
        desim::SimEvent ev{*sim_};
        conn.slotWaiters.push_back(&ev);
        co_await ev.wait();
    }
    std::uint64_t seq = conn.nextSeq++;
    conn.flight[seq] = std::make_shared<AckWait>(*sim_);
    sim_->spawn(windowDelivery(src, dst, bytes, tag, kind, flowId, seq),
                "mp-window-" + std::to_string(src) + "-" +
                    std::to_string(dst) + "-" + std::to_string(seq));
}

desim::Task<void>
MpWorld::windowDelivery(int src, int dst, int bytes, int tag,
                        trace::MessageKind kind, std::uint64_t flowId,
                        std::uint64_t seq)
{
    Connection &conn =
        connections_[std::make_pair(src, dst)];
    const fault::RetryConfig &rc = cfg_.mesh.faults->plan().retry();
    double timeout = rc.ackTimeoutUs;
    for (int attempt = 1;; ++attempt) {
        auto fit = conn.flight.find(seq);
        if (fit == conn.flight.end())
            co_return; // resolved by a cumulative ack meanwhile
        std::shared_ptr<AckWait> wait = fit->second;
        if (attempt > 1) {
            // Fresh wait state per attempt: the previous timeout
            // callback still holds the old one.
            wait = std::make_shared<AckWait>(*sim_);
            fit->second = wait;
        }
        mesh::Packet pkt;
        pkt.src = src;
        pkt.dst = dst;
        pkt.bytes = bytes;
        pkt.kind = kind;
        pkt.tag = static_cast<std::uint64_t>(tag);
        // Each retransmission is its own network flow; pass the
        // app-level flow only on the first wire attempt.
        pkt.flow = attempt == 1 ? flowId : 0;
        pkt.payload = MpMsg{static_cast<std::int32_t>(src), tag, bytes,
                            seq, false, 0, windowBase(conn)};
        net_->post(std::move(pkt));
        sim_->schedule(
            [wait] {
                if (!wait->acked)
                    wait->ev.trigger();
            },
            sim_->now() + timeout);
        co_await wait->ev.wait();
        if (wait->acked)
            co_return; // ackFlight already freed the slot
        if (!rc.unbounded() && attempt >= rc.maxAttempts) {
            ++deliveryFailures_;
            deliveryFailCtr_.add(1);
            std::ostringstream os;
            os << "mp: delivery failure " << src << "->" << dst
               << " tag=" << tag << " bytes=" << bytes
               << " seq=" << seq << " after " << attempt
               << " attempts at t=" << std::fixed
               << std::setprecision(2) << sim_->now() << " us";
            core::reportDiagnostic(core::DiagSeverity::Error, os.str());
            // Abandon: free the slot so the window cannot wedge on a
            // dead destination, and let the advancing window base
            // tell the receiver to close the hole.
            conn.flight.erase(seq);
            wakeSlot(conn);
            co_return;
        }
        ++retransmits_;
        retransmitCtr_.add(1);
        ++rankRetransmits_[static_cast<std::size_t>(src)];
        backoffHist_.record(timeout);
        timeout *= rc.backoffFactor;
    }
}

desim::Task<void>
MpWorld::transmitReliable(int src, int dst, int bytes, int tag,
                          trace::MessageKind kind, std::uint64_t flowId)
{
    const fault::RetryConfig &rc = cfg_.mesh.faults->plan().retry();
    std::uint64_t seq = nextSeq_++;
    double timeout = rc.ackTimeoutUs;
    for (int attempt = 1;; ++attempt) {
        mesh::Packet pkt;
        pkt.src = src;
        pkt.dst = dst;
        pkt.bytes = bytes;
        pkt.kind = kind;
        pkt.tag = static_cast<std::uint64_t>(tag);
        // Each retransmission is its own network flow; pass the
        // app-level flow only on the first wire attempt.
        pkt.flow = attempt == 1 ? flowId : 0;
        pkt.payload = MpMsg{static_cast<std::int32_t>(src), tag, bytes,
                            seq, false};
        net_->post(std::move(pkt));

        // The timeout callback may outlive this coroutine frame (the
        // ack can land first), so the wait state is heap-shared.
        auto wait = std::make_shared<AckWait>(*sim_);
        pendingAcks_[seq] = wait;
        sim_->schedule(
            [wait] {
                if (!wait->acked)
                    wait->ev.trigger();
            },
            sim_->now() + timeout);
        co_await wait->ev.wait();
        if (wait->acked)
            co_return;

        pendingAcks_.erase(seq);
        if (!rc.unbounded() && attempt >= rc.maxAttempts) {
            ++deliveryFailures_;
            deliveryFailCtr_.add(1);
            std::ostringstream os;
            os << "mp: delivery failure " << src << "->" << dst
               << " tag=" << tag << " bytes=" << bytes << " seq=" << seq
               << " after " << attempt << " attempts at t=" << std::fixed
               << std::setprecision(2) << sim_->now() << " us";
            core::reportDiagnostic(core::DiagSeverity::Error, os.str());
            co_return;
        }
        ++retransmits_;
        retransmitCtr_.add(1);
        ++rankRetransmits_[static_cast<std::size_t>(src)];
        backoffHist_.record(timeout);
        timeout *= rc.backoffFactor;
    }
}

void
MpWorld::spawnRank(int rank, desim::Task<void> body,
                   const std::string &name)
{
    std::string label = name;
    if (label.empty())
        label = "rank-" + std::to_string(rank);
    appProcesses_.push_back(sim_->spawn(std::move(body), label));
    appRanks_.push_back(rank);
}

void
MpWorld::run()
{
    sim_->run();
    std::ostringstream stuck;
    std::ostringstream detail;
    bool any = false;
    for (std::size_t i = 0; i < appProcesses_.size(); ++i) {
        const auto &ref = appProcesses_[i];
        if (ref.done())
            continue;
        stuck << (any ? ", " : "") << ref.name();
        any = true;

        // Wait-state snapshot of the stuck rank: what it is blocked
        // on and what arrived that nobody consumed.
        int rank = appRanks_[i];
        const auto &state = ranks_[static_cast<std::size_t>(rank)];
        detail << "  " << ref.name() << ": last network activity at t="
               << std::fixed << std::setprecision(2)
               << state.lastActivity << " us";
        bool first = true;
        for (const auto &[key, waiters] : state.waiters) {
            if (waiters.empty())
                continue;
            detail << (first ? "; waiting on recv " : ", ") << "(src="
                   << key.first << ", tag=" << key.second << ")";
            first = false;
        }
        std::size_t unconsumed = 0;
        for (const auto &[key, queue] : state.arrived)
            unconsumed += queue.size();
        if (unconsumed > 0)
            detail << "; " << unconsumed << " unconsumed arrival"
                   << (unconsumed == 1 ? "" : "s");
        detail << "\n";
    }
    if (any) {
        std::ostringstream os;
        os << "mp: application deadlock; stuck ranks: " << stuck.str()
           << "\n  at t=" << std::fixed << std::setprecision(2)
           << sim_->now() << " us; network: " << net_->busyLanes()
           << " lanes busy, " << net_->queuedAcquires()
           << " queued acquires";
        if (faultMode_) {
            os << "; " << deliveryFailures_ << " delivery failures, "
               << retransmits_ << " retransmits";
        }
        os << "\n" << detail.str();
        core::reportDiagnostic(core::DiagSeverity::Error, os.str());
        throw core::CCharError(core::StatusCode::SimError, os.str());
    }
}

// ---------------------------------------------------------------
// MpContext

desim::Task<void>
MpContext::compute(double us)
{
    co_await world_->sim().delay(us);
}

desim::Task<void>
MpContext::sendInternal(int dst, int bytes, int tag,
                        trace::MessageKind kind)
{
    if (dst == rank_)
        throw std::invalid_argument("mp: send to self");
    if (dst < 0 || dst >= size())
        throw std::invalid_argument("mp: destination out of range");

    auto &state = world_->ranks_[static_cast<std::size_t>(rank_)];
    double now = world_->sim().now();
    if (world_->tracing_) {
        trace::TraceEvent ev;
        ev.src = rank_;
        ev.dst = dst;
        ev.bytes = bytes;
        ev.kind = kind;
        ev.sinceLast = now - state.lastActivity;
        world_->trace_.add(ev);
    }

    // Open the flow at the application-level send, so the record's
    // generate->inject gap captures the sender-side software overhead.
    std::uint64_t flowId = 0;
    if (world_->flows_) {
        flowId = world_->flows_->open(static_cast<int>(kind), rank_, dst,
                                      bytes, now);
    }

    // The blocked-send span covers everything that suspends the rank:
    // the sender-side overhead delay and, in fault mode, the reliable
    // transmit with its retransmission waits.
    if (world_->activity_) {
        world_->activity_->beginBlocked(rank_, obs::RankState::BlockedSend,
                                        now);
    }

    // Sender's share of the SP2 software overhead.
    const MpConfig &cfg = world_->config();
    co_await world_->sim().delay(cfg.sendFraction * cfg.overhead(bytes));

    if (world_->windowMode_) {
        // Sliding window: blocks only while the (rank, dst) window is
        // full; delivery (and any retransmission) continues in the
        // background so consecutive sends pipeline.
        co_await world_->transmitWindowed(rank_, dst, bytes, tag, kind,
                                          flowId);
    } else if (world_->faultMode_) {
        // Reliable delivery: blocks until acked or the retry budget
        // is spent, so a lossy link slows the sender rather than
        // silently losing application messages.
        co_await world_->transmitReliable(rank_, dst, bytes, tag, kind,
                                          flowId);
    } else {
        mesh::Packet pkt;
        pkt.src = rank_;
        pkt.dst = dst;
        pkt.bytes = bytes;
        pkt.kind = kind;
        pkt.tag = static_cast<std::uint64_t>(tag);
        pkt.flow = flowId;
        pkt.payload = MpWorld::MpMsg{rank_, tag, bytes};
        world_->network().post(std::move(pkt));
    }
    world_->sendCtr_.add(1);
    world_->bytesSentCtr_.add(static_cast<std::uint64_t>(bytes));
    state.lastActivity = world_->sim().now();
    if (world_->activity_)
        world_->activity_->endBlocked(rank_, state.lastActivity);
}

desim::Task<int>
MpContext::recvInternal(int src, int tag)
{
    if (src == rank_)
        throw std::invalid_argument("mp: receive from self");
    if (src < 0 || src >= size())
        throw std::invalid_argument("mp: source out of range");

    auto &state = world_->ranks_[static_cast<std::size_t>(rank_)];
    // The blocked-recv span covers the wait for the message (if it has
    // not already arrived) plus the receiver-side overhead delay.
    if (world_->activity_) {
        world_->activity_->beginBlocked(rank_, obs::RankState::BlockedRecv,
                                        world_->sim().now());
    }
    auto key = std::make_pair(src, tag);
    std::int32_t bytes = 0;
    auto ait = state.arrived.find(key);
    if (ait != state.arrived.end() && !ait->second.empty()) {
        bytes = ait->second.front();
        ait->second.pop_front();
    } else {
        desim::SimEvent ev{world_->sim()};
        state.waiters[key].push_back(MpWorld::RecvWaiter{&ev, &bytes});
        co_await ev.wait();
    }
    // Receiver's share of the overhead.
    const MpConfig &cfg = world_->config();
    co_await world_->sim().delay((1.0 - cfg.sendFraction) *
                                 cfg.overhead(bytes));
    world_->recvCtr_.add(1);
    state.lastActivity = world_->sim().now();
    if (world_->activity_)
        world_->activity_->endBlocked(rank_, state.lastActivity);
    co_return bytes;
}

desim::Task<void>
MpContext::send(int dst, int bytes, int tag)
{
    co_await sendInternal(dst, bytes, tag, trace::MessageKind::Data);
}

desim::Task<int>
MpContext::recv(int src, int tag)
{
    int bytes = co_await recvInternal(src, tag);
    co_return bytes;
}

desim::Task<void>
MpContext::sendrecv(int dst, int send_bytes, int src, int tag)
{
    co_await sendInternal(dst, send_bytes, tag, trace::MessageKind::Data);
    (void)co_await recvInternal(src, tag);
}

desim::Task<void>
MpContext::barrier()
{
    // Barrier entry is the per-rank synchronization marker: marker k
    // across all ranks defines skew sample k in the rank-activity
    // analysis.
    if (world_->activity_)
        world_->activity_->noteMarker(rank_, world_->sim().now());
    int p = size();
    for (int dist = 1; dist < p; dist *= 2) {
        int to = (rank_ + dist) % p;
        int from = (rank_ - dist % p + p) % p;
        co_await sendInternal(to, world_->config().controlBytes,
                              tagBarrier + dist, trace::MessageKind::Sync);
        (void)co_await recvInternal(from, tagBarrier + dist);
    }
}

desim::Task<void>
MpContext::bcast(int root, int bytes)
{
    // Linear broadcast with completion acks (see file comment).
    int ctl = world_->config().controlBytes;
    if (rank_ == root) {
        for (int r = 0; r < size(); ++r) {
            if (r != root)
                co_await sendInternal(r, bytes, tagBcast,
                                      trace::MessageKind::Data);
        }
        for (int r = 0; r < size(); ++r) {
            if (r != root)
                (void)co_await recvInternal(r, tagBcastAck);
        }
    } else {
        (void)co_await recvInternal(root, tagBcast);
        co_await sendInternal(root, ctl, tagBcastAck,
                              trace::MessageKind::Control);
    }
}

desim::Task<void>
MpContext::reduce(int root, int bytes)
{
    // Binomial tree rooted at `root` over the rotated rank space.
    int p = size();
    int vrank = (rank_ - root + p) % p;
    int dist = 1;
    while (dist < p) {
        if ((vrank & dist) != 0) {
            int parent = (((vrank & ~dist)) + root) % p;
            co_await sendInternal(parent, bytes, tagReduce + dist,
                                  trace::MessageKind::Data);
            break;
        }
        int child = vrank | dist;
        if (child < p) {
            (void)co_await recvInternal((child + root) % p,
                                        tagReduce + dist);
        }
        dist *= 2;
    }
}

desim::Task<void>
MpContext::allreduce(int bytes)
{
    co_await reduce(0, bytes);
    co_await bcast(0, bytes);
}

desim::Task<void>
MpContext::alltoall(int bytes_per_pair)
{
    int p = size();
    for (int step = 1; step < p; ++step) {
        int to = (rank_ + step) % p;
        int from = (rank_ - step + p) % p;
        co_await sendInternal(to, bytes_per_pair, tagAlltoall + step,
                              trace::MessageKind::Data);
        (void)co_await recvInternal(from, tagAlltoall + step);
    }
}

desim::Task<void>
MpContext::gather(int root, int bytes)
{
    if (rank_ == root) {
        for (int r = 0; r < size(); ++r) {
            if (r != root)
                (void)co_await recvInternal(r, tagGather);
        }
    } else {
        co_await sendInternal(root, bytes, tagGather,
                              trace::MessageKind::Data);
    }
}

desim::Task<void>
MpContext::scatter(int root, int bytes)
{
    if (rank_ == root) {
        for (int r = 0; r < size(); ++r) {
            if (r != root)
                co_await sendInternal(r, bytes, tagScatter,
                                      trace::MessageKind::Data);
        }
    } else {
        (void)co_await recvInternal(root, tagScatter);
    }
}

desim::Task<void>
MpContext::allgather(int bytes)
{
    // Ring algorithm: each rank forwards the accumulated block to its
    // successor for P-1 steps.
    int p = size();
    int next = (rank_ + 1) % p;
    int prev = (rank_ - 1 + p) % p;
    for (int step = 0; step < p - 1; ++step) {
        co_await sendInternal(next, bytes, tagAllgather + step,
                              trace::MessageKind::Data);
        (void)co_await recvInternal(prev, tagAllgather + step);
    }
}

} // namespace cchar::mp
