/**
 * @file
 * Message-passing runtime (the static-strategy substrate).
 *
 * The paper's static strategy runs MPI applications on an IBM SP2 and
 * traces their communication calls at the application level. This
 * module provides an MPI-subset runtime executing on the simulation
 * kernel with the paper's measured SP2 communication-software cost
 * model ("the software overheads amount to 4.63e-2 x + 73.42
 * microseconds to transfer x bytes of data"), a point-to-point
 * matching engine, collectives built from point-to-point messages,
 * and an application-level trace collector emitting the
 * (src, dst, length, time-since-last-activity) records the 2-D mesh
 * simulator consumes.
 *
 * Collective implementations (documented for reproducibility):
 *  - barrier: dissemination algorithm, ceil(log2 P) rounds;
 *  - bcast: root sends linearly to every rank, each rank returns a
 *    small completion ack to the root. The acks reproduce the paper's
 *    observation that the broadcast root p0 becomes every processor's
 *    "favorite" destination by message count while the byte volume
 *    stays uniform (Figure 9 discussion);
 *  - reduce: binomial tree toward the root;
 *  - allreduce: reduce followed by bcast;
 *  - alltoall: linear-shift pairwise exchange.
 */

#ifndef CCHAR_MP_MP_HH
#define CCHAR_MP_MP_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "desim/desim.hh"
#include "mesh/mesh.hh"
#include "trace/record.hh"
#include "trace/trace.hh"

namespace cchar::mp {

/** Runtime parameters. */
struct MpConfig
{
    mesh::MeshConfig mesh{};
    /** SP2 software overhead: base + perByte * x microseconds. */
    double overheadBase = 73.42;
    double overheadPerByte = 0.0463;
    /** Fraction of the overhead charged at the sender. */
    double sendFraction = 0.5;
    /** Size of a dataless control/ack message. */
    int controlBytes = 8;

    MpConfig()
    {
        mesh.width = 4;
        mesh.height = 2;
    }

    int nranks() const { return mesh.nodes(); }

    double
    overhead(int bytes) const
    {
        return overheadBase + overheadPerByte * static_cast<double>(bytes);
    }
};

class MpContext;

/** The message-passing world: ranks, network, matching, tracing. */
class MpWorld
{
  public:
    MpWorld(desim::Simulator &sim, const MpConfig &cfg);

    explicit MpWorld(desim::Simulator &sim) : MpWorld(sim, MpConfig{}) {}

    MpWorld(const MpWorld &) = delete;
    MpWorld &operator=(const MpWorld &) = delete;

    /** Destroys suspended rank frames before the network they use. */
    ~MpWorld();

    const MpConfig &config() const { return cfg_; }
    int size() const { return cfg_.nranks(); }
    desim::Simulator &sim() { return *sim_; }
    mesh::MeshNetwork &network() { return *net_; }
    trace::TrafficLog &log() { return log_; }

    /** Collect an application-level trace of all sends. */
    void enableTracing() { tracing_ = true; }
    const trace::Trace &collectedTrace() const { return trace_; }

    /** Register rank `rank`'s program. */
    void spawnRank(int rank, desim::Task<void> body,
                   const std::string &name = {});

    /**
     * Run to completion.
     * @throws core::CCharError (SimError; derives std::runtime_error)
     *         with per-rank wait-state diagnostics on deadlock.
     */
    void run();

    // -------- resilience accounting (fault-injection runs) --------

    /** Data packets re-sent after an ack timeout. */
    std::uint64_t retransmits() const { return retransmits_; }
    /** Sends abandoned after exhausting the retry budget. */
    std::uint64_t deliveryFailures() const { return deliveryFailures_; }
    /** Corrupted packets discarded at the receiver. */
    std::uint64_t corruptDiscards() const { return corruptDiscards_; }
    /** Acks received by senders. */
    std::uint64_t acksReceived() const { return acksReceived_; }
    /** Retransmissions attributed to the sending rank. */
    const std::vector<std::uint64_t> &rankRetransmits() const
    {
        return rankRetransmits_;
    }
    /** Corrupt discards attributed to the receiving rank. */
    const std::vector<std::uint64_t> &rankCorruptDiscards() const
    {
        return rankCorruptDiscards_;
    }

  private:
    friend class MpContext;

    /** Payload of a point-to-point message. */
    struct MpMsg
    {
        std::int32_t srcRank;
        std::int32_t tag;
        std::int32_t bytes;
        /** Fault-mode delivery id (unique per logical send; 0 = none).
         *  Stop-and-wait numbers a single global space; the windowed
         *  protocol numbers each (src, dst) connection separately. */
        std::uint64_t seq = 0;
        /** Fault-mode delivery acknowledgement (control packet). */
        bool isAck = false;
        /** Window-mode ack: every seq <= ack was delivered in order
         *  (cumulative); `seq` above carries the selective ack. */
        std::uint64_t ack = 0;
        /** Window-mode data: the sender's lowest in-flight seq when
         *  this copy left. Seqs below it are resolved (acked or
         *  abandoned), so the receiver may close those holes. */
        std::uint64_t winBase = 0;
    };

    struct RecvWaiter
    {
        desim::SimEvent *event;
        std::int32_t *bytesOut;
    };

    /** Window-mode receiver state for one (sender -> this rank)
     *  connection: in-order delivery with an out-of-order buffer. */
    struct RecvConn
    {
        /** Next seq to deliver up to the application. */
        std::uint64_t expected = 1;
        /** Highest sender window base seen on any arrival. */
        std::uint64_t maxBase = 1;
        /** Intact arrivals ahead of `expected`, keyed by seq. */
        std::map<std::uint64_t, MpMsg> buffered;
        /** Seqs already acked (retransmit dedup). */
        std::unordered_set<std::uint64_t> seen;
    };

    struct RankState
    {
        /** End time of the rank's last network activity (tracing). */
        double lastActivity = 0.0;
        std::map<std::pair<int, int>, std::deque<std::int32_t>> arrived;
        std::map<std::pair<int, int>, std::deque<RecvWaiter>> waiters;
        /** Fault-mode: seqs already delivered up (retransmit dedup). */
        std::unordered_set<std::uint64_t> receivedSeqs;
        /** Window-mode receiver connections, keyed by source rank. */
        std::map<int, RecvConn> recvConns;
    };

    /** Sender-side wait for one delivery attempt's ack. Heap-shared
     *  between the sending coroutine and the scheduled timeout
     *  callback, which may fire after the coroutine frame is gone. */
    struct AckWait
    {
        explicit AckWait(desim::Simulator &sim) : ev(sim) {}
        desim::SimEvent ev;
        bool acked = false;
    };

    /** Window-mode sender state for one (src -> dst) connection. */
    struct Connection
    {
        /** Next seq to assign on this connection. */
        std::uint64_t nextSeq = 1;
        /** Unacked transmissions, keyed by seq. A slot's AckWait is
         *  replaced on every retransmission attempt. */
        std::map<std::uint64_t, std::shared_ptr<AckWait>> flight;
        /** Senders blocked on a full window, FIFO. */
        std::deque<desim::SimEvent *> slotWaiters;
    };

    desim::Task<void> dispatcher(int rank);

    /**
     * Fault-mode reliable transmit: post the packet, wait for the
     * receiver's ack, retransmit with exponential backoff on timeout.
     * Gives up (and counts a delivery failure) after the plan's
     * maxAttempts; retries forever when the budget is unbounded.
     */
    desim::Task<void> transmitReliable(int src, int dst, int bytes,
                                       int tag, trace::MessageKind kind,
                                       std::uint64_t flowId);

    /**
     * Window-mode admission: waits for a free window slot on the
     * (src, dst) connection, assigns the next seq and hands delivery
     * to a background windowDelivery() process, so up to
     * retry().window sends pipeline per destination.
     */
    desim::Task<void> transmitWindowed(int src, int dst, int bytes,
                                       int tag, trace::MessageKind kind,
                                       std::uint64_t flowId);

    /** Window-mode per-packet delivery: transmit, retransmit with
     *  backoff, resolve as acked or as a delivery failure. */
    desim::Task<void> windowDelivery(int src, int dst, int bytes,
                                     int tag, trace::MessageKind kind,
                                     std::uint64_t flowId,
                                     std::uint64_t seq);

    /** Lowest in-flight seq (next seq when the window is empty). */
    static std::uint64_t windowBase(const Connection &conn);

    /** Resolve one in-flight seq as acked; frees its window slot. */
    void ackFlight(Connection &conn, std::uint64_t seq);

    /** Wake the longest-waiting sender blocked on the window. */
    void wakeSlot(Connection &conn);

    /** Hand one in-order data message to the matching engine. */
    void deliverData(int rank, RankState &state, const MpMsg &msg);

    /** Post an ack control packet for a delivered data packet;
     *  `cumulative` is the window-mode cumulative ack (0 for the
     *  stop-and-wait protocol, which ignores it). */
    void sendAck(int rank, const MpMsg &msg,
                 std::uint64_t cumulative = 0);

    desim::Simulator *sim_;
    MpConfig cfg_;
    trace::TrafficLog log_;
    trace::Trace trace_;
    bool tracing_ = false;
    std::unique_ptr<mesh::MeshNetwork> net_;
    std::vector<RankState> ranks_;
    std::vector<desim::ProcessRef> appProcesses_;
    std::vector<int> appRanks_;

    /** Retransmission protocol active (cfg.mesh.faults != nullptr). */
    bool faultMode_ = false;
    /** Sliding-window protocol active (retry().window > 1). */
    bool windowMode_ = false;
    std::uint64_t nextSeq_ = 1;
    std::map<std::uint64_t, std::shared_ptr<AckWait>> pendingAcks_;
    /** Window-mode sender connections, keyed by (src, dst). */
    std::map<std::pair<int, int>, Connection> connections_;
    std::uint64_t retransmits_ = 0;
    std::uint64_t deliveryFailures_ = 0;
    std::uint64_t corruptDiscards_ = 0;
    std::uint64_t acksReceived_ = 0;
    std::vector<std::uint64_t> rankRetransmits_;
    std::vector<std::uint64_t> rankCorruptDiscards_;

    // Observability handles (detached when no sinks are installed).
    obs::Counter sendCtr_;
    obs::Counter recvCtr_;
    obs::Counter bytesSentCtr_;
    obs::Counter retransmitCtr_;
    obs::Counter deliveryFailCtr_;
    obs::Counter corruptDiscardCtr_;
    obs::Counter ackCtr_;
    obs::Histogram backoffHist_;
    obs::FlowTracker *flows_ = nullptr;
    /** Per-rank activity sink (blocked spans + barrier markers). */
    obs::RankActivityTracker *activity_ = nullptr;
};

/** Per-rank communication interface handed to application code. */
class MpContext
{
  public:
    MpContext(MpWorld &world, int rank) : world_(&world), rank_(rank) {}

    int rank() const { return rank_; }
    int size() const { return world_->size(); }
    MpWorld &world() { return *world_; }

    /** Local computation for `us` microseconds. */
    desim::Task<void> compute(double us);

    /**
     * Blocking send of `bytes` to `dst`. Charges the sender's share
     * of the SP2 software overhead, then injects the message.
     */
    desim::Task<void> send(int dst, int bytes, int tag = 0);

    /**
     * Blocking receive matching (src, tag). Charges the receiver's
     * share of the overhead after the message arrives.
     * @return the received byte count.
     */
    desim::Task<int> recv(int src, int tag = 0);

    /** Combined exchange with one partner. */
    desim::Task<void> sendrecv(int dst, int send_bytes, int src,
                               int tag = 0);

    /** Dissemination barrier over all ranks. */
    desim::Task<void> barrier();

    /** Broadcast `bytes` from `root` (linear + completion acks). */
    desim::Task<void> bcast(int root, int bytes);

    /** Binomial-tree reduction of `bytes` to `root`. */
    desim::Task<void> reduce(int root, int bytes);

    /** reduce + bcast. */
    desim::Task<void> allreduce(int bytes);

    /** Linear-shift all-to-all, `bytes_per_pair` to every other rank. */
    desim::Task<void> alltoall(int bytes_per_pair);

    /** Every rank sends `bytes` to `root` (linear gather). */
    desim::Task<void> gather(int root, int bytes);

    /** `root` sends `bytes` to every rank (linear scatter). */
    desim::Task<void> scatter(int root, int bytes);

    /** Ring allgather: P-1 steps of `bytes` to the next rank. */
    desim::Task<void> allgather(int bytes);

  private:
    /** Internal tags reserved for collectives. */
    static constexpr int tagBarrier = 1 << 20;
    static constexpr int tagBcast = 1 << 21;
    static constexpr int tagBcastAck = (1 << 21) + 1;
    static constexpr int tagReduce = 1 << 22;
    static constexpr int tagAlltoall = 1 << 23;
    static constexpr int tagGather = 1 << 24;
    static constexpr int tagScatter = 1 << 25;
    static constexpr int tagAllgather = 1 << 26;

    desim::Task<void> sendInternal(int dst, int bytes, int tag,
                                   trace::MessageKind kind);
    desim::Task<int> recvInternal(int src, int tag);

    MpWorld *world_;
    int rank_;
};

} // namespace cchar::mp

#endif // CCHAR_MP_MP_HH
