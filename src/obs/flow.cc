#include "flow.hh"

#include <ostream>
#include <stdexcept>

#include "obs.hh"

namespace cchar::obs {

FlowTracker::FlowTracker(std::size_t capacity, std::uint64_t stride)
    : stride_(stride), capacity_(capacity)
{
    if (capacity_ == 0)
        throw std::invalid_argument("obs: flow capacity must be > 0");
    if (stride_ == 0)
        throw std::invalid_argument("obs: flow stride must be > 0");
    records_.reserve(capacity_);
}

std::uint64_t
FlowTracker::open(int kind, std::int32_t src, std::int32_t dst,
                  std::int32_t bytes, double t)
{
    std::uint64_t id = nextId_++;
    FlowRecord rec;
    rec.id = id;
    rec.kind = kind;
    rec.src = src;
    rec.dst = dst;
    rec.bytes = bytes;
    rec.tGenerate = t;
    rec.tInject = t;
    open_.emplace(id, rec);
    return id;
}

void
FlowTracker::onInject(std::uint64_t id, double t)
{
    auto it = open_.find(id);
    if (it != open_.end())
        it->second.tInject = t;
}

void
FlowTracker::onDeliver(std::uint64_t id, double t, std::int32_t hops,
                       double queue_wait, double stall_wait)
{
    auto it = open_.find(id);
    if (it == open_.end())
        return;
    FlowRecord rec = it->second;
    open_.erase(it);
    rec.tDeliver = t;
    rec.hops = hops;
    rec.queueWait = queue_wait;
    rec.stallWait = stall_wait;
    ++completed_;
    if (records_.size() < capacity_) {
        records_.push_back(rec);
    } else {
        ++droppedRecords_;
        if (!droppedMetricResolved_) {
            droppedMetricResolved_ = true;
            if (MetricsRegistry *reg = metrics())
                droppedMetric_ = reg->counter("flow.dropped");
        }
        droppedMetric_.add();
    }
}

void
FlowTracker::writeJson(std::ostream &os) const
{
    os << "{\"opened\":" << opened() << ",\"completed\":" << completed_
       << ",\"dropped\":" << droppedRecords_ << ",\"stride\":" << stride_
       << ",\"records\":[";
    for (std::size_t i = 0; i < records_.size(); ++i) {
        const FlowRecord &r = records_[i];
        if (i)
            os << ",";
        os << "{\"id\":" << r.id << ",\"kind\":" << r.kind
           << ",\"src\":" << r.src << ",\"dst\":" << r.dst
           << ",\"bytes\":" << r.bytes << ",\"hops\":" << r.hops
           << ",\"tGenerate\":" << r.tGenerate
           << ",\"tInject\":" << r.tInject
           << ",\"tDeliver\":" << r.tDeliver
           << ",\"queueWait\":" << r.queueWait
           << ",\"stallWait\":" << r.stallWait << "}";
    }
    os << "]}";
}

} // namespace cchar::obs
