/**
 * @file
 * Low-overhead metrics registry: Counter / Gauge / Histogram handles
 * backed by contiguous storage.
 *
 * Design goals, in order:
 *
 *  1. Zero cost when disabled. A handle is a single pointer into the
 *     registry's storage; a default-constructed (detached) handle is a
 *     null pointer and every operation on it is one predictable branch.
 *     Instrumented code resolves its handles once (at construction)
 *     and the hot path never does a name lookup. Defining
 *     CCHAR_OBS_DISABLED at compile time additionally turns every
 *     handle operation into a no-op the optimizer deletes outright.
 *
 *  2. Determinism. The registry performs no I/O and no time queries;
 *     exporting is explicit (writeJson) and iterates names in sorted
 *     order, so two identical runs export identical documents.
 *
 *  3. Stability. Slots live in vectors whose capacity is fixed at
 *     construction, so handles stay valid for the registry's lifetime
 *     and the storage is genuinely contiguous.
 *
 * Metric names are interned: asking for the same name twice returns a
 * handle onto the same slot, which is how independent components (e.g.
 * every NodeController) share one logical counter.
 */

#ifndef CCHAR_OBS_REGISTRY_HH
#define CCHAR_OBS_REGISTRY_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace cchar::obs {

class MetricsRegistry;

/** Monotonically increasing event count. */
class Counter
{
  public:
    Counter() = default;

    void
    add(std::uint64_t n = 1)
    {
#ifndef CCHAR_OBS_DISABLED
        if (slot_)
            *slot_ += n;
#else
        (void)n;
#endif
    }

    /** Current value (0 when detached). */
    std::uint64_t value() const { return slot_ ? *slot_ : 0; }

    /** True when attached to a registry slot. */
    explicit operator bool() const { return slot_ != nullptr; }

  private:
    friend class MetricsRegistry;
    explicit Counter(std::uint64_t *slot) : slot_(slot) {}

    std::uint64_t *slot_ = nullptr;
};

/** Last-written (or running-max) level of a signal. */
class Gauge
{
  public:
    Gauge() = default;

    void
    set(double v)
    {
#ifndef CCHAR_OBS_DISABLED
        if (slot_)
            *slot_ = v;
#else
        (void)v;
#endif
    }

    /** Keep the maximum of the values seen. */
    void
    high(double v)
    {
#ifndef CCHAR_OBS_DISABLED
        if (slot_ && v > *slot_)
            *slot_ = v;
#else
        (void)v;
#endif
    }

    double value() const { return slot_ ? *slot_ : 0.0; }
    explicit operator bool() const { return slot_ != nullptr; }

  private:
    friend class MetricsRegistry;
    explicit Gauge(double *slot) : slot_(slot) {}

    double *slot_ = nullptr;
};

/**
 * Fixed-layout histogram payload: base-2 exponential buckets covering
 * [2^-16, 2^30) plus an underflow/zero bucket and an overflow bucket,
 * with exact count/sum/min/max on the side.
 */
struct HistogramData
{
    /** bucket 0: v <= 0 or v < 2^-16; bucket 47: v >= 2^30. */
    static constexpr int kBuckets = 48;
    static constexpr int kMinExp = -16;

    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();

    /** Bucket index of a value. */
    static int bucketOf(double v);

    /** Exclusive upper bound of bucket i (inf for the overflow bucket). */
    static double upperBound(int i);

    void
    record(double v)
    {
        ++buckets[static_cast<std::size_t>(bucketOf(v))];
        ++count;
        sum += v;
        if (v < min)
            min = v;
        if (v > max)
            max = v;
    }

    double
    mean() const
    {
        return count ? sum / static_cast<double>(count) : 0.0;
    }
};

/** Distribution of an observed quantity (latencies, queue waits...). */
class Histogram
{
  public:
    Histogram() = default;

    void
    record(double v)
    {
#ifndef CCHAR_OBS_DISABLED
        if (data_)
            data_->record(v);
#else
        (void)v;
#endif
    }

    std::uint64_t count() const { return data_ ? data_->count : 0; }
    double mean() const { return data_ ? data_->mean() : 0.0; }
    explicit operator bool() const { return data_ != nullptr; }

  private:
    friend class MetricsRegistry;
    explicit Histogram(HistogramData *data) : data_(data) {}

    HistogramData *data_ = nullptr;
};

/**
 * Owner of all metric storage. Handles returned by counter()/gauge()/
 * histogram() stay valid for the registry's lifetime.
 */
class MetricsRegistry
{
  public:
    /** Capacities fix the contiguous storage; exceeding one throws. */
    explicit MetricsRegistry(std::size_t maxCounters = 256,
                             std::size_t maxGauges = 128,
                             std::size_t maxHistograms = 64);

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Handle onto the named counter (interned; created on demand). */
    Counter counter(const std::string &name);
    Gauge gauge(const std::string &name);
    Histogram histogram(const std::string &name);

    /** Value lookups by name (0 / null when the metric is absent). */
    std::uint64_t counterValue(const std::string &name) const;
    double gaugeValue(const std::string &name) const;
    const HistogramData *histogramData(const std::string &name) const;

    /**
     * Full-content snapshots in sorted-name order (the same order
     * writeJson emits). The sweep journal uses these to serialize a
     * completed job's registry so a resumed run can rebuild it
     * exactly; pointers in histograms() stay valid for the
     * registry's lifetime.
     */
    std::vector<std::pair<std::string, std::uint64_t>> counters() const;
    std::vector<std::pair<std::string, double>> gauges() const;
    std::vector<std::pair<std::string, const HistogramData *>>
    histograms() const;

    /**
     * Intern the named histogram and overwrite its payload verbatim
     * (buckets, count, sum, min, max). Restore-side complement of
     * histograms(); counters and gauges restore through
     * counter().add() / gauge().set().
     */
    void restoreHistogram(const std::string &name,
                          const HistogramData &data);

    /** Zero every value; handles stay attached. */
    void reset();

    /**
     * Fold another registry into this one: counters add, gauges keep
     * the maximum, histograms merge bucket-wise (count/sum add,
     * min/max widen). Metrics absent here are interned on demand. The
     * sweep engine uses this to aggregate per-worker registries into
     * one fleet-wide snapshot in deterministic (job) order.
     */
    void mergeFrom(const MetricsRegistry &other);

    /**
     * JSON snapshot:
     * {"counters":{...},"gauges":{...},"histograms":{name:
     *  {"count":n,"sum":s,"min":m,"max":M,"mean":mu,
     *   "buckets":[[upperBound,count],...]}}}
     * Names are emitted in sorted order (deterministic).
     */
    void writeJson(std::ostream &os) const;

  private:
    std::vector<std::uint64_t> counterSlots_;
    std::vector<double> gaugeSlots_;
    std::vector<HistogramData> histogramSlots_;
    std::map<std::string, std::size_t> counterIndex_;
    std::map<std::string, std::size_t> gaugeIndex_;
    std::map<std::string, std::size_t> histogramIndex_;
};

} // namespace cchar::obs

#endif // CCHAR_OBS_REGISTRY_HH
