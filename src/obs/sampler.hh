/**
 * @file
 * Windowed telemetry sampler: fixed-period time series of simulation
 * signals (injection rate, channel utilization, VC occupancy, event
 * calendar depth, ...).
 *
 * The sampler itself is passive storage plus a set of registered
 * probes; it has no clock of its own. A driver — normally
 * desim::Simulator::attachPeriodic — calls sample(t) once per window,
 * at which point every probe is evaluated and one column is appended
 * to the series table. Probes are plain std::function<double()>; a
 * probe that needs windowed semantics (a rate, a delta) captures its
 * own previous-value state.
 */

#ifndef CCHAR_OBS_SAMPLER_HH
#define CCHAR_OBS_SAMPLER_HH

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace cchar::obs {

/** Multi-series fixed-period sample recorder. */
class WindowedSampler
{
  public:
    WindowedSampler() = default;

    WindowedSampler(const WindowedSampler &) = delete;
    WindowedSampler &operator=(const WindowedSampler &) = delete;

    /**
     * Register a series. Must happen before the first sample() so all
     * series stay the same length.
     *
     * @return index of the series.
     */
    std::size_t addSeries(std::string name,
                          std::function<double()> probe);

    /** Evaluate every probe at simulated time t and append a column. */
    void sample(double t);

    std::size_t seriesCount() const { return series_.size(); }
    std::size_t sampleCount() const { return times_.size(); }

    const std::vector<double> &times() const { return times_; }
    const std::string &seriesName(std::size_t i) const;
    const std::vector<double> &seriesValues(std::size_t i) const;

    /**
     * JSON: {"t":[...],"series":{"name":[...],...}} — one value per
     * sample per series, aligned with "t".
     */
    void writeJson(std::ostream &os) const;

  private:
    struct Series
    {
        std::string name;
        std::function<double()> probe;
        std::vector<double> values;
    };

    std::vector<double> times_;
    std::vector<Series> series_;
};

} // namespace cchar::obs

#endif // CCHAR_OBS_SAMPLER_HH
