#include "link_stats.hh"

#include <algorithm>

namespace cchar::obs {

const char *
linkDirName(int dir)
{
    switch (dir) {
    case 0:
        return "E";
    case 1:
        return "W";
    case 2:
        return "N";
    case 3:
        return "S";
    case kLinkInject:
        return "inj";
    default:
        return "?";
    }
}

int
LinkRecord::depthBucket(int depth)
{
    if (depth <= 3)
        return depth < 0 ? 0 : depth;
    if (depth < 8)
        return 4;
    if (depth < 16)
        return 5;
    if (depth < 32)
        return 6;
    return 7;
}

LinkStatsTracker::LinkStatsTracker(std::size_t maxLinks)
    : maxLinks_(maxLinks)
{
}

int
LinkStatsTracker::declareLink(int node, int dir, int vc)
{
    if (node < 0 || dir < 0 || vc < 0)
        return -1;
    std::uint64_t key = (static_cast<std::uint64_t>(node) << 20) |
                        (static_cast<std::uint64_t>(dir) << 16) |
                        static_cast<std::uint64_t>(vc);
    auto it = index_.find(key);
    if (it != index_.end())
        return it->second;
    if (links_.size() >= maxLinks_) {
        ++dropped_;
        return -1;
    }
    LinkRecord rec;
    rec.node = node;
    rec.dir = dir;
    rec.vc = vc;
    rec.busyWindowUs.assign(static_cast<std::size_t>(kWindows), 0.0);
    int id = static_cast<int>(links_.size());
    links_.push_back(std::move(rec));
    index_.emplace(key, id);
    if (dir < kLinkInject)
        ++channelLinks_;
    return id;
}

void
LinkStatsTracker::declareRouters(int nodes)
{
    if (nodes < 0 || static_cast<std::size_t>(nodes) > maxLinks_) {
        ++dropped_;
        return;
    }
    if (static_cast<std::size_t>(nodes) > routers_.size())
        routers_.resize(static_cast<std::size_t>(nodes));
}

void
LinkStatsTracker::ensureWindow(double t)
{
    while (t >= windowUs_ * kWindows) {
        // The run outgrew the series: double the window, fold pairs.
        auto fold = [](auto &arr) {
            for (int i = 0; i < kWindows / 2; ++i)
                arr[static_cast<std::size_t>(i)] =
                    arr[static_cast<std::size_t>(2 * i)] +
                    arr[static_cast<std::size_t>(2 * i + 1)];
            for (int i = kWindows / 2; i < kWindows; ++i)
                arr[static_cast<std::size_t>(i)] = 0.0;
        };
        fold(offered_);
        fold(delivered_);
        for (LinkRecord &rec : links_)
            fold(rec.busyWindowUs);
        windowUs_ *= 2.0;
    }
}

int
LinkStatsTracker::windowOf(double t) const
{
    int w = static_cast<int>(t / windowUs_);
    return std::clamp(w, 0, kWindows - 1);
}

void
LinkStatsTracker::addBusySpan(LinkRecord &rec, double beginUs,
                              double endUs)
{
    if (endUs <= beginUs)
        return;
    ensureWindow(endUs);
    int w0 = windowOf(beginUs);
    int w1 = windowOf(endUs);
    for (int w = w0; w <= w1; ++w) {
        double lo = std::max(beginUs, w * windowUs_);
        double hi = std::min(endUs, (w + 1) * windowUs_);
        if (hi > lo)
            rec.busyWindowUs[static_cast<std::size_t>(w)] += hi - lo;
    }
}

void
LinkStatsTracker::advanceDepth(LinkRecord &rec, double nowUs)
{
    if (nowUs > rec.depthChangeUs) {
        double dt = nowUs - rec.depthChangeUs;
        rec.depthTimeUs[static_cast<std::size_t>(
            LinkRecord::depthBucket(rec.queueDepth))] += dt;
        rec.depthIntegralUs += dt * rec.queueDepth;
    }
    rec.depthChangeUs = std::max(rec.depthChangeUs, nowUs);
}

void
LinkStatsTracker::onRequest(int link, double nowUs)
{
    if (link < 0 || link >= links()) {
        ++dropped_;
        return;
    }
    LinkRecord &rec = links_[static_cast<std::size_t>(link)];
    advanceDepth(rec, nowUs);
    ++rec.queueDepth;
    rec.peakBacklog = std::max(rec.peakBacklog, rec.queueDepth);
    endUs_ = std::max(endUs_, nowUs);
}

void
LinkStatsTracker::closeHold(LinkRecord &rec, double atUs)
{
    if (rec.busySinceUs < 0.0)
        return;
    double end = atUs;
    if (rec.busyUntilUs >= 0.0 && rec.busyUntilUs < end)
        end = rec.busyUntilUs;
    if (end > rec.busySinceUs) {
        rec.busyClosedUs += end - rec.busySinceUs;
        addBusySpan(rec, rec.busySinceUs, end);
    }
    rec.busySinceUs = -1.0;
    rec.busyUntilUs = -1.0;
}

void
LinkStatsTracker::onAcquire(int link, double nowUs, double waitedUs,
                            int bytes)
{
    if (link < 0 || link >= links()) {
        ++dropped_;
        return;
    }
    LinkRecord &rec = links_[static_cast<std::size_t>(link)];
    // A pending scheduled release (EarlyRelease) is now in the past:
    // the lane could not have been granted before it freed.
    closeHold(rec, nowUs);
    advanceDepth(rec, nowUs);
    if (rec.queueDepth > 0)
        --rec.queueDepth;
    rec.busySinceUs = nowUs;
    rec.busyUntilUs = -1.0;
    ++rec.packets;
    rec.bytes += static_cast<std::uint64_t>(bytes > 0 ? bytes : 0);
    if (waitedUs > 0.0) {
        ++rec.stalls;
        rec.stallUs += waitedUs;
    }
    endUs_ = std::max(endUs_, nowUs);
}

void
LinkStatsTracker::onRelease(int link, double endUs)
{
    if (link < 0 || link >= links()) {
        ++dropped_;
        return;
    }
    LinkRecord &rec = links_[static_cast<std::size_t>(link)];
    if (rec.busySinceUs < 0.0)
        return; // unmatched release: instrumentation bug, stay safe
    // Record the (possibly future) end; the span is folded into the
    // closed integral lazily, on the next acquire or at finish().
    rec.busyUntilUs = endUs;
    endUs_ = std::max(endUs_, endUs);
}

void
LinkStatsTracker::onForward(int router, int bytes)
{
    if (router < 0 || router >= routers()) {
        ++dropped_;
        return;
    }
    RouterRecord &rec = routers_[static_cast<std::size_t>(router)];
    ++rec.forwards;
    rec.bytes += static_cast<std::uint64_t>(bytes > 0 ? bytes : 0);
}

void
LinkStatsTracker::onOffered(int bytes, double nowUs)
{
    ensureWindow(nowUs);
    offered_[static_cast<std::size_t>(windowOf(nowUs))] +=
        static_cast<double>(bytes);
    offeredBytes_ += static_cast<std::uint64_t>(bytes > 0 ? bytes : 0);
    ++offeredPackets_;
    endUs_ = std::max(endUs_, nowUs);
}

void
LinkStatsTracker::onDelivered(int bytes, double nowUs)
{
    ensureWindow(nowUs);
    delivered_[static_cast<std::size_t>(windowOf(nowUs))] +=
        static_cast<double>(bytes);
    deliveredBytes_ += static_cast<std::uint64_t>(bytes > 0 ? bytes : 0);
    ++deliveredPackets_;
    endUs_ = std::max(endUs_, nowUs);
}

void
LinkStatsTracker::finish(double nowUs)
{
    endUs_ = std::max(endUs_, nowUs);
    for (LinkRecord &rec : links_) {
        advanceDepth(rec, endUs_);
        // A lane still held at the end of the run (deadlock, or the
        // simulation drained first) closes here so the busy time is
        // visible instead of silently vanishing.
        closeHold(rec, endUs_);
    }
}

void
LinkStatsTracker::reset()
{
    links_.clear();
    routers_.clear();
    index_.clear();
    channelLinks_ = 0;
    windowUs_ = 32.0;
    offered_.fill(0.0);
    delivered_.fill(0.0);
    offeredBytes_ = deliveredBytes_ = 0;
    offeredPackets_ = deliveredPackets_ = 0;
    endUs_ = 0.0;
    dropped_ = 0;
}

double
LinkStatsTracker::avgChannelUtilization(double at) const
{
    if (at <= 0.0)
        return 0.0;
    double sum = 0.0;
    int n = 0;
    for (const LinkRecord &rec : links_) {
        if (rec.dir >= kLinkInject)
            continue;
        sum += rec.busyUs(at) / at;
        ++n;
    }
    return n ? sum / n : 0.0;
}

double
LinkStatsTracker::maxChannelUtilization(double at) const
{
    if (at <= 0.0)
        return 0.0;
    double best = 0.0;
    for (const LinkRecord &rec : links_) {
        if (rec.dir >= kLinkInject)
            continue;
        best = std::max(best, rec.busyUs(at) / at);
    }
    return best;
}

} // namespace cchar::obs
