/**
 * @file
 * Online phase detection: a streaming change-point detector over
 * windowed telemetry signals.
 *
 * The paper stresses that applications alternate between distinct
 * compute and communicate *phases*; a fixed `--windows N` slicing can
 * only show them if the analyst guesses N. The PhaseDetector instead
 * segments the run automatically: it consumes one multi-signal sample
 * per telemetry window (injection rate, spatial entropy, mean message
 * length, ...) and maintains running statistics of the current phase.
 * A sample deviating from the phase by both a z-score gate AND a
 * relative-change gate is an outlier candidate; `confirm` consecutive
 * outliers establish a change point at the first of them, and a new
 * phase begins with exactly those samples.
 *
 * The double gate is what keeps a stationary load in one phase: the
 * z-score adapts to the phase's own sampling noise (a Poisson-ish
 * arrival count fluctuates by sqrt(n) per window and inflates sigma
 * accordingly), while the relative gate suppresses cuts on signals
 * whose variance collapsed to ~0 (an all-zero compute phase).
 *
 * Everything is deterministic: no clocks, no randomness, one pass.
 */

#ifndef CCHAR_OBS_PHASES_HH
#define CCHAR_OBS_PHASES_HH

#include <cstddef>
#include <vector>

namespace cchar::obs {

/** Sensitivity knobs of the change-point detector. */
struct PhaseDetectorConfig
{
    /** Samples a phase must absorb before cuts are considered. */
    int warmup = 4;
    /** Z-score a sample must exceed on some signal to be an outlier. */
    double threshold = 4.0;
    /** ... AND the minimum relative change vs the phase mean. */
    double relChange = 0.35;
    /** Consecutive outliers confirming a change point. */
    int confirm = 2;
    /**
     * Floor on the deviation scale as a fraction of the phase mean —
     * guards against sigma underestimation in short quiet phases.
     */
    double sigmaFloor = 0.10;
};

/** One detected phase: a half-open sample range with its time span. */
struct Phase
{
    std::size_t beginSample = 0; ///< first sample index of the phase
    std::size_t endSample = 0;   ///< one past the last sample index
    double tBegin = 0.0;         ///< window-start time of beginSample
    double tEnd = 0.0;           ///< window-end time of the last sample
};

/** Streaming multi-signal change-point detector. */
class PhaseDetector
{
  public:
    /**
     * @param signals Number of signals per sample (fixed).
     * @param cfg     Sensitivity configuration.
     */
    explicit PhaseDetector(std::size_t signals,
                           PhaseDetectorConfig cfg = {});

    /**
     * Feed the sample of one telemetry window.
     *
     * @param t_begin Start time of the window.
     * @param t_end   End time of the window.
     * @param values  One value per signal (size must match).
     */
    void observe(double t_begin, double t_end,
                 const std::vector<double> &values);

    /** Samples consumed so far. */
    std::size_t sampleCount() const { return samplesSeen_; }

    /**
     * Close the current phase and return the full segmentation.
     * A run with no samples yields no phases. May be called once;
     * observe() must not be called afterwards.
     */
    std::vector<Phase> finish();

  private:
    struct Running
    {
        std::size_t n = 0;
        double mean = 0.0;
        double m2 = 0.0;

        void add(double v);
        double sigma() const;
    };

    bool isOutlier(const std::vector<double> &values) const;
    void startPhase(std::size_t sample, double t_begin);
    void absorb(const std::vector<double> &values);

    std::size_t signals_;
    PhaseDetectorConfig cfg_;
    std::vector<Running> stats_;
    std::vector<Phase> phases_;
    /** Pending outlier samples (values + window bounds). */
    std::vector<std::vector<double>> pending_;
    std::size_t pendingFirstSample_ = 0;
    double pendingFirstT_ = 0.0;
    std::size_t samplesSeen_ = 0;
    double curBeginT_ = 0.0;
    std::size_t curBeginSample_ = 0;
    double lastEndT_ = 0.0;
    bool open_ = false;
    bool finished_ = false;
};

} // namespace cchar::obs

#endif // CCHAR_OBS_PHASES_HH
