#include "rank_activity.hh"

#include <algorithm>

namespace cchar::obs {

const char *
rankStateName(RankState s)
{
    switch (s) {
    case RankState::Compute:
        return "compute";
    case RankState::BlockedSend:
        return "blocked_send";
    case RankState::BlockedRecv:
        return "blocked_recv";
    case RankState::Comm:
        return "comm";
    }
    return "?";
}

RankActivityTracker::RankActivityTracker(std::size_t maxIntervalsPerRank,
                                         std::size_t maxMarkersPerRank)
    : maxIntervals_(maxIntervalsPerRank), maxMarkers_(maxMarkersPerRank)
{
}

RankRecord &
RankActivityTracker::ensure(int rank)
{
    if (rank >= static_cast<int>(records_.size())) {
        records_.resize(static_cast<std::size_t>(rank) + 1);
        open_.resize(static_cast<std::size_t>(rank) + 1);
    }
    return records_[static_cast<std::size_t>(rank)];
}

void
RankActivityTracker::beginBlocked(int rank, RankState state, double nowUs)
{
    if (rank < 0)
        return;
    ensure(rank);
    OpenState &open = open_[static_cast<std::size_t>(rank)];
    if (open.depth++ == 0) {
        open.beginUs = nowUs;
        open.state = state;
    }
    endUs_ = std::max(endUs_, nowUs);
}

void
RankActivityTracker::endBlocked(int rank, double nowUs)
{
    if (rank < 0 || rank >= static_cast<int>(open_.size()))
        return;
    OpenState &open = open_[static_cast<std::size_t>(rank)];
    if (open.depth == 0)
        return; // unmatched end: instrumentation bug, stay safe
    endUs_ = std::max(endUs_, nowUs);
    if (--open.depth > 0)
        return;
    RankRecord &rec = records_[static_cast<std::size_t>(rank)];
    if (rec.blocked.size() >= maxIntervals_) {
        ++dropped_;
        return;
    }
    rec.blocked.push_back({open.beginUs, nowUs, open.state});
}

void
RankActivityTracker::noteComm(int rank, double beginUs, double endUs)
{
    if (rank < 0)
        return;
    RankRecord &rec = ensure(rank);
    endUs_ = std::max(endUs_, endUs);
    if (rec.comm.size() >= maxIntervals_) {
        ++dropped_;
        return;
    }
    rec.comm.push_back({beginUs, endUs, RankState::Comm});
}

void
RankActivityTracker::noteMarker(int rank, double nowUs)
{
    if (rank < 0)
        return;
    RankRecord &rec = ensure(rank);
    endUs_ = std::max(endUs_, nowUs);
    if (rec.markers.size() >= maxMarkers_) {
        ++dropped_;
        return;
    }
    rec.markers.push_back(nowUs);
}

void
RankActivityTracker::finish(double nowUs)
{
    endUs_ = std::max(endUs_, nowUs);
    for (std::size_t rank = 0; rank < open_.size(); ++rank) {
        OpenState &open = open_[rank];
        if (open.depth == 0)
            continue;
        // A rank still blocked at the end of the run (deadlock, or the
        // simulation drained first): close the span at the run end so
        // the idle time is visible instead of silently vanishing.
        open.depth = 0;
        RankRecord &rec = records_[rank];
        if (rec.blocked.size() >= maxIntervals_) {
            ++dropped_;
            continue;
        }
        rec.blocked.push_back({open.beginUs, endUs_, open.state});
    }
}

std::size_t
RankActivityTracker::blockedIntervals() const
{
    std::size_t n = 0;
    for (const RankRecord &rec : records_)
        n += rec.blocked.size();
    return n;
}

} // namespace cchar::obs
