/**
 * @file
 * Per-link network weather: who carried the traffic, who queued it,
 * who blocked it.
 *
 * The endpoint attributes (temporal/spatial/volume) and the rank
 * timelines say what the *processors* did; this sink opens up the
 * network interior. Every directed link — a (node, direction, virtual
 * channel) lane, plus each node's injection port — accumulates, in
 * sim time:
 *
 *  - busy time: the integral of "a worm holds this lane", identical
 *    by construction to the lane Resource's own busy integral, so the
 *    sink and MeshNetwork::averageChannelUtilization() are one source
 *    of truth (the mesh delegates to the sink when it is installed);
 *  - packets/bytes forwarded over the link;
 *  - a time-weighted queue-depth histogram and the peak backlog of
 *    worms waiting for the lane;
 *  - head-of-line blocking stalls: acquires that had to wait, and the
 *    total time they waited.
 *
 * Per router it counts forwards (head traversals) and bytes switched,
 * and fleet-wide it keeps a windowed offered-load vs delivered-
 * throughput series (bytes injected vs bytes delivered per window)
 * that the link-weather analyzer turns into a congestion-onset
 * estimate. Windows double in width when the run outgrows them
 * (folding pairs), so memory stays fixed no matter how long the run.
 *
 * Like every obs sink the tracker is ambient (obs::linkStats()),
 * resolved once at network construction, null when --link-stats was
 * not given — the default run records nothing and the hot path pays
 * one null-check per event. The mesh declares its links up front
 * (declareLink interns a dense id), so idle links are part of the
 * universe: utilization ranking and the Gini coefficient see the
 * zeros. Storage is bounded by maxLinks; declarations beyond the cap
 * are refused and their facts counted in dropped().
 */

#ifndef CCHAR_OBS_LINK_STATS_HH
#define CCHAR_OBS_LINK_STATS_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace cchar::obs {

/** Direction index of an injection-port link (0..3 are E/W/N/S). */
inline constexpr int kLinkInject = 4;

/** Printable direction name ("E", "W", "N", "S", "inj"). */
const char *linkDirName(int dir);

/** Accumulated weather of one directed link. */
struct LinkRecord
{
    /** Fixed-depth occupancy buckets: 0,1,2,3,4-7,8-15,16-31,32+. */
    static constexpr int kDepthBuckets = 8;

    int node = 0; ///< router whose outgoing lane this is
    int dir = 0;  ///< 0..3 = mesh direction, kLinkInject = injection
    int vc = 0;   ///< virtual-channel index within the channel

    /** Closed busy time (us); open holds are added by busyUs(at). */
    double busyClosedUs = 0.0;
    /** Start of the open hold, or < 0 when the lane is free. */
    double busySinceUs = -1.0;
    /**
     * Scheduled end of the open hold (EarlyRelease frees a lane at a
     * future sim time), or < 0 when the hold is unbounded. Queries
     * clamp to it so mid-run utilization matches the lane Resource.
     */
    double busyUntilUs = -1.0;
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    /** Acquires that found the lane held (head-of-line blocking). */
    std::uint64_t stalls = 0;
    /** Total time acquires waited for this lane (us). */
    double stallUs = 0.0;
    /** Worms currently waiting for the lane. */
    int queueDepth = 0;
    int peakBacklog = 0;
    /** Exact integral of queueDepth over time (us * worms). */
    double depthIntegralUs = 0.0;
    /** Time spent at each occupancy bucket (us). */
    std::array<double, kDepthBuckets> depthTimeUs{};
    /** Busy time per analysis window (us); see windowUs(). */
    std::vector<double> busyWindowUs;

    /** Last queue-depth change (internal bookkeeping). */
    double depthChangeUs = 0.0;

    /** Busy integral including an open hold, evaluated at @p at. */
    double
    busyUs(double at) const
    {
        double b = busyClosedUs;
        if (busySinceUs >= 0.0) {
            double end = at;
            if (busyUntilUs >= 0.0 && busyUntilUs < end)
                end = busyUntilUs;
            if (end > busySinceUs)
                b += end - busySinceUs;
        }
        return b;
    }

    /** Bucket index of a queue depth. */
    static int depthBucket(int depth);
};

/** Forwarding totals of one router. */
struct RouterRecord
{
    std::uint64_t forwards = 0;
    std::uint64_t bytes = 0;
};

class LinkStatsTracker
{
  public:
    /** Windows of the busy / offered / delivered time series. */
    static constexpr int kWindows = 64;

    /**
     * @param maxLinks cap on tracked links; declareLink() beyond it
     *        returns -1 and later facts bump dropped().
     */
    explicit LinkStatsTracker(std::size_t maxLinks = 1 << 14);

    /**
     * Intern a link and return its dense id (stable for the tracker's
     * lifetime, assigned in declaration order so aggregate iteration
     * is deterministic). Re-declaring an existing (node, dir, vc)
     * returns the same id. Returns -1 once maxLinks is reached.
     */
    int declareLink(int node, int dir, int vc);

    /** Size the per-router table (ids 0..nodes-1). */
    void declareRouters(int nodes);

    // ------------- hot-path facts (link = declareLink id) -------------

    /** A worm asked for the lane (joins the queue until granted). */
    void onRequest(int link, double nowUs);

    /**
     * The lane was granted after @p waitedUs in the queue; the link
     * will carry @p bytes payload bytes. waitedUs > 0 counts a
     * head-of-line stall.
     */
    void onAcquire(int link, double nowUs, double waitedUs, int bytes);

    /**
     * The hold ends at @p endUs. Under EarlyRelease the mesh reports
     * the scheduled future free time; endUs may therefore lie ahead
     * of the sim clock (the lane cannot be re-acquired before it).
     */
    void onRelease(int link, double endUs);

    /** A worm's head traversed @p router (switched @p bytes). */
    void onForward(int router, int bytes);

    /** @p bytes were offered to the network (message injection). */
    void onOffered(int bytes, double nowUs);

    /** @p bytes were delivered to a receive queue. */
    void onDelivered(int bytes, double nowUs);

    // ------------------------- lifecycle -------------------------

    /**
     * Close every open hold and queue-depth integral at @p nowUs and
     * remember the run end for analysis.
     */
    void finish(double nowUs);

    /**
     * Forget everything, including declared links and routers. The
     * static strategy resets the tracker between the live run and the
     * trace replay so the reported weather matches the replayed
     * network the rest of the report describes.
     */
    void reset();

    // ------------------------- inspection -------------------------

    int links() const { return static_cast<int>(links_.size()); }
    const LinkRecord &link(int id) const
    {
        return links_[static_cast<std::size_t>(id)];
    }

    int routers() const { return static_cast<int>(routers_.size()); }
    const RouterRecord &router(int id) const
    {
        return routers_[static_cast<std::size_t>(id)];
    }

    /** Largest time seen (finish() time if called). */
    double endUs() const { return endUs_; }

    /** Facts discarded because maxLinks (or a router id) overflowed. */
    std::uint64_t dropped() const { return dropped_; }

    /** Width of one series window (us); doubles as the run grows. */
    double windowUs() const { return windowUs_; }

    /** Bytes offered to the network per window (us series). */
    const std::array<double, kWindows> &offeredWindowBytes() const
    {
        return offered_;
    }
    const std::array<double, kWindows> &deliveredWindowBytes() const
    {
        return delivered_;
    }

    std::uint64_t offeredBytes() const { return offeredBytes_; }
    std::uint64_t deliveredBytes() const { return deliveredBytes_; }
    std::uint64_t offeredPackets() const { return offeredPackets_; }
    std::uint64_t deliveredPackets() const { return deliveredPackets_; }

    /**
     * Mean / peak utilization at @p at over the *channel* lanes (dir
     * < kLinkInject), replicating MeshNetwork's lane iteration order
     * exactly so the mesh can delegate its channel-utilization
     * statistics here without changing a single bit of output.
     */
    double avgChannelUtilization(double at) const;
    double maxChannelUtilization(double at) const;

    /** Tracked channel lanes (dir < kLinkInject). */
    int channelLinks() const { return channelLinks_; }

  private:
    /** Double windowUs_ (folding pairs) until @p t fits the series. */
    void ensureWindow(double t);

    /** Window index of @p t (ensureWindow() must have run). */
    int windowOf(double t) const;

    /** Smear a busy span over the per-link window series. */
    void addBusySpan(LinkRecord &rec, double beginUs, double endUs);

    /** Close an open hold at min(scheduled end, @p atUs). */
    void closeHold(LinkRecord &rec, double atUs);

    /** Advance a link's queue-depth integrals to @p nowUs. */
    void advanceDepth(LinkRecord &rec, double nowUs);

    std::size_t maxLinks_;
    std::vector<LinkRecord> links_;
    std::vector<RouterRecord> routers_;
    /** (node << 20 | dir << 16 | vc) -> dense id. */
    std::map<std::uint64_t, int> index_;
    int channelLinks_ = 0;
    double windowUs_ = 32.0;
    std::array<double, kWindows> offered_{};
    std::array<double, kWindows> delivered_{};
    std::uint64_t offeredBytes_ = 0;
    std::uint64_t deliveredBytes_ = 0;
    std::uint64_t offeredPackets_ = 0;
    std::uint64_t deliveredPackets_ = 0;
    double endUs_ = 0.0;
    std::uint64_t dropped_ = 0;
};

} // namespace cchar::obs

#endif // CCHAR_OBS_LINK_STATS_HH
