/**
 * @file
 * Per-rank activity timelines: who was computing, who was stuck, when.
 *
 * The aggregate analyzers (temporal/spatial/volume) say *what* ranks
 * communicate; this sink records *when each rank falls out of step*.
 * Instrumented layers report three kinds of facts, all in sim time:
 *
 *  - blocked intervals: a rank's program thread is inside a blocking
 *    primitive (message send overhead + reliable-delivery waits,
 *    receive waits, ccNUMA miss/lock/barrier stalls). Reported via
 *    beginBlocked()/endBlocked(), which nest (only the outermost pair
 *    defines the interval, classified by the outermost state).
 *  - comm spans: a packet attributed to a source rank was in the
 *    network (mesh inject -> deliver). These overlap each other and
 *    the rank's own timeline; they are raw material for in-network
 *    time, merged at analysis time.
 *  - markers: the rank reached a synchronization point (barrier
 *    entry). Marker k across all ranks defines the skew sample k.
 *
 * Anything not covered by a blocked interval counts as compute, so
 * the instrumentation only has to mark the waits, never the work.
 *
 * Like every obs sink the tracker is ambient (obs::rankActivity()),
 * resolved once at component construction, null when characterization
 * is not requested — the default run records nothing and costs one
 * null-check per blocking primitive. Storage is bounded per rank;
 * overflow increments dropped() instead of growing without bound, so
 * a pathological run degrades the timeline, not the process.
 */

#ifndef CCHAR_OBS_RANK_ACTIVITY_HH
#define CCHAR_OBS_RANK_ACTIVITY_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cchar::obs {

/** What a rank was doing during a recorded interval. */
enum class RankState : std::uint8_t {
    Compute = 0,    ///< derived: any gap between blocked intervals
    BlockedSend = 1,///< inside send overhead / reliable-delivery wait
    BlockedRecv = 2,///< waiting for a message / line / lock / barrier
    Comm = 3,       ///< packet from this rank in flight in the mesh
};

/** Printable lowercase name ("compute", "blocked_send", ...). */
const char *rankStateName(RankState s);

/** One contiguous [begin,end) span of a rank's timeline. */
struct RankInterval
{
    double beginUs = 0.0;
    double endUs = 0.0;
    RankState state = RankState::Compute;

    double durationUs() const { return endUs - beginUs; }
};

/** Recorded facts for one rank. */
struct RankRecord
{
    /** Closed blocked intervals, in begin order (sim is causal). */
    std::vector<RankInterval> blocked;
    /** Raw in-network spans; overlapping, sorted by insertion. */
    std::vector<RankInterval> comm;
    /** Synchronization-marker times (barrier entries), in order. */
    std::vector<double> markers;
};

class RankActivityTracker
{
  public:
    /**
     * @param maxIntervalsPerRank cap on stored blocked + comm spans
     *        per rank (further reports only bump dropped()).
     * @param maxMarkersPerRank   cap on stored markers per rank.
     */
    explicit RankActivityTracker(std::size_t maxIntervalsPerRank = 1 << 15,
                                 std::size_t maxMarkersPerRank = 1 << 12);

    /**
     * Enter a blocking primitive on @p rank at time @p nowUs. Calls
     * nest: only the outermost begin opens an interval, and its
     * @p state labels the whole span.
     */
    void beginBlocked(int rank, RankState state, double nowUs);

    /** Leave the innermost blocking primitive on @p rank. */
    void endBlocked(int rank, double nowUs);

    /** Record an in-network span for a packet sourced by @p rank. */
    void noteComm(int rank, double beginUs, double endUs);

    /** Record a synchronization marker (barrier entry) on @p rank. */
    void noteMarker(int rank, double nowUs);

    /**
     * Close any still-open blocked interval at @p nowUs (end of run,
     * or a deadlocked rank) and remember the run end for analysis.
     */
    void finish(double nowUs);

    /** Number of ranks that reported at least one fact. */
    int ranks() const { return static_cast<int>(records_.size()); }

    /** Per-rank record (rank < ranks()). */
    const RankRecord &record(int rank) const { return records_[rank]; }

    /** Largest time seen (finish() time if called). */
    double endUs() const { return endUs_; }

    /** Facts discarded because a per-rank cap was hit. */
    std::uint64_t dropped() const { return dropped_; }

    /** Total stored blocked intervals across ranks. */
    std::size_t blockedIntervals() const;

  private:
    RankRecord &ensure(int rank);

    struct OpenState
    {
        int depth = 0;
        double beginUs = 0.0;
        RankState state = RankState::Compute;
    };

    std::size_t maxIntervals_;
    std::size_t maxMarkers_;
    std::vector<RankRecord> records_;
    std::vector<OpenState> open_;
    double endUs_ = 0.0;
    std::uint64_t dropped_ = 0;
};

} // namespace cchar::obs

#endif // CCHAR_OBS_RANK_ACTIVITY_HH
