#include "phases.hh"

#include <cmath>
#include <stdexcept>

namespace cchar::obs {

namespace {

/** Scale floor distinguishing "zero" from a real signal level. */
constexpr double kEps = 1e-12;

} // namespace

PhaseDetector::PhaseDetector(std::size_t signals,
                             PhaseDetectorConfig cfg)
    : signals_(signals), cfg_(cfg)
{
    if (signals_ == 0)
        throw std::invalid_argument("obs: detector needs >= 1 signal");
    if (cfg_.confirm < 1 || cfg_.warmup < 1)
        throw std::invalid_argument("obs: confirm/warmup must be >= 1");
}

void
PhaseDetector::Running::add(double v)
{
    // Welford's online mean/variance.
    ++n;
    double delta = v - mean;
    mean += delta / static_cast<double>(n);
    m2 += delta * (v - mean);
}

double
PhaseDetector::Running::sigma() const
{
    return n > 0 ? std::sqrt(m2 / static_cast<double>(n)) : 0.0;
}

bool
PhaseDetector::isOutlier(const std::vector<double> &values) const
{
    for (std::size_t i = 0; i < signals_; ++i) {
        const Running &r = stats_[i];
        double dev = std::abs(values[i] - r.mean);
        double scale = std::abs(r.mean);
        // The z-gate adapts to the phase's own noise; the floor keeps
        // a near-constant signal from declaring everything an outlier.
        double sigma = std::max(r.sigma(), cfg_.sigmaFloor * scale);
        sigma = std::max(sigma, kEps);
        if (dev > cfg_.threshold * sigma &&
            dev > cfg_.relChange * std::max(scale, kEps))
            return true;
    }
    return false;
}

void
PhaseDetector::startPhase(std::size_t sample, double t_begin)
{
    stats_.assign(signals_, Running{});
    curBeginSample_ = sample;
    curBeginT_ = t_begin;
    open_ = true;
}

void
PhaseDetector::absorb(const std::vector<double> &values)
{
    for (std::size_t i = 0; i < signals_; ++i)
        stats_[i].add(values[i]);
}

void
PhaseDetector::observe(double t_begin, double t_end,
                       const std::vector<double> &values)
{
    if (finished_)
        throw std::logic_error("obs: observe() after finish()");
    if (values.size() != signals_)
        throw std::invalid_argument("obs: signal count mismatch");

    std::size_t sample = samplesSeen_++;
    lastEndT_ = t_end;

    if (!open_) {
        startPhase(sample, t_begin);
        absorb(values);
        return;
    }

    bool warm = stats_[0].n >= static_cast<std::size_t>(cfg_.warmup);
    if (warm && isOutlier(values)) {
        if (pending_.empty()) {
            pendingFirstSample_ = sample;
            pendingFirstT_ = t_begin;
        }
        pending_.push_back(values);
        if (pending_.size() >= static_cast<std::size_t>(cfg_.confirm)) {
            // Confirmed change point at the first outlier sample.
            Phase done;
            done.beginSample = curBeginSample_;
            done.endSample = pendingFirstSample_;
            done.tBegin = curBeginT_;
            done.tEnd = pendingFirstT_;
            phases_.push_back(done);
            startPhase(pendingFirstSample_, pendingFirstT_);
            for (const auto &v : pending_)
                absorb(v);
            pending_.clear();
        }
        return;
    }

    // Not an outlier (or still warming up): any pending outliers were
    // a transient, not a phase change — fold them in.
    for (const auto &v : pending_)
        absorb(v);
    pending_.clear();
    absorb(values);
}

std::vector<Phase>
PhaseDetector::finish()
{
    if (finished_)
        throw std::logic_error("obs: finish() called twice");
    finished_ = true;
    if (open_) {
        Phase last;
        last.beginSample = curBeginSample_;
        last.endSample = samplesSeen_;
        last.tBegin = curBeginT_;
        last.tEnd = lastEndT_;
        phases_.push_back(last);
    }
    return phases_;
}

} // namespace cchar::obs
