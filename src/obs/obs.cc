#include "obs.hh"

namespace cchar::obs {

namespace {

// Thread-local, not process-global: every simulation is still
// single-threaded, but the sweep engine runs many simulations on
// concurrent worker threads, each installing its own sinks. A worker's
// install can never leak into a sibling's hot path.
thread_local MetricsRegistry *g_metrics = nullptr;
thread_local Tracer *g_tracer = nullptr;
thread_local FlowTracker *g_flows = nullptr;
thread_local RankActivityTracker *g_rankActivity = nullptr;
thread_local LinkStatsTracker *g_linkStats = nullptr;

} // namespace

MetricsRegistry *
metrics()
{
#ifndef CCHAR_OBS_DISABLED
    return g_metrics;
#else
    return nullptr;
#endif
}

Tracer *
tracer()
{
#ifndef CCHAR_OBS_DISABLED
    return g_tracer;
#else
    return nullptr;
#endif
}

void
setMetrics(MetricsRegistry *registry)
{
    g_metrics = registry;
}

void
setTracer(Tracer *trace)
{
    g_tracer = trace;
}

FlowTracker *
flows()
{
#ifndef CCHAR_OBS_DISABLED
    return g_flows;
#else
    return nullptr;
#endif
}

void
setFlows(FlowTracker *tracker)
{
    g_flows = tracker;
}

RankActivityTracker *
rankActivity()
{
#ifndef CCHAR_OBS_DISABLED
    return g_rankActivity;
#else
    return nullptr;
#endif
}

void
setRankActivity(RankActivityTracker *tracker)
{
    g_rankActivity = tracker;
}

LinkStatsTracker *
linkStats()
{
#ifndef CCHAR_OBS_DISABLED
    return g_linkStats;
#else
    return nullptr;
#endif
}

void
setLinkStats(LinkStatsTracker *tracker)
{
    g_linkStats = tracker;
}

void
publishSinkStats(MetricsRegistry &registry, const Tracer *tracer,
                 const FlowTracker *flows)
{
    if (tracer) {
        registry.gauge("obs.tracer.records")
            .set(static_cast<double>(tracer->size()));
        registry.gauge("obs.tracer.dropped")
            .set(static_cast<double>(tracer->dropped()));
    }
    if (flows) {
        registry.gauge("obs.flows.opened")
            .set(static_cast<double>(flows->opened()));
        registry.gauge("obs.flows.completed")
            .set(static_cast<double>(flows->completed()));
        registry.gauge("obs.flows.dropped")
            .set(static_cast<double>(flows->droppedRecords()));
    }
}

} // namespace cchar::obs
