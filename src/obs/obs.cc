#include "obs.hh"

namespace cchar::obs {

namespace {

MetricsRegistry *g_metrics = nullptr;
Tracer *g_tracer = nullptr;

} // namespace

MetricsRegistry *
metrics()
{
#ifndef CCHAR_OBS_DISABLED
    return g_metrics;
#else
    return nullptr;
#endif
}

Tracer *
tracer()
{
#ifndef CCHAR_OBS_DISABLED
    return g_tracer;
#else
    return nullptr;
#endif
}

void
setMetrics(MetricsRegistry *registry)
{
    g_metrics = registry;
}

void
setTracer(Tracer *trace)
{
    g_tracer = trace;
}

} // namespace cchar::obs
