/**
 * @file
 * Sim-time event tracer with Chrome trace-event JSON export.
 *
 * Records spans (an activity with a duration: a process lifetime, a
 * message's injection-to-delivery flight, a router channel hold) and
 * instants (a point event: a flit stall) into a bounded ring buffer.
 * When the buffer fills, the oldest records are overwritten and
 * counted as dropped — tracing never grows without bound and never
 * aborts a run.
 *
 * Timestamps are simulated time in microseconds, which is exactly the
 * unit the Chrome trace-event format uses for "ts"/"dur", so exported
 * traces load directly into Perfetto / chrome://tracing with the
 * simulation clock on the time axis. Each lane (router, process)
 * becomes one named thread track.
 *
 * Record order is the order instrumentation observed events, which in
 * a deterministic simulation is itself deterministic: two identical
 * seeded runs export byte-identical JSON.
 *
 * Besides spans and instants the tracer records Perfetto *flow events*
 * (ph "s"/"t"/"f" in the Chrome format): points on a lane that the
 * viewer joins by id into an arrow chain across tracks. The mesh emits
 * one chain per sampled message — injection, each hop's channel hold,
 * delivery — so a loaded trace shows the message's journey across
 * router lanes (see obs/flow.hh).
 */

#ifndef CCHAR_OBS_TRACER_HH
#define CCHAR_OBS_TRACER_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace cchar::obs {

/** Bounded-memory span/instant recorder. */
class Tracer
{
  public:
    /** @param capacity Ring size in records (~48 B each). */
    explicit Tracer(std::size_t capacity = 1u << 18);

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /**
     * Intern a lane (one horizontal track in the viewer, e.g.
     * "router:3" or "proc:rank-0") and return its id.
     */
    int lane(const std::string &name);

    /** Intern an event name ("msg", "hold", "stall", ...). */
    int name(const std::string &eventName);

    /** Record an activity of known duration ending now or later. */
    void span(int laneId, int nameId, double ts, double dur);

    /** Span with two numeric details (rendered as args d0/d1). */
    void span(int laneId, int nameId, double ts, double dur,
              std::int32_t d0, std::int32_t d1);

    /** Record a point event. */
    void instant(int laneId, int nameId, double ts);

    /**
     * Flow-event chain (Perfetto arrows). Events with the same flowId
     * are joined start -> steps -> end; each point binds to the slice
     * enclosing `ts` on its lane.
     */
    void flowStart(int laneId, int nameId, double ts,
                   std::uint64_t flowId);
    void flowStep(int laneId, int nameId, double ts,
                  std::uint64_t flowId);
    void flowEnd(int laneId, int nameId, double ts,
                 std::uint64_t flowId);

    /** Records currently held (<= capacity). */
    std::size_t size() const;

    /** Records overwritten after the ring filled. */
    std::uint64_t dropped() const { return dropped_; }

    std::size_t capacity() const { return ring_.size(); }

    /** Count of retained records on a given lane. */
    std::size_t laneRecordCount(int laneId) const;

    /** Forget all records (lane/name interning is kept). */
    void clear();

    /**
     * Emit the retained records as a Chrome trace-event JSON document
     * ({"traceEvents":[...]}), oldest first, with one thread_name
     * metadata record per lane.
     */
    void writeChromeJson(std::ostream &os) const;

  private:
    enum class RecordKind : std::uint8_t
    {
        Span,
        Instant,
        FlowStart,
        FlowStep,
        FlowEnd,
    };

    struct Record
    {
        double ts;
        double dur;
        std::uint64_t flow; ///< flow id (flow records only)
        std::int32_t lane;
        std::int32_t name;
        std::int32_t d0;
        std::int32_t d1;
        RecordKind kind;
        bool hasArgs;
    };

    void pushFlow(RecordKind kind, int laneId, int nameId, double ts,
                  std::uint64_t flowId);

    void push(const Record &rec);

    /** Visit retained records oldest-first. */
    template <typename Fn>
    void forEach(Fn &&fn) const;

    std::vector<Record> ring_;
    std::size_t next_ = 0;
    bool wrapped_ = false;
    std::uint64_t dropped_ = 0;

    std::vector<std::string> laneNames_;
    std::map<std::string, int> laneIds_;
    std::vector<std::string> eventNames_;
    std::map<std::string, int> eventIds_;
};

} // namespace cchar::obs

#endif // CCHAR_OBS_TRACER_HH
