#include "registry.hh"

#include <cmath>
#include <ostream>
#include <stdexcept>

namespace cchar::obs {

int
HistogramData::bucketOf(double v)
{
    if (!(v > 0.0))
        return 0;
    int e;
    (void)std::frexp(v, &e);
    // v in [2^(e-1), 2^e): bucket index 1 holds [2^kMinExp, 2^(kMinExp+1)).
    int idx = e - kMinExp;
    if (idx < 1)
        return 0;
    if (idx > kBuckets - 1)
        return kBuckets - 1;
    return idx;
}

double
HistogramData::upperBound(int i)
{
    if (i <= 0)
        return std::ldexp(1.0, kMinExp);
    if (i >= kBuckets - 1)
        return std::numeric_limits<double>::infinity();
    return std::ldexp(1.0, kMinExp + i);
}

MetricsRegistry::MetricsRegistry(std::size_t maxCounters,
                                 std::size_t maxGauges,
                                 std::size_t maxHistograms)
{
    // reserve() fixes the slots' addresses: growth past capacity would
    // invalidate every handle, so it is a hard error instead.
    counterSlots_.reserve(maxCounters);
    gaugeSlots_.reserve(maxGauges);
    histogramSlots_.reserve(maxHistograms);
}

Counter
MetricsRegistry::counter(const std::string &name)
{
    auto it = counterIndex_.find(name);
    if (it == counterIndex_.end()) {
        if (counterSlots_.size() == counterSlots_.capacity())
            throw std::length_error("obs: counter capacity exhausted");
        counterSlots_.push_back(0);
        it = counterIndex_.emplace(name, counterSlots_.size() - 1).first;
    }
    return Counter{&counterSlots_[it->second]};
}

Gauge
MetricsRegistry::gauge(const std::string &name)
{
    auto it = gaugeIndex_.find(name);
    if (it == gaugeIndex_.end()) {
        if (gaugeSlots_.size() == gaugeSlots_.capacity())
            throw std::length_error("obs: gauge capacity exhausted");
        gaugeSlots_.push_back(0.0);
        it = gaugeIndex_.emplace(name, gaugeSlots_.size() - 1).first;
    }
    return Gauge{&gaugeSlots_[it->second]};
}

Histogram
MetricsRegistry::histogram(const std::string &name)
{
    auto it = histogramIndex_.find(name);
    if (it == histogramIndex_.end()) {
        if (histogramSlots_.size() == histogramSlots_.capacity())
            throw std::length_error("obs: histogram capacity exhausted");
        histogramSlots_.emplace_back();
        it = histogramIndex_.emplace(name, histogramSlots_.size() - 1)
                 .first;
    }
    return Histogram{&histogramSlots_[it->second]};
}

std::uint64_t
MetricsRegistry::counterValue(const std::string &name) const
{
    auto it = counterIndex_.find(name);
    return it == counterIndex_.end() ? 0 : counterSlots_[it->second];
}

double
MetricsRegistry::gaugeValue(const std::string &name) const
{
    auto it = gaugeIndex_.find(name);
    return it == gaugeIndex_.end() ? 0.0 : gaugeSlots_[it->second];
}

const HistogramData *
MetricsRegistry::histogramData(const std::string &name) const
{
    auto it = histogramIndex_.find(name);
    return it == histogramIndex_.end() ? nullptr
                                       : &histogramSlots_[it->second];
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::counters() const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counterIndex_.size());
    for (const auto &[name, idx] : counterIndex_)
        out.emplace_back(name, counterSlots_[idx]);
    return out;
}

std::vector<std::pair<std::string, double>>
MetricsRegistry::gauges() const
{
    std::vector<std::pair<std::string, double>> out;
    out.reserve(gaugeIndex_.size());
    for (const auto &[name, idx] : gaugeIndex_)
        out.emplace_back(name, gaugeSlots_[idx]);
    return out;
}

std::vector<std::pair<std::string, const HistogramData *>>
MetricsRegistry::histograms() const
{
    std::vector<std::pair<std::string, const HistogramData *>> out;
    out.reserve(histogramIndex_.size());
    for (const auto &[name, idx] : histogramIndex_)
        out.emplace_back(name, &histogramSlots_[idx]);
    return out;
}

void
MetricsRegistry::restoreHistogram(const std::string &name,
                                  const HistogramData &data)
{
    Histogram handle = histogram(name);
    *handle.data_ = data;
}

void
MetricsRegistry::reset()
{
    for (auto &slot : counterSlots_)
        slot = 0;
    for (auto &slot : gaugeSlots_)
        slot = 0.0;
    for (auto &slot : histogramSlots_)
        slot = HistogramData{};
}

namespace {

void
jsonName(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
    os << '"';
}

/** Finite numbers verbatim; infinities become null (strict JSON). */
void
jsonNumber(std::ostream &os, double v)
{
    if (std::isfinite(v))
        os << v;
    else
        os << "null";
}

} // namespace

void
MetricsRegistry::mergeFrom(const MetricsRegistry &other)
{
    for (const auto &[name, idx] : other.counterIndex_) {
        if (std::uint64_t v = other.counterSlots_[idx])
            counter(name).add(v);
    }
    for (const auto &[name, idx] : other.gaugeIndex_)
        gauge(name).high(other.gaugeSlots_[idx]);
    for (const auto &[name, idx] : other.histogramIndex_) {
        const HistogramData &src = other.histogramSlots_[idx];
        if (!src.count)
            continue;
        Histogram handle = histogram(name);
        HistogramData &dst = *handle.data_;
        for (int b = 0; b < HistogramData::kBuckets; ++b) {
            dst.buckets[static_cast<std::size_t>(b)] +=
                src.buckets[static_cast<std::size_t>(b)];
        }
        dst.count += src.count;
        dst.sum += src.sum;
        if (src.min < dst.min)
            dst.min = src.min;
        if (src.max > dst.max)
            dst.max = src.max;
    }
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    os << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, idx] : counterIndex_) {
        if (!first)
            os << ",";
        first = false;
        jsonName(os, name);
        os << ":" << counterSlots_[idx];
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto &[name, idx] : gaugeIndex_) {
        if (!first)
            os << ",";
        first = false;
        jsonName(os, name);
        os << ":";
        jsonNumber(os, gaugeSlots_[idx]);
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &[name, idx] : histogramIndex_) {
        const HistogramData &h = histogramSlots_[idx];
        if (!first)
            os << ",";
        first = false;
        jsonName(os, name);
        os << ":{\"count\":" << h.count << ",\"sum\":";
        jsonNumber(os, h.sum);
        os << ",\"min\":";
        jsonNumber(os, h.count ? h.min : 0.0);
        os << ",\"max\":";
        jsonNumber(os, h.count ? h.max : 0.0);
        os << ",\"mean\":";
        jsonNumber(os, h.mean());
        os << ",\"buckets\":[";
        bool firstBucket = true;
        for (int b = 0; b < HistogramData::kBuckets; ++b) {
            if (!h.buckets[static_cast<std::size_t>(b)])
                continue;
            if (!firstBucket)
                os << ",";
            firstBucket = false;
            os << "[";
            jsonNumber(os, HistogramData::upperBound(b));
            os << "," << h.buckets[static_cast<std::size_t>(b)] << "]";
        }
        os << "]}";
    }
    os << "}}";
}

} // namespace cchar::obs
