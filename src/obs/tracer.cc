#include "tracer.hh"

#include <cmath>
#include <ostream>
#include <stdexcept>

namespace cchar::obs {

Tracer::Tracer(std::size_t capacity)
{
    if (capacity == 0)
        throw std::invalid_argument("obs: tracer capacity must be > 0");
    ring_.resize(capacity);
}

int
Tracer::lane(const std::string &name)
{
    auto it = laneIds_.find(name);
    if (it != laneIds_.end())
        return it->second;
    int id = static_cast<int>(laneNames_.size());
    laneNames_.push_back(name);
    laneIds_.emplace(name, id);
    return id;
}

int
Tracer::name(const std::string &eventName)
{
    auto it = eventIds_.find(eventName);
    if (it != eventIds_.end())
        return it->second;
    int id = static_cast<int>(eventNames_.size());
    eventNames_.push_back(eventName);
    eventIds_.emplace(eventName, id);
    return id;
}

void
Tracer::push(const Record &rec)
{
    if (wrapped_)
        ++dropped_;
    ring_[next_] = rec;
    next_ = (next_ + 1) % ring_.size();
    if (next_ == 0 && !wrapped_)
        wrapped_ = true;
}

void
Tracer::span(int laneId, int nameId, double ts, double dur)
{
    push(Record{ts, dur < 0.0 ? 0.0 : dur, 0, laneId, nameId, 0, 0,
                RecordKind::Span, false});
}

void
Tracer::span(int laneId, int nameId, double ts, double dur,
             std::int32_t d0, std::int32_t d1)
{
    push(Record{ts, dur < 0.0 ? 0.0 : dur, 0, laneId, nameId, d0, d1,
                RecordKind::Span, true});
}

void
Tracer::instant(int laneId, int nameId, double ts)
{
    push(Record{ts, 0.0, 0, laneId, nameId, 0, 0, RecordKind::Instant,
                false});
}

void
Tracer::pushFlow(RecordKind kind, int laneId, int nameId, double ts,
                 std::uint64_t flowId)
{
    push(Record{ts, 0.0, flowId, laneId, nameId, 0, 0, kind, false});
}

void
Tracer::flowStart(int laneId, int nameId, double ts, std::uint64_t flowId)
{
    pushFlow(RecordKind::FlowStart, laneId, nameId, ts, flowId);
}

void
Tracer::flowStep(int laneId, int nameId, double ts, std::uint64_t flowId)
{
    pushFlow(RecordKind::FlowStep, laneId, nameId, ts, flowId);
}

void
Tracer::flowEnd(int laneId, int nameId, double ts, std::uint64_t flowId)
{
    pushFlow(RecordKind::FlowEnd, laneId, nameId, ts, flowId);
}

std::size_t
Tracer::size() const
{
    return wrapped_ ? ring_.size() : next_;
}

template <typename Fn>
void
Tracer::forEach(Fn &&fn) const
{
    if (wrapped_) {
        for (std::size_t i = next_; i < ring_.size(); ++i)
            fn(ring_[i]);
    }
    for (std::size_t i = 0; i < next_; ++i)
        fn(ring_[i]);
}

std::size_t
Tracer::laneRecordCount(int laneId) const
{
    std::size_t n = 0;
    forEach([&](const Record &rec) {
        if (rec.lane == laneId)
            ++n;
    });
    return n;
}

void
Tracer::clear()
{
    next_ = 0;
    wrapped_ = false;
    dropped_ = 0;
}

namespace {

void
jsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
    os << '"';
}

void
jsonTime(std::ostream &os, double v)
{
    // Timestamps are nonnegative finite sim times by construction, but
    // guard anyway: strict JSON has no inf/nan literals.
    os << (std::isfinite(v) ? v : 0.0);
}

} // namespace

void
Tracer::writeChromeJson(std::ostream &os) const
{
    os << "{\"traceEvents\":[";
    bool first = true;
    // One named thread track per lane; pid 1 groups them all.
    for (std::size_t laneId = 0; laneId < laneNames_.size(); ++laneId) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
              "\"tid\":"
           << laneId << ",\"args\":{\"name\":";
        jsonString(os, laneNames_[laneId]);
        os << "}},{\"name\":\"thread_sort_index\",\"ph\":\"M\","
              "\"pid\":1,\"tid\":"
           << laneId << ",\"args\":{\"sort_index\":" << laneId << "}}";
    }
    forEach([&](const Record &rec) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":";
        jsonString(os, eventNames_[static_cast<std::size_t>(rec.name)]);
        switch (rec.kind) {
          case RecordKind::Instant:
            os << ",\"ph\":\"i\",\"s\":\"t\"";
            break;
          case RecordKind::FlowStart:
            os << ",\"cat\":\"flow\",\"ph\":\"s\",\"id\":" << rec.flow;
            break;
          case RecordKind::FlowStep:
            os << ",\"cat\":\"flow\",\"ph\":\"t\",\"id\":" << rec.flow;
            break;
          case RecordKind::FlowEnd:
            os << ",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":"
               << rec.flow;
            break;
          case RecordKind::Span:
            os << ",\"ph\":\"X\",\"dur\":";
            jsonTime(os, rec.dur);
            break;
        }
        os << ",\"ts\":";
        jsonTime(os, rec.ts);
        os << ",\"pid\":1,\"tid\":" << rec.lane;
        if (rec.hasArgs)
            os << ",\"args\":{\"d0\":" << rec.d0 << ",\"d1\":" << rec.d1
               << "}";
        os << "}";
    });
    os << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":"
       << dropped_ << "}}\n";
}

} // namespace cchar::obs
