#include "sampler.hh"

#include <cmath>
#include <ostream>
#include <stdexcept>

namespace cchar::obs {

std::size_t
WindowedSampler::addSeries(std::string name,
                           std::function<double()> probe)
{
    if (!times_.empty())
        throw std::logic_error(
            "obs: cannot add a series after sampling started");
    if (!probe)
        throw std::invalid_argument("obs: null series probe");
    series_.push_back(Series{std::move(name), std::move(probe), {}});
    return series_.size() - 1;
}

void
WindowedSampler::sample(double t)
{
    times_.push_back(t);
    for (auto &s : series_)
        s.values.push_back(s.probe());
}

const std::string &
WindowedSampler::seriesName(std::size_t i) const
{
    return series_.at(i).name;
}

const std::vector<double> &
WindowedSampler::seriesValues(std::size_t i) const
{
    return series_.at(i).values;
}

namespace {

void
jsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
    os << '"';
}

void
jsonArray(std::ostream &os, const std::vector<double> &xs)
{
    os << "[";
    for (std::size_t i = 0; i < xs.size(); ++i) {
        if (i)
            os << ",";
        os << (std::isfinite(xs[i]) ? xs[i] : 0.0);
    }
    os << "]";
}

} // namespace

void
WindowedSampler::writeJson(std::ostream &os) const
{
    os << "{\"t\":";
    jsonArray(os, times_);
    os << ",\"series\":{";
    for (std::size_t i = 0; i < series_.size(); ++i) {
        if (i)
            os << ",";
        jsonString(os, series_[i].name);
        os << ":";
        jsonArray(os, series_[i].values);
    }
    os << "}}";
}

} // namespace cchar::obs
