/**
 * @file
 * Umbrella header and process-wide hooks of the observability layer.
 *
 * The simulation layers (desim, mesh, ccnuma, mp, core) are
 * instrumented against two optional sinks:
 *
 *  - a MetricsRegistry (counters / gauges / histograms), and
 *  - a Tracer (sim-time spans and instants).
 *
 * Both default to "absent": metrics() and tracer() return nullptr, an
 * instrumented component resolves detached handles, and the only
 * residual cost on a hot path is a null-check. A driver (the cchar
 * CLI, a bench binary, a test) that wants visibility installs its own
 * sinks with setMetrics()/setTracer() *before* constructing the
 * simulator, runs, and exports.
 *
 * The hooks are deliberately ambient rather than threaded through
 * every constructor: simulations are single-threaded and short-lived,
 * every layer already owns a Simulator reference, and a global install
 * point means instrumenting a new subsystem never changes an API.
 * Components must read the hooks at construction time (cache handles),
 * never per event.
 *
 * The install point is *thread-local*: each thread has its own slot,
 * so concurrent sweep workers (see sweep/engine.hh) install fully
 * independent sinks with no synchronization on any hot path. A
 * single-threaded driver behaves exactly as before.
 *
 * Compile with -DCCHAR_OBS_DISABLED to compile out every handle
 * operation; metrics()/tracer() then always return nullptr.
 */

#ifndef CCHAR_OBS_OBS_HH
#define CCHAR_OBS_OBS_HH

#include "flow.hh"
#include "link_stats.hh"
#include "phases.hh"
#include "rank_activity.hh"
#include "registry.hh"
#include "sampler.hh"
#include "tracer.hh"

namespace cchar::obs {

/** Currently installed metrics sink, or nullptr (disabled). */
MetricsRegistry *metrics();

/** Currently installed trace sink, or nullptr (disabled). */
Tracer *tracer();

/** Currently installed flow-tracking sink, or nullptr (disabled). */
FlowTracker *flows();

/** Currently installed rank-activity sink, or nullptr (disabled). */
RankActivityTracker *rankActivity();

/** Currently installed link-stats sink, or nullptr (disabled). */
LinkStatsTracker *linkStats();

/** Install (or with nullptr, remove) this thread's metrics sink. */
void setMetrics(MetricsRegistry *registry);

/** Install (or with nullptr, remove) this thread's trace sink. */
void setTracer(Tracer *tracer);

/** Install (or with nullptr, remove) this thread's flow sink. */
void setFlows(FlowTracker *tracker);

/** Install (or with nullptr, remove) this thread's rank-activity sink. */
void setRankActivity(RankActivityTracker *tracker);

/** Install (or with nullptr, remove) this thread's link-stats sink. */
void setLinkStats(LinkStatsTracker *tracker);

/**
 * Publish the side sinks' own health into a registry snapshot:
 * obs.tracer.records / obs.tracer.dropped (ring overwrites — nonzero
 * means the exported trace is truncated) and obs.flows.opened /
 * completed / dropped. Call once, just before exporting the registry;
 * absent sinks contribute nothing.
 */
void publishSinkStats(MetricsRegistry &registry, const Tracer *tracer,
                      const FlowTracker *flows);

/**
 * RAII installer: sets the sinks for a scope, restores the previous
 * ones on exit. Keeps tests and benches exception-safe.
 */
class ScopedObservability
{
  public:
    explicit ScopedObservability(MetricsRegistry *registry,
                                 Tracer *trace = nullptr,
                                 FlowTracker *flow = nullptr,
                                 RankActivityTracker *activity = nullptr,
                                 LinkStatsTracker *links = nullptr)
        : prevMetrics_(metrics()), prevTracer_(tracer()),
          prevFlows_(flows()), prevActivity_(rankActivity()),
          prevLinks_(linkStats())
    {
        setMetrics(registry);
        setTracer(trace);
        setFlows(flow);
        setRankActivity(activity);
        setLinkStats(links);
    }

    ScopedObservability(const ScopedObservability &) = delete;
    ScopedObservability &operator=(const ScopedObservability &) = delete;

    ~ScopedObservability()
    {
        setMetrics(prevMetrics_);
        setTracer(prevTracer_);
        setFlows(prevFlows_);
        setRankActivity(prevActivity_);
        setLinkStats(prevLinks_);
    }

  private:
    MetricsRegistry *prevMetrics_;
    Tracer *prevTracer_;
    FlowTracker *prevFlows_;
    RankActivityTracker *prevActivity_;
    LinkStatsTracker *prevLinks_;
};

/**
 * RAII installer for the rank-activity sink alone. Used to detach the
 * tracker around a trace replay (which rebuilds the network and would
 * otherwise double-count comm spans) without touching the other sinks.
 */
class ScopedRankActivity
{
  public:
    explicit ScopedRankActivity(RankActivityTracker *tracker)
        : prev_(rankActivity())
    {
        setRankActivity(tracker);
    }

    ScopedRankActivity(const ScopedRankActivity &) = delete;
    ScopedRankActivity &operator=(const ScopedRankActivity &) = delete;

    ~ScopedRankActivity() { setRankActivity(prev_); }

  private:
    RankActivityTracker *prev_;
};

} // namespace cchar::obs

#endif // CCHAR_OBS_OBS_HH
