/**
 * @file
 * Message-lifecycle flow tracking.
 *
 * A FlowTracker assigns every network message a unique *flow id* at
 * generation time (coherence-protocol post, MP send, trace replay) and
 * follows it through mesh injection, per-hop traversal and delivery.
 * Two artifacts come out:
 *
 *  - a bounded reservoir of completed FlowRecords — per-message
 *    lifecycle facts (class, endpoints, length, generate/inject/deliver
 *    sim-times, queueing and stall components) that downstream
 *    consumers (the HTML run report, tests) read without re-running the
 *    simulation;
 *  - the sampling decision for Perfetto *flow events*: the mesh asks
 *    sampled(id) and, for selected messages, emits s/t/f flow records
 *    through the Tracer so the exported trace draws arrows linking the
 *    injection span, every channel-hold span along the path, and the
 *    delivery drain span.
 *
 * Like the other sinks the tracker is installed process-wide
 * (obs::setFlows) and resolved once at component construction. Flow ids
 * ride in a dedicated Packet field and feed *only* observability —
 * simulation results are byte-identical with or without a tracker
 * installed.
 *
 * Determinism: ids are a monotonic counter in generation order, the
 * reservoir keeps the first `capacity` completions, and sampling is a
 * pure function of the id (id % stride == 0) — identical runs produce
 * identical flow artifacts.
 */

#ifndef CCHAR_OBS_FLOW_HH
#define CCHAR_OBS_FLOW_HH

#include <cstdint>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "registry.hh"

namespace cchar::obs {

/** Completed lifecycle of one message. */
struct FlowRecord
{
    std::uint64_t id = 0;
    /** trace::MessageKind value (kept as int: obs stays dependency-free). */
    int kind = 0;
    std::int32_t src = 0;
    std::int32_t dst = 0;
    std::int32_t bytes = 0;
    std::int32_t hops = 0;
    /** Producer handed the message to the runtime (us). */
    double tGenerate = 0.0;
    /** Message reached the network interface (us). */
    double tInject = 0.0;
    /** Tail flit drained at the destination (us). */
    double tDeliver = 0.0;
    /** Wait for the source's injection port (us). */
    double queueWait = 0.0;
    /** Cumulative in-network lane-acquire stall (us). */
    double stallWait = 0.0;

    /** Software/runtime latency before the network saw the message. */
    double softwareTime() const { return tInject - tGenerate; }
    /** Network latency (inject to deliver). */
    double networkLatency() const { return tDeliver - tInject; }
    /** Contention-free routing + serialization component. */
    double
    transitTime() const
    {
        return networkLatency() - queueWait - stallWait;
    }
};

/** Assigns flow ids and collects completed lifecycle records. */
class FlowTracker
{
  public:
    /**
     * @param capacity Completed records kept (first-N reservoir).
     * @param stride   Emit tracer flow events for every stride-th
     *                 flow id (1 = every message).
     */
    explicit FlowTracker(std::size_t capacity = 4096,
                         std::uint64_t stride = 1);

    FlowTracker(const FlowTracker &) = delete;
    FlowTracker &operator=(const FlowTracker &) = delete;

    /**
     * Open a flow at generation time and return its id (ids start at
     * 1; 0 marks "no flow" in a Packet).
     */
    std::uint64_t open(int kind, std::int32_t src, std::int32_t dst,
                       std::int32_t bytes, double t);

    /** True when the mesh should emit tracer flow events for `id`. */
    bool
    sampled(std::uint64_t id) const
    {
        return id != 0 && (id - 1) % stride_ == 0;
    }

    /** The message reached the network interface. */
    void onInject(std::uint64_t id, double t);

    /**
     * The tail drained at the destination: completes the record and
     * moves it to the reservoir (or counts it dropped when full).
     */
    void onDeliver(std::uint64_t id, double t, std::int32_t hops,
                   double queue_wait, double stall_wait);

    /** Flows opened so far. */
    std::uint64_t opened() const { return nextId_ - 1; }

    /** Flows delivered so far. */
    std::uint64_t completed() const { return completed_; }

    /** Completions that did not fit in the reservoir. */
    std::uint64_t droppedRecords() const { return droppedRecords_; }

    /** Flow-event sampling stride. */
    std::uint64_t stride() const { return stride_; }

    /** Completed lifecycle records, completion order, <= capacity. */
    const std::vector<FlowRecord> &records() const { return records_; }

    /**
     * JSON: {"opened":..,"completed":..,"dropped":..,"stride":..,
     * "records":[{..},..]} — deterministic field order.
     */
    void writeJson(std::ostream &os) const;

  private:
    std::uint64_t nextId_ = 1;
    std::uint64_t stride_;
    std::uint64_t completed_ = 0;
    std::uint64_t droppedRecords_ = 0;
    std::size_t capacity_;
    /**
     * "flow.dropped" counter, resolved from the ambient registry on
     * the first overflow rather than at construction: drivers build
     * the tracker before installing their sinks, and the drop path is
     * cold by definition.
     */
    Counter droppedMetric_;
    bool droppedMetricResolved_ = false;
    std::vector<FlowRecord> records_;
    /** Generated-but-undelivered flows (bounded by in-flight count). */
    std::unordered_map<std::uint64_t, FlowRecord> open_;
};

} // namespace cchar::obs

#endif // CCHAR_OBS_FLOW_HH
