/**
 * @file
 * Sample summaries: moments, order statistics, empirical CDF and
 * histogram construction. These are the raw-material views the SAS
 * regression step of the paper consumed.
 */

#ifndef CCHAR_STATS_SUMMARY_HH
#define CCHAR_STATS_SUMMARY_HH

#include <cstddef>
#include <span>
#include <vector>

namespace cchar::stats {

/** Moments and order statistics of a sample. */
struct SummaryStats
{
    std::size_t count = 0;
    double mean = 0.0;
    double variance = 0.0;  ///< population variance
    double stddev = 0.0;
    double cv = 0.0;        ///< coefficient of variation
    double skewness = 0.0;
    double min = 0.0;
    double max = 0.0;
    double median = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;

    /** Compute all fields from a sample (does not need to be sorted). */
    static SummaryStats compute(std::span<const double> xs);
};

/** One bin of a histogram. */
struct HistogramBin
{
    double lo;
    double hi;
    std::size_t count;

    double mid() const { return 0.5 * (lo + hi); }
};

/** Fixed-width histogram over a sample. */
class Histogram
{
  public:
    /**
     * Build a histogram with the given number of equal-width bins
     * spanning [min, max] of the sample.
     */
    Histogram(std::span<const double> xs, std::size_t bins);

    const std::vector<HistogramBin> &bins() const { return bins_; }
    std::size_t total() const { return total_; }

    /** Relative frequency of bin i. */
    double
    frequency(std::size_t i) const
    {
        return total_ ? static_cast<double>(bins_[i].count) /
                            static_cast<double>(total_)
                      : 0.0;
    }

  private:
    std::vector<HistogramBin> bins_;
    std::size_t total_ = 0;
};

/**
 * Empirical cumulative distribution function.
 *
 * Also provides the decimated (x, F(x)) point set used as the
 * regression target when fitting candidate CDFs, mirroring the paper's
 * use of SAS non-linear regression on the observed distribution.
 */
class Ecdf
{
  public:
    explicit Ecdf(std::span<const double> xs);

    /** F(x) = fraction of observations <= x. */
    double operator()(double x) const;

    std::size_t size() const { return xs_.size(); }
    const std::vector<double> &sorted() const { return xs_; }

    /** Regression point set: at most maxPoints (x, F) pairs. */
    std::vector<std::pair<double, double>>
    regressionPoints(std::size_t max_points = 200) const;

  private:
    std::vector<double> xs_; // sorted
};

} // namespace cchar::stats

#endif // CCHAR_STATS_SUMMARY_HH
