/**
 * @file
 * Spatial (destination) distribution analysis.
 *
 * The paper expresses the spatial attribute of an application as the
 * distribution of message destinations per source and classifies it
 * against simple models: uniform over all other processors, "bimodal
 * uniform" (one favorite processor receives the maximum share while
 * the rest receive equal shares — observed for IS and for 3D-FFT's
 * broadcast root), a single fixed partner, or a general/irregular
 * pattern reported by its empirical distribution.
 */

#ifndef CCHAR_STATS_SPATIAL_HH
#define CCHAR_STATS_SPATIAL_HH

#include <cstddef>
#include <string>
#include <vector>

#include "rng.hh"

namespace cchar::stats {

/** Discrete probability mass function over n categories. */
class DiscretePmf
{
  public:
    DiscretePmf() = default;

    explicit DiscretePmf(std::vector<double> weights);

    /** Build from raw counts. */
    static DiscretePmf fromCounts(const std::vector<double> &counts);

    std::size_t size() const { return p_.size(); }
    double operator[](std::size_t i) const { return p_[i]; }
    const std::vector<double> &probabilities() const { return p_; }

    /** Shannon entropy in bits. */
    double entropy() const;

    /** Total variation distance to another PMF of the same size. */
    double tvd(const DiscretePmf &other) const;

    /** Index of the most likely category (-1 if empty). */
    int argmax() const;

    /** Draw a category by inverse transform. */
    int sample(Rng &rng) const;

  private:
    std::vector<double> p_;
};

/** Spatial pattern families. */
enum class SpatialPattern
{
    Uniform,           ///< equal share to every other processor
    BimodalUniform,    ///< one favorite + equal share to the rest
    SingleDestination, ///< essentially one partner
    General,           ///< irregular; reported empirically
};

/** Name of a SpatialPattern value. */
std::string toString(SpatialPattern pattern);

/** Result of classifying one source's destination distribution. */
struct SpatialClassification
{
    SpatialPattern pattern = SpatialPattern::General;
    /** Favorite destination (meaningful for Bimodal/Single). */
    int favorite = -1;
    /** Probability mass at the favorite destination. */
    double favoriteProb = 0.0;
    /** Per-destination probability of the non-favorite remainder. */
    double restProb = 0.0;
    /** Total variation distance between data and the fitted model. */
    double modelTvd = 1.0;
    /** The fitted model PMF (same support as the input). */
    DiscretePmf model;

    std::string describe() const;
};

/** Classifier for destination PMFs. */
class SpatialClassifier
{
  public:
    struct Options
    {
        /** Max TVD to accept the uniform model. */
        double uniformTolerance = 0.08;
        /** Max TVD to accept the bimodal-uniform model. */
        double bimodalTolerance = 0.08;
        /** Min favorite mass (relative to uniform share) for bimodal. */
        double favoriteFactor = 1.5;
        /** Favorite mass above which the pattern is single-partner. */
        double singleThreshold = 0.90;
    };

    SpatialClassifier() : opts_(Options{}) {}

    explicit SpatialClassifier(Options opts) : opts_(opts) {}

    /**
     * Classify a destination PMF.
     * @param pmf  Destination probabilities; entry `self` (if >= 0)
     *             must be ~0 and is excluded from the candidate models.
     * @param self Index of the source processor, or -1.
     */
    SpatialClassification classify(const DiscretePmf &pmf,
                                   int self = -1) const;

  private:
    Options opts_;
};

} // namespace cchar::stats

#endif // CCHAR_STATS_SPATIAL_HH
