#include "sampling.hh"

#include <algorithm>

namespace cchar::stats {

DiscreteSampler
DiscreteSampler::fromPmf(const DiscretePmf &pmf)
{
    DiscreteSampler s;
    s.cdf_.reserve(pmf.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < pmf.size(); ++i) {
        acc += pmf[i];
        s.cdf_.push_back(acc);
    }
    s.fallback_ = pmf.argmax();
    return s;
}

DiscreteSampler
DiscreteSampler::fromLengthPmf(
    const std::vector<std::pair<int, double>> &pmf, int fallback)
{
    DiscreteSampler s;
    s.cdf_.reserve(pmf.size());
    s.values_.reserve(pmf.size());
    double acc = 0.0;
    for (const auto &[value, prob] : pmf) {
        acc += prob;
        s.cdf_.push_back(acc);
        s.values_.push_back(value);
    }
    s.fallback_ = pmf.empty() ? fallback : pmf.back().first;
    return s;
}

int
DiscreteSampler::sample(Rng &rng) const
{
    // The uniform draw happens unconditionally: the linear scans this
    // replaces consume one draw even over an empty support, and the
    // seeded draw sequence is part of the output contract.
    double u = rng.uniform01();
    auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        return fallback_;
    std::size_t i = static_cast<std::size_t>(it - cdf_.begin());
    return values_.empty() ? static_cast<int>(i) : values_[i];
}

} // namespace cchar::stats
