/**
 * @file
 * Non-linear regression of candidate CDFs onto empirical data, the
 * reproduction of the paper's SAS/STAT step ("non-linear model with
 * iterative methods for curve-fitting ... we have used the
 * multivariate secant method").
 *
 * Two optimizers are provided:
 *  - Levenberg-Marquardt with a numeric Jacobian (robust default);
 *  - a multivariate secant (Broyden) method, matching SAS NLIN's
 *    derivative-free METHOD=DUD family, kept for fidelity and exposed
 *    for the fitter ablation benchmark.
 */

#ifndef CCHAR_STATS_FIT_HH
#define CCHAR_STATS_FIT_HH

#include <memory>
#include <span>
#include <vector>

#include "distribution.hh"

namespace cchar::stats {

/** Regression / goodness-of-fit quality measures. */
struct GoodnessOfFit
{
    /** Coefficient of determination of the CDF regression. */
    double r2 = 0.0;
    /** Kolmogorov-Smirnov statistic sup |F_fit - F_emp|. */
    double ks = 1.0;
    /** Pearson chi-square over histogram bins (merged to E >= 5). */
    double chiSquare = 0.0;
    /** Degrees of freedom of the chi-square. */
    int chiSquareDof = 0;
};

/** Optimizer selection. */
enum class FitMethod
{
    LevenbergMarquardt,
    Secant, ///< Broyden rank-1 updates (SAS "multivariate secant")
};

/** Driver for least-squares CDF fitting. */
class NonlinearLeastSquares
{
  public:
    struct Options
    {
        int maxIterations = 200;
        double tolerance = 1e-12; ///< relative SSR improvement stop
        FitMethod method = FitMethod::LevenbergMarquardt;
    };

    struct Result
    {
        bool converged = false;
        int iterations = 0;
        double ssr = 0.0; ///< final sum of squared residuals
    };

    /**
     * Adjust dist's parameters in place to minimize
     * sum_i (dist.cdf(x_i) - F_i)^2 over the given (x, F) points.
     */
    static Result fitCdf(Distribution &dist,
                         std::span<const std::pair<double, double>> points,
                         const Options &opts);

    static Result
    fitCdf(Distribution &dist,
           std::span<const std::pair<double, double>> points)
    {
        return fitCdf(dist, points, Options{});
    }
};

/** Outcome of fitting one candidate family. */
struct FitResult
{
    std::unique_ptr<Distribution> dist;
    GoodnessOfFit gof;
    bool usable = false; ///< false if moment seeding was infeasible
    bool converged = false;
    int iterations = 0;

    /** Ranking key: adjusted R^2 (penalizes parameter count). */
    double
    adjustedR2(std::size_t n_points) const
    {
        if (!usable)
            return -1.0;
        double n = static_cast<double>(n_points);
        double p = static_cast<double>(dist->paramCount());
        if (n <= p + 1.0)
            return gof.r2;
        return 1.0 - (1.0 - gof.r2) * (n - 1.0) / (n - p - 1.0);
    }
};

/**
 * Fits a sample against a candidate set of distribution families and
 * ranks the results — the end-to-end analogue of the paper's SAS
 * regression analysis of the network log.
 */
class DistributionFitter
{
  public:
    struct Options
    {
        std::size_t maxRegressionPoints = 200;
        NonlinearLeastSquares::Options nls{};
        /**
         * Samples with CV below this are declared deterministic
         * without regression (a point mass cannot be curve-fitted).
         */
        double deterministicCvThreshold = 1e-3;
    };

    DistributionFitter() : opts_(Options{}) {}

    explicit DistributionFitter(Options opts) : opts_(opts) {}

    /** Fit a single family (seeded from moments, then regression). */
    FitResult fitOne(std::span<const double> data,
                     const Distribution &prototype) const;

    /** Fit every candidate; results ordered best-first. */
    std::vector<FitResult>
    fitAll(std::span<const double> data) const;

    /** Best candidate by adjusted R^2. */
    FitResult bestFit(std::span<const double> data) const;

    /** Goodness-of-fit of an already-parameterized distribution. */
    static GoodnessOfFit evaluate(const Distribution &dist,
                                  std::span<const double> data,
                                  std::size_t max_points = 200);

  private:
    Options opts_;
};

} // namespace cchar::stats

#endif // CCHAR_STATS_FIT_HH
