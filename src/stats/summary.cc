#include "summary.hh"

#include <algorithm>
#include <cmath>

namespace cchar::stats {

namespace {

double
percentileOfSorted(const std::vector<double> &xs, double q)
{
    if (xs.empty())
        return 0.0;
    double pos = q * static_cast<double>(xs.size() - 1);
    std::size_t lo = static_cast<std::size_t>(pos);
    std::size_t hi = std::min(lo + 1, xs.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

} // namespace

SummaryStats
SummaryStats::compute(std::span<const double> sample)
{
    SummaryStats s;
    s.count = sample.size();
    if (s.count == 0)
        return s;

    double sum = 0.0;
    for (double x : sample)
        sum += x;
    s.mean = sum / static_cast<double>(s.count);

    double m2 = 0.0, m3 = 0.0;
    for (double x : sample) {
        double d = x - s.mean;
        m2 += d * d;
        m3 += d * d * d;
    }
    m2 /= static_cast<double>(s.count);
    m3 /= static_cast<double>(s.count);
    s.variance = m2 > 0.0 ? m2 : 0.0;
    s.stddev = std::sqrt(s.variance);
    s.cv = s.mean != 0.0 ? s.stddev / s.mean : 0.0;
    s.skewness = s.stddev > 0.0 ? m3 / (s.stddev * s.stddev * s.stddev)
                                : 0.0;

    std::vector<double> xs(sample.begin(), sample.end());
    std::sort(xs.begin(), xs.end());
    s.min = xs.front();
    s.max = xs.back();
    s.median = percentileOfSorted(xs, 0.50);
    s.p90 = percentileOfSorted(xs, 0.90);
    s.p99 = percentileOfSorted(xs, 0.99);
    return s;
}

Histogram::Histogram(std::span<const double> xs, std::size_t bins)
{
    if (bins == 0)
        bins = 1;
    double lo = 0.0, hi = 1.0;
    if (!xs.empty()) {
        lo = *std::min_element(xs.begin(), xs.end());
        hi = *std::max_element(xs.begin(), xs.end());
    }
    if (hi <= lo)
        hi = lo + 1.0;
    double width = (hi - lo) / static_cast<double>(bins);
    bins_.reserve(bins);
    for (std::size_t i = 0; i < bins; ++i) {
        bins_.push_back({lo + width * static_cast<double>(i),
                         lo + width * static_cast<double>(i + 1), 0});
    }
    for (double x : xs) {
        auto idx = static_cast<std::size_t>((x - lo) / width);
        if (idx >= bins)
            idx = bins - 1;
        ++bins_[idx].count;
        ++total_;
    }
}

Ecdf::Ecdf(std::span<const double> xs) : xs_(xs.begin(), xs.end())
{
    std::sort(xs_.begin(), xs_.end());
}

double
Ecdf::operator()(double x) const
{
    if (xs_.empty())
        return 0.0;
    auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
    return static_cast<double>(it - xs_.begin()) /
           static_cast<double>(xs_.size());
}

std::vector<std::pair<double, double>>
Ecdf::regressionPoints(std::size_t max_points) const
{
    std::vector<std::pair<double, double>> pts;
    std::size_t n = xs_.size();
    if (n == 0 || max_points == 0)
        return pts;
    std::size_t stride = n > max_points ? n / max_points : 1;
    pts.reserve(n / stride + 1);
    for (std::size_t i = stride - 1; i < n; i += stride) {
        // Midpoint plotting position (Hazen) avoids F == 0 and F == 1
        // endpoints, which destabilize CDF regression.
        double f = (static_cast<double>(i) + 0.5) / static_cast<double>(n);
        pts.emplace_back(xs_[i], f);
    }
    return pts;
}

} // namespace cchar::stats
