#include "spatial.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace cchar::stats {

DiscretePmf::DiscretePmf(std::vector<double> weights) : p_(std::move(weights))
{
    double sum = 0.0;
    for (double w : p_)
        sum += w;
    if (sum > 0.0) {
        for (double &w : p_)
            w /= sum;
    }
}

DiscretePmf
DiscretePmf::fromCounts(const std::vector<double> &counts)
{
    return DiscretePmf{counts};
}

double
DiscretePmf::entropy() const
{
    double h = 0.0;
    for (double p : p_) {
        if (p > 0.0)
            h -= p * std::log2(p);
    }
    return h;
}

double
DiscretePmf::tvd(const DiscretePmf &other) const
{
    double d = 0.0;
    std::size_t n = std::max(p_.size(), other.p_.size());
    for (std::size_t i = 0; i < n; ++i) {
        double a = i < p_.size() ? p_[i] : 0.0;
        double b = i < other.p_.size() ? other.p_[i] : 0.0;
        d += std::fabs(a - b);
    }
    return 0.5 * d;
}

int
DiscretePmf::argmax() const
{
    if (p_.empty())
        return -1;
    return static_cast<int>(
        std::max_element(p_.begin(), p_.end()) - p_.begin());
}

int
DiscretePmf::sample(Rng &rng) const
{
    double u = rng.uniform01();
    double acc = 0.0;
    for (std::size_t i = 0; i < p_.size(); ++i) {
        acc += p_[i];
        if (u < acc)
            return static_cast<int>(i);
    }
    return argmax();
}

std::string
toString(SpatialPattern pattern)
{
    switch (pattern) {
      case SpatialPattern::Uniform:
        return "uniform";
      case SpatialPattern::BimodalUniform:
        return "bimodal-uniform";
      case SpatialPattern::SingleDestination:
        return "single-destination";
      case SpatialPattern::General:
        return "general";
    }
    return "?";
}

std::string
SpatialClassification::describe() const
{
    std::ostringstream os;
    os << toString(pattern);
    switch (pattern) {
      case SpatialPattern::BimodalUniform:
        os << "(favorite=" << favorite << ", p_fav=" << favoriteProb
           << ", p_rest=" << restProb << ")";
        break;
      case SpatialPattern::SingleDestination:
        os << "(dest=" << favorite << ", p=" << favoriteProb << ")";
        break;
      case SpatialPattern::Uniform:
        os << "(p=" << restProb << ")";
        break;
      case SpatialPattern::General:
        break;
    }
    return os.str();
}

SpatialClassification
SpatialClassifier::classify(const DiscretePmf &pmf, int self) const
{
    SpatialClassification out;
    std::size_t n = pmf.size();
    if (n == 0)
        return out;

    // Candidate destination set excludes the source itself.
    std::vector<std::size_t> dests;
    for (std::size_t i = 0; i < n; ++i) {
        if (static_cast<int>(i) != self)
            dests.push_back(i);
    }
    if (dests.empty())
        return out;
    double uniformShare = 1.0 / static_cast<double>(dests.size());

    // Favorite destination.
    std::size_t fav = dests[0];
    for (std::size_t i : dests) {
        if (pmf[i] > pmf[fav])
            fav = i;
    }
    double pFav = pmf[fav];

    // Model 1: single destination.
    if (pFav >= opts_.singleThreshold) {
        std::vector<double> model(n, 0.0);
        model[fav] = 1.0;
        out.pattern = SpatialPattern::SingleDestination;
        out.favorite = static_cast<int>(fav);
        out.favoriteProb = pFav;
        out.model = DiscretePmf{std::move(model)};
        out.modelTvd = pmf.tvd(out.model);
        return out;
    }

    // Model 2: uniform over all other processors.
    std::vector<double> uniformModel(n, 0.0);
    for (std::size_t i : dests)
        uniformModel[i] = uniformShare;
    DiscretePmf uniformPmf{std::move(uniformModel)};
    double tvdUniform = pmf.tvd(uniformPmf);

    // Model 3: bimodal uniform — favorite keeps its observed mass,
    // the remainder is spread equally.
    std::vector<double> bimodalModel(n, 0.0);
    double rest = dests.size() > 1
                      ? (1.0 - pFav) / static_cast<double>(dests.size() - 1)
                      : 0.0;
    for (std::size_t i : dests)
        bimodalModel[i] = (i == fav) ? pFav : rest;
    DiscretePmf bimodalPmf{std::move(bimodalModel)};
    double tvdBimodal = pmf.tvd(bimodalPmf);

    if (tvdUniform <= opts_.uniformTolerance) {
        out.pattern = SpatialPattern::Uniform;
        out.restProb = uniformShare;
        out.model = std::move(uniformPmf);
        out.modelTvd = tvdUniform;
        return out;
    }
    if (pFav >= opts_.favoriteFactor * uniformShare &&
        tvdBimodal <= opts_.bimodalTolerance) {
        out.pattern = SpatialPattern::BimodalUniform;
        out.favorite = static_cast<int>(fav);
        out.favoriteProb = pFav;
        out.restProb = rest;
        out.model = std::move(bimodalPmf);
        out.modelTvd = tvdBimodal;
        return out;
    }

    out.pattern = SpatialPattern::General;
    out.favorite = static_cast<int>(fav);
    out.favoriteProb = pFav;
    out.model = pmf;
    out.modelTvd = std::min(tvdUniform, tvdBimodal);
    return out;
}

} // namespace cchar::stats
