/**
 * @file
 * Abstract interface for the continuous distributions the paper fits
 * to message inter-arrival times ("commonly used distributions").
 *
 * Every distribution supports: evaluation (pdf/cdf), analytic moments,
 * deterministic inverse-transform sampling, parameter access for the
 * non-linear regression driver, and a method-of-moments initializer
 * used to seed the regression.
 */

#ifndef CCHAR_STATS_DISTRIBUTION_HH
#define CCHAR_STATS_DISTRIBUTION_HH

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "rng.hh"
#include "summary.hh"

namespace cchar::stats {

/** Base class for fittable continuous distributions on [0, inf). */
class Distribution
{
  public:
    virtual ~Distribution() = default;

    /** Family name, e.g. "exponential". */
    virtual std::string name() const = 0;

    /** Number of free parameters seen by the regression. */
    virtual std::size_t paramCount() const = 0;

    /** Current parameter vector. */
    virtual std::vector<double> params() const = 0;

    /**
     * Replace the parameter vector. Implementations clamp to their
     * feasible region, so the optimizer may propose raw steps.
     */
    virtual void setParams(std::span<const double> p) = 0;

    /** Probability density at x. */
    virtual double pdf(double x) const = 0;

    /** Cumulative distribution at x. */
    virtual double cdf(double x) const = 0;

    /** Analytic mean. */
    virtual double mean() const = 0;

    /** Analytic variance. */
    virtual double variance() const = 0;

    /** Draw one variate. */
    virtual double sample(Rng &rng) const = 0;

    /**
     * Seed parameters from sample moments.
     * @return false if the family cannot represent those moments
     *         (e.g. hyperexponential with CV <= 1); the fitter then
     *         skips this candidate.
     */
    virtual bool initFromMoments(const SummaryStats &s) = 0;

    virtual std::unique_ptr<Distribution> clone() const = 0;

    /** Human-readable "family(param=value, ...)" string. */
    virtual std::string describe() const;
};

} // namespace cchar::stats

#endif // CCHAR_STATS_DISTRIBUTION_HH
