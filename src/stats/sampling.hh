/**
 * @file
 * Seeded inverse-CDF sampling of discrete models at generator scale.
 *
 * The synthetic traffic generator replays a fitted characterization as
 * millions of messages, and every message costs one destination draw
 * and one length draw. DiscretePmf::sample walks its mass linearly
 * (O(n) per draw — fine for classification, hostile at replay volume),
 * so the generator builds a DiscreteSampler once per source: the
 * prefix-sum CDF is cached and each draw is a binary search.
 *
 * Determinism contract: a DiscreteSampler consumes exactly one
 * Rng::uniform01() per draw and returns bit-identical results to the
 * linear scan it replaces (same left-to-right accumulation order, same
 * `u < cdf` acceptance, same fallback on a degenerate tail draw), so
 * replacing the scan cannot change any seeded output.
 */

#ifndef CCHAR_STATS_SAMPLING_HH
#define CCHAR_STATS_SAMPLING_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "rng.hh"
#include "spatial.hh"

namespace cchar::stats {

/**
 * Cached-CDF inverse-transform sampler over a discrete distribution.
 *
 * Two constructions:
 *  - fromPmf: categories 0..n-1 with DiscretePmf probabilities; draws
 *    return the category index (argmax on a degenerate tail draw,
 *    mirroring DiscretePmf::sample).
 *  - fromLengthPmf: (value, probability) support as stored in
 *    VolumeCharacterization::lengthPmf; draws return the value (the
 *    last support point on a degenerate tail draw, `fallback` when the
 *    support is empty).
 */
class DiscreteSampler
{
  public:
    DiscreteSampler() = default;

    static DiscreteSampler fromPmf(const DiscretePmf &pmf);

    static DiscreteSampler
    fromLengthPmf(const std::vector<std::pair<int, double>> &pmf,
                  int fallback);

    /** One uniform01 draw; O(log n) binary search over the CDF. */
    int sample(Rng &rng) const;

    std::size_t size() const { return cdf_.size(); }

  private:
    /** Left-to-right prefix sums of the probability mass. */
    std::vector<double> cdf_;
    /** Mapped values; empty = identity (category index). */
    std::vector<int> values_;
    /** Result of a draw past the accumulated mass (or empty support). */
    int fallback_ = -1;
};

} // namespace cchar::stats

#endif // CCHAR_STATS_SAMPLING_HH
