#include "fit.hh"

#include <algorithm>
#include <cmath>

#include "distributions.hh"

namespace cchar::stats {

namespace {

using Points = std::span<const std::pair<double, double>>;

/** Residual vector r_i = cdf(x_i) - F_i. */
std::vector<double>
residuals(const Distribution &dist, Points pts)
{
    std::vector<double> r(pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i)
        r[i] = dist.cdf(pts[i].first) - pts[i].second;
    return r;
}

double
sumSquares(const std::vector<double> &r)
{
    double s = 0.0;
    for (double v : r)
        s += v * v;
    return s;
}

/** Numeric Jacobian, J[i][j] = d r_i / d p_j, forward differences. */
std::vector<std::vector<double>>
numericJacobian(Distribution &dist, Points pts,
                const std::vector<double> &params,
                const std::vector<double> &r0)
{
    std::size_t m = pts.size(), n = params.size();
    std::vector<std::vector<double>> jac(m, std::vector<double>(n, 0.0));
    for (std::size_t j = 0; j < n; ++j) {
        double h = std::max(std::fabs(params[j]) * 1e-6, 1e-9);
        std::vector<double> bumped = params;
        bumped[j] += h;
        dist.setParams(bumped);
        // setParams may clamp; use the effective step.
        double eff = dist.params()[j] - params[j];
        if (std::fabs(eff) < 1e-15) {
            bumped[j] = params[j] - h;
            dist.setParams(bumped);
            eff = dist.params()[j] - params[j];
            if (std::fabs(eff) < 1e-15) {
                dist.setParams(params);
                continue; // parameter pinned at a bound
            }
        }
        auto r1 = residuals(dist, pts);
        for (std::size_t i = 0; i < m; ++i)
            jac[i][j] = (r1[i] - r0[i]) / eff;
    }
    dist.setParams(params);
    return jac;
}

/** Solve the small symmetric system A x = b by Gaussian elimination. */
bool
solveLinear(std::vector<std::vector<double>> a, std::vector<double> b,
            std::vector<double> &x)
{
    std::size_t n = b.size();
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t row = col + 1; row < n; ++row) {
            if (std::fabs(a[row][col]) > std::fabs(a[pivot][col]))
                pivot = row;
        }
        if (std::fabs(a[pivot][col]) < 1e-300)
            return false;
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);
        for (std::size_t row = col + 1; row < n; ++row) {
            double f = a[row][col] / a[col][col];
            for (std::size_t k = col; k < n; ++k)
                a[row][k] -= f * a[col][k];
            b[row] -= f * b[col];
        }
    }
    x.assign(n, 0.0);
    for (std::size_t i = n; i-- > 0;) {
        double s = b[i];
        for (std::size_t k = i + 1; k < n; ++k)
            s -= a[i][k] * x[k];
        x[i] = s / a[i][i];
    }
    return true;
}

/** Compute step from J and r: (J^T J + lambda diag(J^T J)) d = -J^T r. */
bool
dampedStep(const std::vector<std::vector<double>> &jac,
           const std::vector<double> &r, double lambda,
           std::vector<double> &step)
{
    std::size_t m = r.size(), n = jac.empty() ? 0 : jac[0].size();
    std::vector<std::vector<double>> jtj(n, std::vector<double>(n, 0.0));
    std::vector<double> jtr(n, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            jtr[j] += jac[i][j] * r[i];
            for (std::size_t k = j; k < n; ++k)
                jtj[j][k] += jac[i][j] * jac[i][k];
        }
    }
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t k = 0; k < j; ++k)
            jtj[j][k] = jtj[k][j];
        jtj[j][j] *= (1.0 + lambda);
        if (jtj[j][j] == 0.0)
            jtj[j][j] = lambda > 0.0 ? lambda : 1e-12;
    }
    for (double &v : jtr)
        v = -v;
    return solveLinear(std::move(jtj), std::move(jtr), step);
}

NonlinearLeastSquares::Result
fitLm(Distribution &dist, Points pts,
      const NonlinearLeastSquares::Options &opts)
{
    NonlinearLeastSquares::Result res;
    auto params = dist.params();
    auto r = residuals(dist, pts);
    double ssr = sumSquares(r);
    double lambda = 1e-3;

    for (res.iterations = 0; res.iterations < opts.maxIterations;
         ++res.iterations) {
        auto jac = numericJacobian(dist, pts, params, r);
        std::vector<double> step;
        if (!dampedStep(jac, r, lambda, step))
            break;
        std::vector<double> trial(params.size());
        for (std::size_t j = 0; j < params.size(); ++j)
            trial[j] = params[j] + step[j];
        dist.setParams(trial);
        auto rTrial = residuals(dist, pts);
        double ssrTrial = sumSquares(rTrial);
        if (ssrTrial < ssr) {
            double improvement = (ssr - ssrTrial) / std::max(ssr, 1e-300);
            params = dist.params();
            r = std::move(rTrial);
            ssr = ssrTrial;
            lambda = std::max(lambda * 0.3, 1e-12);
            if (improvement < opts.tolerance) {
                res.converged = true;
                break;
            }
        } else {
            dist.setParams(params);
            lambda *= 10.0;
            if (lambda > 1e12) {
                res.converged = true; // stuck at a (local) minimum
                break;
            }
        }
    }
    dist.setParams(params);
    res.ssr = ssr;
    return res;
}

NonlinearLeastSquares::Result
fitSecant(Distribution &dist, Points pts,
          const NonlinearLeastSquares::Options &opts)
{
    // Broyden rank-1 updates of the Jacobian between Gauss-Newton
    // steps; re-linearize (finite differences) whenever a step is
    // rejected. This is the derivative-free multivariate secant
    // strategy of SAS NLIN.
    NonlinearLeastSquares::Result res;
    auto params = dist.params();
    auto r = residuals(dist, pts);
    double ssr = sumSquares(r);
    auto jac = numericJacobian(dist, pts, params, r);
    double damping = 1e-6;

    for (res.iterations = 0; res.iterations < opts.maxIterations;
         ++res.iterations) {
        std::vector<double> step;
        if (!dampedStep(jac, r, damping, step))
            break;
        std::vector<double> trial(params.size());
        for (std::size_t j = 0; j < params.size(); ++j)
            trial[j] = params[j] + step[j];
        dist.setParams(trial);
        std::vector<double> effStep(params.size());
        auto effParams = dist.params();
        double stepNorm = 0.0;
        for (std::size_t j = 0; j < params.size(); ++j) {
            effStep[j] = effParams[j] - params[j];
            stepNorm += effStep[j] * effStep[j];
        }
        auto rTrial = residuals(dist, pts);
        double ssrTrial = sumSquares(rTrial);
        if (ssrTrial < ssr && stepNorm > 0.0) {
            // Broyden update: B += (dr - B s) s^T / (s^T s)
            for (std::size_t i = 0; i < r.size(); ++i) {
                double bs = 0.0;
                for (std::size_t j = 0; j < params.size(); ++j)
                    bs += jac[i][j] * effStep[j];
                double coeff = (rTrial[i] - r[i] - bs) / stepNorm;
                for (std::size_t j = 0; j < params.size(); ++j)
                    jac[i][j] += coeff * effStep[j];
            }
            double improvement = (ssr - ssrTrial) / std::max(ssr, 1e-300);
            params = effParams;
            r = std::move(rTrial);
            ssr = ssrTrial;
            damping = std::max(damping * 0.5, 1e-9);
            if (improvement < opts.tolerance) {
                res.converged = true;
                break;
            }
        } else {
            dist.setParams(params);
            damping *= 10.0;
            if (damping > 1e10) {
                res.converged = true;
                break;
            }
            jac = numericJacobian(dist, pts, params, r);
        }
    }
    dist.setParams(params);
    res.ssr = ssr;
    return res;
}

} // namespace

NonlinearLeastSquares::Result
NonlinearLeastSquares::fitCdf(Distribution &dist, Points points,
                              const Options &opts)
{
    if (points.empty() || dist.paramCount() == 0)
        return {true, 0, 0.0};
    if (opts.method == FitMethod::Secant)
        return fitSecant(dist, points, opts);
    return fitLm(dist, points, opts);
}

GoodnessOfFit
DistributionFitter::evaluate(const Distribution &dist,
                             std::span<const double> data,
                             std::size_t max_points)
{
    GoodnessOfFit gof;
    if (data.empty())
        return gof;

    Ecdf ecdf{data};

    // Degenerate sample: every observation identical. The empirical
    // CDF is a single jump; regression metrics are meaningless, so
    // score by whether the model concentrates its mass at that point.
    if (ecdf.sorted().front() == ecdf.sorted().back()) {
        double x = ecdf.sorted().front();
        double below = x > 0.0 ? dist.cdf(x * (1.0 - 1e-9) - 1e-12)
                               : dist.cdf(x - 1e-12);
        double at = dist.cdf(x);
        bool pointMass = at > 0.999 && below < 0.001;
        gof.r2 = pointMass ? 1.0 : 0.0;
        gof.ks = pointMass ? 0.0 : 1.0;
        gof.chiSquareDof = 1;
        return gof;
    }

    auto pts = ecdf.regressionPoints(max_points);

    // R^2 on the regression point set.
    double meanF = 0.0;
    for (auto &[x, f] : pts)
        meanF += f;
    meanF /= static_cast<double>(pts.size());
    double ssr = 0.0, sst = 0.0;
    for (auto &[x, f] : pts) {
        double d = dist.cdf(x) - f;
        ssr += d * d;
        sst += (f - meanF) * (f - meanF);
    }
    gof.r2 = sst > 0.0 ? 1.0 - ssr / sst : (ssr == 0.0 ? 1.0 : 0.0);

    // Kolmogorov-Smirnov over the full sorted sample.
    const auto &xs = ecdf.sorted();
    double n = static_cast<double>(xs.size());
    double dmax = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        double f = dist.cdf(xs[i]);
        double upper = (static_cast<double>(i) + 1.0) / n;
        double lower = static_cast<double>(i) / n;
        dmax = std::max({dmax, std::fabs(f - upper), std::fabs(f - lower)});
    }
    gof.ks = dmax;

    // Chi-square on a histogram, merging bins to expected count >= 5.
    std::size_t nbins =
        std::clamp<std::size_t>(static_cast<std::size_t>(std::sqrt(n)), 5,
                                40);
    Histogram hist{data, nbins};
    double chi = 0.0;
    int dof = 0;
    double obsAcc = 0.0, expAcc = 0.0;
    for (const auto &bin : hist.bins()) {
        double expected =
            (dist.cdf(bin.hi) - dist.cdf(bin.lo)) * n;
        obsAcc += static_cast<double>(bin.count);
        expAcc += expected;
        if (expAcc >= 5.0) {
            double d = obsAcc - expAcc;
            chi += d * d / expAcc;
            ++dof;
            obsAcc = expAcc = 0.0;
        }
    }
    if (expAcc > 0.0) {
        double d = obsAcc - expAcc;
        chi += d * d / expAcc;
        ++dof;
    }
    gof.chiSquare = chi;
    gof.chiSquareDof = std::max(dof - 1 - static_cast<int>(dist.paramCount()),
                                1);
    return gof;
}

FitResult
DistributionFitter::fitOne(std::span<const double> data,
                           const Distribution &prototype) const
{
    FitResult result;
    result.dist = prototype.clone();
    if (data.size() < 2)
        return result;

    SummaryStats s = SummaryStats::compute(data);
    if (!result.dist->initFromMoments(s))
        return result;
    result.usable = true;

    // A point mass cannot be regressed; accept the moment fit as-is.
    if (result.dist->name() != "deterministic") {
        Ecdf ecdf{data};
        auto pts = ecdf.regressionPoints(opts_.maxRegressionPoints);
        auto r = NonlinearLeastSquares::fitCdf(*result.dist, pts, opts_.nls);
        result.converged = r.converged;
        result.iterations = r.iterations;
    } else {
        result.converged = true;
    }
    result.gof = evaluate(*result.dist, data, opts_.maxRegressionPoints);
    return result;
}

std::vector<FitResult>
DistributionFitter::fitAll(std::span<const double> data) const
{
    std::vector<FitResult> results;
    SummaryStats s = SummaryStats::compute(data);

    for (const auto &cand : standardCandidates()) {
        // Near-constant samples: only the deterministic family is
        // meaningful; regression on a vertical CDF is ill-posed.
        if (s.cv < opts_.deterministicCvThreshold &&
            cand->name() != "deterministic") {
            continue;
        }
        results.push_back(fitOne(data, *cand));
    }

    std::stable_sort(results.begin(), results.end(),
                     [&](const FitResult &a, const FitResult &b) {
                         return a.adjustedR2(data.size()) >
                                b.adjustedR2(data.size());
                     });
    return results;
}

FitResult
DistributionFitter::bestFit(std::span<const double> data) const
{
    auto all = fitAll(data);
    for (auto &fr : all) {
        if (fr.usable)
            return std::move(fr);
    }
    FitResult none;
    none.dist = std::make_unique<Deterministic>(0.0);
    return none;
}

} // namespace cchar::stats
