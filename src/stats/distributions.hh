/**
 * @file
 * Concrete distribution families used for inter-arrival-time fitting.
 *
 * The candidate set mirrors the "commonly used distributions" the
 * paper fits with SAS: exponential, shifted (displaced) exponential,
 * two-phase hyperexponential (for bursty, CV > 1 traffic), Erlang and
 * gamma (for regular, CV < 1 traffic), Weibull, lognormal, normal,
 * uniform, and deterministic.
 */

#ifndef CCHAR_STATS_DISTRIBUTIONS_HH
#define CCHAR_STATS_DISTRIBUTIONS_HH

#include <memory>

#include "distribution.hh"

namespace cchar::stats {

/** Exponential(rate). */
class Exponential : public Distribution
{
  public:
    explicit Exponential(double rate = 1.0) : rate_(rate) {}

    std::string name() const override { return "exponential"; }
    std::size_t paramCount() const override { return 1; }
    std::vector<double> params() const override { return {rate_}; }
    void setParams(std::span<const double> p) override;
    double pdf(double x) const override;
    double cdf(double x) const override;
    double mean() const override { return 1.0 / rate_; }
    double variance() const override { return 1.0 / (rate_ * rate_); }
    double sample(Rng &rng) const override;
    bool initFromMoments(const SummaryStats &s) override;
    std::unique_ptr<Distribution> clone() const override;

    double rate() const { return rate_; }

  private:
    double rate_;
};

/** Displaced exponential: shift + Exponential(rate). */
class ShiftedExponential : public Distribution
{
  public:
    ShiftedExponential(double shift = 0.0, double rate = 1.0)
        : shift_(shift), rate_(rate)
    {}

    std::string name() const override { return "shifted-exponential"; }
    std::size_t paramCount() const override { return 2; }
    std::vector<double> params() const override { return {shift_, rate_}; }
    void setParams(std::span<const double> p) override;
    double pdf(double x) const override;
    double cdf(double x) const override;
    double mean() const override { return shift_ + 1.0 / rate_; }
    double variance() const override { return 1.0 / (rate_ * rate_); }
    double sample(Rng &rng) const override;
    bool initFromMoments(const SummaryStats &s) override;
    std::unique_ptr<Distribution> clone() const override;

    double shift() const { return shift_; }
    double rate() const { return rate_; }

  private:
    double shift_;
    double rate_;
};

/**
 * Two-phase hyperexponential: with probability p draw Exp(rate1),
 * otherwise Exp(rate2). Captures bursty traffic with CV > 1.
 */
class HyperExponential2 : public Distribution
{
  public:
    HyperExponential2(double p = 0.5, double rate1 = 2.0, double rate2 = 0.5)
        : p_(p), rate1_(rate1), rate2_(rate2)
    {}

    std::string name() const override { return "hyperexponential-2"; }
    std::size_t paramCount() const override { return 3; }
    std::vector<double>
    params() const override
    {
        return {p_, rate1_, rate2_};
    }
    void setParams(std::span<const double> p) override;
    double pdf(double x) const override;
    double cdf(double x) const override;
    double mean() const override;
    double variance() const override;
    double sample(Rng &rng) const override;
    bool initFromMoments(const SummaryStats &s) override;
    std::unique_ptr<Distribution> clone() const override;

    double mixProbability() const { return p_; }
    double rate1() const { return rate1_; }
    double rate2() const { return rate2_; }

  private:
    double p_;
    double rate1_;
    double rate2_;
};

/** Erlang-k (k fixed from moments, rate free). */
class Erlang : public Distribution
{
  public:
    explicit Erlang(int k = 2, double rate = 1.0) : k_(k), rate_(rate) {}

    std::string name() const override { return "erlang"; }
    std::size_t paramCount() const override { return 1; }
    std::vector<double> params() const override { return {rate_}; }
    void setParams(std::span<const double> p) override;
    double pdf(double x) const override;
    double cdf(double x) const override;
    double mean() const override { return static_cast<double>(k_) / rate_; }
    double
    variance() const override
    {
        return static_cast<double>(k_) / (rate_ * rate_);
    }
    double sample(Rng &rng) const override;
    bool initFromMoments(const SummaryStats &s) override;
    std::unique_ptr<Distribution> clone() const override;
    std::string describe() const override;

    int stages() const { return k_; }
    double rate() const { return rate_; }

  private:
    int k_;
    double rate_;
};

/** Gamma(shape, rate). */
class GammaDist : public Distribution
{
  public:
    GammaDist(double shape = 1.0, double rate = 1.0)
        : shape_(shape), rate_(rate)
    {}

    std::string name() const override { return "gamma"; }
    std::size_t paramCount() const override { return 2; }
    std::vector<double> params() const override { return {shape_, rate_}; }
    void setParams(std::span<const double> p) override;
    double pdf(double x) const override;
    double cdf(double x) const override;
    double mean() const override { return shape_ / rate_; }
    double variance() const override { return shape_ / (rate_ * rate_); }
    double sample(Rng &rng) const override;
    bool initFromMoments(const SummaryStats &s) override;
    std::unique_ptr<Distribution> clone() const override;

    double shape() const { return shape_; }
    double rate() const { return rate_; }

  private:
    double shape_;
    double rate_;
};

/** Weibull(shape, scale). */
class Weibull : public Distribution
{
  public:
    Weibull(double shape = 1.0, double scale = 1.0)
        : shape_(shape), scale_(scale)
    {}

    std::string name() const override { return "weibull"; }
    std::size_t paramCount() const override { return 2; }
    std::vector<double> params() const override { return {shape_, scale_}; }
    void setParams(std::span<const double> p) override;
    double pdf(double x) const override;
    double cdf(double x) const override;
    double mean() const override;
    double variance() const override;
    double sample(Rng &rng) const override;
    bool initFromMoments(const SummaryStats &s) override;
    std::unique_ptr<Distribution> clone() const override;

    double shape() const { return shape_; }
    double scale() const { return scale_; }

  private:
    double shape_;
    double scale_;
};

/** Lognormal(mu, sigma) of the underlying normal. */
class LogNormal : public Distribution
{
  public:
    LogNormal(double mu = 0.0, double sigma = 1.0) : mu_(mu), sigma_(sigma) {}

    std::string name() const override { return "lognormal"; }
    std::size_t paramCount() const override { return 2; }
    std::vector<double> params() const override { return {mu_, sigma_}; }
    void setParams(std::span<const double> p) override;
    double pdf(double x) const override;
    double cdf(double x) const override;
    double mean() const override;
    double variance() const override;
    double sample(Rng &rng) const override;
    bool initFromMoments(const SummaryStats &s) override;
    std::unique_ptr<Distribution> clone() const override;

  private:
    double mu_;
    double sigma_;
};

/** Normal(mu, sigma); used for near-symmetric inter-arrival spreads. */
class Normal : public Distribution
{
  public:
    Normal(double mu = 0.0, double sigma = 1.0) : mu_(mu), sigma_(sigma) {}

    std::string name() const override { return "normal"; }
    std::size_t paramCount() const override { return 2; }
    std::vector<double> params() const override { return {mu_, sigma_}; }
    void setParams(std::span<const double> p) override;
    double pdf(double x) const override;
    double cdf(double x) const override;
    double mean() const override { return mu_; }
    double variance() const override { return sigma_ * sigma_; }
    double sample(Rng &rng) const override;
    bool initFromMoments(const SummaryStats &s) override;
    std::unique_ptr<Distribution> clone() const override;

  private:
    double mu_;
    double sigma_;
};

/** Uniform(a, b). */
class UniformDist : public Distribution
{
  public:
    UniformDist(double a = 0.0, double b = 1.0) : a_(a), b_(b) {}

    std::string name() const override { return "uniform"; }
    std::size_t paramCount() const override { return 2; }
    std::vector<double> params() const override { return {a_, b_}; }
    void setParams(std::span<const double> p) override;
    double pdf(double x) const override;
    double cdf(double x) const override;
    double mean() const override { return 0.5 * (a_ + b_); }
    double
    variance() const override
    {
        double w = b_ - a_;
        return w * w / 12.0;
    }
    double sample(Rng &rng) const override;
    bool initFromMoments(const SummaryStats &s) override;
    std::unique_ptr<Distribution> clone() const override;

  private:
    double a_;
    double b_;
};

/**
 * Pareto(shape alpha, scale xm): heavy-tailed inter-arrival model for
 * very bursty traffic (CV may be undefined for alpha <= 2).
 */
class Pareto : public Distribution
{
  public:
    Pareto(double shape = 2.5, double scale = 1.0)
        : shape_(shape), scale_(scale)
    {}

    std::string name() const override { return "pareto"; }
    std::size_t paramCount() const override { return 2; }
    std::vector<double> params() const override { return {shape_, scale_}; }
    void setParams(std::span<const double> p) override;
    double pdf(double x) const override;
    double cdf(double x) const override;
    double mean() const override;
    double variance() const override;
    double sample(Rng &rng) const override;
    bool initFromMoments(const SummaryStats &s) override;
    std::unique_ptr<Distribution> clone() const override;

    double shape() const { return shape_; }
    double scale() const { return scale_; }

  private:
    double shape_;
    double scale_;
};

/** Point mass at c (deterministic inter-arrival). */
class Deterministic : public Distribution
{
  public:
    explicit Deterministic(double c = 1.0) : c_(c) {}

    std::string name() const override { return "deterministic"; }
    std::size_t paramCount() const override { return 1; }
    std::vector<double> params() const override { return {c_}; }
    void setParams(std::span<const double> p) override;
    double pdf(double x) const override;
    double cdf(double x) const override { return x >= c_ ? 1.0 : 0.0; }
    double mean() const override { return c_; }
    double variance() const override { return 0.0; }
    double sample(Rng &) const override { return c_; }
    bool initFromMoments(const SummaryStats &s) override;
    std::unique_ptr<Distribution> clone() const override;

  private:
    double c_;
};

/** The default candidate set used by the fitter. */
std::vector<std::unique_ptr<Distribution>> standardCandidates();

/**
 * Reconstruct a distribution from its serialized (name, params) form —
 * the inverse of the report JSON's {"family", "params"} pair, used by
 * the synthetic-model loader.
 *
 * @param stages Erlang stage count k. params() deliberately exposes
 *        only the regression-free parameters (k is fixed from moments,
 *        never optimized), so the serialized form carries k separately.
 * @return nullptr when the family name is unknown or the parameter
 *         count does not match it (the caller owns the error message).
 */
std::unique_ptr<Distribution>
distributionFromName(const std::string &name,
                     std::span<const double> params, int stages = 0);

} // namespace cchar::stats

#endif // CCHAR_STATS_DISTRIBUTIONS_HH
