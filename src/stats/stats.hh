/**
 * @file
 * Umbrella header for the statistical analysis library (the SAS
 * substitute of the reproduction).
 */

#ifndef CCHAR_STATS_STATS_HH
#define CCHAR_STATS_STATS_HH

#include "distribution.hh"
#include "distributions.hh"
#include "fit.hh"
#include "rng.hh"
#include "sampling.hh"
#include "spatial.hh"
#include "special.hh"
#include "summary.hh"

#endif // CCHAR_STATS_STATS_HH
