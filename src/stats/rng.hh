/**
 * @file
 * Deterministic random number generation.
 *
 * All stochastic sampling in the project flows through Rng, and every
 * sampler is written by inverse transform / Box-Muller on top of a
 * single uniform source, so results are identical across standard
 * library implementations.
 */

#ifndef CCHAR_STATS_RNG_HH
#define CCHAR_STATS_RNG_HH

#include <cmath>
#include <cstdint>
#include <numbers>
#include <random>

namespace cchar::stats {

/** Deterministic uniform random source (mt19937_64 core). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

    /** Uniform in [0, 1). */
    double
    uniform01()
    {
        // 53-bit mantissa from the top bits of a 64-bit draw.
        return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
    }

    /** Uniform in [a, b). */
    double
    uniform(double a, double b)
    {
        return a + (b - a) * uniform01();
    }

    /** Uniform integer in [0, n). */
    std::uint64_t
    below(std::uint64_t n)
    {
        // Rejection-free modulo is fine for our n << 2^64 use cases.
        return n ? engine_() % n : 0;
    }

    /** Exponential with the given rate (inverse transform). */
    double
    exponential(double rate)
    {
        double u = uniform01();
        // Guard log(0).
        if (u >= 1.0)
            u = 0x1.fffffffffffffp-1;
        return -std::log1p(-u) / rate;
    }

    /** Standard normal via Box-Muller. */
    double
    normal01()
    {
        if (haveSpare_) {
            haveSpare_ = false;
            return spare_;
        }
        double u1 = uniform01();
        double u2 = uniform01();
        if (u1 <= 0.0)
            u1 = 0x1.0p-53;
        double r = std::sqrt(-2.0 * std::log(u1));
        double theta = 2.0 * std::numbers::pi * u2;
        spare_ = r * std::sin(theta);
        haveSpare_ = true;
        return r * std::cos(theta);
    }

    double normal(double mu, double sigma) { return mu + sigma * normal01(); }

    /** Bernoulli trial. */
    bool chance(double p) { return uniform01() < p; }

    std::uint64_t raw() { return engine_(); }

  private:
    std::mt19937_64 engine_;
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace cchar::stats

#endif // CCHAR_STATS_RNG_HH
