/**
 * @file
 * Special functions needed by the distribution library: regularized
 * incomplete gamma, and the standard normal CDF.
 */

#ifndef CCHAR_STATS_SPECIAL_HH
#define CCHAR_STATS_SPECIAL_HH

namespace cchar::stats {

/**
 * Regularized lower incomplete gamma P(a, x) = gamma(a, x) / Gamma(a).
 * Series expansion for x < a + 1, continued fraction otherwise
 * (Numerical-Recipes-style algorithm).
 */
double regularizedGammaP(double a, double x);

/**
 * log |Gamma(x)|, thread-safe. glibc's lgamma() writes the global
 * `signgam`, which is a data race when sweep workers fit
 * distributions concurrently; this wrapper uses the reentrant
 * lgamma_r where available.
 */
double logGamma(double x);

/** Standard normal CDF Phi(z). */
double normalCdf(double z);

} // namespace cchar::stats

#endif // CCHAR_STATS_SPECIAL_HH
