#include "special.hh"

#include <cmath>
#include <limits>
#include <math.h>

namespace cchar::stats {

namespace {

constexpr int maxIterations = 500;
constexpr double epsilon = 3.0e-12;

double
gammaPSeries(double a, double x)
{
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int i = 0; i < maxIterations; ++i) {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if (std::fabs(del) < std::fabs(sum) * epsilon)
            break;
    }
    return sum * std::exp(-x + a * std::log(x) - logGamma(a));
}

double
gammaQContinuedFraction(double a, double x)
{
    const double fpmin = std::numeric_limits<double>::min() / epsilon;
    double b = x + 1.0 - a;
    double c = 1.0 / fpmin;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i <= maxIterations; ++i) {
        double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
        b += 2.0;
        d = an * d + b;
        if (std::fabs(d) < fpmin)
            d = fpmin;
        c = b + an / c;
        if (std::fabs(c) < fpmin)
            c = fpmin;
        d = 1.0 / d;
        double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < epsilon)
            break;
    }
    return std::exp(-x + a * std::log(x) - logGamma(a)) * h;
}

} // namespace

double
logGamma(double x)
{
#if defined(__GLIBC__) || defined(_GNU_SOURCE) || defined(__USE_MISC)
    int sign = 0;
    return ::lgamma_r(x, &sign);
#else
    return std::lgamma(x);
#endif
}

double
regularizedGammaP(double a, double x)
{
    if (x <= 0.0 || a <= 0.0)
        return 0.0;
    if (x < a + 1.0)
        return gammaPSeries(a, x);
    return 1.0 - gammaQContinuedFraction(a, x);
}

double
normalCdf(double z)
{
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

} // namespace cchar::stats
