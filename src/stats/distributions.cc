#include "distributions.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "special.hh"

namespace cchar::stats {

namespace {

constexpr double tinyRate = 1e-9;
constexpr double tinyProb = 1e-6;

double
clampPositive(double x, double lo = tinyRate)
{
    return x > lo ? x : lo;
}

} // namespace

std::string
Distribution::describe() const
{
    std::ostringstream os;
    os << name() << "(";
    auto ps = params();
    for (std::size_t i = 0; i < ps.size(); ++i) {
        if (i)
            os << ", ";
        os << ps[i];
    }
    os << ")";
    return os.str();
}

// --------------------------------------------------------------------
// Exponential

void
Exponential::setParams(std::span<const double> p)
{
    rate_ = clampPositive(p[0]);
}

double
Exponential::pdf(double x) const
{
    return x < 0.0 ? 0.0 : rate_ * std::exp(-rate_ * x);
}

double
Exponential::cdf(double x) const
{
    return x < 0.0 ? 0.0 : 1.0 - std::exp(-rate_ * x);
}

double
Exponential::sample(Rng &rng) const
{
    return rng.exponential(rate_);
}

bool
Exponential::initFromMoments(const SummaryStats &s)
{
    if (s.mean <= 0.0)
        return false;
    rate_ = 1.0 / s.mean;
    return true;
}

std::unique_ptr<Distribution>
Exponential::clone() const
{
    return std::make_unique<Exponential>(*this);
}

// --------------------------------------------------------------------
// ShiftedExponential

void
ShiftedExponential::setParams(std::span<const double> p)
{
    shift_ = std::max(p[0], 0.0);
    rate_ = clampPositive(p[1]);
}

double
ShiftedExponential::pdf(double x) const
{
    return x < shift_ ? 0.0 : rate_ * std::exp(-rate_ * (x - shift_));
}

double
ShiftedExponential::cdf(double x) const
{
    return x < shift_ ? 0.0 : 1.0 - std::exp(-rate_ * (x - shift_));
}

double
ShiftedExponential::sample(Rng &rng) const
{
    return shift_ + rng.exponential(rate_);
}

bool
ShiftedExponential::initFromMoments(const SummaryStats &s)
{
    // Two-moment match: stddev fixes the exponential part, the
    // remainder of the mean is the displacement. Valid when CV <= 1.
    if (s.mean <= 0.0 || s.stddev <= 0.0 || s.stddev > s.mean)
        return false;
    rate_ = 1.0 / s.stddev;
    shift_ = s.mean - s.stddev;
    return true;
}

std::unique_ptr<Distribution>
ShiftedExponential::clone() const
{
    return std::make_unique<ShiftedExponential>(*this);
}

// --------------------------------------------------------------------
// HyperExponential2

void
HyperExponential2::setParams(std::span<const double> p)
{
    p_ = std::clamp(p[0], tinyProb, 1.0 - tinyProb);
    rate1_ = clampPositive(p[1]);
    rate2_ = clampPositive(p[2]);
}

double
HyperExponential2::pdf(double x) const
{
    if (x < 0.0)
        return 0.0;
    return p_ * rate1_ * std::exp(-rate1_ * x) +
           (1.0 - p_) * rate2_ * std::exp(-rate2_ * x);
}

double
HyperExponential2::cdf(double x) const
{
    if (x < 0.0)
        return 0.0;
    return 1.0 - p_ * std::exp(-rate1_ * x) -
           (1.0 - p_) * std::exp(-rate2_ * x);
}

double
HyperExponential2::mean() const
{
    return p_ / rate1_ + (1.0 - p_) / rate2_;
}

double
HyperExponential2::variance() const
{
    double m = mean();
    double m2 = 2.0 * (p_ / (rate1_ * rate1_) +
                       (1.0 - p_) / (rate2_ * rate2_));
    return m2 - m * m;
}

double
HyperExponential2::sample(Rng &rng) const
{
    return rng.chance(p_) ? rng.exponential(rate1_)
                          : rng.exponential(rate2_);
}

bool
HyperExponential2::initFromMoments(const SummaryStats &s)
{
    // Balanced-means two-moment fit; requires CV > 1.
    if (s.mean <= 0.0 || s.cv <= 1.0)
        return false;
    double cv2 = s.cv * s.cv;
    double root = std::sqrt((cv2 - 1.0) / (cv2 + 1.0));
    p_ = 0.5 * (1.0 + root);
    rate1_ = 2.0 * p_ / s.mean;
    rate2_ = 2.0 * (1.0 - p_) / s.mean;
    return true;
}

std::unique_ptr<Distribution>
HyperExponential2::clone() const
{
    return std::make_unique<HyperExponential2>(*this);
}

// --------------------------------------------------------------------
// Erlang

void
Erlang::setParams(std::span<const double> p)
{
    rate_ = clampPositive(p[0]);
}

double
Erlang::pdf(double x) const
{
    if (x < 0.0)
        return 0.0;
    double k = static_cast<double>(k_);
    return std::exp(k * std::log(rate_) + (k - 1.0) * std::log(x) -
                    rate_ * x - logGamma(k));
}

double
Erlang::cdf(double x) const
{
    if (x <= 0.0)
        return 0.0;
    return regularizedGammaP(static_cast<double>(k_), rate_ * x);
}

double
Erlang::sample(Rng &rng) const
{
    double sum = 0.0;
    for (int i = 0; i < k_; ++i)
        sum += rng.exponential(rate_);
    return sum;
}

bool
Erlang::initFromMoments(const SummaryStats &s)
{
    // The stage count is structural: k ~= 1/CV^2; requires CV <= 1.
    if (s.mean <= 0.0 || s.cv <= 0.0 || s.cv > 1.0)
        return false;
    double k = 1.0 / (s.cv * s.cv);
    k_ = std::clamp(static_cast<int>(std::lround(k)), 1, 50);
    rate_ = static_cast<double>(k_) / s.mean;
    return true;
}

std::unique_ptr<Distribution>
Erlang::clone() const
{
    return std::make_unique<Erlang>(*this);
}

std::string
Erlang::describe() const
{
    std::ostringstream os;
    os << "erlang(k=" << k_ << ", rate=" << rate_ << ")";
    return os.str();
}

// --------------------------------------------------------------------
// GammaDist

void
GammaDist::setParams(std::span<const double> p)
{
    shape_ = clampPositive(p[0], 1e-3);
    rate_ = clampPositive(p[1]);
}

double
GammaDist::pdf(double x) const
{
    if (x <= 0.0)
        return 0.0;
    return std::exp(shape_ * std::log(rate_) +
                    (shape_ - 1.0) * std::log(x) - rate_ * x -
                    logGamma(shape_));
}

double
GammaDist::cdf(double x) const
{
    if (x <= 0.0)
        return 0.0;
    return regularizedGammaP(shape_, rate_ * x);
}

double
GammaDist::sample(Rng &rng) const
{
    // Marsaglia-Tsang; for shape < 1, boost with U^{1/shape}.
    double a = shape_;
    double boost = 1.0;
    if (a < 1.0) {
        boost = std::pow(rng.uniform01(), 1.0 / a);
        a += 1.0;
    }
    double d = a - 1.0 / 3.0;
    double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
        double x, v;
        do {
            x = rng.normal01();
            v = 1.0 + c * x;
        } while (v <= 0.0);
        v = v * v * v;
        double u = rng.uniform01();
        if (u < 1.0 - 0.0331 * x * x * x * x)
            return boost * d * v / rate_;
        if (u > 0.0 &&
            std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
            return boost * d * v / rate_;
    }
}

bool
GammaDist::initFromMoments(const SummaryStats &s)
{
    if (s.mean <= 0.0 || s.variance <= 0.0)
        return false;
    shape_ = s.mean * s.mean / s.variance;
    rate_ = s.mean / s.variance;
    return true;
}

std::unique_ptr<Distribution>
GammaDist::clone() const
{
    return std::make_unique<GammaDist>(*this);
}

// --------------------------------------------------------------------
// Weibull

void
Weibull::setParams(std::span<const double> p)
{
    shape_ = clampPositive(p[0], 1e-3);
    scale_ = clampPositive(p[1]);
}

double
Weibull::pdf(double x) const
{
    if (x <= 0.0)
        return 0.0;
    double z = x / scale_;
    return (shape_ / scale_) * std::pow(z, shape_ - 1.0) *
           std::exp(-std::pow(z, shape_));
}

double
Weibull::cdf(double x) const
{
    if (x <= 0.0)
        return 0.0;
    return 1.0 - std::exp(-std::pow(x / scale_, shape_));
}

double
Weibull::mean() const
{
    return scale_ * std::exp(logGamma(1.0 + 1.0 / shape_));
}

double
Weibull::variance() const
{
    double g1 = std::exp(logGamma(1.0 + 1.0 / shape_));
    double g2 = std::exp(logGamma(1.0 + 2.0 / shape_));
    return scale_ * scale_ * (g2 - g1 * g1);
}

double
Weibull::sample(Rng &rng) const
{
    double u = rng.uniform01();
    if (u >= 1.0)
        u = 0x1.fffffffffffffp-1;
    return scale_ * std::pow(-std::log1p(-u), 1.0 / shape_);
}

bool
Weibull::initFromMoments(const SummaryStats &s)
{
    if (s.mean <= 0.0 || s.cv <= 0.0)
        return false;
    // Solve CV^2(k) = Gamma(1+2/k)/Gamma(1+1/k)^2 - 1 by bisection;
    // CV is monotonically decreasing in k.
    double target = s.cv * s.cv;
    auto cv2 = [](double k) {
        double g1 = logGamma(1.0 + 1.0 / k);
        double g2 = logGamma(1.0 + 2.0 / k);
        return std::exp(g2 - 2.0 * g1) - 1.0;
    };
    double lo = 0.05, hi = 80.0;
    if (target >= cv2(lo))
        shape_ = lo;
    else if (target <= cv2(hi))
        shape_ = hi;
    else {
        for (int i = 0; i < 200; ++i) {
            double mid = 0.5 * (lo + hi);
            if (cv2(mid) > target)
                lo = mid;
            else
                hi = mid;
        }
        shape_ = 0.5 * (lo + hi);
    }
    scale_ = s.mean / std::exp(logGamma(1.0 + 1.0 / shape_));
    return true;
}

std::unique_ptr<Distribution>
Weibull::clone() const
{
    return std::make_unique<Weibull>(*this);
}

// --------------------------------------------------------------------
// LogNormal

void
LogNormal::setParams(std::span<const double> p)
{
    mu_ = p[0];
    sigma_ = clampPositive(p[1], 1e-6);
}

double
LogNormal::pdf(double x) const
{
    if (x <= 0.0)
        return 0.0;
    double z = (std::log(x) - mu_) / sigma_;
    return std::exp(-0.5 * z * z) /
           (x * sigma_ * std::sqrt(2.0 * 3.14159265358979323846));
}

double
LogNormal::cdf(double x) const
{
    if (x <= 0.0)
        return 0.0;
    return normalCdf((std::log(x) - mu_) / sigma_);
}

double
LogNormal::mean() const
{
    return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

double
LogNormal::variance() const
{
    double s2 = sigma_ * sigma_;
    return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_ + s2);
}

double
LogNormal::sample(Rng &rng) const
{
    return std::exp(rng.normal(mu_, sigma_));
}

bool
LogNormal::initFromMoments(const SummaryStats &s)
{
    if (s.mean <= 0.0)
        return false;
    double cv2 = s.cv * s.cv;
    double s2 = std::log(1.0 + cv2);
    sigma_ = std::sqrt(std::max(s2, 1e-12));
    mu_ = std::log(s.mean) - 0.5 * s2;
    return true;
}

std::unique_ptr<Distribution>
LogNormal::clone() const
{
    return std::make_unique<LogNormal>(*this);
}

// --------------------------------------------------------------------
// Normal

void
Normal::setParams(std::span<const double> p)
{
    mu_ = p[0];
    sigma_ = clampPositive(p[1], 1e-9);
}

double
Normal::pdf(double x) const
{
    double z = (x - mu_) / sigma_;
    return std::exp(-0.5 * z * z) /
           (sigma_ * std::sqrt(2.0 * 3.14159265358979323846));
}

double
Normal::cdf(double x) const
{
    return normalCdf((x - mu_) / sigma_);
}

double
Normal::sample(Rng &rng) const
{
    return rng.normal(mu_, sigma_);
}

bool
Normal::initFromMoments(const SummaryStats &s)
{
    if (s.count == 0)
        return false;
    mu_ = s.mean;
    sigma_ = s.stddev > 0.0 ? s.stddev : 1e-6;
    return true;
}

std::unique_ptr<Distribution>
Normal::clone() const
{
    return std::make_unique<Normal>(*this);
}

// --------------------------------------------------------------------
// UniformDist

void
UniformDist::setParams(std::span<const double> p)
{
    a_ = p[0];
    b_ = p[1];
    if (b_ <= a_)
        b_ = a_ + 1e-9;
}

double
UniformDist::pdf(double x) const
{
    return (x < a_ || x > b_) ? 0.0 : 1.0 / (b_ - a_);
}

double
UniformDist::cdf(double x) const
{
    if (x <= a_)
        return 0.0;
    if (x >= b_)
        return 1.0;
    return (x - a_) / (b_ - a_);
}

double
UniformDist::sample(Rng &rng) const
{
    return rng.uniform(a_, b_);
}

bool
UniformDist::initFromMoments(const SummaryStats &s)
{
    if (s.count == 0 || s.stddev <= 0.0)
        return false;
    double half = std::sqrt(3.0) * s.stddev;
    a_ = std::max(s.mean - half, 0.0);
    b_ = s.mean + half;
    return true;
}

std::unique_ptr<Distribution>
UniformDist::clone() const
{
    return std::make_unique<UniformDist>(*this);
}

// --------------------------------------------------------------------
// Pareto

void
Pareto::setParams(std::span<const double> p)
{
    shape_ = clampPositive(p[0], 1e-3);
    scale_ = clampPositive(p[1]);
}

double
Pareto::pdf(double x) const
{
    if (x < scale_)
        return 0.0;
    return shape_ * std::pow(scale_, shape_) /
           std::pow(x, shape_ + 1.0);
}

double
Pareto::cdf(double x) const
{
    if (x < scale_)
        return 0.0;
    return 1.0 - std::pow(scale_ / x, shape_);
}

double
Pareto::mean() const
{
    if (shape_ <= 1.0)
        return std::numeric_limits<double>::infinity();
    return shape_ * scale_ / (shape_ - 1.0);
}

double
Pareto::variance() const
{
    if (shape_ <= 2.0)
        return std::numeric_limits<double>::infinity();
    double m = shape_ - 1.0;
    return scale_ * scale_ * shape_ / (m * m * (shape_ - 2.0));
}

double
Pareto::sample(Rng &rng) const
{
    double u = rng.uniform01();
    if (u >= 1.0)
        u = 0x1.fffffffffffffp-1;
    return scale_ / std::pow(1.0 - u, 1.0 / shape_);
}

bool
Pareto::initFromMoments(const SummaryStats &s)
{
    // Two-moment inversion: CV^2 = 1 / (alpha (alpha - 2)), hence
    // alpha = 1 + sqrt(1 + 1/CV^2), then xm from the mean.
    if (s.mean <= 0.0 || s.cv <= 0.0 || s.min <= 0.0)
        return false;
    double inv = 1.0 / (s.cv * s.cv);
    shape_ = 1.0 + std::sqrt(1.0 + inv);
    scale_ = s.mean * (shape_ - 1.0) / shape_;
    return scale_ > 0.0;
}

std::unique_ptr<Distribution>
Pareto::clone() const
{
    return std::make_unique<Pareto>(*this);
}

// --------------------------------------------------------------------
// Deterministic

void
Deterministic::setParams(std::span<const double> p)
{
    c_ = std::max(p[0], 0.0);
}

double
Deterministic::pdf(double x) const
{
    // Density is a Dirac impulse; report a tall narrow box so plots
    // and likelihood-free comparisons remain finite.
    const double eps = 1e-9;
    return (x >= c_ - eps && x <= c_ + eps) ? 0.5 / eps : 0.0;
}

bool
Deterministic::initFromMoments(const SummaryStats &s)
{
    if (s.count == 0)
        return false;
    c_ = s.mean;
    return true;
}

std::unique_ptr<Distribution>
Deterministic::clone() const
{
    return std::make_unique<Deterministic>(*this);
}

// --------------------------------------------------------------------

std::vector<std::unique_ptr<Distribution>>
standardCandidates()
{
    std::vector<std::unique_ptr<Distribution>> v;
    v.push_back(std::make_unique<Exponential>());
    v.push_back(std::make_unique<ShiftedExponential>());
    v.push_back(std::make_unique<HyperExponential2>());
    v.push_back(std::make_unique<Erlang>());
    v.push_back(std::make_unique<GammaDist>());
    v.push_back(std::make_unique<Weibull>());
    v.push_back(std::make_unique<LogNormal>());
    v.push_back(std::make_unique<Normal>());
    v.push_back(std::make_unique<UniformDist>());
    v.push_back(std::make_unique<Pareto>());
    v.push_back(std::make_unique<Deterministic>());
    return v;
}

std::unique_ptr<Distribution>
distributionFromName(const std::string &name,
                     std::span<const double> params, int stages)
{
    std::unique_ptr<Distribution> dist;
    if (name == "exponential") {
        dist = std::make_unique<Exponential>();
    } else if (name == "shifted-exponential") {
        dist = std::make_unique<ShiftedExponential>();
    } else if (name == "hyperexponential-2") {
        dist = std::make_unique<HyperExponential2>();
    } else if (name == "erlang") {
        if (stages < 1)
            return nullptr;
        dist = std::make_unique<Erlang>(stages);
    } else if (name == "gamma") {
        dist = std::make_unique<GammaDist>();
    } else if (name == "weibull") {
        dist = std::make_unique<Weibull>();
    } else if (name == "lognormal") {
        dist = std::make_unique<LogNormal>();
    } else if (name == "normal") {
        dist = std::make_unique<Normal>();
    } else if (name == "uniform") {
        dist = std::make_unique<UniformDist>();
    } else if (name == "pareto") {
        dist = std::make_unique<Pareto>();
    } else if (name == "deterministic") {
        dist = std::make_unique<Deterministic>();
    } else {
        return nullptr;
    }
    if (params.size() != dist->paramCount())
        return nullptr;
    dist->setParams(params);
    return dist;
}

} // namespace cchar::stats
