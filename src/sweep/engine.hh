/**
 * @file
 * Deterministic parallel sweep engine.
 *
 * Executes every job of a SweepSpec matrix — each one a complete,
 * isolated characterization run — across a pool of worker threads,
 * and merges the results in canonical job order. The guarantee the
 * rest of the tool chain builds on:
 *
 *     the aggregate report is byte-identical for any worker count.
 *
 * Three properties carry it:
 *
 *  1. Job isolation. Every mutable ambient hook the simulation layers
 *     consult — the obs sinks (obs/obs.hh) and the diagnostic sink
 *     (core/status.hh) — is thread-local, and each job installs its
 *     own instances for the duration of the run. A job's simulator,
 *     machine, injector and logs are all locals of its runner.
 *  2. Deterministic jobs. A simulation result is a pure function of
 *     the job parameters; nothing wall-clock-derived enters a job
 *     outcome (the one wall-derived gauge the kernel publishes is
 *     zeroed in the merged registry, see engine.cc).
 *  3. Ordered merge. Workers write outcomes into a pre-sized slot
 *     array indexed by job index; merging walks that array in index
 *     order after all workers join. Scheduling affects only who
 *     computed a slot, never what it holds or when it is folded.
 */

#ifndef CCHAR_SWEEP_ENGINE_HH
#define CCHAR_SWEEP_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "obs/registry.hh"
#include "spec.hh"

namespace cchar::sweep {

/** Deterministic result of one sweep job. */
struct JobOutcome
{
    SweepJob job;
    /** "ok" or a StatusCode tag ("sim-error", "watchdog-trip"...). */
    std::string status = "ok";
    /** Failure detail when status != "ok". */
    std::string error;
    /** Application self-verification result. */
    bool verified = false;

    // Summary attributes (sim-time only; all deterministic).
    std::uint64_t messages = 0;
    double totalBytes = 0.0;
    double latencyMean = 0.0;
    double latencyMax = 0.0;
    double contentionMean = 0.0;
    double makespan = 0.0;
    double avgChannelUtilization = 0.0;
    double maxChannelUtilization = 0.0;
    /** Fitted inter-arrival family of the aggregate ("-" if none). */
    std::string temporalFit = "-";
    std::string spatialPattern = "-";

    // Fault accounting (zero on healthy runs).
    std::uint64_t droppedPackets = 0;
    std::uint64_t corruptedPackets = 0;
    std::uint64_t linkDrops = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t deliveryFailures = 0;
    std::uint64_t reroutedPackets = 0;
    std::uint64_t rerouteExtraHops = 0;

    // Diagnostics emitted by this job's thread-local sink.
    std::uint64_t diagWarnings = 0;
    std::uint64_t diagErrors = 0;

    // Desynchronization aggregates (all zero unless the job ran with
    // rank-activity tracking; columns are always present so the report
    // schema does not depend on the flag).
    double skewMaxUs = 0.0;
    double idleFractionMean = 0.0;
    std::uint64_t idleWaves = 0;
    double waveSpeedMax = 0.0;

    // Network-weather aggregates (all zero unless the job ran with
    // link-stats tracking; same always-present-columns contract).
    double maxLinkUtil = 0.0;
    double linkGini = 0.0;
    std::uint64_t hotspotCount = 0;
    double congestionOnsetLoad = 0.0;

    // Synthetic-replay fidelity (all zero unless the job ran with the
    // synthetic flag; same always-present-columns contract). The job's
    // fitted model is replayed through the network and compared with
    // the original run: signed relative latency error plus the
    // per-attribute KS distances of the re-characterization.
    double synthLatencyErr = 0.0;
    double synthTemporalKs = 0.0;
    double synthSpatialKs = 0.0;
    double synthVolumeKs = 0.0;

    // Orchestration accounting (always-present columns). attempts is
    // 0 for a job an interrupted run never started.
    int attempts = 1;
    /** Failed after the retry budget; see the "degraded" section. */
    bool quarantined = false;

    /**
     * Transient marker, never serialized: the run was stopped through
     * the watchdog's external cancel flag (deadline or shutdown) and
     * the caller must reclassify status by the cancellation kind.
     */
    bool cancelled = false;

    bool ok() const { return status == "ok"; }
};

/**
 * Wall-clock view of one worker thread: fraction of the sweep's wall
 * time it spent inside jobs, and how many jobs it drained. Scheduling-
 * dependent by nature, so it never enters the serialized report — the
 * matching sweep.worker.* gauges are zeroed after the merge, and the
 * real values only reach stderr (see cmdSweep).
 */
struct WorkerStat
{
    double busyFraction = 0.0;
    std::uint64_t jobsCompleted = 0;
};

/** Aggregate result of a sweep run, merged in job order. */
struct SweepResult
{
    std::vector<JobOutcome> outcomes;
    /** Per-job registries folded together (see MetricsRegistry::mergeFrom). */
    std::unique_ptr<obs::MetricsRegistry> metrics;
    /** One entry per worker of the pool that ran the sweep. */
    std::vector<WorkerStat> workerStats;

    /** Jobs prefilled from a --resume journal (wall-clock view: the
     *  value depends on where the previous run stopped, so it only
     *  reaches stderr and the zeroed sweep.resumed_jobs gauge). */
    std::size_t resumedJobs = 0;
    /** A shutdown signal cut the run short; at least one job carries
     *  status "interrupted" and the journal (if any) is resumable. */
    bool interrupted = false;

    std::size_t failures() const;
    /** Sum of (attempts - 1) over all run jobs (deterministic). */
    std::size_t retries() const;
    /** Jobs that exhausted the retry budget and were quarantined. */
    std::size_t quarantinedCount() const;
    /** Jobs an interrupted run never completed. */
    std::size_t interruptedCount() const;

    /** Deterministic JSON report (jobs array + merged metrics). */
    void writeJson(std::ostream &os) const;

    /** One CSV row per job (RFC 4180 quoting). */
    void writeCsv(std::ostream &os) const;
};

/** Retry/deadline policy of a sweep run (see policy.hh helpers). */
struct JobPolicy
{
    /** Wall-clock per-job deadline in seconds; 0 disables it. */
    double jobTimeoutSec = 0.0;
    /** Extra attempts granted to transiently-failing jobs. */
    int maxRetries = 0;
    /** Base retry backoff; doubles per attempt (capped). */
    double backoffMs = 100.0;
};

/** Orchestration options of SweepEngine::run. */
struct SweepRunOptions
{
    /** Worker threads (clamped to [1, jobs]). */
    int workers = 1;
    /** Emit a live done/total + ETA line on stderr. */
    bool progress = false;
    JobPolicy policy{};
    /** Write a job journal here ("" = none). Fresh runs truncate. */
    std::string journalPath{};
    /** Resume from this journal ("" = fresh run). Journaled jobs are
     *  skipped and their recorded results merged; the same file keeps
     *  receiving the newly completed jobs. */
    std::string resumePath{};
    /**
     * Shutdown signal counter (owned by the CLI's signal handlers;
     * may be null). 1 = stop claiming new jobs and drain in-flight
     * ones; >= 2 = also cancel in-flight jobs at the next watchdog
     * tick. Jobs cut short are marked "interrupted" and NOT
     * journaled, so a resumed run reruns them.
     */
    const std::atomic<int> *shutdown = nullptr;
};

/** Runs a sweep matrix over a worker pool. */
class SweepEngine
{
  public:
    explicit SweepEngine(SweepSpec spec) : spec_(std::move(spec)) {}

    /**
     * Expand the matrix and run every job with full orchestration:
     * resume prefill, durable journaling, per-job wall-clock
     * deadlines, transient-failure retry with exponential backoff,
     * quarantine of persistent failures, and graceful shutdown.
     *
     * @throws core::CCharError(UsageError) for an invalid spec or a
     *         journal that does not match it; CCharError(IoError/
     *         ParseError) for an unreadable or damaged journal.
     *         Individual job failures never throw; they are recorded
     *         in the corresponding outcome.
     */
    SweepResult run(const SweepRunOptions &opts);

    /** Compatibility shim for the pre-orchestration call sites. */
    SweepResult
    run(int workers, bool progress = false)
    {
        SweepRunOptions opts;
        opts.workers = workers;
        opts.progress = progress;
        return run(opts);
    }

    /**
     * Run one job in the calling thread (used by workers and tests).
     * When `cancel` is non-null a watchdog is armed on every
     * simulation of the job and trips at its next periodic tick once
     * the flag turns true; the outcome then carries cancelled=true
     * for the caller to classify (deadline vs shutdown).
     */
    static JobOutcome runJob(const SweepJob &job,
                             obs::MetricsRegistry &registry,
                             const std::atomic<bool> *cancel = nullptr);

  private:
    SweepSpec spec_;
};

} // namespace cchar::sweep

#endif // CCHAR_SWEEP_ENGINE_HH
