/**
 * @file
 * Sweep specification: the experiment matrix of a `cchar sweep` run.
 *
 * The paper's tables are grids — every application crossed with every
 * machine size — and reproducing one means running the whole cross
 * product. A SweepSpec names the points of that grid:
 *
 *   apps        application names (see apps/registry.hh)
 *   procs       processor counts; each becomes a near-square 2-D mesh
 *   loads       network load factors; factor L scales flitTime and
 *               routerDelay by L, emulating a network that is L times
 *               slower relative to the computation (higher effective
 *               offered load). 1.0 is the baseline network.
 *   seeds       fault-RNG seeds (one run per seed; 0 keeps the fault
 *               plan's own seed, and without a fault plan the seed is
 *               recorded but has no effect)
 *   fault_plans fault-plan specs in the fault/plan.hh grammar
 *               ("" or "none" = healthy network)
 *
 * expand() produces the jobs in a single canonical order — apps
 * outermost, fault plans innermost — so the job index, and therefore
 * every merged report, is a pure function of the spec, never of
 * worker scheduling.
 *
 * Specs come from CLI lists (parseList/parseSeeds) or a JSON document:
 *
 *   {"apps": ["is", "sor"], "procs": [4, 16],
 *    "loads": [1.0, 2.0], "seeds": [1, 2],
 *    "fault_plans": ["none", "drop:p=0.001"],
 *    "torus": false, "vcs": 1, "rank_activity": false,
 *    "link_stats": false, "synthetic": false}
 *
 * (restricted schema, same no-external-parser discipline as the fault
 * plan JSON form).
 */

#ifndef CCHAR_SWEEP_SPEC_HH
#define CCHAR_SWEEP_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

namespace cchar::sweep {

/** One point of the sweep matrix, in canonical order. */
struct SweepJob
{
    /** Position in the canonical expansion (also the merge order). */
    std::size_t index = 0;
    std::string app;
    int procs = 0;
    /** Near-square mesh factorization of procs. */
    int width = 0;
    int height = 0;
    bool torus = false;
    int vcs = 1;
    double load = 1.0;
    std::uint64_t seed = 0;
    /** Fault-plan spec ("" = healthy). */
    std::string faultPlan;
    /** Track per-rank activity and report desync aggregates. */
    bool rankActivity = false;
    /** Track per-link stats and report network-weather aggregates. */
    bool linkStats = false;
    /**
     * After characterizing, run the fitted synthetic model back
     * through the network and record its fidelity (latency error and
     * per-attribute KS) alongside the job's metrics.
     */
    bool synthetic = false;

    /** Compact human-readable job label for logs and reports. */
    std::string label() const;
};

/** The sweep matrix. */
struct SweepSpec
{
    std::vector<std::string> apps;
    std::vector<int> procs;
    std::vector<double> loads{1.0};
    std::vector<std::uint64_t> seeds{0};
    std::vector<std::string> faultPlans{""};
    bool torus = false;
    int vcs = 1;
    /** Run every job with rank-activity tracking (--rank-activity). */
    bool rankActivity = false;
    /** Run every job with link-stats tracking (--link-stats). */
    bool linkStats = false;
    /** Run every job's synthetic-replay validation (--synthetic). */
    bool synthetic = false;

    /**
     * Cross the dimensions into the canonical job list.
     * @throws core::CCharError(UsageError) on an empty or invalid
     *         dimension (unknown app, non-factorable procs...).
     */
    std::vector<SweepJob> expand() const;

    /**
     * Parse the JSON spec form.
     * @throws core::CCharError(ParseError) on malformed input.
     */
    static SweepSpec fromJson(const std::string &text);

    /** Load fromJson from a file (CCharError(IoError) if unreadable). */
    static SweepSpec fromJsonFile(const std::string &path);
};

/** Split a comma-separated CLI list ("is,sor" -> {"is","sor"}). */
std::vector<std::string> parseList(const std::string &text);

/**
 * Parse a seed list: comma-separated values, each either a number or
 * an inclusive range "A..B" ("1,4..6" -> {1,4,5,6}).
 * @throws core::CCharError(UsageError) on malformed input.
 */
std::vector<std::uint64_t> parseSeeds(const std::string &text);

/**
 * Near-square factorization of n: the largest h <= sqrt(n) dividing
 * n, paired with w = n/h.
 * @throws core::CCharError(UsageError) if n < 1.
 */
void meshFactor(int n, int &width, int &height);

} // namespace cchar::sweep

#endif // CCHAR_SWEEP_SPEC_HH
