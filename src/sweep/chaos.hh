/**
 * @file
 * Deterministic chaos harness: seeded fault-plan generation, outcome
 * classification, and delta-debugging shrink (see DESIGN §6g).
 *
 * A chaos campaign asks the question the hand-written fault plans
 * cannot: "which combinations of faults does the stack NOT degrade
 * gracefully under?". The harness draws random — but seed-
 * reproducible — fault plans from the plan grammar, runs every
 * (application x plan) job through the sweep engine, classifies each
 * outcome, and reduces every failing plan to a minimal reproducing
 * plan by greedy clause removal followed by fault-window narrowing.
 *
 * Everything downstream of the seed is deterministic: the generated
 * plans, the campaign outcomes (the sweep engine's byte-identical
 * merge), and the shrink traces (run sequentially in job order). The
 * same seed therefore produces the same report for any worker count —
 * a failing plan found on a 64-core CI box replays on a laptop.
 */

#ifndef CCHAR_SWEEP_CHAOS_HH
#define CCHAR_SWEEP_CHAOS_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fault/plan.hh"

namespace cchar::sweep {

/** Parameters of a chaos campaign. */
struct ChaosOptions
{
    /** Master seed of the plan generator. */
    std::uint64_t seed = 1;
    /** Fault plans to generate. */
    int plans = 8;
    /** Applications to cross the plans with (mp apps recover via the
     *  retry protocol; ccnuma apps probe raw degradation). */
    std::vector<std::string> apps{"3d-fft", "mg"};
    /** Processor count (factored into a near-square mesh). */
    int procs = 16;
    bool torus = false;
    int vcs = 1;
    /** Maximum fault clauses per generated plan. */
    int maxFaults = 3;
    /** Horizon used for bounded fault windows (us). */
    double horizonUs = 2000.0;
    /** Maximum extra runs spent shrinking one failing plan. */
    int shrinkBudget = 48;
};

/**
 * A generated fault plan in structured form. `render()` produces the
 * plan-grammar string that round-trips through FaultPlan::parse, so a
 * reported (shrunk) plan can be replayed verbatim with --fault-plan.
 */
struct ChaosPlan
{
    std::uint64_t planSeed = 1;
    fault::RetryConfig retry{};
    std::vector<fault::FaultSpec> faults;

    std::string render() const;
};

/** One classified (application x plan) chaos job. */
struct ChaosJobResult
{
    std::size_t index = 0;
    std::string app;
    /** The plan as run (render() of the generated plan). */
    std::string plan;
    /** recovered / delivery-failure / watchdog / deadline / deadlock
     *  or the raw status tag for anything else. */
    std::string classification;
    /** Raw sweep status ("ok", "sim-error", ...). */
    std::string status;
    std::string error;
    std::uint64_t deliveryFailures = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t reroutedPackets = 0;
    std::uint64_t linkDrops = 0;
    /** Minimal reproducing plan (empty for recovered jobs). */
    std::string shrunkPlan;
    /** Fault clauses surviving the shrink. */
    std::size_t shrunkFaults = 0;
    /** Extra simulation runs the shrink spent. */
    int shrinkRuns = 0;

    bool failing() const { return classification != "recovered"; }
};

/** Aggregate result of a chaos campaign. */
struct ChaosResult
{
    std::uint64_t seed = 0;
    std::vector<ChaosJobResult> jobs;

    std::size_t failingCount() const;

    /** Jobs with the given classification. */
    std::size_t count(const std::string &cls) const;

    /** Human-readable campaign summary. */
    void print(std::ostream &os) const;

    /** Deterministic JSON report. */
    void writeJson(std::ostream &os) const;
};

/**
 * Map a sweep outcome to a chaos classification:
 *   ok + no delivery failures  -> "recovered"
 *   ok + delivery failures     -> "delivery-failure"
 *   watchdog-trip              -> "watchdog"   (livelock)
 *   deadline-exceeded          -> "deadline"
 *   sim-error                  -> "deadlock"   (starved ranks)
 * Anything else keeps its raw status tag.
 */
std::string classifyChaosOutcome(const std::string &status,
                                 std::uint64_t deliveryFailures);

/** Runs a chaos campaign. */
class ChaosHarness
{
  public:
    explicit ChaosHarness(ChaosOptions opts) : opts_(std::move(opts)) {}

    /** The campaign's generated plans, in order (for tests). */
    std::vector<ChaosPlan> generatePlans() const;

    /**
     * Generate, run, classify and shrink. The campaign phase runs on
     * `workers` threads; classification and shrinking are sequential
     * in job order, so the result is identical for any worker count.
     * @throws core::CCharError(UsageError) on an invalid option set
     *         (unknown app, no plans...).
     */
    ChaosResult run(int workers, bool progress = false);

  private:
    ChaosOptions opts_;
};

} // namespace cchar::sweep

#endif // CCHAR_SWEEP_CHAOS_HH
