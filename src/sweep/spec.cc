#include "spec.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "apps/registry.hh"
#include "core/jsonscan.hh"
#include "core/status.hh"
#include "fault/plan.hh"

namespace cchar::sweep {

using core::CCharError;
using core::StatusCode;

namespace {

[[noreturn]] void
usageFail(const std::string &what)
{
    throw CCharError(StatusCode::UsageError, "sweep: " + what);
}

std::uint64_t
parseU64(const std::string &text)
{
    if (text.empty())
        usageFail("empty seed value");
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size())
        usageFail("bad seed value '" + text + "'");
    return static_cast<std::uint64_t>(v);
}

} // namespace

std::string
SweepJob::label() const
{
    std::ostringstream os;
    os << app << "/p" << procs << "/l" << load << "/s" << seed;
    if (!faultPlan.empty())
        os << "/faulted";
    return os.str();
}

void
meshFactor(int n, int &width, int &height)
{
    if (n < 1)
        usageFail("procs must be >= 1");
    height = 1;
    for (int h = 1; h * h <= n; ++h) {
        if (n % h == 0)
            height = h;
    }
    width = n / height;
}

std::vector<std::string>
parseList(const std::string &text)
{
    std::vector<std::string> out;
    std::string item;
    std::istringstream is{text};
    while (std::getline(is, item, ',')) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

std::vector<std::uint64_t>
parseSeeds(const std::string &text)
{
    std::vector<std::uint64_t> out;
    for (const std::string &item : parseList(text)) {
        std::size_t dots = item.find("..");
        if (dots == std::string::npos) {
            out.push_back(parseU64(item));
            continue;
        }
        std::uint64_t lo = parseU64(item.substr(0, dots));
        std::uint64_t hi = parseU64(item.substr(dots + 2));
        if (hi < lo)
            usageFail("descending seed range '" + item + "'");
        if (hi - lo >= 4096)
            usageFail("seed range '" + item + "' too large");
        for (std::uint64_t s = lo; s <= hi; ++s)
            out.push_back(s);
    }
    return out;
}

std::vector<SweepJob>
SweepSpec::expand() const
{
    if (apps.empty())
        usageFail("no applications selected");
    if (procs.empty())
        usageFail("no processor counts selected");
    if (loads.empty() || seeds.empty() || faultPlans.empty())
        usageFail("empty sweep dimension");
    if (vcs < 1)
        usageFail("vcs must be >= 1");

    for (const std::string &app : apps) {
        if (!apps::isKnownApp(app))
            usageFail("unknown application '" + app + "'");
    }
    for (double load : loads) {
        if (!(load > 0.0))
            usageFail("load factors must be > 0");
    }
    for (const std::string &plan : faultPlans) {
        if (!plan.empty() && plan != "none")
            (void)fault::FaultPlan::parse(plan); // validate up front
    }

    std::vector<SweepJob> jobs;
    std::size_t index = 0;
    for (const std::string &app : apps) {
        for (int n : procs) {
            int width = 0, height = 0;
            meshFactor(n, width, height);
            for (double load : loads) {
                for (std::uint64_t seed : seeds) {
                    for (const std::string &plan : faultPlans) {
                        SweepJob job;
                        job.index = index++;
                        job.app = app;
                        job.procs = n;
                        job.width = width;
                        job.height = height;
                        job.torus = torus;
                        job.vcs = torus && vcs < 2 ? 2 : vcs;
                        job.load = load;
                        job.seed = seed;
                        job.faultPlan = plan == "none" ? "" : plan;
                        job.rankActivity = rankActivity;
                        job.linkStats = linkStats;
                        job.synthetic = synthetic;
                        jobs.push_back(std::move(job));
                    }
                }
            }
        }
    }
    return jobs;
}

SweepSpec
SweepSpec::fromJson(const std::string &text)
{
    SweepSpec spec;
    core::JsonScanner js{text, "sweep spec"};
    bool haveLoads = false, haveSeeds = false, havePlans = false;
    js.expect('{');
    if (!js.consumeIf('}')) {
        for (;;) {
            std::string key = js.readString();
            js.expect(':');
            if (key == "apps") {
                js.expect('[');
                if (!js.consumeIf(']')) {
                    for (;;) {
                        spec.apps.push_back(js.readString());
                        if (!js.consumeIf(','))
                            break;
                    }
                    js.expect(']');
                }
            } else if (key == "procs") {
                js.expect('[');
                if (!js.consumeIf(']')) {
                    for (;;) {
                        spec.procs.push_back(
                            static_cast<int>(js.readNumber()));
                        if (!js.consumeIf(','))
                            break;
                    }
                    js.expect(']');
                }
            } else if (key == "loads") {
                if (!haveLoads) {
                    spec.loads.clear();
                    haveLoads = true;
                }
                js.expect('[');
                if (!js.consumeIf(']')) {
                    for (;;) {
                        spec.loads.push_back(js.readNumber());
                        if (!js.consumeIf(','))
                            break;
                    }
                    js.expect(']');
                }
            } else if (key == "seeds") {
                if (!haveSeeds) {
                    spec.seeds.clear();
                    haveSeeds = true;
                }
                js.expect('[');
                if (!js.consumeIf(']')) {
                    for (;;) {
                        spec.seeds.push_back(
                            static_cast<std::uint64_t>(js.readNumber()));
                        if (!js.consumeIf(','))
                            break;
                    }
                    js.expect(']');
                }
            } else if (key == "fault_plans") {
                if (!havePlans) {
                    spec.faultPlans.clear();
                    havePlans = true;
                }
                js.expect('[');
                if (!js.consumeIf(']')) {
                    for (;;) {
                        spec.faultPlans.push_back(js.readString());
                        if (!js.consumeIf(','))
                            break;
                    }
                    js.expect(']');
                }
            } else if (key == "torus") {
                spec.torus = js.readBool();
            } else if (key == "vcs") {
                spec.vcs = static_cast<int>(js.readNumber());
            } else if (key == "rank_activity") {
                spec.rankActivity = js.readBool();
            } else if (key == "link_stats") {
                spec.linkStats = js.readBool();
            } else if (key == "synthetic") {
                spec.synthetic = js.readBool();
            } else {
                js.fail("unknown spec key '" + key + "'");
            }
            if (!js.consumeIf(','))
                break;
        }
        js.expect('}');
    }
    if (!js.atEnd())
        js.fail("trailing characters after JSON spec");
    return spec;
}

SweepSpec
SweepSpec::fromJsonFile(const std::string &path)
{
    std::ifstream in{path};
    if (!in) {
        throw CCharError(StatusCode::IoError,
                         "sweep: cannot read spec file '" + path + "'");
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return fromJson(buf.str());
}

} // namespace cchar::sweep
