#include "journal.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "core/jsonscan.hh"
#include "core/status.hh"

namespace cchar::sweep {

using core::CCharError;
using core::StatusCode;

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void
fnvBytes(std::uint64_t &h, const void *data, std::size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
}

void
fnvString(std::uint64_t &h, const std::string &s)
{
    fnvBytes(h, s.data(), s.size());
    // Terminator so ("ab","c") and ("a","bc") cannot collide.
    unsigned char sep = 0x1f;
    fnvBytes(h, &sep, 1);
}

void
fnvU64(std::uint64_t &h, std::uint64_t v)
{
    fnvBytes(h, &v, sizeof v);
}

/** Doubles hash (and serialize) by exact bit pattern. */
void
fnvDouble(std::uint64_t &h, double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    fnvU64(h, bits);
}

std::string
hexHash(std::uint64_t h)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

/** Exact double serialization: hexadecimal float, quoted. */
void
hexDouble(std::ostream &os, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%a", v);
    os << '"' << buf << '"';
}

void
jsonEscape(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
        case '"':
            os << "\\\"";
            break;
        case '\\':
            os << "\\\\";
            break;
        case '\n':
            os << "\\n";
            break;
        case '\t':
            os << "\\t";
            break;
        case '\r':
            os << "\\r";
            break;
        case '\b':
            os << "\\b";
            break;
        case '\f':
            os << "\\f";
            break;
        default:
            os << c;
        }
    }
    os << '"';
}

[[noreturn]] void
parseFail(const std::string &what)
{
    throw CCharError(StatusCode::ParseError, "sweep journal: " + what);
}

std::uint64_t
parseHexHash(const std::string &text)
{
    if (text.size() < 3 || text.compare(0, 2, "0x") != 0)
        parseFail("bad hash '" + text + "'");
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str() + 2, &end, 16);
    if (end != text.c_str() + text.size())
        parseFail("bad hash '" + text + "'");
    return static_cast<std::uint64_t>(v);
}

double
parseHexDouble(core::JsonScanner &js)
{
    std::string text = js.readString();
    if (text.empty())
        js.fail("empty number string");
    char *end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size())
        js.fail("bad number string '" + text + "'");
    return v;
}

JournalRecord
captureRecord(const JobOutcome &outcome,
              const obs::MetricsRegistry &registry)
{
    JournalRecord record;
    record.hash = jobHash(outcome.job);
    record.outcome = outcome;
    record.counters = registry.counters();
    record.gauges = registry.gauges();
    for (const auto &[name, data] : registry.histograms())
        record.histograms.emplace_back(name, *data);
    return record;
}

/** Parse the {...} body shared by live and reparsed records. */
JournalRecord
parseRecordBody(core::JsonScanner &js)
{
    JournalRecord record;
    JobOutcome &o = record.outcome;
    bool sawType = false;
    js.expect('{');
    for (;;) {
        std::string key = js.readString();
        js.expect(':');
        if (key == "type") {
            if (js.readString() != "job")
                js.fail("record type is not 'job'");
            sawType = true;
        } else if (key == "hash") {
            record.hash = parseHexHash(js.readString());
        } else if (key == "index") {
            o.job.index = static_cast<std::size_t>(js.readUInt());
        } else if (key == "attempts") {
            o.attempts = static_cast<int>(js.readUInt());
        } else if (key == "quarantined") {
            o.quarantined = js.readBool();
        } else if (key == "status") {
            o.status = js.readString();
        } else if (key == "error") {
            o.error = js.readString();
        } else if (key == "verified") {
            o.verified = js.readBool();
        } else if (key == "messages") {
            o.messages = js.readUInt();
        } else if (key == "total_bytes") {
            o.totalBytes = parseHexDouble(js);
        } else if (key == "latency_mean_us") {
            o.latencyMean = parseHexDouble(js);
        } else if (key == "latency_max_us") {
            o.latencyMax = parseHexDouble(js);
        } else if (key == "contention_mean_us") {
            o.contentionMean = parseHexDouble(js);
        } else if (key == "makespan_us") {
            o.makespan = parseHexDouble(js);
        } else if (key == "avg_channel_utilization") {
            o.avgChannelUtilization = parseHexDouble(js);
        } else if (key == "max_channel_utilization") {
            o.maxChannelUtilization = parseHexDouble(js);
        } else if (key == "temporal_fit") {
            o.temporalFit = js.readString();
        } else if (key == "spatial_pattern") {
            o.spatialPattern = js.readString();
        } else if (key == "dropped_packets") {
            o.droppedPackets = js.readUInt();
        } else if (key == "corrupted_packets") {
            o.corruptedPackets = js.readUInt();
        } else if (key == "link_drops") {
            o.linkDrops = js.readUInt();
        } else if (key == "retransmits") {
            o.retransmits = js.readUInt();
        } else if (key == "delivery_failures") {
            o.deliveryFailures = js.readUInt();
        } else if (key == "rerouted_packets") {
            o.reroutedPackets = js.readUInt();
        } else if (key == "reroute_extra_hops") {
            o.rerouteExtraHops = js.readUInt();
        } else if (key == "diag_warnings") {
            o.diagWarnings = js.readUInt();
        } else if (key == "diag_errors") {
            o.diagErrors = js.readUInt();
        } else if (key == "skew_max_us") {
            o.skewMaxUs = parseHexDouble(js);
        } else if (key == "idle_fraction_mean") {
            o.idleFractionMean = parseHexDouble(js);
        } else if (key == "idle_waves") {
            o.idleWaves = js.readUInt();
        } else if (key == "wave_speed_max") {
            o.waveSpeedMax = parseHexDouble(js);
        } else if (key == "max_link_util") {
            o.maxLinkUtil = parseHexDouble(js);
        } else if (key == "link_gini") {
            o.linkGini = parseHexDouble(js);
        } else if (key == "hotspot_count") {
            o.hotspotCount = js.readUInt();
        } else if (key == "congestion_onset_load") {
            o.congestionOnsetLoad = parseHexDouble(js);
        } else if (key == "synth_latency_err") {
            o.synthLatencyErr = parseHexDouble(js);
        } else if (key == "synth_temporal_ks") {
            o.synthTemporalKs = parseHexDouble(js);
        } else if (key == "synth_spatial_ks") {
            o.synthSpatialKs = parseHexDouble(js);
        } else if (key == "synth_volume_ks") {
            o.synthVolumeKs = parseHexDouble(js);
        } else if (key == "counters") {
            js.expect('{');
            if (!js.consumeIf('}')) {
                for (;;) {
                    std::string name = js.readString();
                    js.expect(':');
                    record.counters.emplace_back(name, js.readUInt());
                    if (!js.consumeIf(','))
                        break;
                }
                js.expect('}');
            }
        } else if (key == "gauges") {
            js.expect('{');
            if (!js.consumeIf('}')) {
                for (;;) {
                    std::string name = js.readString();
                    js.expect(':');
                    record.gauges.emplace_back(name,
                                               parseHexDouble(js));
                    if (!js.consumeIf(','))
                        break;
                }
                js.expect('}');
            }
        } else if (key == "histograms") {
            js.expect('{');
            if (!js.consumeIf('}')) {
                for (;;) {
                    std::string name = js.readString();
                    js.expect(':');
                    obs::HistogramData data;
                    js.expect('{');
                    for (;;) {
                        std::string hkey = js.readString();
                        js.expect(':');
                        if (hkey == "count") {
                            data.count = js.readUInt();
                        } else if (hkey == "sum") {
                            data.sum = parseHexDouble(js);
                        } else if (hkey == "min") {
                            data.min = parseHexDouble(js);
                        } else if (hkey == "max") {
                            data.max = parseHexDouble(js);
                        } else if (hkey == "buckets") {
                            js.expect('[');
                            if (!js.consumeIf(']')) {
                                for (;;) {
                                    js.expect('[');
                                    auto b = js.readUInt();
                                    if (b >= static_cast<std::uint64_t>(
                                                 obs::HistogramData::
                                                     kBuckets))
                                        js.fail("bucket index out of "
                                                "range");
                                    js.expect(',');
                                    data.buckets[static_cast<
                                        std::size_t>(b)] = js.readUInt();
                                    js.expect(']');
                                    if (!js.consumeIf(','))
                                        break;
                                }
                                js.expect(']');
                            }
                        } else {
                            js.fail("unknown histogram key '" + hkey +
                                    "'");
                        }
                        if (!js.consumeIf(','))
                            break;
                    }
                    js.expect('}');
                    record.histograms.emplace_back(name, data);
                    if (!js.consumeIf(','))
                        break;
                }
                js.expect('}');
            }
        } else {
            js.fail("unknown record key '" + key + "'");
        }
        if (!js.consumeIf(','))
            break;
    }
    js.expect('}');
    if (!js.atEnd())
        js.fail("trailing characters after record");
    if (!sawType)
        js.fail("record without type");
    return record;
}

} // namespace

std::uint64_t
jobHash(const SweepJob &job)
{
    std::uint64_t h = kFnvOffset;
    fnvU64(h, job.index);
    fnvString(h, job.app);
    fnvU64(h, static_cast<std::uint64_t>(job.procs));
    fnvU64(h, static_cast<std::uint64_t>(job.width));
    fnvU64(h, static_cast<std::uint64_t>(job.height));
    fnvU64(h, job.torus ? 1 : 0);
    fnvU64(h, static_cast<std::uint64_t>(job.vcs));
    fnvDouble(h, job.load);
    fnvU64(h, job.seed);
    fnvString(h, job.faultPlan);
    fnvU64(h, job.rankActivity ? 1 : 0);
    fnvU64(h, job.linkStats ? 1 : 0);
    fnvU64(h, job.synthetic ? 1 : 0);
    return h;
}

std::uint64_t
specHash(const std::vector<SweepJob> &jobs)
{
    std::uint64_t h = kFnvOffset;
    fnvU64(h, jobs.size());
    for (const SweepJob &job : jobs)
        fnvU64(h, jobHash(job));
    return h;
}

std::string
formatJournalHeader(std::uint64_t specHashValue, std::size_t jobs)
{
    std::ostringstream os;
    os << "{\"type\":\"cchar-sweep-journal\",\"v\":1,\"jobs\":" << jobs
       << ",\"spec_hash\":\"" << hexHash(specHashValue) << "\"}\n";
    return os.str();
}

std::string
formatJournalRecord(const JournalRecord &record)
{
    const JobOutcome &o = record.outcome;
    std::ostringstream os;
    os << "{\"type\":\"job\",\"hash\":\"" << hexHash(record.hash)
       << "\",\"index\":" << o.job.index
       << ",\"attempts\":" << o.attempts << ",\"quarantined\":"
       << (o.quarantined ? "true" : "false") << ",\"status\":";
    jsonEscape(os, o.status);
    os << ",\"error\":";
    jsonEscape(os, o.error);
    os << ",\"verified\":" << (o.verified ? "true" : "false")
       << ",\"messages\":" << o.messages << ",\"total_bytes\":";
    hexDouble(os, o.totalBytes);
    os << ",\"latency_mean_us\":";
    hexDouble(os, o.latencyMean);
    os << ",\"latency_max_us\":";
    hexDouble(os, o.latencyMax);
    os << ",\"contention_mean_us\":";
    hexDouble(os, o.contentionMean);
    os << ",\"makespan_us\":";
    hexDouble(os, o.makespan);
    os << ",\"avg_channel_utilization\":";
    hexDouble(os, o.avgChannelUtilization);
    os << ",\"max_channel_utilization\":";
    hexDouble(os, o.maxChannelUtilization);
    os << ",\"temporal_fit\":";
    jsonEscape(os, o.temporalFit);
    os << ",\"spatial_pattern\":";
    jsonEscape(os, o.spatialPattern);
    os << ",\"dropped_packets\":" << o.droppedPackets
       << ",\"corrupted_packets\":" << o.corruptedPackets
       << ",\"link_drops\":" << o.linkDrops
       << ",\"retransmits\":" << o.retransmits
       << ",\"delivery_failures\":" << o.deliveryFailures
       << ",\"rerouted_packets\":" << o.reroutedPackets
       << ",\"reroute_extra_hops\":" << o.rerouteExtraHops
       << ",\"diag_warnings\":" << o.diagWarnings
       << ",\"diag_errors\":" << o.diagErrors << ",\"skew_max_us\":";
    hexDouble(os, o.skewMaxUs);
    os << ",\"idle_fraction_mean\":";
    hexDouble(os, o.idleFractionMean);
    os << ",\"idle_waves\":" << o.idleWaves << ",\"wave_speed_max\":";
    hexDouble(os, o.waveSpeedMax);
    os << ",\"max_link_util\":";
    hexDouble(os, o.maxLinkUtil);
    os << ",\"link_gini\":";
    hexDouble(os, o.linkGini);
    os << ",\"hotspot_count\":" << o.hotspotCount
       << ",\"congestion_onset_load\":";
    hexDouble(os, o.congestionOnsetLoad);
    os << ",\"synth_latency_err\":";
    hexDouble(os, o.synthLatencyErr);
    os << ",\"synth_temporal_ks\":";
    hexDouble(os, o.synthTemporalKs);
    os << ",\"synth_spatial_ks\":";
    hexDouble(os, o.synthSpatialKs);
    os << ",\"synth_volume_ks\":";
    hexDouble(os, o.synthVolumeKs);
    os << ",\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : record.counters) {
        if (!first)
            os << ",";
        first = false;
        jsonEscape(os, name);
        os << ":" << value;
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto &[name, value] : record.gauges) {
        if (!first)
            os << ",";
        first = false;
        jsonEscape(os, name);
        os << ":";
        hexDouble(os, value);
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &[name, data] : record.histograms) {
        if (!first)
            os << ",";
        first = false;
        jsonEscape(os, name);
        os << ":{\"count\":" << data.count << ",\"sum\":";
        hexDouble(os, data.sum);
        os << ",\"min\":";
        hexDouble(os, data.min);
        os << ",\"max\":";
        hexDouble(os, data.max);
        os << ",\"buckets\":[";
        bool firstBucket = true;
        for (int b = 0; b < obs::HistogramData::kBuckets; ++b) {
            std::uint64_t n = data.buckets[static_cast<std::size_t>(b)];
            if (!n)
                continue;
            if (!firstBucket)
                os << ",";
            firstBucket = false;
            os << "[" << b << "," << n << "]";
        }
        os << "]}";
    }
    os << "}}\n";
    return os.str();
}

std::string
formatJournalRecord(const JobOutcome &outcome,
                    const obs::MetricsRegistry &registry)
{
    return formatJournalRecord(captureRecord(outcome, registry));
}

JournalContents
parseJournal(const std::string &text)
{
    JournalContents out;

    // Newline-delimited segments; a file not ending in '\n' has a
    // torn final segment by construction.
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < text.size()) {
        std::size_t nl = text.find('\n', start);
        if (nl == std::string::npos) {
            lines.push_back(text.substr(start));
            break;
        }
        lines.push_back(text.substr(start, nl - start));
        start = nl + 1;
    }
    if (lines.empty())
        parseFail("empty journal");

    {
        core::JsonScanner js{lines[0], "sweep journal"};
        bool sawType = false, sawVersion = false;
        js.expect('{');
        for (;;) {
            std::string key = js.readString();
            js.expect(':');
            if (key == "type") {
                if (js.readString() != "cchar-sweep-journal")
                    js.fail("not a sweep journal");
                sawType = true;
            } else if (key == "v") {
                if (js.readUInt() != 1)
                    js.fail("unsupported journal version");
                sawVersion = true;
            } else if (key == "jobs") {
                out.jobs = static_cast<std::size_t>(js.readUInt());
            } else if (key == "spec_hash") {
                out.specHash = parseHexHash(js.readString());
            } else {
                js.fail("unknown header key '" + key + "'");
            }
            if (!js.consumeIf(','))
                break;
        }
        js.expect('}');
        if (!js.atEnd())
            js.fail("trailing characters after header");
        if (!sawType || !sawVersion)
            js.fail("incomplete journal header");
    }

    for (std::size_t i = 1; i < lines.size(); ++i) {
        if (lines[i].empty())
            continue;
        try {
            core::JsonScanner js{lines[i], "sweep journal"};
            out.records.push_back(parseRecordBody(js));
        } catch (const CCharError &) {
            if (i + 1 == lines.size()) {
                // A single interrupted append can tear exactly one
                // line: the last one. Drop it — the job reruns.
                out.truncatedTail = true;
                core::reportDiagnostic(
                    core::DiagSeverity::Warning,
                    "sweep journal: dropped torn final record (the "
                    "interrupted job will rerun)");
                break;
            }
            throw;
        }
    }
    return out;
}

JournalContents
loadJournalFile(const std::string &path)
{
    std::ifstream in{path, std::ios::binary};
    if (!in) {
        throw CCharError(StatusCode::IoError,
                         "sweep: cannot read journal '" + path + "'");
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return parseJournal(buf.str());
}

void
restoreRegistry(const JournalRecord &record,
                obs::MetricsRegistry &registry)
{
    for (const auto &[name, value] : record.counters)
        registry.counter(name).add(value);
    for (const auto &[name, value] : record.gauges)
        registry.gauge(name).set(value);
    for (const auto &[name, data] : record.histograms)
        registry.restoreHistogram(name, data);
}

JournalWriter::JournalWriter(const std::string &path,
                             std::uint64_t specHashValue,
                             std::size_t jobs, bool append)
    : path_(path)
{
    int flags = O_WRONLY | O_CREAT | O_APPEND;
    if (!append)
        flags |= O_TRUNC;
    fd_ = ::open(path.c_str(), flags, 0644);
    if (fd_ < 0) {
        throw CCharError(StatusCode::IoError,
                         "sweep: cannot open journal '" + path +
                             "': " + std::strerror(errno));
    }
    if (!append)
        writeDurably(formatJournalHeader(specHashValue, jobs));
}

JournalWriter::~JournalWriter()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
JournalWriter::append(const JobOutcome &outcome,
                      const obs::MetricsRegistry &registry)
{
    std::string line = formatJournalRecord(outcome, registry);
    std::lock_guard<std::mutex> lock{mutex_};
    writeDurably(line);
}

void
JournalWriter::append(const JournalRecord &record)
{
    std::string line = formatJournalRecord(record);
    std::lock_guard<std::mutex> lock{mutex_};
    writeDurably(line);
}

void
JournalWriter::writeDurably(const std::string &line)
{
    const char *p = line.data();
    std::size_t left = line.size();
    while (left > 0) {
        ssize_t n = ::write(fd_, p, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw CCharError(StatusCode::IoError,
                             "sweep: journal write failed on '" +
                                 path_ + "': " + std::strerror(errno));
        }
        p += n;
        left -= static_cast<std::size_t>(n);
    }
    // The record only counts as journaled once it is on disk: a
    // resume must never trust a record the crash could have eaten.
    (void)::fsync(fd_);
}

} // namespace cchar::sweep
