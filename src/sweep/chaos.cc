#include "chaos.hh"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "core/status.hh"
#include "engine.hh"
#include "obs/registry.hh"
#include "spec.hh"
#include "stats/rng.hh"

namespace cchar::sweep {

namespace {

void
jsonEscape(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
        case '"':
            os << "\\\"";
            break;
        case '\\':
            os << "\\\\";
            break;
        case '\n':
            os << "\\n";
            break;
        default:
            os << c;
        }
    }
    os << '"';
}

/** Fixed classification order for reports (then raw tags). */
const char *const kClasses[] = {
    "recovered", "delivery-failure", "watchdog", "deadline", "deadlock",
};

/**
 * All directed links of the topology in a fixed enumeration order
 * (node-major, E/W/N/S within a node), so the generator's link draws
 * depend only on the RNG stream.
 */
std::vector<std::pair<int, int>>
directedLinks(int width, int height, bool torus)
{
    std::vector<std::pair<int, int>> links;
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            int node = y * width + x;
            if (x < width - 1)
                links.emplace_back(node, node + 1);
            else if (torus && width > 1)
                links.emplace_back(node, y * width);
            if (x > 0)
                links.emplace_back(node, node - 1);
            else if (torus && width > 1)
                links.emplace_back(node, y * width + width - 1);
            if (y < height - 1)
                links.emplace_back(node, node + width);
            else if (torus && height > 1)
                links.emplace_back(node, x);
            if (y > 0)
                links.emplace_back(node, node - width);
            else if (torus && height > 1)
                links.emplace_back(node, (height - 1) * width + x);
        }
    }
    return links;
}

/**
 * Run one (app x plan) job in the calling thread and classify it.
 * Used by the shrinker, where runs must stay sequential to keep the
 * campaign deterministic for any worker count.
 */
std::string
classifyRun(const ChaosOptions &opts, const std::string &app,
            const ChaosPlan &plan)
{
    SweepJob job;
    job.app = app;
    job.procs = opts.procs;
    meshFactor(opts.procs, job.width, job.height);
    job.torus = opts.torus;
    job.vcs = opts.vcs;
    job.faultPlan = plan.render();
    obs::MetricsRegistry registry;
    JobOutcome out = SweepEngine::runJob(job, registry);
    return classifyChaosOutcome(out.status, out.deliveryFailures);
}

/**
 * Minimize a failing plan while preserving its classification:
 * greedy clause removal to a 1-minimal fault set, then binary
 * narrowing of each surviving bounded fault window. Every candidate
 * evaluation is one full simulation, so the search is budget-capped.
 */
ChaosPlan
shrinkPlan(const ChaosOptions &opts, const std::string &app,
           ChaosPlan plan, const std::string &target, int &runs)
{
    auto affordable = [&] { return runs < opts.shrinkBudget; };
    auto reproduces = [&](const ChaosPlan &candidate) {
        ++runs;
        return classifyRun(opts, app, candidate) == target;
    };

    // Phase 1: drop every clause whose removal keeps the failure.
    for (std::size_t i = 0; plan.faults.size() > 1 &&
                            i < plan.faults.size() && affordable();) {
        ChaosPlan candidate = plan;
        candidate.faults.erase(candidate.faults.begin() + i);
        if (reproduces(candidate))
            plan = std::move(candidate); // i now names the next clause
        else
            ++i;
    }

    // Phase 2: halve bounded windows while the failure reproduces,
    // preferring the earlier half (a deterministic tie-break).
    for (std::size_t i = 0; i < plan.faults.size(); ++i) {
        fault::TimeWindow &w = plan.faults[i].window;
        if (!w.bounded())
            continue;
        while (w.end - w.begin > 2.0 && affordable()) {
            double mid = std::floor((w.begin + w.end) / 2.0);
            ChaosPlan candidate = plan;
            candidate.faults[i].window.end = mid;
            if (mid > w.begin && reproduces(candidate)) {
                w.end = mid;
                continue;
            }
            candidate = plan;
            candidate.faults[i].window.begin = mid;
            if (mid < w.end && affordable() && reproduces(candidate)) {
                w.begin = mid;
                continue;
            }
            break;
        }
    }
    return plan;
}

} // namespace

std::string
ChaosPlan::render() const
{
    std::ostringstream os;
    os << "seed=" << planSeed << "; retry:timeout="
       << static_cast<long long>(retry.ackTimeoutUs) << "us,max="
       << retry.maxAttempts << ",backoff="
       << static_cast<long long>(retry.backoffFactor) << ",window="
       << retry.window;
    for (const fault::FaultSpec &f : faults)
        os << "; " << f.describe();
    return os.str();
}

std::string
classifyChaosOutcome(const std::string &status,
                     std::uint64_t deliveryFailures)
{
    if (status == "ok")
        return deliveryFailures == 0 ? "recovered" : "delivery-failure";
    if (status == "watchdog-trip")
        return "watchdog";
    if (status == "deadline-exceeded")
        return "deadline";
    if (status == "sim-error")
        return "deadlock";
    return status;
}

std::vector<ChaosPlan>
ChaosHarness::generatePlans() const
{
    if (opts_.plans < 1)
        throw core::CCharError(core::StatusCode::UsageError,
                               "chaos: --plans must be >= 1");
    if (opts_.maxFaults < 1)
        throw core::CCharError(core::StatusCode::UsageError,
                               "chaos: --max-faults must be >= 1");
    int width = 0;
    int height = 0;
    meshFactor(opts_.procs, width, height);
    auto links = directedLinks(width, height, opts_.torus);

    stats::Rng rng{opts_.seed};
    // Integer horizon keeps every generated time round-trippable
    // through the plan grammar's default double formatting.
    auto horizon =
        std::max<std::uint64_t>(2,
                                static_cast<std::uint64_t>(opts_.horizonUs));

    std::vector<ChaosPlan> plans;
    plans.reserve(static_cast<std::size_t>(opts_.plans));
    for (int p = 0; p < opts_.plans; ++p) {
        ChaosPlan plan;
        plan.planSeed = rng.below(1u << 30) + 1;
        plan.retry.ackTimeoutUs =
            20.0 * static_cast<double>(1 + rng.below(10));
        // One plan in eight retries forever — watchdog-class fodder.
        plan.retry.maxAttempts =
            rng.below(8) == 0 ? 0 : static_cast<int>(2 + rng.below(5));
        plan.retry.backoffFactor = 2.0;
        const int windows[] = {1, 2, 4, 8};
        plan.retry.window = windows[rng.below(4)];

        auto faults = 1 + rng.below(static_cast<std::uint64_t>(
                              opts_.maxFaults));
        for (std::uint64_t f = 0; f < faults; ++f) {
            fault::FaultSpec spec;
            auto kind = rng.below(100);
            if (kind < 40 && !links.empty()) {
                spec.kind = fault::FaultKind::LinkDown;
                auto &link = links[rng.below(links.size())];
                spec.node = link.first;
                spec.peer = link.second;
            } else if (kind < 65) {
                spec.kind = fault::FaultKind::Drop;
                spec.probability =
                    static_cast<double>(1 + rng.below(300)) / 1000.0;
            } else if (kind < 85) {
                spec.kind = fault::FaultKind::Corrupt;
                spec.probability =
                    static_cast<double>(1 + rng.below(300)) / 1000.0;
            } else {
                spec.kind = fault::FaultKind::RouterStall;
                spec.node = static_cast<int>(
                    rng.below(static_cast<std::uint64_t>(width * height)));
                spec.stallUs = static_cast<double>(1 + rng.below(20));
            }
            if (rng.below(2) == 0) {
                auto begin = rng.below(horizon / 2);
                auto span = 1 + rng.below(horizon / 2);
                spec.window.begin = static_cast<double>(begin);
                spec.window.end = static_cast<double>(begin + span);
            }
            plan.faults.push_back(spec);
        }
        plans.push_back(std::move(plan));
    }
    return plans;
}

ChaosResult
ChaosHarness::run(int workers, bool progress)
{
    std::vector<ChaosPlan> plans = generatePlans();

    SweepSpec spec;
    spec.apps = opts_.apps;
    spec.procs = {opts_.procs};
    spec.torus = opts_.torus;
    spec.vcs = opts_.vcs;
    spec.faultPlans.clear();
    for (const ChaosPlan &p : plans)
        spec.faultPlans.push_back(p.render());

    SweepEngine engine{spec};
    SweepResult campaign = engine.run(workers, progress);

    ChaosResult result;
    result.seed = opts_.seed;
    result.jobs.reserve(campaign.outcomes.size());
    for (const JobOutcome &o : campaign.outcomes) {
        ChaosJobResult jr;
        jr.index = o.job.index;
        jr.app = o.job.app;
        jr.plan = o.job.faultPlan;
        jr.status = o.status;
        jr.error = o.error;
        jr.classification =
            classifyChaosOutcome(o.status, o.deliveryFailures);
        jr.deliveryFailures = o.deliveryFailures;
        jr.retransmits = o.retransmits;
        jr.reroutedPackets = o.reroutedPackets;
        jr.linkDrops = o.linkDrops;
        result.jobs.push_back(std::move(jr));
    }

    // Shrink failing plans sequentially in job order. The expansion
    // is apps-outermost with fault plans innermost, so job index i
    // ran plan (i mod plans).
    for (ChaosJobResult &jr : result.jobs) {
        if (!jr.failing())
            continue;
        const ChaosPlan &original = plans[jr.index % plans.size()];
        int runs = 0;
        ChaosPlan minimal = shrinkPlan(opts_, jr.app, original,
                                       jr.classification, runs);
        jr.shrunkPlan = minimal.render();
        jr.shrunkFaults = minimal.faults.size();
        jr.shrinkRuns = runs;
    }
    return result;
}

std::size_t
ChaosResult::failingCount() const
{
    std::size_t n = 0;
    for (const ChaosJobResult &j : jobs)
        n += j.failing() ? 1 : 0;
    return n;
}

std::size_t
ChaosResult::count(const std::string &cls) const
{
    std::size_t n = 0;
    for (const ChaosJobResult &j : jobs)
        n += j.classification == cls ? 1 : 0;
    return n;
}

void
ChaosResult::print(std::ostream &os) const
{
    os << "-- Chaos campaign (seed " << seed << ") --\n"
       << "  jobs: " << jobs.size();
    for (const char *cls : kClasses)
        os << "  " << cls << ": " << count(cls);
    os << "\n";
    for (const ChaosJobResult &j : jobs) {
        os << "  [" << j.index << "] " << j.app << "  "
           << j.classification << "\n"
           << "      plan:   " << j.plan << "\n";
        if (j.failing()) {
            os << "      shrunk: " << j.shrunkPlan << "  ("
               << j.shrunkFaults << " fault"
               << (j.shrunkFaults == 1 ? "" : "s") << ", "
               << j.shrinkRuns << " shrink runs)\n";
        }
    }
    os << "  failing plans: " << failingCount() << " of " << jobs.size()
       << "\n";
}

void
ChaosResult::writeJson(std::ostream &os) const
{
    os << "{\"seed\":" << seed << ",\"classes\":{";
    bool first = true;
    for (const char *cls : kClasses) {
        if (!first)
            os << ",";
        first = false;
        os << '"' << cls << "\":" << count(cls);
    }
    os << "},\"jobs\":[";
    first = true;
    for (const ChaosJobResult &j : jobs) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"index\":" << j.index << ",\"app\":";
        jsonEscape(os, j.app);
        os << ",\"plan\":";
        jsonEscape(os, j.plan);
        os << ",\"classification\":";
        jsonEscape(os, j.classification);
        os << ",\"status\":";
        jsonEscape(os, j.status);
        os << ",\"delivery_failures\":" << j.deliveryFailures
           << ",\"retransmits\":" << j.retransmits
           << ",\"rerouted_packets\":" << j.reroutedPackets
           << ",\"link_drops\":" << j.linkDrops;
        if (j.failing()) {
            os << ",\"shrunk_plan\":";
            jsonEscape(os, j.shrunkPlan);
            os << ",\"shrunk_faults\":" << j.shrunkFaults
               << ",\"shrink_runs\":" << j.shrinkRuns;
        }
        os << "}";
    }
    os << "],\"failing\":" << failingCount() << "}\n";
}

} // namespace cchar::sweep
