/**
 * @file
 * Retry/quarantine policy helpers for the sweep orchestrator.
 *
 * The state machine per job (see DESIGN §6f):
 *
 *              run ──ok──────────────────────────▶ done (journaled)
 *               │
 *               ├─transient failure (deadline-exceeded,
 *               │  watchdog-trip) & attempts ≤ --job-retries
 *               │        └─▶ backoff ─▶ run again (same seed: the
 *               │            rerun is reseeded-identical, so only a
 *               │            wall-clock-dependent failure can clear)
 *               │
 *               ├─deterministic failure (usage/parse/io/sim error)
 *               │        └─▶ quarantined immediately: a pure
 *               │            function of the job spec fails the same
 *               │            way every time, retrying wastes budget
 *               │
 *               ├─transient failure & budget exhausted
 *               │        └─▶ quarantined (degraded-results section)
 *               │
 *               └─cancelled by shutdown ─▶ interrupted (NOT
 *                        journaled; a resumed run reruns the job)
 *
 * Backoff is pure wall-clock scheduling: it never touches the
 * simulation, so determinism of job *results* is unaffected.
 */

#ifndef CCHAR_SWEEP_POLICY_HH
#define CCHAR_SWEEP_POLICY_HH

#include <algorithm>
#include <string>

#include "engine.hh"

namespace cchar::sweep {

/**
 * True for failure classes that can clear on a wall-clock rerun:
 * the per-job deadline (machine load, cold caches) and the
 * watchdog's no-progress heuristic (its sim-time check cadence can
 * race a slow-but-live protocol). Everything else is a
 * deterministic property of the job spec.
 */
inline bool
isTransientStatus(const std::string &status)
{
    return status == "deadline-exceeded" || status == "watchdog-trip";
}

/**
 * Backoff before retry attempt `attempt` (the first retry is
 * attempt 2): base * 2^(attempt-2), capped at 5 s so a deep retry
 * budget cannot stall a worker for minutes.
 */
inline double
backoffDelayMs(const JobPolicy &policy, int attempt)
{
    double delay = policy.backoffMs;
    for (int i = 2; i < attempt; ++i)
        delay *= 2.0;
    return std::clamp(delay, 0.0, 5000.0);
}

} // namespace cchar::sweep

#endif // CCHAR_SWEEP_POLICY_HH
