#include "engine.hh"

#include <atomic>
#include <cmath>
#include <optional>
#include <ostream>
#include <sstream>
#include <thread>

#include "apps/registry.hh"
#include "ccnuma/machine.hh"
#include "core/pipeline.hh"
#include "core/replay.hh"
#include "core/status.hh"
#include "desim/watchdog.hh"
#include "fault/injector.hh"
#include "fault/plan.hh"
#include "mp/mp.hh"
#include "obs/obs.hh"
#include "stats/spatial.hh"

namespace cchar::sweep {

namespace {

/**
 * Gauges derived from wall-clock measurement. Everything else in a
 * job registry is a pure function of the job parameters; these are
 * zeroed after the merge so the aggregate report stays byte-identical
 * across worker counts and machines.
 */
const char *const kWallClockGauges[] = {"desim.events_per_sec"};

void
jsonEscape(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
        case '"':
            os << "\\\"";
            break;
        case '\\':
            os << "\\\\";
            break;
        case '\n':
            os << "\\n";
            break;
        case '\t':
            os << "\\t";
            break;
        case '\r':
            os << "\\r";
            break;
        default:
            os << c;
        }
    }
    os << '"';
}

void
jsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << 0;
        return;
    }
    std::ostringstream tmp;
    tmp.precision(12);
    tmp << v;
    os << tmp.str();
}

void
csvField(std::ostream &os, const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos) {
        os << s;
        return;
    }
    os << '"';
    for (char c : s) {
        if (c == '"')
            os << '"';
        os << c;
    }
    os << '"';
}

core::NetworkSummary
summaryOfMesh(const mesh::MeshNetwork &net, const trace::TrafficLog &log,
              desim::SimTime now)
{
    core::NetworkSummary s;
    s.latencyMean = net.latencyStats().mean();
    s.latencyMax = net.latencyStats().max();
    s.contentionMean = net.contentionStats().mean();
    s.makespan = log.lastDeliverTime();
    s.avgChannelUtilization = net.averageChannelUtilization(now);
    s.maxChannelUtilization = net.maxChannelUtilization(now);
    return s;
}

void
fillOutcome(JobOutcome &out, const core::CharacterizationReport &report)
{
    out.verified = report.verified;
    out.messages = report.volume.messageCount;
    out.totalBytes = report.volume.totalBytes;
    out.latencyMean = report.network.latencyMean;
    out.latencyMax = report.network.latencyMax;
    out.contentionMean = report.network.contentionMean;
    out.makespan = report.network.makespan;
    out.avgChannelUtilization = report.network.avgChannelUtilization;
    out.maxChannelUtilization = report.network.maxChannelUtilization;
    if (report.temporalAggregate.fit.dist)
        out.temporalFit = report.temporalAggregate.fit.dist->name();
    out.spatialPattern = stats::toString(report.spatialAggregate.pattern);
}

void
fillFaults(JobOutcome &out, const fault::FaultInjector &injector,
           std::uint64_t retransmits, std::uint64_t deliveryFailures)
{
    out.droppedPackets = injector.drops();
    out.corruptedPackets = injector.corrupts();
    out.linkDrops = injector.linkDrops();
    out.retransmits = retransmits;
    out.deliveryFailures = deliveryFailures;
}

mesh::MeshConfig
meshOfJob(const SweepJob &job)
{
    mesh::MeshConfig cfg;
    cfg.width = job.width;
    cfg.height = job.height;
    if (job.torus) {
        cfg.topology = mesh::Topology::Torus;
        cfg.virtualChannels = job.vcs < 2 ? 2 : job.vcs;
    } else {
        cfg.virtualChannels = job.vcs;
    }
    // The load factor models a network that is `load` times slower
    // relative to the computation: both the per-flit serialization
    // time and the per-hop router delay stretch, raising the
    // effective offered load (cf. the F-LS load sweep figure).
    cfg.flitTime *= job.load;
    cfg.routerDelay *= job.load;
    return cfg;
}

} // namespace

JobOutcome
SweepEngine::runJob(const SweepJob &job, obs::MetricsRegistry &registry)
{
    JobOutcome out;
    out.job = job;

    // Per-job isolation: this thread's ambient hooks point at sinks
    // owned by this frame for exactly the duration of the run.
    obs::ScopedObservability obsScope{&registry};
    core::DiagnosticSink diagSink;
    core::ScopedDiagnostics diagScope{&diagSink};

    try {
        std::optional<fault::FaultInjector> injector;
        if (!job.faultPlan.empty()) {
            fault::FaultPlan plan = fault::FaultPlan::parse(job.faultPlan);
            // The seed dimension overrides the plan's own seed; seed 0
            // means "use the plan's".
            if (job.seed != 0)
                plan.setSeed(job.seed);
            injector.emplace(plan);
        }

        mesh::MeshConfig mcfg = meshOfJob(job);
        if (injector)
            mcfg.faults = &*injector;

        core::CharacterizationPipeline pipeline;
        if (auto app = apps::makeSharedMemoryApp(job.app)) {
            ccnuma::MachineConfig cfg;
            cfg.mesh = mcfg;
            desim::Simulator sim;
            ccnuma::Machine machine{sim, cfg};
            desim::Watchdog watchdog{sim, {}};
            if (injector) {
                watchdog.setProgressProbe([&machine] {
                    return machine.network().messageCount();
                });
                watchdog.arm();
            }
            apps::launch(machine, *app);
            machine.run();
            core::CharacterizationReport report = pipeline.analyze(
                machine.log(), cfg.mesh, job.app, core::Strategy::Dynamic,
                summaryOfMesh(machine.network(), machine.log(),
                              sim.now()));
            report.verified = app->verify();
            fillOutcome(out, report);
            if (injector)
                fillFaults(out, *injector, 0, 0);
        } else if (auto mpApp = apps::makeMessagePassingApp(job.app)) {
            mp::MpConfig cfg;
            cfg.mesh = mcfg;
            desim::Simulator sim;
            mp::MpWorld world{sim, cfg};
            desim::Watchdog watchdog{sim, {}};
            if (injector) {
                watchdog.setProgressProbe(
                    [&world] { return world.network().messageCount(); });
                watchdog.arm();
            }
            world.enableTracing();
            apps::launch(world, *mpApp);
            world.run();
            bool verified = mpApp->verify();
            trace::Trace collected = world.collectedTrace();

            core::ReplayOptions ropts;
            if (injector) {
                ropts.faults = &*injector;
                ropts.enableWatchdog = true;
            }
            auto replayed =
                core::TraceReplayer::replay(collected, cfg.mesh, ropts);
            core::NetworkSummary net;
            net.latencyMean = replayed.latencyMean;
            net.latencyMax = replayed.latencyMax;
            net.contentionMean = replayed.contentionMean;
            net.makespan = replayed.makespan;
            net.avgChannelUtilization = replayed.avgChannelUtilization;
            net.maxChannelUtilization = replayed.maxChannelUtilization;
            core::CharacterizationReport report =
                pipeline.analyze(replayed.log, cfg.mesh, job.app,
                                 core::Strategy::Static, net);
            report.verified = verified;
            fillOutcome(out, report);
            if (injector) {
                fillFaults(out, *injector,
                           world.retransmits() + replayed.retransmits,
                           world.deliveryFailures() +
                               replayed.deliveryFailures);
            }
        } else {
            throw core::CCharError(core::StatusCode::UsageError,
                                   "unknown application '" + job.app +
                                       "'");
        }
    } catch (const core::CCharError &e) {
        out.status = core::toString(e.status().code());
        out.error = e.what();
    } catch (const desim::WatchdogError &e) {
        out.status = core::toString(core::StatusCode::WatchdogTrip);
        out.error = e.what();
    } catch (const std::exception &e) {
        out.status = core::toString(core::StatusCode::SimError);
        out.error = e.what();
    }

    out.diagWarnings = diagSink.warnings();
    out.diagErrors = diagSink.errors();
    return out;
}

SweepResult
SweepEngine::run(int workers)
{
    std::vector<SweepJob> jobs = spec_.expand();

    SweepResult result;
    result.outcomes.resize(jobs.size());
    std::vector<std::unique_ptr<obs::MetricsRegistry>> registries(
        jobs.size());

    std::atomic<std::size_t> next{0};
    auto drain = [&] {
        for (;;) {
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            auto reg = std::make_unique<obs::MetricsRegistry>();
            result.outcomes[i] = runJob(jobs[i], *reg);
            registries[i] = std::move(reg);
        }
    };

    std::size_t pool = workers < 1 ? 1 : static_cast<std::size_t>(workers);
    if (pool > jobs.size() && !jobs.empty())
        pool = jobs.size();
    if (pool <= 1) {
        drain();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(pool);
        for (std::size_t i = 0; i < pool; ++i)
            threads.emplace_back(drain);
        for (std::thread &t : threads)
            t.join();
    }

    // Merge strictly in job order: the fold is associative but the
    // interned-name order and float accumulation are not, so the order
    // must not depend on which worker finished first.
    result.metrics = std::make_unique<obs::MetricsRegistry>();
    for (const auto &reg : registries) {
        if (reg)
            result.metrics->mergeFrom(*reg);
    }
    for (const char *name : kWallClockGauges)
        result.metrics->gauge(name).set(0.0);
    return result;
}

std::size_t
SweepResult::failures() const
{
    std::size_t n = 0;
    for (const JobOutcome &o : outcomes)
        n += o.ok() ? 0 : 1;
    return n;
}

void
SweepResult::writeJson(std::ostream &os) const
{
    os << "{\"jobs\":[";
    bool first = true;
    for (const JobOutcome &o : outcomes) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"index\":" << o.job.index << ",\"app\":";
        jsonEscape(os, o.job.app);
        os << ",\"procs\":" << o.job.procs << ",\"width\":" << o.job.width
           << ",\"height\":" << o.job.height
           << ",\"torus\":" << (o.job.torus ? "true" : "false")
           << ",\"vcs\":" << o.job.vcs << ",\"load\":";
        jsonNumber(os, o.job.load);
        os << ",\"seed\":" << o.job.seed << ",\"fault_plan\":";
        jsonEscape(os, o.job.faultPlan);
        os << ",\"status\":";
        jsonEscape(os, o.status);
        os << ",\"error\":";
        jsonEscape(os, o.error);
        os << ",\"verified\":" << (o.verified ? "true" : "false")
           << ",\"messages\":" << o.messages << ",\"total_bytes\":";
        jsonNumber(os, o.totalBytes);
        os << ",\"latency_mean_us\":";
        jsonNumber(os, o.latencyMean);
        os << ",\"latency_max_us\":";
        jsonNumber(os, o.latencyMax);
        os << ",\"contention_mean_us\":";
        jsonNumber(os, o.contentionMean);
        os << ",\"makespan_us\":";
        jsonNumber(os, o.makespan);
        os << ",\"avg_channel_utilization\":";
        jsonNumber(os, o.avgChannelUtilization);
        os << ",\"max_channel_utilization\":";
        jsonNumber(os, o.maxChannelUtilization);
        os << ",\"temporal_fit\":";
        jsonEscape(os, o.temporalFit);
        os << ",\"spatial_pattern\":";
        jsonEscape(os, o.spatialPattern);
        os << ",\"dropped_packets\":" << o.droppedPackets
           << ",\"corrupted_packets\":" << o.corruptedPackets
           << ",\"link_drops\":" << o.linkDrops
           << ",\"retransmits\":" << o.retransmits
           << ",\"delivery_failures\":" << o.deliveryFailures
           << ",\"diag_warnings\":" << o.diagWarnings
           << ",\"diag_errors\":" << o.diagErrors << "}";
    }
    os << "],\"failures\":" << failures() << ",\"metrics\":";
    if (metrics)
        metrics->writeJson(os);
    else
        os << "null";
    os << "}\n";
}

void
SweepResult::writeCsv(std::ostream &os) const
{
    os << "index,app,procs,width,height,torus,vcs,load,seed,fault_plan,"
          "status,verified,messages,total_bytes,latency_mean_us,"
          "latency_max_us,contention_mean_us,makespan_us,"
          "avg_channel_utilization,max_channel_utilization,temporal_fit,"
          "spatial_pattern,dropped_packets,corrupted_packets,link_drops,"
          "retransmits,delivery_failures,diag_warnings,diag_errors\n";
    for (const JobOutcome &o : outcomes) {
        os << o.job.index << ",";
        csvField(os, o.job.app);
        os << "," << o.job.procs << "," << o.job.width << ","
           << o.job.height << "," << (o.job.torus ? 1 : 0) << ","
           << o.job.vcs << ",";
        jsonNumber(os, o.job.load);
        os << "," << o.job.seed << ",";
        csvField(os, o.job.faultPlan);
        os << ",";
        csvField(os, o.status);
        os << "," << (o.verified ? 1 : 0) << "," << o.messages << ",";
        jsonNumber(os, o.totalBytes);
        os << ",";
        jsonNumber(os, o.latencyMean);
        os << ",";
        jsonNumber(os, o.latencyMax);
        os << ",";
        jsonNumber(os, o.contentionMean);
        os << ",";
        jsonNumber(os, o.makespan);
        os << ",";
        jsonNumber(os, o.avgChannelUtilization);
        os << ",";
        jsonNumber(os, o.maxChannelUtilization);
        os << ",";
        csvField(os, o.temporalFit);
        os << ",";
        csvField(os, o.spatialPattern);
        os << "," << o.droppedPackets << "," << o.corruptedPackets << ","
           << o.linkDrops << "," << o.retransmits << ","
           << o.deliveryFailures << "," << o.diagWarnings << ","
           << o.diagErrors << "\n";
    }
}

} // namespace cchar::sweep
