#include "engine.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <iostream>
#include <limits>
#include <optional>
#include <ostream>
#include <sstream>
#include <thread>

#include "apps/registry.hh"
#include "ccnuma/machine.hh"
#include "core/analyzers.hh"
#include "core/pipeline.hh"
#include "core/replay.hh"
#include "core/status.hh"
#include "core/synthetic.hh"
#include "desim/watchdog.hh"
#include "fault/injector.hh"
#include "fault/plan.hh"
#include "journal.hh"
#include "mp/mp.hh"
#include "obs/obs.hh"
#include "policy.hh"
#include "stats/spatial.hh"

namespace cchar::sweep {

namespace {

/**
 * Gauges derived from wall-clock measurement (or from worker
 * scheduling, which is just as nondeterministic). Everything else in a
 * job registry is a pure function of the job parameters; these are
 * zeroed after the merge so the aggregate report stays byte-identical
 * across worker counts and machines. The sweep.worker.* family uses
 * count-independent names for the same reason: per-worker-indexed
 * names would change the key set with -j. Real values live in
 * SweepResult::workerStats.
 */
const char *const kWallClockGauges[] = {
    "desim.events_per_sec",
    "sweep.workers",
    "sweep.worker.busy_fraction_mean",
    "sweep.worker.busy_fraction_min",
    "sweep.worker.busy_fraction_max",
    "sweep.worker.jobs_mean",
    "sweep.worker.jobs_min",
    "sweep.worker.jobs_max",
    "sweep.resumed_jobs",
};

void
jsonEscape(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
        case '"':
            os << "\\\"";
            break;
        case '\\':
            os << "\\\\";
            break;
        case '\n':
            os << "\\n";
            break;
        case '\t':
            os << "\\t";
            break;
        case '\r':
            os << "\\r";
            break;
        default:
            os << c;
        }
    }
    os << '"';
}

void
jsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << 0;
        return;
    }
    std::ostringstream tmp;
    tmp.precision(12);
    tmp << v;
    os << tmp.str();
}

void
csvField(std::ostream &os, const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos) {
        os << s;
        return;
    }
    os << '"';
    for (char c : s) {
        if (c == '"')
            os << '"';
        os << c;
    }
    os << '"';
}

core::NetworkSummary
summaryOfMesh(const mesh::MeshNetwork &net, const trace::TrafficLog &log,
              desim::SimTime now)
{
    core::NetworkSummary s;
    s.latencyMean = net.latencyStats().mean();
    s.latencyMax = net.latencyStats().max();
    s.contentionMean = net.contentionStats().mean();
    s.makespan = log.lastDeliverTime();
    s.avgChannelUtilization = net.averageChannelUtilization(now);
    s.maxChannelUtilization = net.maxChannelUtilization(now);
    return s;
}

void
fillOutcome(JobOutcome &out, const core::CharacterizationReport &report)
{
    out.verified = report.verified;
    out.messages = report.volume.messageCount;
    out.totalBytes = report.volume.totalBytes;
    out.latencyMean = report.network.latencyMean;
    out.latencyMax = report.network.latencyMax;
    out.contentionMean = report.network.contentionMean;
    out.makespan = report.network.makespan;
    out.avgChannelUtilization = report.network.avgChannelUtilization;
    out.maxChannelUtilization = report.network.maxChannelUtilization;
    if (report.temporalAggregate.fit.dist)
        out.temporalFit = report.temporalAggregate.fit.dist->name();
    out.spatialPattern = stats::toString(report.spatialAggregate.pattern);
}

void
fillRankActivity(JobOutcome &out, const core::RankActivitySummary &ra)
{
    out.skewMaxUs = ra.maxAbsSkewUs;
    if (!ra.ranks.empty()) {
        double sum = 0.0;
        for (const core::RankActivityRow &row : ra.ranks)
            sum += row.idleFraction;
        out.idleFractionMean = sum / static_cast<double>(ra.ranks.size());
    }
    out.idleWaves = ra.waves.size();
    for (const core::IdleWave &wave : ra.waves)
        out.waveSpeedMax = std::max(out.waveSpeedMax,
                                    wave.speedRanksPerUs);
}

void
fillLinkStats(JobOutcome &out, const core::LinkWeatherSummary &lw)
{
    out.maxLinkUtil = lw.maxUtilization;
    out.linkGini = lw.gini;
    out.hotspotCount = static_cast<std::uint64_t>(lw.hotspotCount);
    out.congestionOnsetLoad = lw.congestionOnsetLoad;
}

/**
 * Close the loop for one job: replay the fitted model through the
 * network and record how faithfully it reproduces the original run.
 * Runs fully unobserved — the synthetic mesh must not feed the job's
 * metrics registry or activity/link trackers, whose contents describe
 * the *application* run.
 */
void
fillSynthetic(JobOutcome &out, const core::CharacterizationReport &report)
{
    obs::ScopedObservability detach{nullptr, nullptr, nullptr, nullptr,
                                    nullptr};
    core::SyntheticModel model = core::SyntheticModel::fromReport(report);
    core::DriveResult synth =
        core::SyntheticTrafficGenerator::run(model, core::SynthRunOptions{});
    core::SynthesisFidelity sf = core::computeSynthFidelity(model, synth.log);
    out.synthLatencyErr =
        report.network.latencyMean != 0.0
            ? (synth.latencyMean - report.network.latencyMean) /
                  report.network.latencyMean
            : 0.0;
    out.synthTemporalKs = sf.temporalKs;
    out.synthSpatialKs = sf.spatialKs;
    out.synthVolumeKs = sf.volumeKs;
}

void
fillFaults(JobOutcome &out, const fault::FaultInjector &injector,
           std::uint64_t retransmits, std::uint64_t deliveryFailures)
{
    out.droppedPackets = injector.drops();
    out.corruptedPackets = injector.corrupts();
    out.linkDrops = injector.linkDrops();
    out.retransmits = retransmits;
    out.deliveryFailures = deliveryFailures;
    out.reroutedPackets = injector.reroutes();
    out.rerouteExtraHops = injector.rerouteExtraHops();
}

mesh::MeshConfig
meshOfJob(const SweepJob &job)
{
    mesh::MeshConfig cfg;
    cfg.width = job.width;
    cfg.height = job.height;
    if (job.torus) {
        cfg.topology = mesh::Topology::Torus;
        cfg.virtualChannels = job.vcs < 2 ? 2 : job.vcs;
    } else {
        cfg.virtualChannels = job.vcs;
    }
    // The load factor models a network that is `load` times slower
    // relative to the computation: both the per-flit serialization
    // time and the per-hop router delay stretch, raising the
    // effective offered load (cf. the F-LS load sweep figure).
    cfg.flitTime *= job.load;
    cfg.routerDelay *= job.load;
    return cfg;
}

} // namespace

JobOutcome
SweepEngine::runJob(const SweepJob &job, obs::MetricsRegistry &registry,
                    const std::atomic<bool> *cancel)
{
    JobOutcome out;
    out.job = job;

    // Per-job isolation: this thread's ambient hooks point at sinks
    // owned by this frame for exactly the duration of the run.
    obs::RankActivityTracker activity;
    obs::LinkStatsTracker links;
    obs::ScopedObservability obsScope{&registry, nullptr, nullptr,
                                      job.rankActivity ? &activity
                                                       : nullptr,
                                      job.linkStats ? &links : nullptr};
    core::DiagnosticSink diagSink;
    core::ScopedDiagnostics diagScope{&diagSink};

    try {
        std::optional<fault::FaultInjector> injector;
        if (!job.faultPlan.empty()) {
            fault::FaultPlan plan = fault::FaultPlan::parse(job.faultPlan);
            // The seed dimension overrides the plan's own seed; seed 0
            // means "use the plan's".
            if (job.seed != 0)
                plan.setSeed(job.seed);
            injector.emplace(plan);
        }

        mesh::MeshConfig mcfg = meshOfJob(job);
        if (injector)
            mcfg.faults = &*injector;

        core::CharacterizationPipeline pipeline;
        // The watchdog doubles as the external-cancellation port: the
        // deadline monitor and the shutdown path flip `cancel`, and
        // the next periodic tick throws a cancelled WatchdogError out
        // of the run. Without an injector the probe is the kernel's
        // committed-event count, which advances on every tick, so the
        // no-progress heuristic can never fire — only cancellation.
        desim::WatchdogConfig wcfg;
        wcfg.cancelFlag = cancel;

        if (auto app = apps::makeSharedMemoryApp(job.app)) {
            ccnuma::MachineConfig cfg;
            cfg.mesh = mcfg;
            desim::Simulator sim;
            ccnuma::Machine machine{sim, cfg};
            desim::Watchdog watchdog{sim, wcfg};
            if (injector) {
                watchdog.setProgressProbe([&machine] {
                    return machine.network().messageCount();
                });
                watchdog.arm();
            } else if (cancel != nullptr) {
                watchdog.setProgressProbe(
                    [&sim] { return sim.processedEvents(); });
                watchdog.arm();
            }
            apps::launch(machine, *app);
            machine.run();
            core::CharacterizationReport report = pipeline.analyze(
                machine.log(), cfg.mesh, job.app, core::Strategy::Dynamic,
                summaryOfMesh(machine.network(), machine.log(),
                              sim.now()));
            report.verified = app->verify();
            fillOutcome(out, report);
            if (job.synthetic)
                fillSynthetic(out, report);
            if (injector)
                fillFaults(out, *injector, 0, 0);
            if (job.rankActivity) {
                activity.finish(sim.now());
                core::RankActivitySummary ra =
                    core::RankActivityAnalyzer{}.analyze(activity,
                                                         report.phases);
                fillRankActivity(out, ra);
                core::publishRankMetrics(registry, ra);
            }
            if (job.linkStats) {
                links.finish(sim.now());
                core::LinkWeatherSummary lw =
                    core::LinkWeatherAnalyzer{}.analyze(links, cfg.mesh,
                                                        report.phases);
                fillLinkStats(out, lw);
                core::publishLinkMetrics(registry, lw);
            }
        } else if (auto mpApp = apps::makeMessagePassingApp(job.app)) {
            mp::MpConfig cfg;
            cfg.mesh = mcfg;
            desim::Simulator sim;
            mp::MpWorld world{sim, cfg};
            desim::Watchdog watchdog{sim, wcfg};
            if (injector) {
                // Delivered messages plus resolved delivery failures:
                // a bounded retry budget draining on a hostile plan is
                // progress toward the accounted failure exit, while an
                // unbounded no-delivery loop still trips the watchdog.
                watchdog.setProgressProbe([&world] {
                    return world.network().messageCount() +
                           world.deliveryFailures();
                });
                watchdog.arm();
            } else if (cancel != nullptr) {
                watchdog.setProgressProbe(
                    [&sim] { return sim.processedEvents(); });
                watchdog.arm();
            }
            world.enableTracing();
            apps::launch(world, *mpApp);
            world.run();
            bool verified = mpApp->verify();
            trace::Trace collected = world.collectedTrace();
            if (job.rankActivity)
                activity.finish(sim.now());

            // Detach the tracker for the rest of the job: the replay
            // rebuilds a MeshNetwork that would re-resolve the hook
            // and double-count the comm spans already recorded live.
            obs::ScopedRankActivity detachActivity{nullptr};

            core::ReplayOptions ropts;
            if (injector) {
                ropts.faults = &*injector;
                ropts.enableWatchdog = true;
            }
            if (cancel != nullptr) {
                // Cancellation must reach the replay simulation too.
                // Without an injector the replay's delivered-message
                // probe could stall legitimately (bursty delivery),
                // so the stall threshold is pushed out of reach and
                // only the cancel flag can trip.
                ropts.enableWatchdog = true;
                ropts.watchdog.cancelFlag = cancel;
                if (!injector)
                    ropts.watchdog.stallChecks = 1 << 30;
            }
            // The replay mesh is the network whose behaviour the
            // static-strategy report describes, so the link sink
            // restarts here: the replay re-declares the same topology
            // and only its traffic enters the weather analysis.
            if (job.linkStats)
                links.reset();
            auto replayed =
                core::TraceReplayer::replay(collected, cfg.mesh, ropts);
            core::NetworkSummary net;
            net.latencyMean = replayed.latencyMean;
            net.latencyMax = replayed.latencyMax;
            net.contentionMean = replayed.contentionMean;
            net.makespan = replayed.makespan;
            net.avgChannelUtilization = replayed.avgChannelUtilization;
            net.maxChannelUtilization = replayed.maxChannelUtilization;
            core::CharacterizationReport report =
                pipeline.analyze(replayed.log, cfg.mesh, job.app,
                                 core::Strategy::Static, net);
            report.verified = verified;
            fillOutcome(out, report);
            if (job.synthetic)
                fillSynthetic(out, report);
            if (job.rankActivity) {
                core::RankActivitySummary ra =
                    core::RankActivityAnalyzer{}.analyze(activity,
                                                         report.phases);
                fillRankActivity(out, ra);
                core::publishRankMetrics(registry, ra);
            }
            if (job.linkStats) {
                links.finish(replayed.makespan);
                core::LinkWeatherSummary lw =
                    core::LinkWeatherAnalyzer{}.analyze(links, cfg.mesh,
                                                        report.phases);
                fillLinkStats(out, lw);
                core::publishLinkMetrics(registry, lw);
            }
            if (injector) {
                fillFaults(out, *injector,
                           world.retransmits() + replayed.retransmits,
                           world.deliveryFailures() +
                               replayed.deliveryFailures);
            }
        } else {
            throw core::CCharError(core::StatusCode::UsageError,
                                   "unknown application '" + job.app +
                                       "'");
        }
    } catch (const core::CCharError &e) {
        out.status = core::toString(e.status().code());
        out.error = e.what();
    } catch (const desim::WatchdogError &e) {
        out.status = core::toString(core::StatusCode::WatchdogTrip);
        out.error = e.what();
        // The orchestrator reclassifies a cancelled trip (deadline vs
        // shutdown); a genuine livelock keeps watchdog-trip.
        out.cancelled = e.cancelled();
    } catch (const std::exception &e) {
        out.status = core::toString(core::StatusCode::SimError);
        out.error = e.what();
    }

    out.diagWarnings = diagSink.warnings();
    out.diagErrors = diagSink.errors();
    return out;
}

SweepResult
SweepEngine::run(const SweepRunOptions &opts)
{
    using Clock = std::chrono::steady_clock;

    std::vector<SweepJob> jobs = spec_.expand();
    const std::uint64_t matrixHash = specHash(jobs);

    SweepResult result;
    result.outcomes.resize(jobs.size());
    std::vector<std::unique_ptr<obs::MetricsRegistry>> registries(
        jobs.size());
    std::vector<char> completed(jobs.size(), 0);

    // Every slot starts as "interrupted, never started": a graceful
    // shutdown leaves unclaimed slots exactly in this state, and every
    // job that does run (or is resumed) overwrites its slot.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        result.outcomes[i].job = jobs[i];
        result.outcomes[i].status =
            core::toString(core::StatusCode::Interrupted);
        result.outcomes[i].error = "not started before shutdown";
        result.outcomes[i].attempts = 0;
    }

    // Resume prefill: journaled jobs keep their recorded outcome and
    // a registry rebuilt from the journal, and are never rerun.
    if (!opts.resumePath.empty()) {
        JournalContents journal = loadJournalFile(opts.resumePath);
        if (journal.specHash != matrixHash ||
            journal.jobs != jobs.size()) {
            throw core::CCharError(
                core::StatusCode::UsageError,
                "sweep: journal '" + opts.resumePath +
                    "' does not match this sweep spec (different "
                    "matrix?)");
        }
        for (const JournalRecord &record : journal.records) {
            std::size_t i = record.outcome.job.index;
            if (i >= jobs.size() || jobHash(jobs[i]) != record.hash) {
                throw core::CCharError(
                    core::StatusCode::UsageError,
                    "sweep: journal '" + opts.resumePath +
                        "' holds a record that does not match the "
                        "job at its index");
            }
            JobOutcome outcome = record.outcome;
            outcome.job = jobs[i];
            result.outcomes[i] = std::move(outcome);
            auto reg = std::make_unique<obs::MetricsRegistry>();
            restoreRegistry(record, *reg);
            registries[i] = std::move(reg);
            if (!completed[i]) {
                completed[i] = 1;
                ++result.resumedJobs;
            }
        }

        // Resuming into a different journal file replays the resumed
        // records first, so the new journal is complete on its own.
        if (!opts.journalPath.empty() &&
            opts.journalPath != opts.resumePath) {
            JournalWriter writer{opts.journalPath, matrixHash,
                                 jobs.size(), /*append=*/false};
            for (const JournalRecord &record : journal.records)
                writer.append(record);
        }
    }

    std::unique_ptr<JournalWriter> journal;
    {
        std::string journalPath = opts.journalPath;
        if (journalPath.empty())
            journalPath = opts.resumePath;
        if (!journalPath.empty()) {
            bool append = !opts.resumePath.empty();
            journal = std::make_unique<JournalWriter>(
                journalPath, matrixHash, jobs.size(), append);
        }
    }
    // A journal I/O failure mid-run (disk full...) must not take the
    // sweep down: journaling stops with a warning and the run keeps
    // its in-memory results.
    std::atomic<bool> journalBroken{false};

    std::size_t pool =
        opts.workers < 1 ? 1 : static_cast<std::size_t>(opts.workers);
    if (pool > jobs.size() && !jobs.empty())
        pool = jobs.size();

    struct WorkerClock
    {
        double busySeconds = 0.0;
        std::uint64_t jobsCompleted = 0;
    };
    std::vector<WorkerClock> clocks(pool);

    /**
     * One per worker: the channel between a running job and the
     * monitor thread. `kind` records who requested the cancellation
     * (1 = deadline, 2 = shutdown) and is claimed by compare-exchange
     * so the two causes cannot race each other.
     */
    struct Lane
    {
        std::atomic<bool> active{false};
        std::atomic<bool> cancel{false};
        std::atomic<int> kind{0};
        std::atomic<long long> deadlineAtMs{0};
    };
    std::vector<Lane> lanes(pool);

    Clock::time_point sweepStart = Clock::now();
    auto msSinceStart = [sweepStart] {
        return static_cast<long long>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                Clock::now() - sweepStart)
                .count());
    };
    auto shutdownLevel = [&opts] {
        return opts.shutdown == nullptr
                   ? 0
                   : opts.shutdown->load(std::memory_order_relaxed);
    };
    const bool wantCancel =
        opts.policy.jobTimeoutSec > 0.0 || opts.shutdown != nullptr;

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{result.resumedJobs};
    auto drain = [&](std::size_t worker) {
        Lane &lane = lanes[worker];
        for (;;) {
            // Graceful shutdown step 1: a signalled run stops
            // claiming; in-flight jobs elsewhere drain (or are
            // cancelled by the monitor on the second signal).
            if (shutdownLevel() > 0)
                return;
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            if (completed[i])
                continue; // resumed from the journal
            Clock::time_point t0 = Clock::now();

            JobOutcome out;
            std::unique_ptr<obs::MetricsRegistry> reg;
            int attempt = 0;
            bool interrupted = false;
            for (;;) {
                ++attempt;
                // Fresh registry per attempt: a half-run failed
                // attempt must not leak metrics into the final
                // result.
                reg = std::make_unique<obs::MetricsRegistry>();
                lane.kind.store(0, std::memory_order_relaxed);
                lane.cancel.store(false, std::memory_order_relaxed);
                lane.deadlineAtMs.store(
                    opts.policy.jobTimeoutSec > 0.0
                        ? msSinceStart() +
                              static_cast<long long>(
                                  opts.policy.jobTimeoutSec * 1000.0)
                        : 0,
                    std::memory_order_relaxed);
                lane.active.store(true, std::memory_order_release);
                out = runJob(jobs[i], *reg,
                             wantCancel ? &lane.cancel : nullptr);
                lane.active.store(false, std::memory_order_release);

                if (out.cancelled) {
                    int kind = lane.kind.load(std::memory_order_acquire);
                    if (kind == 2 ||
                        (kind == 0 && shutdownLevel() > 0)) {
                        out.status = core::toString(
                            core::StatusCode::Interrupted);
                        out.error = "interrupted by shutdown signal "
                                    "before completion";
                        interrupted = true;
                    } else {
                        out.status = core::toString(
                            core::StatusCode::DeadlineExceeded);
                        std::ostringstream err;
                        err << "wall-clock deadline exceeded "
                               "(--job-timeout "
                            << opts.policy.jobTimeoutSec << "s)";
                        out.error = err.str();
                    }
                }
                if (interrupted || out.ok())
                    break;
                if (!isTransientStatus(out.status) ||
                    attempt > opts.policy.maxRetries)
                    break;

                // Exponential backoff before the retry; a shutdown
                // signal aborts the wait (and the job).
                double delayMs =
                    backoffDelayMs(opts.policy, attempt + 1);
                Clock::time_point until =
                    Clock::now() +
                    std::chrono::milliseconds(
                        static_cast<long long>(delayMs));
                while (Clock::now() < until && shutdownLevel() == 0) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(10));
                }
                if (shutdownLevel() > 0) {
                    out.status =
                        core::toString(core::StatusCode::Interrupted);
                    out.error =
                        "interrupted during retry backoff";
                    interrupted = true;
                    break;
                }
            }

            out.attempts = attempt;
            if (interrupted) {
                // Not journaled and no registry kept: a resumed run
                // reruns this job from scratch.
                out.quarantined = false;
                result.outcomes[i] = std::move(out);
                done.fetch_add(1, std::memory_order_release);
                continue;
            }

            out.quarantined = !out.ok();
            if (journal && !journalBroken.load(std::memory_order_acquire)) {
                try {
                    journal->append(out, *reg);
                } catch (const core::CCharError &e) {
                    if (!journalBroken.exchange(true)) {
                        std::cerr << "sweep: journaling disabled: "
                                  << e.what() << "\n";
                    }
                }
            }
            result.outcomes[i] = std::move(out);
            registries[i] = std::move(reg);
            clocks[worker].busySeconds +=
                std::chrono::duration<double>(Clock::now() - t0).count();
            ++clocks[worker].jobsCompleted;
            done.fetch_add(1, std::memory_order_release);
        }
    };

    // The monitor enforces per-job wall-clock deadlines and hard
    // cancellation on the second shutdown signal. A narrow benign
    // race exists by design: if a worker finishes an attempt and
    // starts the next one between the monitor's active-check and its
    // kind-claim, the fresh attempt can absorb a cancellation meant
    // for the previous one — it is classified transient and retried,
    // never lost.
    std::atomic<bool> monitorStop{false};
    std::thread monitor;
    if (wantCancel) {
        monitor = std::thread([&] {
            while (!monitorStop.load(std::memory_order_acquire)) {
                long long nowMs = msSinceStart();
                int level = shutdownLevel();
                for (Lane &lane : lanes) {
                    if (!lane.active.load(std::memory_order_acquire))
                        continue;
                    int expected = 0;
                    if (level >= 2) {
                        if (lane.kind.compare_exchange_strong(
                                expected, 2,
                                std::memory_order_acq_rel))
                            lane.cancel.store(
                                true, std::memory_order_release);
                        continue;
                    }
                    long long deadline = lane.deadlineAtMs.load(
                        std::memory_order_relaxed);
                    if (deadline > 0 && nowMs >= deadline) {
                        if (lane.kind.compare_exchange_strong(
                                expected, 1,
                                std::memory_order_acq_rel))
                            lane.cancel.store(
                                true, std::memory_order_release);
                    }
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
            }
        });
    }

    // The reporter is pure stderr decoration: it never touches the
    // outcomes, so it cannot perturb the deterministic merge below.
    std::atomic<bool> reporterStop{false};
    std::thread reporter;
    if (opts.progress && !jobs.empty()) {
        reporter = std::thread([&] {
            for (;;) {
                std::size_t d = done.load(std::memory_order_acquire);
                double elapsed = std::chrono::duration<double>(
                                     Clock::now() - sweepStart)
                                     .count();
                std::ostringstream line;
                line << "\rsweep: " << d << "/" << jobs.size()
                     << " jobs";
                if (d > 0 && d < jobs.size()) {
                    double eta = elapsed *
                                 static_cast<double>(jobs.size() - d) /
                                 static_cast<double>(d);
                    line.precision(1);
                    line << ", eta " << std::fixed << eta << "s";
                }
                line << "   ";
                std::cerr << line.str() << std::flush;
                if (reporterStop.load(std::memory_order_acquire))
                    break;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(200));
            }
            std::cerr << "\n";
        });
    }

    if (pool <= 1) {
        drain(0);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(pool);
        for (std::size_t i = 0; i < pool; ++i)
            threads.emplace_back(drain, i);
        for (std::thread &t : threads)
            t.join();
    }

    double wallSeconds =
        std::chrono::duration<double>(Clock::now() - sweepStart).count();

    if (monitor.joinable()) {
        monitorStop.store(true, std::memory_order_release);
        monitor.join();
    }
    if (reporter.joinable()) {
        reporterStop.store(true, std::memory_order_release);
        reporter.join();
    }

    for (const JobOutcome &o : result.outcomes) {
        if (o.status == core::toString(core::StatusCode::Interrupted)) {
            result.interrupted = true;
            break;
        }
    }

    result.workerStats.resize(pool);
    for (std::size_t w = 0; w < pool; ++w) {
        result.workerStats[w].busyFraction =
            wallSeconds > 0.0
                ? std::min(1.0, clocks[w].busySeconds / wallSeconds)
                : 0.0;
        result.workerStats[w].jobsCompleted = clocks[w].jobsCompleted;
    }

    // Merge strictly in job order: the fold is associative but the
    // interned-name order and float accumulation are not, so the order
    // must not depend on which worker finished first.
    result.metrics = std::make_unique<obs::MetricsRegistry>();
    for (const auto &reg : registries) {
        if (reg)
            result.metrics->mergeFrom(*reg);
    }

    // Publish the worker view, then zero the whole wall-clock family:
    // the keys document the schema while the values stay deterministic
    // (workerStats carries the measurements to the CLI).
    if (!result.workerStats.empty()) {
        double bfMin = 1.0, bfMax = 0.0, bfSum = 0.0;
        std::uint64_t jMin = std::numeric_limits<std::uint64_t>::max();
        std::uint64_t jMax = 0, jSum = 0;
        for (const WorkerStat &ws : result.workerStats) {
            bfMin = std::min(bfMin, ws.busyFraction);
            bfMax = std::max(bfMax, ws.busyFraction);
            bfSum += ws.busyFraction;
            jMin = std::min(jMin, ws.jobsCompleted);
            jMax = std::max(jMax, ws.jobsCompleted);
            jSum += ws.jobsCompleted;
        }
        double n = static_cast<double>(result.workerStats.size());
        result.metrics->gauge("sweep.workers").set(n);
        result.metrics->gauge("sweep.worker.busy_fraction_mean")
            .set(bfSum / n);
        result.metrics->gauge("sweep.worker.busy_fraction_min")
            .set(bfMin);
        result.metrics->gauge("sweep.worker.busy_fraction_max")
            .set(bfMax);
        result.metrics->gauge("sweep.worker.jobs_mean")
            .set(static_cast<double>(jSum) / n);
        result.metrics->gauge("sweep.worker.jobs_min")
            .set(static_cast<double>(jMin));
        result.metrics->gauge("sweep.worker.jobs_max")
            .set(static_cast<double>(jMax));
    }
    // Resumed-job count depends on where the previous run stopped, so
    // it joins the zeroed wall-clock family (real value: stderr only).
    result.metrics->gauge("sweep.resumed_jobs")
        .set(static_cast<double>(result.resumedJobs));
    for (const char *name : kWallClockGauges)
        result.metrics->gauge(name).set(0.0);

    // Orchestration counters ARE deterministic: attempts are a
    // journaled property of each outcome, identical across -j and
    // across an interrupted-then-resumed split.
    result.metrics->counter("sweep.retries")
        .add(static_cast<std::uint64_t>(result.retries()));
    result.metrics->counter("sweep.quarantined")
        .add(static_cast<std::uint64_t>(result.quarantinedCount()));
    return result;
}

std::size_t
SweepResult::failures() const
{
    std::size_t n = 0;
    for (const JobOutcome &o : outcomes)
        n += o.ok() ? 0 : 1;
    return n;
}

std::size_t
SweepResult::retries() const
{
    std::size_t n = 0;
    for (const JobOutcome &o : outcomes)
        n += o.attempts > 1 ? static_cast<std::size_t>(o.attempts - 1)
                            : 0;
    return n;
}

std::size_t
SweepResult::quarantinedCount() const
{
    std::size_t n = 0;
    for (const JobOutcome &o : outcomes)
        n += o.quarantined ? 1 : 0;
    return n;
}

std::size_t
SweepResult::interruptedCount() const
{
    std::size_t n = 0;
    for (const JobOutcome &o : outcomes)
        n += o.status == core::toString(core::StatusCode::Interrupted)
                 ? 1
                 : 0;
    return n;
}

void
SweepResult::writeJson(std::ostream &os) const
{
    os << "{\"jobs\":[";
    bool first = true;
    for (const JobOutcome &o : outcomes) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"index\":" << o.job.index << ",\"app\":";
        jsonEscape(os, o.job.app);
        os << ",\"procs\":" << o.job.procs << ",\"width\":" << o.job.width
           << ",\"height\":" << o.job.height
           << ",\"torus\":" << (o.job.torus ? "true" : "false")
           << ",\"vcs\":" << o.job.vcs << ",\"load\":";
        jsonNumber(os, o.job.load);
        os << ",\"seed\":" << o.job.seed << ",\"fault_plan\":";
        jsonEscape(os, o.job.faultPlan);
        os << ",\"status\":";
        jsonEscape(os, o.status);
        os << ",\"error\":";
        jsonEscape(os, o.error);
        os << ",\"verified\":" << (o.verified ? "true" : "false")
           << ",\"messages\":" << o.messages << ",\"total_bytes\":";
        jsonNumber(os, o.totalBytes);
        os << ",\"latency_mean_us\":";
        jsonNumber(os, o.latencyMean);
        os << ",\"latency_max_us\":";
        jsonNumber(os, o.latencyMax);
        os << ",\"contention_mean_us\":";
        jsonNumber(os, o.contentionMean);
        os << ",\"makespan_us\":";
        jsonNumber(os, o.makespan);
        os << ",\"avg_channel_utilization\":";
        jsonNumber(os, o.avgChannelUtilization);
        os << ",\"max_channel_utilization\":";
        jsonNumber(os, o.maxChannelUtilization);
        os << ",\"temporal_fit\":";
        jsonEscape(os, o.temporalFit);
        os << ",\"spatial_pattern\":";
        jsonEscape(os, o.spatialPattern);
        os << ",\"dropped_packets\":" << o.droppedPackets
           << ",\"corrupted_packets\":" << o.corruptedPackets
           << ",\"link_drops\":" << o.linkDrops
           << ",\"retransmits\":" << o.retransmits
           << ",\"delivery_failures\":" << o.deliveryFailures
           << ",\"rerouted_packets\":" << o.reroutedPackets
           << ",\"reroute_extra_hops\":" << o.rerouteExtraHops
           << ",\"diag_warnings\":" << o.diagWarnings
           << ",\"diag_errors\":" << o.diagErrors
           << ",\"skew_max_us\":";
        jsonNumber(os, o.skewMaxUs);
        os << ",\"idle_fraction_mean\":";
        jsonNumber(os, o.idleFractionMean);
        os << ",\"idle_waves\":" << o.idleWaves
           << ",\"wave_speed_max\":";
        jsonNumber(os, o.waveSpeedMax);
        os << ",\"max_link_util\":";
        jsonNumber(os, o.maxLinkUtil);
        os << ",\"link_gini\":";
        jsonNumber(os, o.linkGini);
        os << ",\"hotspot_count\":" << o.hotspotCount
           << ",\"congestion_onset_load\":";
        jsonNumber(os, o.congestionOnsetLoad);
        os << ",\"synth_latency_err\":";
        jsonNumber(os, o.synthLatencyErr);
        os << ",\"synth_temporal_ks\":";
        jsonNumber(os, o.synthTemporalKs);
        os << ",\"synth_spatial_ks\":";
        jsonNumber(os, o.synthSpatialKs);
        os << ",\"synth_volume_ks\":";
        jsonNumber(os, o.synthVolumeKs);
        os << ",\"attempts\":" << o.attempts << ",\"quarantined\":"
           << (o.quarantined ? "true" : "false") << "}";
    }
    os << "],\"failures\":" << failures();
    // Degraded-results section: present only when at least one job
    // exhausted its options, so healthy reports keep their schema.
    if (quarantinedCount() > 0) {
        os << ",\"degraded\":[";
        bool firstDegraded = true;
        for (const JobOutcome &o : outcomes) {
            if (!o.quarantined)
                continue;
            if (!firstDegraded)
                os << ",";
            firstDegraded = false;
            os << "{\"index\":" << o.job.index << ",\"app\":";
            jsonEscape(os, o.job.app);
            os << ",\"label\":";
            jsonEscape(os, o.job.label());
            os << ",\"status\":";
            jsonEscape(os, o.status);
            os << ",\"attempts\":" << o.attempts << ",\"error\":";
            jsonEscape(os, o.error);
            os << "}";
        }
        os << "]";
    }
    os << ",\"metrics\":";
    if (metrics)
        metrics->writeJson(os);
    else
        os << "null";
    os << "}\n";
}

void
SweepResult::writeCsv(std::ostream &os) const
{
    os << "index,app,procs,width,height,torus,vcs,load,seed,fault_plan,"
          "status,verified,messages,total_bytes,latency_mean_us,"
          "latency_max_us,contention_mean_us,makespan_us,"
          "avg_channel_utilization,max_channel_utilization,temporal_fit,"
          "spatial_pattern,dropped_packets,corrupted_packets,link_drops,"
          "retransmits,delivery_failures,rerouted_packets,"
          "reroute_extra_hops,diag_warnings,diag_errors,"
          "skew_max_us,idle_fraction_mean,idle_waves,wave_speed_max,"
          "max_link_util,link_gini,hotspot_count,"
          "congestion_onset_load,synth_latency_err,synth_temporal_ks,"
          "synth_spatial_ks,synth_volume_ks,attempts,quarantined\n";
    for (const JobOutcome &o : outcomes) {
        os << o.job.index << ",";
        csvField(os, o.job.app);
        os << "," << o.job.procs << "," << o.job.width << ","
           << o.job.height << "," << (o.job.torus ? 1 : 0) << ","
           << o.job.vcs << ",";
        jsonNumber(os, o.job.load);
        os << "," << o.job.seed << ",";
        csvField(os, o.job.faultPlan);
        os << ",";
        csvField(os, o.status);
        os << "," << (o.verified ? 1 : 0) << "," << o.messages << ",";
        jsonNumber(os, o.totalBytes);
        os << ",";
        jsonNumber(os, o.latencyMean);
        os << ",";
        jsonNumber(os, o.latencyMax);
        os << ",";
        jsonNumber(os, o.contentionMean);
        os << ",";
        jsonNumber(os, o.makespan);
        os << ",";
        jsonNumber(os, o.avgChannelUtilization);
        os << ",";
        jsonNumber(os, o.maxChannelUtilization);
        os << ",";
        csvField(os, o.temporalFit);
        os << ",";
        csvField(os, o.spatialPattern);
        os << "," << o.droppedPackets << "," << o.corruptedPackets << ","
           << o.linkDrops << "," << o.retransmits << ","
           << o.deliveryFailures << "," << o.reroutedPackets << ","
           << o.rerouteExtraHops << "," << o.diagWarnings << ","
           << o.diagErrors << ",";
        jsonNumber(os, o.skewMaxUs);
        os << ",";
        jsonNumber(os, o.idleFractionMean);
        os << "," << o.idleWaves << ",";
        jsonNumber(os, o.waveSpeedMax);
        os << ",";
        jsonNumber(os, o.maxLinkUtil);
        os << ",";
        jsonNumber(os, o.linkGini);
        os << "," << o.hotspotCount << ",";
        jsonNumber(os, o.congestionOnsetLoad);
        os << ",";
        jsonNumber(os, o.synthLatencyErr);
        os << ",";
        jsonNumber(os, o.synthTemporalKs);
        os << ",";
        jsonNumber(os, o.synthSpatialKs);
        os << ",";
        jsonNumber(os, o.synthVolumeKs);
        os << "," << o.attempts << "," << (o.quarantined ? 1 : 0)
           << "\n";
    }
}

} // namespace cchar::sweep
