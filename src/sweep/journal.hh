/**
 * @file
 * Append-only job journal: the crash-safety substrate of the sweep
 * orchestrator.
 *
 * A sweep is a matrix of independent jobs, each expensive; losing a
 * half-finished campaign to a crash, OOM kill, or Ctrl-C throws away
 * hours of compute. The journal makes every *completed* job durable
 * the moment it finishes: one JSONL record per job, written with
 * O_APPEND + fdatasync, so after any interruption the journal holds
 * exactly the set of jobs whose results are safe to reuse.
 *
 * ## File format (one JSON object per line)
 *
 * Line 1 is the header:
 *
 *   {"type":"cchar-sweep-journal","v":1,"jobs":N,"spec_hash":"0x..."}
 *
 * Every further line is a job record keyed by the canonical job hash:
 *
 *   {"type":"job","hash":"0x...","index":i,"attempts":k,
 *    "quarantined":false,"status":"ok",...outcome fields...,
 *    "counters":{...},"gauges":{...},"histograms":{...}}
 *
 * ## Exactness discipline
 *
 * `cchar sweep --resume` must reproduce the uninterrupted aggregate
 * JSON/CSV byte for byte, so a record stores everything a live run
 * would have contributed, losslessly:
 *
 *  - every double is serialized as a hexadecimal float string
 *    ("0x1.8p+3"), which round-trips exactly through strtod;
 *  - every 64-bit counter is a plain JSON integer parsed with
 *    JsonScanner::readUInt (no double in the path);
 *  - strings round-trip through the scanner's escape decoding;
 *  - the job's whole metrics registry (counters, gauges, sparse
 *    histogram buckets) is captured, so the resumed run can rebuild
 *    the per-job registry and merge it in canonical index order as
 *    if the job had just run.
 *
 * ## Identity and validation
 *
 * The canonical job hash is FNV-1a 64 over the full job spec
 * (including its index, which disambiguates duplicate matrix
 * points); the spec hash folds all job hashes in order. --resume
 * refuses a journal whose spec hash does not match the expanded
 * spec, and every record's hash is revalidated against the job at
 * its index, so a journal can never be replayed against the wrong
 * matrix.
 *
 * ## Crash tolerance
 *
 * A SIGKILL can land mid-write, leaving a torn final line. The
 * loader therefore tolerates an unparseable or unterminated *last*
 * line (the record is dropped with a diagnostic and the job simply
 * reruns); a malformed line anywhere earlier is a ParseError,
 * because it cannot be explained by a single interrupted append.
 * Duplicate records for one index are last-wins (a rerun appends a
 * fresh record rather than rewriting the file).
 */

#ifndef CCHAR_SWEEP_JOURNAL_HH
#define CCHAR_SWEEP_JOURNAL_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "engine.hh"
#include "obs/registry.hh"
#include "spec.hh"

namespace cchar::sweep {

/** Canonical FNV-1a 64 hash of a full job spec (index included). */
std::uint64_t jobHash(const SweepJob &job);

/** Fold of all job hashes in canonical order (+ job count). */
std::uint64_t specHash(const std::vector<SweepJob> &jobs);

/** One parsed journal record: outcome + captured registry content. */
struct JournalRecord
{
    std::uint64_t hash = 0;
    /** Outcome as journaled; `outcome.job` is NOT stored in the file
     *  and stays default until resume rebinds it from the spec. */
    JobOutcome outcome;
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, obs::HistogramData>> histograms;
};

/** Parsed journal: header + records (last-wins per index). */
struct JournalContents
{
    std::uint64_t specHash = 0;
    std::size_t jobs = 0;
    std::vector<JournalRecord> records;
    /** True when a torn final line was dropped. */
    bool truncatedTail = false;
};

/** Header line (newline-terminated). */
std::string formatJournalHeader(std::uint64_t specHash,
                                std::size_t jobs);

/**
 * Job record line (newline-terminated). `registry` is the job's
 * private registry exactly as runJob filled it.
 */
std::string formatJournalRecord(const JobOutcome &outcome,
                                const obs::MetricsRegistry &registry);

/** Record line from an already-parsed record (fixpoint with parse). */
std::string formatJournalRecord(const JournalRecord &record);

/**
 * Parse a whole journal document.
 * @throws core::CCharError(ParseError) on a bad header or a
 *         malformed non-final line; a torn final line only sets
 *         truncatedTail and reports a warning diagnostic.
 */
JournalContents parseJournal(const std::string &text);

/** parseJournal over a file (CCharError(IoError) if unreadable). */
JournalContents loadJournalFile(const std::string &path);

/**
 * Rebuild a job's metrics registry from its journal record
 * (counters added, gauges set, histogram payloads restored
 * verbatim). Names were captured in sorted order, so interning
 * order — and with it the downstream merge — matches a live run.
 */
void restoreRegistry(const JournalRecord &record,
                     obs::MetricsRegistry &registry);

/**
 * Durable appender. Each append formats one record, writes it with
 * a single O_APPEND write, and fdatasyncs before returning, so a
 * record is either fully on disk or not in the file at all (modulo
 * a torn tail, which the loader tolerates). Thread-safe.
 */
class JournalWriter
{
  public:
    /**
     * @param path   Journal file.
     * @param append false: create/truncate and write the header;
     *               true: append to an existing (validated) journal.
     * @throws core::CCharError(IoError) when the file cannot be
     *         opened or written.
     */
    JournalWriter(const std::string &path, std::uint64_t specHash,
                  std::size_t jobs, bool append);

    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    ~JournalWriter();

    /** Durably append one completed/failed job. */
    void append(const JobOutcome &outcome,
                const obs::MetricsRegistry &registry);

    /** Durably re-append an already-parsed record (used when a
     *  resume writes to a different journal file than it read, so
     *  the new journal is complete on its own). */
    void append(const JournalRecord &record);

    const std::string &path() const { return path_; }

  private:
    void writeDurably(const std::string &line);

    std::string path_;
    std::mutex mutex_;
    int fd_ = -1;
};

} // namespace cchar::sweep

#endif // CCHAR_SWEEP_JOURNAL_HH
