#include "mesh.hh"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace cchar::mesh {

namespace {

/** Direction encoding for per-node outgoing channels. */
enum Direction { East = 0, West = 1, North = 2, South = 3 };

/** Signed steps toward dst in one dimension (mesh: direct). */
int
meshDelta(int from, int to)
{
    return to - from;
}

/** Signed steps toward dst in one ring (torus: shortest way). */
int
torusDelta(int from, int to, int extent)
{
    int fwd = (to - from + extent) % extent;  // steps in + direction
    int bwd = fwd - extent;                   // steps in - direction
    return fwd <= -bwd ? fwd : bwd;
}

} // namespace

MeshNetwork::~MeshNetwork()
{
    sim_->destroyProcesses();
}

MeshNetwork::MeshNetwork(desim::Simulator &sim, const MeshConfig &cfg,
                         trace::TrafficLog *log)
    : sim_(&sim), cfg_(cfg), log_(log), faults_(cfg.faults)
{
    if (cfg_.width < 1 || cfg_.height < 1)
        throw std::invalid_argument("mesh: degenerate dimensions");
    if (cfg_.flitBytes < 1)
        throw std::invalid_argument("mesh: flitBytes must be positive");
    if (cfg_.virtualChannels < 1)
        throw std::invalid_argument("mesh: need at least one VC");
    if (cfg_.topology == Topology::Torus && cfg_.virtualChannels < 2)
        throw std::invalid_argument("mesh: torus needs >= 2 virtual "
                                    "channels (dateline scheme)");

    int n = cfg_.nodes();
    bool torus = cfg_.topology == Topology::Torus;
    if (log_)
        log_->setNprocs(n);
    lanes_.resize(static_cast<std::size_t>(n) * 4);
    for (int node = 0; node < n; ++node) {
        int x = nodeX(node), y = nodeY(node);
        auto makeLanes = [&](int dir, const char *label) {
            auto &vcs =
                lanes_[static_cast<std::size_t>(node) * 4 +
                       static_cast<std::size_t>(dir)];
            for (int vc = 0; vc < cfg_.virtualChannels; ++vc) {
                vcs.push_back(std::make_unique<desim::Resource>(
                    *sim_, 1,
                    "ch-" + std::to_string(node) + "-" + label + "-v" +
                        std::to_string(vc)));
            }
        };
        if (x + 1 < cfg_.width || (torus && cfg_.width > 1))
            makeLanes(East, "E");
        if (x > 0 || (torus && cfg_.width > 1))
            makeLanes(West, "W");
        if (y + 1 < cfg_.height || (torus && cfg_.height > 1))
            makeLanes(North, "N");
        if (y > 0 || (torus && cfg_.height > 1))
            makeLanes(South, "S");
        injection_.push_back(std::make_unique<desim::Resource>(
            *sim_, 1, "inj-" + std::to_string(node)));
        rx_.push_back(std::make_unique<desim::Mailbox<Packet>>(*sim_));
    }

    // Observability: resolve handles once; transfer() never looks a
    // metric up by name.
    if (obs::MetricsRegistry *reg = obs::metrics()) {
        msgCtr_ = reg->counter("mesh.messages");
        flitCtr_ = reg->counter("mesh.flits");
        stallCtr_ = reg->counter("mesh.stalls");
        latencyHist_ = reg->histogram("mesh.latency_us");
        contentionHist_ = reg->histogram("mesh.contention_us");
        hopHist_ = reg->histogram("mesh.hop_latency_us");
        queueHist_ = reg->histogram("mesh.queue_us");
        stallTimeHist_ = reg->histogram("mesh.stall_us");
        transitHist_ = reg->histogram("mesh.transit_us");
        // Registered only under a fault plan so a fault-free metrics
        // snapshot stays byte-identical to pre-fault-layer builds.
        if (faults_) {
            rerouteCtr_ = reg->counter("mesh.rerouted_packets");
            rerouteHopsCtr_ = reg->counter("mesh.reroute_extra_hops");
        }
    }
    tracer_ = obs::tracer();
    flows_ = obs::flows();
    activity_ = obs::rankActivity();
    linkStats_ = obs::linkStats();
    if (linkStats_) {
        // Declare the link universe up front, channel lanes first in
        // the exact flat order the utilization statistics iterate, so
        // the sink's channel aggregates replicate them bit for bit.
        linkStats_->declareRouters(n);
        laneLink_.resize(lanes_.size());
        for (std::size_t li = 0; li < lanes_.size(); ++li) {
            int node = static_cast<int>(li / 4);
            int dir = static_cast<int>(li % 4);
            for (std::size_t vc = 0; vc < lanes_[li].size(); ++vc) {
                laneLink_[li].push_back(linkStats_->declareLink(
                    node, dir, static_cast<int>(vc)));
            }
        }
        injLink_.reserve(static_cast<std::size_t>(n));
        for (int node = 0; node < n; ++node) {
            injLink_.push_back(
                linkStats_->declareLink(node, obs::kLinkInject, 0));
        }
    }
    if (tracer_) {
        routerLane_.reserve(static_cast<std::size_t>(n));
        for (int node = 0; node < n; ++node)
            routerLane_.push_back(
                tracer_->lane("router:" + std::to_string(node)));
        msgName_ = tracer_->name("msg");
        holdName_ = tracer_->name("hold");
        stallName_ = tracer_->name("stall");
        drainName_ = tracer_->name("drain");
    }
}

int
MeshNetwork::hopCount(int src, int dst) const
{
    if (cfg_.topology == Topology::Torus) {
        return std::abs(torusDelta(nodeX(src), nodeX(dst), cfg_.width)) +
               std::abs(
                   torusDelta(nodeY(src), nodeY(dst), cfg_.height));
    }
    return std::abs(nodeX(src) - nodeX(dst)) +
           std::abs(nodeY(src) - nodeY(dst));
}

void
MeshNetwork::route(int src, int dst, RouteBuf &hops) const
{
    bool torus = cfg_.topology == Topology::Torus;
    int x = nodeX(src), y = nodeY(src);
    int dxTotal = torus ? torusDelta(x, nodeX(dst), cfg_.width)
                        : meshDelta(x, nodeX(dst));
    int dyTotal = torus ? torusDelta(y, nodeY(dst), cfg_.height)
                        : meshDelta(y, nodeY(dst));

    for (int step = 0; step < std::abs(dxTotal); ++step) {
        Hop hop;
        hop.from = nodeId(x, y);
        hop.isX = true;
        if (dxTotal > 0) {
            hop.dir = East;
            hop.wrap = (x == cfg_.width - 1);
            x = (x + 1) % cfg_.width;
        } else {
            hop.dir = West;
            hop.wrap = (x == 0);
            x = (x - 1 + cfg_.width) % cfg_.width;
        }
        hops.push_back(hop);
    }
    for (int step = 0; step < std::abs(dyTotal); ++step) {
        Hop hop;
        hop.from = nodeId(x, y);
        hop.isX = false;
        if (dyTotal > 0) {
            hop.dir = North;
            hop.wrap = (y == cfg_.height - 1);
            y = (y + 1) % cfg_.height;
        } else {
            hop.dir = South;
            hop.wrap = (y == 0);
            y = (y - 1 + cfg_.height) % cfg_.height;
        }
        hops.push_back(hop);
    }
}

bool
MeshNetwork::routeAvoiding(int src, int dst, double now,
                           RouteBuf &hops) const
{
    if (cfg_.topology == Topology::Torus) {
        // Dimension-ordered with a per-dimension ring-arc flip: when
        // the shortest arc crosses a down link, go the other way
        // around. The dateline VC discipline keeps either arc
        // deadlock-free (wrap hops switch to the upper VC class).
        auto emitRing = [&](bool isX, int from, int to, int extent,
                            int fixed) -> bool {
            int prim = torusDelta(from, to, extent);
            if (prim == 0)
                return true;
            int fwd = (to - from + extent) % extent;
            int alt = prim == fwd ? fwd - extent : fwd;
            for (int delta : {prim, alt}) {
                std::size_t mark = hops.size();
                int c = from;
                bool ok = true;
                for (int step = 0; step < std::abs(delta); ++step) {
                    Hop hop;
                    hop.from = isX ? nodeId(c, fixed) : nodeId(fixed, c);
                    hop.isX = isX;
                    if (delta > 0) {
                        hop.dir = isX ? East : North;
                        hop.wrap = (c == extent - 1);
                        c = (c + 1) % extent;
                    } else {
                        hop.dir = isX ? West : South;
                        hop.wrap = (c == 0);
                        c = (c - 1 + extent) % extent;
                    }
                    int next = isX ? nodeId(c, fixed) : nodeId(fixed, c);
                    if (faults_->linkDown(hop.from, next, now)) {
                        ok = false;
                        break;
                    }
                    hops.push_back(hop);
                }
                if (ok)
                    return true;
                while (hops.size() > mark)
                    hops.pop_back();
            }
            return false;
        };
        if (!emitRing(true, nodeX(src), nodeX(dst), cfg_.width,
                      nodeY(src)))
            return false;
        return emitRing(false, nodeY(src), nodeY(dst), cfg_.height,
                        nodeX(dst));
    }

    // Mesh: BFS over (node, west-still-allowed) states. The west-first
    // turn model forbids turning into West, so a path is legal iff all
    // its West hops come first; within that restriction the search is
    // fully adaptive (non-minimal detours included) and remains
    // deadlock-free with a single VC. Fixed expansion order keeps the
    // chosen detour deterministic.
    int n = cfg_.nodes();
    std::vector<std::int8_t> prevDir(static_cast<std::size_t>(n) * 2,
                                     -1);
    std::vector<int> prevState(static_cast<std::size_t>(n) * 2, -1);
    std::vector<int> frontier;
    frontier.reserve(static_cast<std::size_t>(n) * 2);
    int start = src * 2 + 1; // state = node * 2 + westAllowed
    prevDir[static_cast<std::size_t>(start)] = 4; // visited sentinel
    frontier.push_back(start);
    int goal = -1;
    for (std::size_t qi = 0; qi < frontier.size() && goal < 0; ++qi) {
        int state = frontier[qi];
        int node = state / 2;
        bool westAllowed = (state & 1) != 0;
        int x = nodeX(node), y = nodeY(node);
        for (int dir : {East, West, North, South}) {
            int nx = x, ny = y;
            switch (dir) {
            case East:
                if (x + 1 >= cfg_.width)
                    continue;
                nx = x + 1;
                break;
            case West:
                if (!westAllowed || x == 0)
                    continue;
                nx = x - 1;
                break;
            case North:
                if (y + 1 >= cfg_.height)
                    continue;
                ny = y + 1;
                break;
            default: // South
                if (y == 0)
                    continue;
                ny = y - 1;
                break;
            }
            int next = nodeId(nx, ny);
            if (faults_->linkDown(node, next, now))
                continue;
            int nextState = next * 2 + (dir == West ? 1 : 0);
            if (prevDir[static_cast<std::size_t>(nextState)] != -1)
                continue;
            prevDir[static_cast<std::size_t>(nextState)] =
                static_cast<std::int8_t>(dir);
            prevState[static_cast<std::size_t>(nextState)] = state;
            if (next == dst) {
                goal = nextState;
                break;
            }
            frontier.push_back(nextState);
        }
    }
    if (goal < 0)
        return false;

    // Walk the predecessor chain back to the source, then emit the
    // hops forward.
    desim::SmallVec<std::int8_t, 30> rev;
    for (int cur = goal; cur != start;
         cur = prevState[static_cast<std::size_t>(cur)])
        rev.push_back(prevDir[static_cast<std::size_t>(cur)]);
    int x = nodeX(src), y = nodeY(src);
    for (std::size_t i = rev.size(); i-- > 0;) {
        Hop hop;
        hop.from = nodeId(x, y);
        hop.dir = rev[i];
        hop.wrap = false;
        hop.isX = rev[i] == East || rev[i] == West;
        switch (rev[i]) {
        case East:
            ++x;
            break;
        case West:
            --x;
            break;
        case North:
            ++y;
            break;
        default: // South
            --y;
            break;
        }
        hops.push_back(hop);
    }
    return true;
}

int
MeshNetwork::neighborOf(const Hop &hop) const
{
    int x = nodeX(hop.from), y = nodeY(hop.from);
    switch (hop.dir) {
    case East:
        x = (x + 1) % cfg_.width;
        break;
    case West:
        x = (x - 1 + cfg_.width) % cfg_.width;
        break;
    case North:
        y = (y + 1) % cfg_.height;
        break;
    default: // South
        y = (y - 1 + cfg_.height) % cfg_.height;
        break;
    }
    return nodeId(x, y);
}

desim::Resource &
MeshNetwork::lane(const Hop &hop, bool crossed_dateline, int &vcOut)
{
    auto &vcs = lanes_[static_cast<std::size_t>(hop.from) * 4 +
                       static_cast<std::size_t>(hop.dir)];
    if (vcs.empty())
        throw std::logic_error("mesh: hop over a missing link");
    int v = cfg_.virtualChannels;
    int base = 0, span = v;
    if (cfg_.topology == Topology::Torus) {
        // Dateline scheme: lower class before crossing, upper after.
        span = v / 2;
        base = crossed_dateline ? span : 0;
        if (span == 0) {
            span = 1;
            base = 0;
        }
    }
    // Among the permitted class, take the least-loaded lane
    // (deterministic tie-break toward the lowest index).
    int bestIdx = base;
    desim::Resource *best = vcs[static_cast<std::size_t>(base)].get();
    for (int i = 1; i < span; ++i) {
        desim::Resource *cand =
            vcs[static_cast<std::size_t>(base + i)].get();
        std::size_t candLoad =
            cand->queueLength() + static_cast<std::size_t>(cand->inUse());
        std::size_t bestLoad =
            best->queueLength() + static_cast<std::size_t>(best->inUse());
        if (candLoad < bestLoad) {
            best = cand;
            bestIdx = base + i;
        }
    }
    vcOut = bestIdx;
    return *best;
}

int
MeshNetwork::flitsOf(int bytes) const
{
    return 1 + (bytes + cfg_.flitBytes - 1) / cfg_.flitBytes;
}

double
MeshNetwork::noLoadLatency(int hops, int bytes) const
{
    return static_cast<double>(hops) * cfg_.routerDelay +
           static_cast<double>(flitsOf(bytes)) * cfg_.flitTime;
}

desim::Task<trace::MessageRecord>
MeshNetwork::transfer(Packet pkt)
{
    if (pkt.src < 0 || pkt.src >= cfg_.nodes() || pkt.dst < 0 ||
        pkt.dst >= cfg_.nodes()) {
        throw std::invalid_argument("mesh: node id out of range");
    }
    if (pkt.src == pkt.dst)
        throw std::invalid_argument("mesh: self-transfer is not a "
                                    "network event");

    trace::MessageRecord rec;
    rec.src = pkt.src;
    rec.dst = pkt.dst;
    rec.bytes = pkt.bytes;
    rec.kind = pkt.kind;
    rec.injectTime = sim_->now();

    // Fault decisions are drawn at injection so the RNG stream position
    // stays a pure function of the (deterministic) injection sequence,
    // independent of in-network interleaving.
    bool faultDrop = false;
    if (faults_ && faults_->dropsConfigured())
        faultDrop = faults_->drawDrop(rec.injectTime);
    if (faults_ && faults_->corruptsConfigured() &&
        faults_->drawCorrupt(rec.injectTime)) {
        pkt.corrupted = true;
    }

    // A producer that knows the generation time opens the flow itself;
    // anything else (raw post()/transfer() callers) is generated here.
    if (flows_ && pkt.flow == 0) {
        pkt.flow = flows_->open(static_cast<int>(pkt.kind), pkt.src,
                                pkt.dst, pkt.bytes, rec.injectTime);
    }
    bool flowTraced =
        tracer_ && flows_ && pkt.flow != 0 && flows_->sampled(pkt.flow);

    RouteBuf hops;
    route(pkt.src, pkt.dst, hops);
    if (faults_ && cfg_.adaptiveRouting && faults_->linksConfigured()) {
        // Fault-aware adaptive routing: when the dimension-ordered
        // route crosses a link down right now, swap in a deadlock-free
        // detour. The per-hop check below still guards links that go
        // down while the worm is in flight.
        bool blocked = false;
        for (const Hop &hop : hops) {
            if (faults_->linkDown(hop.from, neighborOf(hop),
                                  rec.injectTime)) {
                blocked = true;
                break;
            }
        }
        if (blocked) {
            int minimal = static_cast<int>(hops.size());
            hops.clear();
            if (routeAvoiding(pkt.src, pkt.dst, rec.injectTime, hops)) {
                int extra = static_cast<int>(hops.size()) - minimal;
                faults_->noteReroute(extra);
                ++rerouted_;
                rerouteExtraHops_ +=
                    static_cast<std::uint64_t>(extra);
                rerouteCtr_.add(1);
                rerouteHopsCtr_.add(static_cast<std::uint64_t>(extra));
            } else {
                // No legal detour: fall through on the primary route
                // and let the down link tail-drop the worm as before.
                hops.clear();
                route(pkt.src, pkt.dst, hops);
            }
        }
    }
    rec.hops = static_cast<std::int32_t>(hops.size());
    double body =
        static_cast<double>(flitsOf(pkt.bytes)) * cfg_.flitTime;
    bool early = cfg_.holding == ChannelHolding::EarlyRelease;

    // The injection port serializes a node's own messages; it is the
    // first link of the worm.
    struct HeldLane
    {
        desim::Resource *res;
        int node;     ///< router whose outgoing lane this is
        SimTime since; ///< acquisition time (channel-hold span start)
        int link;     ///< link-stats id (-1 when the sink is absent)
    };
    // A worm holds at most its whole path plus the injection port, so
    // the held stack fits inline alongside the route buffer.
    desim::SmallVec<HeldLane, 31> held;
    int curLink = -1;
    if (linkStats_) {
        curLink = injLink_[static_cast<std::size_t>(pkt.src)];
        linkStats_->onOffered(pkt.bytes, rec.injectTime);
        linkStats_->onRequest(curLink, rec.injectTime);
    }
    co_await injection_[static_cast<std::size_t>(pkt.src)]->acquire();
    // Queueing delay: time spent waiting behind the node's own earlier
    // messages for the injection port.
    double queueWait = sim_->now() - rec.injectTime;
    double stallSum = 0.0;
    if (linkStats_)
        linkStats_->onAcquire(curLink, sim_->now(), queueWait, pkt.bytes);
    held.push_back(
        HeldLane{injection_[static_cast<std::size_t>(pkt.src)].get(),
                 pkt.src, sim_->now(), curLink});
    if (flowTraced) {
        tracer_->flowStart(routerLane_[static_cast<std::size_t>(pkt.src)],
                           msgName_, rec.injectTime, pkt.flow);
    }

    bool crossedX = false, crossedY = false;
    for (const Hop &hop : hops) {
        if (hop.wrap) {
            // The dateline link itself already travels in the upper
            // VC class, breaking the ring dependency cycle.
            (hop.isX ? crossedX : crossedY) = true;
        }
        if (faults_ &&
            faults_->linkDown(hop.from, neighborOf(hop), sim_->now())) {
            // Down link: the worm is tail-dropped at this router. Free
            // everything it holds so the network keeps flowing; the
            // message is neither delivered nor logged.
            for (const HeldLane &hl : held) {
                if (tracer_)
                    tracer_->span(
                        routerLane_[static_cast<std::size_t>(hl.node)],
                        holdName_, hl.since, sim_->now() - hl.since);
                if (linkStats_)
                    linkStats_->onRelease(hl.link, sim_->now());
                hl.res->release();
            }
            faults_->noteLinkDrop();
            rec.delivered = false;
            rec.deliverTime = sim_->now();
            co_return rec;
        }
        int vcIdx = 0;
        desim::Resource &ch =
            lane(hop, hop.isX ? crossedX : crossedY, vcIdx);
        SimTime hopStart = sim_->now();
        if (linkStats_) {
            curLink = laneLink_[static_cast<std::size_t>(hop.from) * 4 +
                                static_cast<std::size_t>(hop.dir)]
                               [static_cast<std::size_t>(vcIdx)];
            linkStats_->onRequest(curLink, hopStart);
        }
        co_await ch.acquire();
        SimTime waited = sim_->now() - hopStart;
        if (linkStats_)
            linkStats_->onAcquire(curLink, sim_->now(), waited,
                                  pkt.bytes);
        if (waited > 0.0) {
            stallCtr_.add(1);
            stallSum += waited;
            if (tracer_)
                tracer_->instant(
                    routerLane_[static_cast<std::size_t>(hop.from)],
                    stallName_, hopStart);
        }
        if (flowTraced) {
            tracer_->flowStep(
                routerLane_[static_cast<std::size_t>(hop.from)],
                holdName_, sim_->now(), pkt.flow);
        }
        if (early) {
            // The head advances off the previous link; its tail
            // clears that link one body-time later.
            HeldLane prev = held.back();
            held.pop_back();
            SimTime freeAt = sim_->now() + body;
            if (tracer_)
                tracer_->span(
                    routerLane_[static_cast<std::size_t>(prev.node)],
                    holdName_, prev.since, freeAt - prev.since);
            if (linkStats_)
                linkStats_->onRelease(prev.link, freeAt);
            sim_->schedule([res = prev.res] { res->release(); }, freeAt);
        }
        held.push_back(HeldLane{&ch, hop.from, sim_->now(), curLink});
        double headDelay = cfg_.routerDelay;
        if (faults_) {
            double stall = faults_->routerStallUs(hop.from, sim_->now());
            if (stall > 0.0) {
                faults_->noteRouterStall(stall);
                headDelay += stall;
            }
        }
        if (linkStats_)
            linkStats_->onForward(hop.from, pkt.bytes);
        co_await sim_->delay(headDelay);
        hopHist_.record(waited + headDelay);
    }

    // Head is at the destination; stream the body.
    SimTime headArrive = sim_->now();
    co_await sim_->delay(body);
    if (tracer_) {
        // Body-drain span on the destination router: the slice a flow
        // arrow terminates in (Perfetto binds flow ends to an
        // enclosing slice on the same track).
        tracer_->span(routerLane_[static_cast<std::size_t>(pkt.dst)],
                      drainName_, headArrive, sim_->now() - headArrive,
                      pkt.src, pkt.bytes);
        if (flowTraced)
            tracer_->flowEnd(
                routerLane_[static_cast<std::size_t>(pkt.dst)],
                drainName_, headArrive, pkt.flow);
    }
    for (const HeldLane &hl : held) {
        if (tracer_)
            tracer_->span(
                routerLane_[static_cast<std::size_t>(hl.node)],
                holdName_, hl.since, sim_->now() - hl.since);
        if (linkStats_)
            linkStats_->onRelease(hl.link, sim_->now());
        hl.res->release();
    }

    rec.deliverTime = sim_->now();

    if (faultDrop) {
        // Loss clause: the worm consumed network resources all the way
        // to the destination, then vanished — it never reaches the
        // receive queue, the log, or the characterization statistics.
        faults_->noteDrop();
        rec.delivered = false;
        co_return rec;
    }
    if (pkt.corrupted) {
        if (faults_)
            faults_->noteCorrupt();
        rec.corrupted = true;
    }

    rec.contention =
        rec.latency() - noLoadLatency(rec.hops, pkt.bytes);
    if (rec.contention < 1e-12)
        rec.contention = 0.0;

    latency_.record(rec.latency());
    contention_.record(rec.contention);
    ++messages_;
    payloadBytes_ += static_cast<std::uint64_t>(pkt.bytes);
    msgCtr_.add(1);
    flitCtr_.add(static_cast<std::uint64_t>(flitsOf(pkt.bytes)));
    latencyHist_.record(rec.latency());
    contentionHist_.record(rec.contention);
    // End-to-end decomposition: latency = queue + stall + transit.
    double transit = rec.latency() - queueWait - stallSum;
    if (transit < 0.0)
        transit = 0.0;
    queueHist_.record(queueWait);
    stallTimeHist_.record(stallSum);
    transitHist_.record(transit);
    if (flows_ && pkt.flow != 0) {
        flows_->onInject(pkt.flow, rec.injectTime);
        flows_->onDeliver(pkt.flow, rec.deliverTime, rec.hops, queueWait,
                          stallSum);
    }
    if (activity_) {
        // In-network span attributed to the source rank; overlapping
        // spans are merged by the rank-activity analyzer.
        activity_->noteComm(pkt.src, rec.injectTime, rec.deliverTime);
    }
    if (tracer_) {
        // Injection-to-delivery flight span on the source router lane.
        tracer_->span(routerLane_[static_cast<std::size_t>(pkt.src)],
                      msgName_, rec.injectTime, rec.latency(), pkt.dst,
                      pkt.bytes);
    }
    if (log_)
        log_->add(rec);
    if (linkStats_)
        linkStats_->onDelivered(pkt.bytes, rec.deliverTime);
    rx_[static_cast<std::size_t>(pkt.dst)]->send(std::move(pkt));
    co_return rec;
}

void
MeshNetwork::post(Packet pkt)
{
    auto fire = [](MeshNetwork *net, Packet p) -> desim::Task<void> {
        (void)co_await net->transfer(std::move(p));
    };
    sim_->spawn(fire(this, std::move(pkt)), "mesh-post");
}

double
MeshNetwork::averageChannelUtilization(SimTime t) const
{
    // One source of truth: with the link-stats sink installed, the
    // telemetry series and the network-weather report read the same
    // accumulators (the sink replicates the lane iteration order, so
    // the delegated value is bit-identical to the fallback loop).
    if (linkStats_)
        return linkStats_->avgChannelUtilization(t);
    double sum = 0.0;
    int n = 0;
    for (const auto &vcs : lanes_) {
        for (const auto &res : vcs) {
            sum += res->utilization(t);
            ++n;
        }
    }
    return n ? sum / n : 0.0;
}

double
MeshNetwork::maxChannelUtilization(SimTime t) const
{
    if (linkStats_)
        return linkStats_->maxChannelUtilization(t);
    double best = 0.0;
    for (const auto &vcs : lanes_) {
        for (const auto &res : vcs)
            best = std::max(best, res->utilization(t));
    }
    return best;
}

int
MeshNetwork::busyLanes() const
{
    int n = 0;
    for (const auto &vcs : lanes_) {
        for (const auto &res : vcs)
            n += res->inUse() > 0 ? 1 : 0;
    }
    return n;
}

std::size_t
MeshNetwork::queuedAcquires() const
{
    std::size_t n = 0;
    for (const auto &vcs : lanes_) {
        for (const auto &res : vcs)
            n += res->queueLength();
    }
    for (const auto &inj : injection_)
        n += inj->queueLength();
    return n;
}

} // namespace cchar::mesh
