/**
 * @file
 * 2-D mesh / torus wormhole-routed interconnection network simulator.
 *
 * This reproduces the paper's common network substrate: both the
 * dynamic (CC-NUMA / SPASM) and the static (SP2 trace) strategies
 * inject their communication events into the same 2-D network model
 * and log every message's source, destination, length, injection
 * time, latency and contention.
 *
 * Model: dimension-ordered (XY) wormhole routing. Each unidirectional
 * physical channel carries one or more virtual channels (VCs), each a
 * FIFO facility. A message's head acquires a (channel, VC) lane at
 * every hop — holding acquired ones (wormhole blocking) — spends
 * routerDelay per hop, then the body streams for flits * flitTime.
 * Two channel-holding disciplines are provided:
 *
 *  - FullPipeline (default, matches the paper-era CSIM models): every
 *    lane of the path is held until the tail drains at the
 *    destination;
 *  - EarlyRelease (ablation): a lane is released one body-time after
 *    the head leaves it, approximating flit-level pipelining.
 *
 * Topologies:
 *  - Mesh: XY routing orders lane acquisition (all X hops before Y
 *    hops, monotone within a dimension), so the wait graph is acyclic
 *    and the network is deadlock-free with a single VC.
 *  - Torus: shortest-direction dimension-ordered routing with
 *    wraparound links. Rings deadlock with one VC, so the torus uses
 *    the Dally/Seitz dateline scheme: messages travel in the lower VC
 *    class and switch to the upper class at the wraparound (dateline)
 *    link of each dimension — requires virtualChannels >= 2.
 */

#ifndef CCHAR_MESH_MESH_HH
#define CCHAR_MESH_MESH_HH

#include <any>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "desim/desim.hh"
#include "desim/smallvec.hh"
#include "fault/injector.hh"
#include "trace/record.hh"

namespace cchar::mesh {

using desim::SimTime;

/** Channel-holding discipline (see file comment). */
enum class ChannelHolding
{
    FullPipeline,
    EarlyRelease,
};

/** Network topology. */
enum class Topology
{
    Mesh,
    Torus,
};

/** Static configuration of the network. */
struct MeshConfig
{
    int width = 4;
    int height = 4;
    /** Flit width in bytes. */
    int flitBytes = 8;
    /** Per-hop header routing/switching delay (us). */
    double routerDelay = 0.04;
    /** Per-flit serialization time on a channel (us). */
    double flitTime = 0.01;
    /** Channel-holding discipline. */
    ChannelHolding holding = ChannelHolding::FullPipeline;
    /** Mesh or torus. */
    Topology topology = Topology::Mesh;
    /** Virtual channels per physical channel (torus needs >= 2). */
    int virtualChannels = 1;
    /**
     * Fault-injection oracle consulted per packet and per hop
     * (non-owning; must outlive the network). nullptr — the default —
     * means a healthy network with bit-identical behaviour to a build
     * without the fault layer.
     */
    fault::FaultInjector *faults = nullptr;
    /**
     * Fault-aware adaptive routing: when the planned route crosses a
     * link that is down at injection time, fall back to a deadlock-free
     * alternate path (west-first turn model on the mesh, the longer
     * ring arc under the dateline VC discipline on the torus). Only
     * consulted when a fault plan with link clauses is installed, so
     * fault-free runs are byte-identical either way.
     */
    bool adaptiveRouting = true;

    int nodes() const { return width * height; }
};

/** A message delivered to a node's receive queue. */
struct Packet
{
    std::int32_t src = 0;
    std::int32_t dst = 0;
    std::int32_t bytes = 0;
    trace::MessageKind kind = trace::MessageKind::Data;
    /** Protocol-defined discriminator (coherence opcode, MPI tag...). */
    std::uint64_t tag = 0;
    /**
     * Observability flow id (0 = none). Assigned by the producer at
     * generation time when a FlowTracker is installed; carried through
     * the network untouched. Never influences simulation behaviour.
     */
    std::uint64_t flow = 0;
    /** Set in transit by fault injection; receivers should discard. */
    bool corrupted = false;
    /** Opaque protocol payload. */
    std::any payload{};
};

/** The mesh/torus network simulator. */
class MeshNetwork
{
  public:
    /**
     * @param sim  Simulation kernel the network lives on.
     * @param cfg  Topology and timing parameters.
     * @param log  Network activity log to append to (optional).
     */
    MeshNetwork(desim::Simulator &sim, const MeshConfig &cfg,
                trace::TrafficLog *log = nullptr);

    MeshNetwork(const MeshNetwork &) = delete;
    MeshNetwork &operator=(const MeshNetwork &) = delete;

    /**
     * Destroys every simulator process before the lanes die: frames
     * suspended mid-transfer hold lane Resources, so an abnormal run
     * (watchdog trip, deadlock) must not leave them to be torn down
     * after the network.
     */
    ~MeshNetwork();

    const MeshConfig &config() const { return cfg_; }
    desim::Simulator &sim() { return *sim_; }

    int nodeX(int node) const { return node % cfg_.width; }
    int nodeY(int node) const { return node / cfg_.width; }
    int nodeId(int x, int y) const { return y * cfg_.width + x; }

    /** Routed hop count (Manhattan; wrap-aware on the torus). */
    int hopCount(int src, int dst) const;

    /**
     * Transmit a packet and block until its tail drains at the
     * destination. The packet is appended to the destination's
     * receive queue and the network log.
     *
     * Under fault injection the message may instead be dropped on a
     * down link or by a loss clause (record.delivered == false; the
     * message is neither delivered nor logged) or delivered corrupted
     * (record.corrupted == true; delivered and logged).
     *
     * @return the log record of this message.
     */
    desim::Task<trace::MessageRecord> transfer(Packet pkt);

    /** Fire-and-forget transmission (spawns a transfer process). */
    void post(Packet pkt);

    /** Receive queue of a node (packets in delivery order). */
    desim::Mailbox<Packet> &rxQueue(int node) { return *rx_[node]; }

    /** Minimal no-load latency of a bytes-sized message over h hops. */
    double noLoadLatency(int hops, int bytes) const;

    /** Number of flits (including the header flit) of a message. */
    int flitsOf(int bytes) const;

    // ---------------- statistics ----------------

    /** End-to-end latency across all completed transfers. */
    const desim::Tally &latencyStats() const { return latency_; }

    /** Contention (blocking) component across transfers. */
    const desim::Tally &contentionStats() const { return contention_; }

    /** Completed transfers. */
    std::uint64_t messageCount() const { return messages_; }

    /** Payload bytes across all completed transfers. */
    std::uint64_t payloadBytes() const { return payloadBytes_; }

    /** Packets steered around a down link by adaptive routing. */
    std::uint64_t reroutedPackets() const { return rerouted_; }

    /** Hops beyond the minimal path summed over all reroutes. */
    std::uint64_t rerouteExtraHops() const { return rerouteExtraHops_; }

    /** Mean utilization over all lanes at time t. */
    double averageChannelUtilization(SimTime t) const;

    /** Peak per-lane utilization at time t. */
    double maxChannelUtilization(SimTime t) const;

    /** Lanes (virtual channels) held by a worm right now. */
    int busyLanes() const;

    /** Worms currently queued on some lane or injection port. */
    std::size_t queuedAcquires() const;

  private:
    /** One hop of a routed path. */
    struct Hop
    {
        int from;
        int dir;     ///< Direction index (East/West/North/South)
        bool wrap;   ///< crosses the torus dateline
        bool isX;    ///< X-dimension hop
    };

    /**
     * Routed path buffer: inline slots cover every path on meshes up
     * to 16x16 (and most beyond); longer paths spill to the heap.
     */
    using RouteBuf = desim::SmallVec<Hop, 30>;

    /** Route from src to dst (dimension ordered, wrap-aware). */
    void route(int src, int dst, RouteBuf &hops) const;

    /**
     * Deadlock-free alternate route that avoids every link down at
     * time `now`: a west-first turn-model BFS on the mesh, a
     * ring-arc flip per dimension on the torus. Appends to @p hops
     * and returns true on success; false when no legal detour exists
     * (down *West* links are unavoidable under west-first, and a
     * torus ring with both arcs cut is partitioned).
     */
    bool routeAvoiding(int src, int dst, double now,
                       RouteBuf &hops) const;

    /** Node a hop lands on (wrap-aware). */
    int neighborOf(const Hop &hop) const;

    /**
     * Pick a virtual channel lane for a hop; @p vcOut reports the
     * chosen VC index (for link-stats attribution).
     */
    desim::Resource &lane(const Hop &hop, bool crossed_dateline,
                          int &vcOut);

    desim::Simulator *sim_;
    MeshConfig cfg_;
    trace::TrafficLog *log_;
    fault::FaultInjector *faults_ = nullptr;
    /** lanes_[node*4 + dir][vc]; empty vector when no such link. */
    std::vector<std::vector<std::unique_ptr<desim::Resource>>> lanes_;
    std::vector<std::unique_ptr<desim::Resource>> injection_;
    std::vector<std::unique_ptr<desim::Mailbox<Packet>>> rx_;
    desim::Tally latency_;
    desim::Tally contention_;
    std::uint64_t messages_ = 0;
    std::uint64_t payloadBytes_ = 0;
    std::uint64_t rerouted_ = 0;
    std::uint64_t rerouteExtraHops_ = 0;

    // Observability handles (detached when no sinks are installed).
    obs::Counter msgCtr_;
    obs::Counter flitCtr_;
    obs::Counter stallCtr_;
    obs::Histogram latencyHist_;
    obs::Histogram contentionHist_;
    obs::Histogram hopHist_;
    /** End-to-end latency decomposition (see DESIGN.md §6). */
    obs::Histogram queueHist_;
    obs::Histogram stallTimeHist_;
    obs::Histogram transitHist_;
    /** Degraded-routing mirrors, registered only in fault mode. */
    obs::Counter rerouteCtr_;
    obs::Counter rerouteHopsCtr_;
    obs::Tracer *tracer_ = nullptr;
    obs::FlowTracker *flows_ = nullptr;
    /** Per-rank activity sink: in-network spans by source rank. */
    obs::RankActivityTracker *activity_ = nullptr;
    /** Per-link weather sink (nullptr unless --link-stats). */
    obs::LinkStatsTracker *linkStats_ = nullptr;
    /** Link-stats id per lane, shaped like lanes_ (sink only). */
    std::vector<std::vector<int>> laneLink_;
    /** Link-stats id per injection port (sink only). */
    std::vector<int> injLink_;
    /** Tracer lane of each router (tracer_ != nullptr only). */
    std::vector<int> routerLane_;
    int msgName_ = 0;
    int holdName_ = 0;
    int stallName_ = 0;
    int drainName_ = 0;
};

} // namespace cchar::mesh

#endif // CCHAR_MESH_MESH_HH
