#include "protocol.hh"

namespace cchar::ccnuma {

std::string
toString(CoherenceOp op)
{
    switch (op) {
      case CoherenceOp::GetS:
        return "GetS";
      case CoherenceOp::GetX:
        return "GetX";
      case CoherenceOp::Upgrade:
        return "Upgrade";
      case CoherenceOp::WriteBack:
        return "WriteBack";
      case CoherenceOp::Data:
        return "Data";
      case CoherenceOp::Ack:
        return "Ack";
      case CoherenceOp::WbAck:
        return "WbAck";
      case CoherenceOp::Inv:
        return "Inv";
      case CoherenceOp::Fetch:
        return "Fetch";
      case CoherenceOp::FetchInv:
        return "FetchInv";
      case CoherenceOp::InvAck:
        return "InvAck";
      case CoherenceOp::WbData:
        return "WbData";
      case CoherenceOp::LockReq:
        return "LockReq";
      case CoherenceOp::LockGrant:
        return "LockGrant";
      case CoherenceOp::Unlock:
        return "Unlock";
      case CoherenceOp::BarrierArrive:
        return "BarrierArrive";
      case CoherenceOp::BarrierRelease:
        return "BarrierRelease";
    }
    return "?";
}

} // namespace cchar::ccnuma
