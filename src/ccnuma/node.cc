#include "node.hh"

#include <stdexcept>

#include "machine.hh"

namespace cchar::ccnuma {

namespace {

std::uint64_t
bit(int node)
{
    return std::uint64_t{1} << node;
}

} // namespace

NodeController::NodeController(Machine &machine, int id)
    : machine_(&machine), id_(id), cache_(machine.config().cache)
{
    // All nodes intern the same names, so the per-class counters are
    // machine-wide totals (the protocol message mix).
    if (obs::MetricsRegistry *reg = obs::metrics()) {
        msgReqCtr_ = reg->counter("ccnuma.msg.request");
        msgInvCtr_ = reg->counter("ccnuma.msg.invalidation");
        msgAckCtr_ = reg->counter("ccnuma.msg.ack");
        msgDataCtr_ = reg->counter("ccnuma.msg.data");
        msgSyncCtr_ = reg->counter("ccnuma.msg.sync");
    }
    activity_ = obs::rankActivity();
}

void
NodeController::start()
{
    machine_->sim().spawn(dispatcher(),
                          "dispatcher-" + std::to_string(id_));
}

// ---------------------------------------------------------------
// messaging helpers

int
NodeController::bytesOf(CoherenceOp op) const
{
    switch (op) {
      case CoherenceOp::Data:
      case CoherenceOp::WbData:
      case CoherenceOp::WriteBack:
        return machine_->config().dataBytes();
      default:
        return machine_->config().controlBytes;
    }
}

void
NodeController::postMsg(int dst, const CoherenceMsg &msg)
{
    switch (msg.op) {
      case CoherenceOp::GetS:
      case CoherenceOp::GetX:
      case CoherenceOp::Upgrade:
        msgReqCtr_.add(1);
        break;
      case CoherenceOp::Inv:
      case CoherenceOp::Fetch:
      case CoherenceOp::FetchInv:
        msgInvCtr_.add(1);
        break;
      case CoherenceOp::Ack:
      case CoherenceOp::InvAck:
      case CoherenceOp::WbAck:
        msgAckCtr_.add(1);
        break;
      case CoherenceOp::Data:
      case CoherenceOp::WbData:
      case CoherenceOp::WriteBack:
        msgDataCtr_.add(1);
        break;
      case CoherenceOp::LockReq:
      case CoherenceOp::LockGrant:
      case CoherenceOp::Unlock:
      case CoherenceOp::BarrierArrive:
      case CoherenceOp::BarrierRelease:
        msgSyncCtr_.add(1);
        break;
    }

    mesh::Packet pkt;
    pkt.src = id_;
    pkt.dst = dst;
    pkt.bytes = bytesOf(msg.op);
    switch (msg.op) {
      case CoherenceOp::Data:
      case CoherenceOp::WbData:
      case CoherenceOp::WriteBack:
        pkt.kind = trace::MessageKind::Data;
        break;
      case CoherenceOp::LockReq:
      case CoherenceOp::LockGrant:
      case CoherenceOp::Unlock:
      case CoherenceOp::BarrierArrive:
      case CoherenceOp::BarrierRelease:
        pkt.kind = trace::MessageKind::Sync;
        break;
      default:
        pkt.kind = trace::MessageKind::Control;
        break;
    }
    pkt.tag = static_cast<std::uint64_t>(msg.op);
    pkt.payload = msg;
    machine_->network().post(std::move(pkt));
}

// ---------------------------------------------------------------
// dispatcher

desim::Task<void>
NodeController::dispatcher()
{
    auto &queue = machine_->network().rxQueue(id_);
    for (;;) {
        mesh::Packet pkt = co_await queue.receive();
        auto msg = std::any_cast<CoherenceMsg>(pkt.payload);
        handleMessage(msg, pkt.src);
    }
}

void
NodeController::handleMessage(const CoherenceMsg &msg, int from)
{
    switch (msg.op) {
      case CoherenceOp::GetS:
      case CoherenceOp::GetX:
      case CoherenceOp::Upgrade:
      case CoherenceOp::WriteBack: {
        // Home-side request: run as its own process so the dispatcher
        // never blocks on a line lock.
        auto tx = [](NodeController *node, CoherenceMsg m,
                     int req) -> desim::Task<void> {
            HomeReply rep =
                co_await node->homeTransaction(m.op, req, m.addr, m.value);
            CoherenceMsg reply;
            reply.addr = m.addr;
            if (m.op == CoherenceOp::WriteBack) {
                reply.op = CoherenceOp::WbAck;
            } else {
                reply.op = rep.withData ? CoherenceOp::Data
                                        : CoherenceOp::Ack;
                reply.value = rep.value;
                reply.exclusive = rep.exclusive;
            }
            node->postMsg(req, reply);
        };
        machine_->sim().spawn(tx(this, msg, from),
                              "home-tx-" + std::to_string(id_));
        break;
      }
      case CoherenceOp::Inv:
      case CoherenceOp::Fetch:
      case CoherenceOp::FetchInv:
        handleProbe(msg, from);
        break;
      case CoherenceOp::InvAck:
      case CoherenceOp::WbData:
        handleHomeResponse(msg, from);
        break;
      case CoherenceOp::Data:
      case CoherenceOp::Ack:
      case CoherenceOp::WbAck:
      case CoherenceOp::LockGrant:
      case CoherenceOp::BarrierRelease:
        handleResponse(msg);
        break;
      case CoherenceOp::LockReq:
        homeLockRequest(from, msg.id);
        break;
      case CoherenceOp::Unlock:
        homeUnlock(msg.id);
        break;
      case CoherenceOp::BarrierArrive:
        homeBarrierArrive(from, msg.id,
                          static_cast<int>(msg.value));
        break;
    }
}

void
NodeController::handleProbe(const CoherenceMsg &msg, int from)
{
    switch (msg.op) {
      case CoherenceOp::Inv: {
        cache_.invalidate(msg.addr);
        CoherenceMsg ack;
        ack.op = CoherenceOp::InvAck;
        ack.addr = msg.addr;
        postMsg(from, ack);
        break;
      }
      case CoherenceOp::Fetch:
      case CoherenceOp::FetchInv: {
        std::uint64_t value;
        if (Cache::Line *line = cache_.probe(msg.addr)) {
            value = line->value;
            line->state = msg.op == CoherenceOp::FetchInv
                              ? LineState::Invalid
                              : LineState::Shared;
        } else if (auto it = wbPending_.find(msg.addr);
                   it != wbPending_.end()) {
            // The line's data is already in flight to the home as a
            // WriteBack; answer the recall from the pending copy.
            value = it->second;
        } else {
            throw std::logic_error(
                "ccnuma: recall for a line this node does not hold");
        }
        CoherenceMsg wb;
        wb.op = CoherenceOp::WbData;
        wb.addr = msg.addr;
        wb.value = value;
        postMsg(from, wb);
        break;
      }
      default:
        throw std::logic_error("ccnuma: bad probe opcode");
    }
}

void
NodeController::handleHomeResponse(const CoherenceMsg &msg, int)
{
    auto it = collectors_.find(msg.addr);
    if (it == collectors_.end())
        throw std::logic_error("ccnuma: unexpected home response");
    Collector *c = it->second;
    if (msg.op == CoherenceOp::WbData)
        c->wbValue = msg.value;
    if (--c->needed == 0)
        c->event.trigger();
}

void
NodeController::handleResponse(const CoherenceMsg &msg)
{
    if (!slot_.event)
        throw std::logic_error("ccnuma: response with no request "
                               "outstanding");
    switch (msg.op) {
      case CoherenceOp::Data:
        slot_.value = msg.value;
        slot_.exclusive = msg.exclusive;
        break;
      case CoherenceOp::Ack:
        slot_.exclusive = msg.exclusive;
        break;
      case CoherenceOp::WbAck:
      case CoherenceOp::LockGrant:
      case CoherenceOp::BarrierRelease:
        break;
      default:
        throw std::logic_error("ccnuma: bad response opcode");
    }
    slot_.event->trigger();
}

// ---------------------------------------------------------------
// processor side

desim::Task<void>
NodeController::awaitSlot()
{
    co_await slot_.event->wait();
    slot_.event.reset();
}

desim::Task<NodeController::HomeReply>
NodeController::requestLine(CoherenceOp op, Addr line_addr)
{
    int home = machine_->homeOf(line_addr);
    std::uint64_t wbValue = 0;
    if (op == CoherenceOp::WriteBack) {
        auto it = wbPending_.find(line_addr);
        if (it == wbPending_.end())
            throw std::logic_error("ccnuma: writeback without pending "
                                   "value");
        wbValue = it->second;
    }
    // Miss service time — local directory access or the full remote
    // round trip — is the processor's blocked-recv span.
    if (activity_) {
        activity_->beginBlocked(id_, obs::RankState::BlockedRecv,
                                machine_->sim().now());
    }
    if (home == id_) {
        // Local directory: no network round trip.
        HomeReply rep =
            co_await homeTransaction(op, id_, line_addr, wbValue);
        if (activity_)
            activity_->endBlocked(id_, machine_->sim().now());
        co_return rep;
    }
    ++remoteTx_;
    slot_.addr = line_addr;
    slot_.value = 0;
    slot_.exclusive = false;
    slot_.event = std::make_unique<desim::SimEvent>(machine_->sim());
    CoherenceMsg msg;
    msg.op = op;
    msg.addr = line_addr;
    msg.value = wbValue;
    postMsg(home, msg);
    co_await awaitSlot();
    HomeReply rep;
    rep.value = slot_.value;
    rep.exclusive = slot_.exclusive;
    if (activity_)
        activity_->endBlocked(id_, machine_->sim().now());
    co_return rep;
}

desim::Task<void>
NodeController::makeRoomFor(Addr line_addr)
{
    auto victim = cache_.victimFor(line_addr);
    if (!victim)
        co_return;
    cache_.invalidate(victim->addr);
    if (victim->state == LineState::Modified) {
        wbPending_[victim->addr] = victim->value;
        (void)co_await requestLine(CoherenceOp::WriteBack, victim->addr);
        wbPending_.erase(victim->addr);
    }
    // Shared victims are dropped silently; the directory keeps a
    // stale (superset) sharer bit, which is safe for invalidation.
}

desim::Task<std::uint64_t>
NodeController::load(Addr a)
{
    Addr line_addr = machine_->lineOf(a);
    ++loads_;
    co_await machine_->sim().delay(machine_->config().cacheHitTime);
    if (Cache::Line *line = cache_.lookup(line_addr)) {
        ++cache_.hits;
        co_return line->value;
    }
    ++cache_.misses;
    co_await makeRoomFor(line_addr);
    HomeReply rep = co_await requestLine(CoherenceOp::GetS, line_addr);
    cache_.insert(line_addr,
                  rep.exclusive ? LineState::Modified : LineState::Shared,
                  rep.value);
    co_return rep.value;
}

desim::Task<void>
NodeController::store(Addr a, std::uint64_t value)
{
    Addr line_addr = machine_->lineOf(a);
    ++stores_;
    co_await machine_->sim().delay(machine_->config().cacheHitTime);
    Cache::Line *line = cache_.lookup(line_addr);
    if (line && line->state == LineState::Modified) {
        ++cache_.hits;
        line->value = value;
        co_return;
    }
    ++cache_.misses;
    CoherenceOp op =
        line ? CoherenceOp::Upgrade : CoherenceOp::GetX;
    if (!line)
        co_await makeRoomFor(line_addr);
    (void)co_await requestLine(op, line_addr);
    // The shared copy may have been invalidated while the upgrade was
    // in flight; in that case the home sent full data instead.
    line = cache_.probe(line_addr);
    if (line) {
        line->state = LineState::Modified;
        line->value = value;
    } else {
        cache_.insert(line_addr, LineState::Modified, value);
    }
    co_return;
}

desim::Task<void>
NodeController::lock(int lock_id)
{
    int home = lock_id % machine_->nprocs();
    if (activity_) {
        activity_->beginBlocked(id_, obs::RankState::BlockedRecv,
                                machine_->sim().now());
    }
    co_await machine_->sim().delay(machine_->config().syncProcessTime);
    slot_.syncId = lock_id;
    slot_.event = std::make_unique<desim::SimEvent>(machine_->sim());
    if (home == id_) {
        homeLockRequest(id_, lock_id);
    } else {
        CoherenceMsg msg;
        msg.op = CoherenceOp::LockReq;
        msg.id = lock_id;
        postMsg(home, msg);
    }
    co_await awaitSlot();
    if (activity_)
        activity_->endBlocked(id_, machine_->sim().now());
}

desim::Task<void>
NodeController::unlock(int lock_id)
{
    int home = lock_id % machine_->nprocs();
    co_await machine_->sim().delay(machine_->config().syncProcessTime);
    if (home == id_) {
        homeUnlock(lock_id);
    } else {
        CoherenceMsg msg;
        msg.op = CoherenceOp::Unlock;
        msg.id = lock_id;
        postMsg(home, msg);
    }
    co_return;
}

desim::Task<void>
NodeController::barrier(int barrier_id, int participants)
{
    if (participants <= 0)
        participants = machine_->nprocs();
    int home = barrier_id % machine_->nprocs();
    // Barrier entry is the per-rank synchronization marker for the
    // skew analysis; the wait until release is a blocked-recv span.
    if (activity_) {
        activity_->noteMarker(id_, machine_->sim().now());
        activity_->beginBlocked(id_, obs::RankState::BlockedRecv,
                                machine_->sim().now());
    }
    co_await machine_->sim().delay(machine_->config().syncProcessTime);
    slot_.syncId = barrier_id;
    slot_.event = std::make_unique<desim::SimEvent>(machine_->sim());
    if (home == id_) {
        homeBarrierArrive(id_, barrier_id, participants);
    } else {
        CoherenceMsg msg;
        msg.op = CoherenceOp::BarrierArrive;
        msg.id = barrier_id;
        msg.value = static_cast<std::uint64_t>(participants);
        postMsg(home, msg);
    }
    co_await awaitSlot();
    if (activity_)
        activity_->endBlocked(id_, machine_->sim().now());
}

// ---------------------------------------------------------------
// home side

desim::Resource &
NodeController::lineLock(Addr line_addr)
{
    auto &slot = lineLocks_[line_addr];
    if (!slot) {
        slot = std::make_unique<desim::Resource>(
            machine_->sim(), 1, "line-" + std::to_string(line_addr));
    }
    return *slot;
}

NodeController::DirEntry &
NodeController::dirEntry(Addr line_addr)
{
    return dir_[line_addr];
}

DirState
NodeController::dirStateOf(Addr line_addr) const
{
    auto it = dir_.find(line_addr);
    return it == dir_.end() ? DirState::Uncached : it->second.state;
}

std::uint64_t
NodeController::dirSharersOf(Addr line_addr) const
{
    auto it = dir_.find(line_addr);
    return it == dir_.end() ? 0 : it->second.sharers;
}

desim::Task<std::uint64_t>
NodeController::recallFromOwner(Addr line_addr, int owner, bool invalidate)
{
    if (owner == id_) {
        // The home node's own cache holds the modified copy.
        std::uint64_t value;
        if (Cache::Line *line = cache_.probe(line_addr)) {
            value = line->value;
            line->state =
                invalidate ? LineState::Invalid : LineState::Shared;
        } else if (auto it = wbPending_.find(line_addr);
                   it != wbPending_.end()) {
            value = it->second;
        } else {
            throw std::logic_error("ccnuma: home owner lost the line");
        }
        co_return value;
    }
    Collector c{machine_->sim()};
    c.needed = 1;
    collectors_[line_addr] = &c;
    CoherenceMsg msg;
    msg.op = invalidate ? CoherenceOp::FetchInv : CoherenceOp::Fetch;
    msg.addr = line_addr;
    postMsg(owner, msg);
    co_await c.event.wait();
    collectors_.erase(line_addr);
    co_return c.wbValue;
}

desim::Task<NodeController::HomeReply>
NodeController::homeTransaction(CoherenceOp op, int requester,
                                Addr line_addr, std::uint64_t wb_value)
{
    desim::Resource &lk = lineLock(line_addr);
    co_await lk.acquire();
    desim::ResourceHold hold{lk};
    const MachineConfig &cfg = machine_->config();
    co_await machine_->sim().delay(cfg.dirLookupTime);
    DirEntry &e = dirEntry(line_addr);

    HomeReply rep;
    switch (op) {
      case CoherenceOp::GetS: {
        if (e.state == DirState::Modified) {
            std::uint64_t v =
                co_await recallFromOwner(line_addr, e.owner, false);
            e.memValue = v;
            e.state = DirState::Shared;
            e.sharers = bit(e.owner);
            e.owner = -1;
        }
        co_await machine_->sim().delay(cfg.memoryLatency);
        e.sharers |= bit(requester);
        if (e.state == DirState::Uncached)
            e.state = DirState::Shared;
        rep.value = e.memValue;
        rep.exclusive = false;
        rep.withData = true;
        break;
      }
      case CoherenceOp::GetX:
      case CoherenceOp::Upgrade: {
        bool wasSharer = (e.sharers & bit(requester)) != 0;
        if (e.state == DirState::Modified) {
            std::uint64_t v =
                co_await recallFromOwner(line_addr, e.owner, true);
            e.memValue = v;
        } else {
            int needed = 0;
            for (int s = 0; s < machine_->nprocs(); ++s) {
                if (s == requester || !(e.sharers & bit(s)))
                    continue;
                if (s == id_) {
                    cache_.invalidate(line_addr);
                } else {
                    CoherenceMsg inv;
                    inv.op = CoherenceOp::Inv;
                    inv.addr = line_addr;
                    postMsg(s, inv);
                    ++needed;
                }
            }
            if (needed > 0) {
                Collector c{machine_->sim()};
                c.needed = needed;
                collectors_[line_addr] = &c;
                co_await c.event.wait();
                collectors_.erase(line_addr);
            }
        }
        co_await machine_->sim().delay(cfg.memoryLatency);
        e.state = DirState::Modified;
        e.owner = requester;
        e.sharers = bit(requester);
        rep.value = e.memValue;
        rep.exclusive = true;
        // An upgrade whose shared copy survived needs no data.
        rep.withData =
            !(op == CoherenceOp::Upgrade && wasSharer);
        break;
      }
      case CoherenceOp::WriteBack: {
        if (e.state == DirState::Modified && e.owner == requester) {
            e.memValue = wb_value;
            e.state = DirState::Uncached;
            e.sharers = 0;
            e.owner = -1;
        }
        // Otherwise the ownership already moved on (a recall raced
        // the write-back); the stale write-back is ignored.
        co_await machine_->sim().delay(cfg.memoryLatency);
        rep.withData = false;
        break;
      }
      default:
        throw std::logic_error("ccnuma: bad home transaction opcode");
    }
    co_return rep;
}

// ---------------------------------------------------------------
// synchronization home side

void
NodeController::deliverSyncGrant(int to, CoherenceOp op, int sync_id)
{
    if (to == id_) {
        if (!slot_.event || slot_.syncId != sync_id)
            throw std::logic_error("ccnuma: sync grant with no local "
                                   "waiter");
        slot_.event->trigger();
        return;
    }
    CoherenceMsg msg;
    msg.op = op;
    msg.id = sync_id;
    postMsg(to, msg);
}

void
NodeController::homeLockRequest(int from, int lock_id)
{
    HomeLock &lk = locks_[lock_id];
    if (!lk.held) {
        lk.held = true;
        deliverSyncGrant(from, CoherenceOp::LockGrant, lock_id);
    } else {
        lk.waiters.push_back(from);
    }
}

void
NodeController::homeUnlock(int lock_id)
{
    HomeLock &lk = locks_[lock_id];
    if (!lk.held)
        throw std::logic_error("ccnuma: unlock of a free lock");
    if (!lk.waiters.empty()) {
        int next = lk.waiters.front();
        lk.waiters.pop_front();
        deliverSyncGrant(next, CoherenceOp::LockGrant, lock_id);
    } else {
        lk.held = false;
    }
}

void
NodeController::homeBarrierArrive(int from, int barrier_id,
                                  int participants)
{
    HomeBarrier &b = barriers_[barrier_id];
    b.arrived.push_back(from);
    if (static_cast<int>(b.arrived.size()) == participants) {
        std::vector<int> release = std::move(b.arrived);
        b.arrived.clear();
        for (int p : release)
            deliverSyncGrant(p, CoherenceOp::BarrierRelease, barrier_id);
    }
}

} // namespace cchar::ccnuma
