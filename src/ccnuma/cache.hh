/**
 * @file
 * Per-node set-associative data cache with LRU replacement.
 *
 * The cache tracks line state (M/S/I) and a per-line 64-bit value used
 * by the protocol verification tests; applications perform their real
 * computation natively and use the cache purely for timing, exactly as
 * SPASM traps only "interesting" memory instructions.
 */

#ifndef CCHAR_CCNUMA_CACHE_HH
#define CCHAR_CCNUMA_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "protocol.hh"

namespace cchar::ccnuma {

/** Coherence state of a cached line. */
enum class LineState : std::uint8_t
{
    Invalid,
    Shared,
    Modified,
};

/** Cache geometry. */
struct CacheConfig
{
    int lines = 1024; ///< total lines
    int assoc = 4;    ///< ways per set
    int lineBytes = 32;

    int sets() const { return lines / assoc; }
};

/** Set-associative write-back cache. */
class Cache
{
  public:
    struct Line
    {
        Addr addr = 0; ///< line-aligned address
        LineState state = LineState::Invalid;
        std::uint64_t value = 0;
        std::uint64_t lru = 0;
    };

    explicit Cache(const CacheConfig &cfg);

    int lineBytes() const { return cfg_.lineBytes; }

    /** Line-align an address. */
    Addr
    lineOf(Addr a) const
    {
        return a & ~static_cast<Addr>(cfg_.lineBytes - 1);
    }

    /** Find a valid line (updates LRU). Null if absent/invalid. */
    Line *lookup(Addr line_addr);

    /** Find without touching LRU (probe path). */
    Line *probe(Addr line_addr);

    /**
     * Choose a victim slot in the set of `line_addr`.
     * @return the victim line contents if a valid line must be
     *         evicted, nullopt if a free way exists.
     */
    std::optional<Line> victimFor(Addr line_addr);

    /**
     * Install (or update in place) a line.
     * @pre a free way exists (call victimFor + invalidate first).
     */
    void insert(Addr line_addr, LineState state, std::uint64_t value);

    /** Drop a line (silent or probe-induced). No-op if absent. */
    void invalidate(Addr line_addr);

    /** Number of valid lines currently held. */
    int validLines() const;

    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

  private:
    std::size_t setBase(Addr line_addr) const;

    CacheConfig cfg_;
    std::vector<Line> ways_;
    std::uint64_t tick_ = 0;
};

} // namespace cchar::ccnuma

#endif // CCHAR_CCNUMA_CACHE_HH
