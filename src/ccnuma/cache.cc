#include "cache.hh"

#include <stdexcept>

namespace cchar::ccnuma {

Cache::Cache(const CacheConfig &cfg) : cfg_(cfg)
{
    if (cfg_.lines <= 0 || cfg_.assoc <= 0 || cfg_.lines % cfg_.assoc != 0)
        throw std::invalid_argument("cache: lines must be a multiple of "
                                    "associativity");
    if (cfg_.lineBytes <= 0 ||
        (cfg_.lineBytes & (cfg_.lineBytes - 1)) != 0) {
        throw std::invalid_argument("cache: lineBytes must be a power "
                                    "of two");
    }
    ways_.resize(static_cast<std::size_t>(cfg_.lines));
}

std::size_t
Cache::setBase(Addr line_addr) const
{
    auto set = static_cast<std::size_t>(
        (line_addr / static_cast<Addr>(cfg_.lineBytes)) %
        static_cast<Addr>(cfg_.sets()));
    return set * static_cast<std::size_t>(cfg_.assoc);
}

Cache::Line *
Cache::lookup(Addr line_addr)
{
    Line *line = probe(line_addr);
    if (line)
        line->lru = ++tick_;
    return line;
}

Cache::Line *
Cache::probe(Addr line_addr)
{
    std::size_t base = setBase(line_addr);
    for (int w = 0; w < cfg_.assoc; ++w) {
        Line &line = ways_[base + static_cast<std::size_t>(w)];
        if (line.state != LineState::Invalid && line.addr == line_addr)
            return &line;
    }
    return nullptr;
}

std::optional<Cache::Line>
Cache::victimFor(Addr line_addr)
{
    std::size_t base = setBase(line_addr);
    Line *oldest = nullptr;
    for (int w = 0; w < cfg_.assoc; ++w) {
        Line &line = ways_[base + static_cast<std::size_t>(w)];
        if (line.state == LineState::Invalid)
            return std::nullopt; // free way available
        if (!oldest || line.lru < oldest->lru)
            oldest = &line;
    }
    return *oldest;
}

void
Cache::insert(Addr line_addr, LineState state, std::uint64_t value)
{
    if (Line *existing = probe(line_addr)) {
        existing->state = state;
        existing->value = value;
        existing->lru = ++tick_;
        return;
    }
    std::size_t base = setBase(line_addr);
    for (int w = 0; w < cfg_.assoc; ++w) {
        Line &line = ways_[base + static_cast<std::size_t>(w)];
        if (line.state == LineState::Invalid) {
            line.addr = line_addr;
            line.state = state;
            line.value = value;
            line.lru = ++tick_;
            return;
        }
    }
    throw std::logic_error("cache: insert without a free way");
}

void
Cache::invalidate(Addr line_addr)
{
    if (Line *line = probe(line_addr))
        line->state = LineState::Invalid;
}

int
Cache::validLines() const
{
    int n = 0;
    for (const Line &line : ways_) {
        if (line.state != LineState::Invalid)
            ++n;
    }
    return n;
}

} // namespace cchar::ccnuma
