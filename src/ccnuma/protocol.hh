/**
 * @file
 * Coherence protocol message vocabulary.
 *
 * The simulated CC-NUMA machine follows the paper's description of the
 * SPASM target: "an invalidation-based cache coherence scheme with
 * sequential consistency using a full-map directory". The protocol is
 * a three-state (M/S/I) full-map directory protocol in which the home
 * node serializes transactions per line and collects invalidation
 * acknowledgements before granting exclusive ownership.
 */

#ifndef CCHAR_CCNUMA_PROTOCOL_HH
#define CCHAR_CCNUMA_PROTOCOL_HH

#include <cstdint>
#include <string>

namespace cchar::ccnuma {

/** Byte address in the simulated shared address space. */
using Addr = std::uint64_t;

/** Protocol message opcodes. */
enum class CoherenceOp : std::uint8_t
{
    // requester -> home
    GetS,       ///< read miss
    GetX,       ///< write miss
    Upgrade,    ///< write hit on a shared copy
    WriteBack,  ///< dirty eviction (expects WbAck)
    // home -> requester
    Data,       ///< line data reply (shared or exclusive)
    Ack,        ///< dataless exclusive grant for an Upgrade
    WbAck,      ///< write-back acknowledgement
    // home -> third party
    Inv,        ///< invalidate a shared copy
    Fetch,      ///< downgrade M owner to S, return data
    FetchInv,   ///< invalidate M owner, return data
    // third party -> home
    InvAck,     ///< invalidation done
    WbData,     ///< data returned for Fetch/FetchInv
    // synchronization (requester <-> sync home)
    LockReq,
    LockGrant,
    Unlock,
    BarrierArrive,
    BarrierRelease,
};

/** Name of an opcode (diagnostics). */
std::string toString(CoherenceOp op);

/** Wire payload of every coherence / synchronization message. */
struct CoherenceMsg
{
    CoherenceOp op;
    Addr addr = 0;      ///< line address (coherence ops)
    std::uint64_t value = 0; ///< line value (data carriers)
    std::int32_t id = 0;     ///< lock / barrier identifier (sync ops)
    /** True when the grant carries exclusive (M) permission. */
    bool exclusive = false;
};

} // namespace cchar::ccnuma

#endif // CCHAR_CCNUMA_PROTOCOL_HH
