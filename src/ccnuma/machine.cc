#include "machine.hh"

#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "core/status.hh"

namespace cchar::ccnuma {

Machine::Machine(desim::Simulator &sim, const MachineConfig &cfg)
    : sim_(&sim), cfg_(cfg), log_(cfg.nprocs())
{
    if (cfg_.nprocs() > 64)
        throw std::invalid_argument("ccnuma: at most 64 processors "
                                    "(full-map bitmap)");
    if (cfg_.cache.lineBytes <= 0 ||
        (cfg_.cache.lineBytes & (cfg_.cache.lineBytes - 1)) != 0) {
        throw std::invalid_argument("ccnuma: line size must be a power "
                                    "of two");
    }
    net_ = std::make_unique<mesh::MeshNetwork>(*sim_, cfg_.mesh, &log_);
    nodes_.reserve(static_cast<std::size_t>(cfg_.nprocs()));
    for (int i = 0; i < cfg_.nprocs(); ++i) {
        nodes_.push_back(std::make_unique<NodeController>(*this, i));
        nodes_.back()->start();
    }
}

Machine::~Machine()
{
    sim_->destroyProcesses();
}

Addr
Machine::allocShared(std::size_t bytes, Placement placement)
{
    if (bytes == 0)
        throw std::invalid_argument("ccnuma: zero-sized allocation");
    auto lineBytes = static_cast<std::size_t>(cfg_.cache.lineBytes);
    std::size_t rounded = (bytes + lineBytes - 1) / lineBytes * lineBytes;

    Region region;
    region.base = nextBase_;
    region.bytes = rounded;
    region.placement = placement;
    if (placement == Placement::Blocked) {
        std::size_t lines = rounded / lineBytes;
        std::size_t linesPerNode =
            (lines + static_cast<std::size_t>(cfg_.nprocs()) - 1) /
            static_cast<std::size_t>(cfg_.nprocs());
        region.blockBytes = linesPerNode * lineBytes;
    } else {
        region.blockBytes = 0;
    }
    regions_.push_back(region);
    nextBase_ += rounded;
    return region.base;
}

Addr
Machine::allocSharedAt(std::size_t bytes, int node)
{
    if (node < 0 || node >= cfg_.nprocs())
        throw std::invalid_argument("ccnuma: fixed home out of range");
    Addr base = allocShared(bytes, Placement::Interleaved);
    regions_.back().fixedNode = node;
    return base;
}

int
Machine::homeOf(Addr a) const
{
    for (const Region &r : regions_) {
        if (a >= r.base && a < r.base + r.bytes) {
            if (r.fixedNode >= 0)
                return r.fixedNode;
            Addr off = a - r.base;
            if (r.placement == Placement::Blocked) {
                auto node = static_cast<int>(off / r.blockBytes);
                return node < cfg_.nprocs() ? node : cfg_.nprocs() - 1;
            }
            auto line =
                off / static_cast<Addr>(cfg_.cache.lineBytes);
            return static_cast<int>(
                line % static_cast<Addr>(cfg_.nprocs()));
        }
    }
    throw std::out_of_range("ccnuma: address outside any shared region");
}

void
Machine::spawnProcess(int proc, desim::Task<void> body,
                      const std::string &name)
{
    std::string label = name;
    if (label.empty())
        label = "proc-" + std::to_string(proc);
    appProcesses_.push_back(sim_->spawn(std::move(body), label));
    (void)proc;
}

void
Machine::run()
{
    sim_->run();
    std::ostringstream stuck;
    bool any = false;
    for (const auto &ref : appProcesses_) {
        if (!ref.done()) {
            stuck << (any ? ", " : "") << ref.name();
            any = true;
        }
    }
    if (any) {
        std::ostringstream os;
        os << "ccnuma: application deadlock; stuck processes: "
           << stuck.str() << "\n  at t=" << std::fixed
           << std::setprecision(2) << sim_->now()
           << " us; network: " << net_->busyLanes() << " lanes busy, "
           << net_->queuedAcquires() << " queued acquires; "
           << log_.size() << " messages delivered";
        core::reportDiagnostic(core::DiagSeverity::Error, os.str());
        throw core::CCharError(core::StatusCode::SimError, os.str());
    }
}

} // namespace cchar::ccnuma
