/**
 * @file
 * The simulated CC-NUMA machine (SPASM substitute, dynamic strategy).
 *
 * A Machine couples one processor per mesh node with a private cache,
 * a full-map directory slice, and a local memory slice. Application
 * code runs as one coroutine per processor against the ProcContext
 * API: shared reads/writes block until globally performed (sequential
 * consistency), local computation is charged with compute(). Every
 * coherence and synchronization message travels through the 2-D mesh
 * wormhole simulator and lands in the shared TrafficLog — the exact
 * feedback loop ("the applications are executed on an execution-driven
 * simulator... communication events are fed to a 2-D mesh network
 * simulator") of the paper's dynamic strategy.
 */

#ifndef CCHAR_CCNUMA_MACHINE_HH
#define CCHAR_CCNUMA_MACHINE_HH

#include <memory>
#include <string>
#include <vector>

#include "desim/desim.hh"
#include "mesh/mesh.hh"
#include "node.hh"
#include "protocol.hh"
#include "trace/record.hh"

namespace cchar::ccnuma {

/** Home-node placement policy of a shared region. */
enum class Placement
{
    /** Consecutive lines rotate around the nodes. */
    Interleaved,
    /** The region is split into nprocs equal chunks, chunk i at node i. */
    Blocked,
};

/** Machine parameters (SPASM-era CC-NUMA defaults; times in us). */
struct MachineConfig
{
    mesh::MeshConfig mesh{};
    CacheConfig cache{};
    /** Cache access time charged on every load/store. */
    double cacheHitTime = 0.01;
    /** Directory lookup time at the home node. */
    double dirLookupTime = 0.02;
    /** Local memory (DRAM) access time at the home node. */
    double memoryLatency = 0.15;
    /** Lock/barrier controller processing time. */
    double syncProcessTime = 0.02;
    /** Size of a dataless protocol message. */
    int controlBytes = 8;

    int nprocs() const { return mesh.nodes(); }
    int dataBytes() const { return controlBytes + cache.lineBytes; }
};

/**
 * The CC-NUMA machine: nodes, network, shared address space, and the
 * registry of application processes.
 */
class Machine
{
  public:
    Machine(desim::Simulator &sim, const MachineConfig &cfg);

    /** Convenience: default configuration. */
    explicit Machine(desim::Simulator &sim)
        : Machine(sim, MachineConfig{})
    {}

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /**
     * Tears down every simulator process before the nodes and network
     * are destroyed: suspended application frames hold RAII releases
     * onto node resources, and must not outlive them (abnormal exits —
     * deadlock, watchdog trip — leave such frames behind).
     */
    ~Machine();

    const MachineConfig &config() const { return cfg_; }
    int nprocs() const { return cfg_.nprocs(); }
    desim::Simulator &sim() { return *sim_; }
    mesh::MeshNetwork &network() { return *net_; }
    trace::TrafficLog &log() { return log_; }
    NodeController &node(int i) { return *nodes_[static_cast<std::size_t>(i)]; }

    /**
     * Allocate a line-aligned shared region.
     * @return base address of the region.
     */
    Addr allocShared(std::size_t bytes,
                     Placement placement = Placement::Interleaved);

    /** Allocate a region entirely homed at one node. */
    Addr allocSharedAt(std::size_t bytes, int node);

    /** Home node of an address. */
    int homeOf(Addr a) const;

    /** Line-align an address. */
    Addr
    lineOf(Addr a) const
    {
        return a & ~static_cast<Addr>(cfg_.cache.lineBytes - 1);
    }

    /** Register an application process bound to processor `proc`. */
    void spawnProcess(int proc, desim::Task<void> body,
                      const std::string &name = {});

    /**
     * Run the simulation to completion.
     * @throws std::runtime_error naming stuck processes if the
     *         application deadlocks (calendar drained early).
     */
    void run();

  private:
    struct Region
    {
        Addr base;
        std::size_t bytes;
        Placement placement;
        std::size_t blockBytes; ///< per-node chunk (Blocked only)
        int fixedNode = -1;     ///< home of the whole region, if >= 0
    };

    desim::Simulator *sim_;
    MachineConfig cfg_;
    trace::TrafficLog log_;
    std::unique_ptr<mesh::MeshNetwork> net_;
    std::vector<std::unique_ptr<NodeController>> nodes_;
    std::vector<Region> regions_;
    std::vector<desim::ProcessRef> appProcesses_;
    Addr nextBase_ = 0;
};

/**
 * Per-processor view handed to application code: the SPASM "trapped
 * instruction" interface.
 */
class ProcContext
{
  public:
    ProcContext(Machine &machine, int proc)
        : machine_(&machine), proc_(proc)
    {}

    int self() const { return proc_; }
    int nprocs() const { return machine_->nprocs(); }
    Machine &machine() { return *machine_; }

    /** Shared-memory load (blocks until performed). */
    desim::Task<std::uint64_t>
    read(Addr a)
    {
        return machine_->node(proc_).load(a);
    }

    /** Shared-memory store (blocks until performed). */
    desim::Task<void>
    write(Addr a, std::uint64_t value = 0)
    {
        return machine_->node(proc_).store(a, value);
    }

    /** Local computation for `us` microseconds. */
    desim::Task<void>
    compute(double us)
    {
        return delayTask(machine_->sim(), us);
    }

    desim::Task<void>
    lock(int lock_id)
    {
        return machine_->node(proc_).lock(lock_id);
    }

    desim::Task<void>
    unlock(int lock_id)
    {
        return machine_->node(proc_).unlock(lock_id);
    }

    desim::Task<void>
    barrier(int barrier_id = 0, int participants = 0)
    {
        return machine_->node(proc_).barrier(barrier_id, participants);
    }

  private:
    static desim::Task<void>
    delayTask(desim::Simulator &sim, double us)
    {
        co_await sim.delay(us);
    }

    Machine *machine_;
    int proc_;
};

/**
 * A shared array: native storage for real computation plus a shared
 * address range driving the timing model, mirroring SPASM's
 * execute-natively / simulate-memory-events split.
 */
template <typename T>
class SharedArray
{
  public:
    SharedArray(Machine &machine, std::size_t count,
                Placement placement = Placement::Interleaved)
        : machine_(&machine), data_(count),
          base_(machine.allocShared(count * sizeof(T), placement))
    {}

    /** Array homed entirely at `fixed_node`. */
    SharedArray(Machine &machine, std::size_t count, int fixed_node)
        : machine_(&machine), data_(count),
          base_(machine.allocSharedAt(count * sizeof(T), fixed_node))
    {}

    std::size_t size() const { return data_.size(); }

    /** Untimed native access (initialization / verification). */
    T &operator[](std::size_t i) { return data_[i]; }
    const T &operator[](std::size_t i) const { return data_[i]; }

    /** Simulated address of element i. */
    Addr
    addrOf(std::size_t i) const
    {
        return base_ + static_cast<Addr>(i * sizeof(T));
    }

    /** Timed read of element i. */
    desim::Task<T>
    get(ProcContext &ctx, std::size_t i)
    {
        (void)co_await ctx.read(addrOf(i));
        co_return data_[i];
    }

    /** Timed write of element i. */
    desim::Task<void>
    put(ProcContext &ctx, std::size_t i, T v)
    {
        data_[i] = v;
        co_await ctx.write(addrOf(i));
    }

  private:
    Machine *machine_;
    std::vector<T> data_;
    Addr base_;
};

} // namespace cchar::ccnuma

#endif // CCHAR_CCNUMA_MACHINE_HH
