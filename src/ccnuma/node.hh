/**
 * @file
 * Per-node controller of the CC-NUMA machine: the processor-side cache
 * controller, the home-side full-map directory, and the home-side
 * lock/barrier synchronization controller.
 *
 * Concurrency structure (one per node):
 *  - the *processor* coroutine (application code) blocks on each
 *    shared-memory access until it globally completes — this is how
 *    sequential consistency is enforced;
 *  - the *dispatcher* coroutine drains the node's network receive
 *    queue; it never blocks on protocol state, so remote requests are
 *    always answered (deadlock freedom);
 *  - *home transactions* are spawned per incoming directory request
 *    and serialize on a per-line lock.
 */

#ifndef CCHAR_CCNUMA_NODE_HH
#define CCHAR_CCNUMA_NODE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cache.hh"
#include "desim/desim.hh"
#include "protocol.hh"

namespace cchar::ccnuma {

class Machine;

/** Directory entry states. */
enum class DirState : std::uint8_t
{
    Uncached,
    Shared,
    Modified,
};

/** One node of the machine. */
class NodeController
{
  public:
    NodeController(Machine &machine, int id);

    NodeController(const NodeController &) = delete;
    NodeController &operator=(const NodeController &) = delete;

    /** Spawn the network dispatcher process. */
    void start();

    int id() const { return id_; }

    // ------------- processor-side API (blocking, SC) -------------

    /** Load the line containing `a`; returns the line value. */
    desim::Task<std::uint64_t> load(Addr a);

    /** Store `value` to the line containing `a`. */
    desim::Task<void> store(Addr a, std::uint64_t value);

    /** Acquire a global lock (queued FIFO at its home node). */
    desim::Task<void> lock(int lock_id);

    /** Release a global lock. */
    desim::Task<void> unlock(int lock_id);

    /**
     * Barrier across `participants` processors (0 = all processors).
     * Every participant must pass the same count.
     */
    desim::Task<void> barrier(int barrier_id, int participants = 0);

    // ------------------------- statistics ------------------------

    const Cache &cache() const { return cache_; }
    std::uint64_t loads() const { return loads_; }
    std::uint64_t stores() const { return stores_; }
    std::uint64_t remoteTransactions() const { return remoteTx_; }

    // ----------------- home-side entry points --------------------
    // (public so a node can invoke its own home functions locally,
    // and so the machine's tests can inspect directory state)

    struct HomeReply
    {
        std::uint64_t value = 0;
        bool exclusive = false;
        bool withData = true;
    };

    /**
     * Execute one directory transaction at this (home) node on
     * behalf of `requester`. Serializes on the line lock; may message
     * owners/sharers and wait for their replies.
     */
    desim::Task<HomeReply> homeTransaction(CoherenceOp op, int requester,
                                           Addr line_addr,
                                           std::uint64_t wb_value);

    /** Directory state of a line at this home (testing/diagnosis). */
    DirState dirStateOf(Addr line_addr) const;

    /** Sharer bitmap of a line at this home (testing/diagnosis). */
    std::uint64_t dirSharersOf(Addr line_addr) const;

  private:
    struct DirEntry
    {
        DirState state = DirState::Uncached;
        std::uint64_t sharers = 0; ///< bitmap, bit i = node i
        int owner = -1;
        std::uint64_t memValue = 0;
    };

    /** Response collector for InvAck / WbData at the home side. */
    struct Collector
    {
        int needed = 0;
        std::uint64_t wbValue = 0;
        desim::SimEvent event;

        explicit Collector(desim::Simulator &sim) : event(sim) {}
    };

    /** The processor's single outstanding-request slot. */
    struct ReqSlot
    {
        Addr addr = 0;
        std::int32_t syncId = -1;
        std::uint64_t value = 0;
        bool exclusive = false;
        std::unique_ptr<desim::SimEvent> event;
    };

    struct HomeLock
    {
        bool held = false;
        std::deque<int> waiters;
    };

    struct HomeBarrier
    {
        std::vector<int> arrived;
    };

    // dispatcher and message handling
    desim::Task<void> dispatcher();
    void handleMessage(const CoherenceMsg &msg, int from);
    void handleProbe(const CoherenceMsg &msg, int from);
    void handleResponse(const CoherenceMsg &msg);
    void handleHomeResponse(const CoherenceMsg &msg, int from);

    // cache-side internals
    desim::Task<void> makeRoomFor(Addr line_addr);
    desim::Task<HomeReply> requestLine(CoherenceOp op, Addr line_addr);
    desim::Task<void> awaitSlot();

    // home-side internals
    desim::Resource &lineLock(Addr line_addr);
    DirEntry &dirEntry(Addr line_addr);
    desim::Task<std::uint64_t> recallFromOwner(Addr line_addr, int owner,
                                               bool invalidate);

    // synchronization home side
    void homeLockRequest(int from, int lock_id);
    void homeUnlock(int lock_id);
    void homeBarrierArrive(int from, int barrier_id, int participants);
    void deliverSyncGrant(int to, CoherenceOp op, int sync_id);

    // messaging
    void postMsg(int dst, const CoherenceMsg &msg);
    int bytesOf(CoherenceOp op) const;

    Machine *machine_;
    int id_;
    Cache cache_;
    std::uint64_t loads_ = 0;
    std::uint64_t stores_ = 0;
    std::uint64_t remoteTx_ = 0;

    // Coherence message-class counters (shared slots across nodes;
    // detached when no metrics sink is installed).
    obs::Counter msgReqCtr_;
    obs::Counter msgInvCtr_;
    obs::Counter msgAckCtr_;
    obs::Counter msgDataCtr_;
    obs::Counter msgSyncCtr_;

    /** Per-rank activity sink (miss/lock/barrier stalls + markers). */
    obs::RankActivityTracker *activity_ = nullptr;

    ReqSlot slot_;
    std::unordered_map<Addr, std::uint64_t> wbPending_;

    std::unordered_map<Addr, DirEntry> dir_;
    std::unordered_map<Addr, std::unique_ptr<desim::Resource>> lineLocks_;
    std::unordered_map<Addr, Collector *> collectors_;

    std::unordered_map<int, HomeLock> locks_;
    std::unordered_map<int, HomeBarrier> barriers_;
};

} // namespace cchar::ccnuma

#endif // CCHAR_CCNUMA_NODE_HH
