#include "registry.hh"

#include <map>

#include "cholesky.hh"
#include "diag.hh"
#include "fft1d.hh"
#include "fft3d.hh"
#include "is.hh"
#include "maxflow.hh"
#include "mg.hh"
#include "nbody.hh"
#include "sor.hh"

namespace cchar::apps {

namespace {

std::map<std::string, std::function<std::unique_ptr<SharedMemoryApp>()>> &
customSharedMemory()
{
    static std::map<std::string,
                    std::function<std::unique_ptr<SharedMemoryApp>()>>
        table;
    return table;
}

std::map<std::string,
         std::function<std::unique_ptr<MessagePassingApp>()>> &
customMessagePassing()
{
    static std::map<std::string,
                    std::function<std::unique_ptr<MessagePassingApp>()>>
        table;
    return table;
}

} // namespace

const std::vector<std::string> &
sharedMemoryAppNames()
{
    static const std::vector<std::string> names{
        "1d-fft", "is", "cholesky", "maxflow", "nbody", "sor"};
    return names;
}

const std::vector<std::string> &
messagePassingAppNames()
{
    static const std::vector<std::string> names{"3d-fft", "mg"};
    return names;
}

const std::vector<std::string> &
diagnosticAppNames()
{
    static const std::vector<std::string> names{"diag-spin",
                                                "diag-throw"};
    return names;
}

void
registerSharedMemoryApp(
    const std::string &name,
    std::function<std::unique_ptr<SharedMemoryApp>()> factory)
{
    customSharedMemory()[name] = std::move(factory);
}

void
registerMessagePassingApp(
    const std::string &name,
    std::function<std::unique_ptr<MessagePassingApp>()> factory)
{
    customMessagePassing()[name] = std::move(factory);
}

std::unique_ptr<SharedMemoryApp>
makeSharedMemoryApp(const std::string &name)
{
    auto custom = customSharedMemory().find(name);
    if (custom != customSharedMemory().end())
        return custom->second();
    if (name == "1d-fft")
        return std::make_unique<Fft1D>();
    if (name == "is")
        return std::make_unique<IntegerSort>();
    if (name == "cholesky")
        return std::make_unique<SparseCholesky>();
    if (name == "maxflow")
        return std::make_unique<Maxflow>();
    if (name == "nbody")
        return std::make_unique<Nbody>();
    if (name == "sor")
        return std::make_unique<RedBlackSor>();
    return nullptr;
}

std::unique_ptr<MessagePassingApp>
makeMessagePassingApp(const std::string &name)
{
    auto custom = customMessagePassing().find(name);
    if (custom != customMessagePassing().end())
        return custom->second();
    if (name == "3d-fft")
        return std::make_unique<Fft3D>();
    if (name == "mg")
        return std::make_unique<Multigrid>();
    if (name == "diag-spin")
        return std::make_unique<DiagSpin>();
    if (name == "diag-throw")
        return std::make_unique<DiagThrow>();
    return nullptr;
}

bool
isKnownApp(const std::string &name)
{
    if (customSharedMemory().count(name) ||
        customMessagePassing().count(name))
        return true;
    for (const auto &n : sharedMemoryAppNames())
        if (n == name)
            return true;
    for (const auto &n : messagePassingAppNames())
        if (n == name)
            return true;
    for (const auto &n : diagnosticAppNames())
        if (n == name)
            return true;
    return false;
}

} // namespace cchar::apps
