#include "registry.hh"

#include "cholesky.hh"
#include "fft1d.hh"
#include "fft3d.hh"
#include "is.hh"
#include "maxflow.hh"
#include "mg.hh"
#include "nbody.hh"
#include "sor.hh"

namespace cchar::apps {

const std::vector<std::string> &
sharedMemoryAppNames()
{
    static const std::vector<std::string> names{
        "1d-fft", "is", "cholesky", "maxflow", "nbody", "sor"};
    return names;
}

const std::vector<std::string> &
messagePassingAppNames()
{
    static const std::vector<std::string> names{"3d-fft", "mg"};
    return names;
}

std::unique_ptr<SharedMemoryApp>
makeSharedMemoryApp(const std::string &name)
{
    if (name == "1d-fft")
        return std::make_unique<Fft1D>();
    if (name == "is")
        return std::make_unique<IntegerSort>();
    if (name == "cholesky")
        return std::make_unique<SparseCholesky>();
    if (name == "maxflow")
        return std::make_unique<Maxflow>();
    if (name == "nbody")
        return std::make_unique<Nbody>();
    if (name == "sor")
        return std::make_unique<RedBlackSor>();
    return nullptr;
}

std::unique_ptr<MessagePassingApp>
makeMessagePassingApp(const std::string &name)
{
    if (name == "3d-fft")
        return std::make_unique<Fft3D>();
    if (name == "mg")
        return std::make_unique<Multigrid>();
    return nullptr;
}

bool
isKnownApp(const std::string &name)
{
    for (const auto &n : sharedMemoryAppNames())
        if (n == name)
            return true;
    for (const auto &n : messagePassingAppNames())
        if (n == name)
            return true;
    return false;
}

} // namespace cchar::apps
