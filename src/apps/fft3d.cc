#include "fft3d.hh"

#include <stdexcept>

#include "stats/rng.hh"

namespace cchar::apps {

namespace {

/** FFT one line extracted with the given base and stride. */
void
fftLine(std::vector<Complex> &grid, std::size_t base, std::size_t stride,
        std::size_t count, bool inverse)
{
    std::vector<Complex> line(count);
    for (std::size_t i = 0; i < count; ++i)
        line[i] = grid[base + i * stride];
    fftInPlace(line, inverse);
    if (inverse) {
        for (auto &v : line)
            v /= static_cast<double>(count);
    }
    for (std::size_t i = 0; i < count; ++i)
        grid[base + i * stride] = line[i];
}

} // namespace

void
Fft3D::setup(mp::MpWorld &world)
{
    nranks_ = world.size();
    if (!isPowerOfTwo(static_cast<std::size_t>(params_.nx)) ||
        !isPowerOfTwo(static_cast<std::size_t>(params_.ny)) ||
        !isPowerOfTwo(static_cast<std::size_t>(params_.nz))) {
        throw std::invalid_argument("3d-fft: grid must be powers of two");
    }
    if (params_.nx != params_.nz)
        throw std::invalid_argument("3d-fft: nx must equal nz "
                                    "(x/z transpose)");
    if (params_.nz % nranks_ != 0)
        throw std::invalid_argument("3d-fft: nz must be a multiple of "
                                    "the rank count");

    std::size_t total = static_cast<std::size_t>(params_.nx) *
                        static_cast<std::size_t>(params_.ny) *
                        static_cast<std::size_t>(params_.nz);
    gridA_.resize(total);
    gridB_.assign(total, Complex{0.0, 0.0});
    stats::Rng rng{params_.seed};
    for (auto &v : gridA_)
        v = Complex{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    original_ = gridA_;
    roundTripOk_ = true;
    forwardError_ = 0.0;

    // Sequential reference: transform all three axes, then apply the
    // x<->z permutation the distributed algorithm ends in.
    std::vector<Complex> ref = gridA_;
    auto nx = static_cast<std::size_t>(params_.nx);
    auto ny = static_cast<std::size_t>(params_.ny);
    auto nz = static_cast<std::size_t>(params_.nz);
    for (std::size_t z = 0; z < nz; ++z)
        for (std::size_t y = 0; y < ny; ++y)
            fftLine(ref, (z * ny + y) * nx, 1, nx, false);
    for (std::size_t z = 0; z < nz; ++z)
        for (std::size_t x = 0; x < nx; ++x)
            fftLine(ref, z * ny * nx + x, nx, ny, false);
    for (std::size_t y = 0; y < ny; ++y)
        for (std::size_t x = 0; x < nx; ++x)
            fftLine(ref, y * nx + x, ny * nx, nz, false);
    reference_.resize(total);
    for (int x = 0; x < params_.nx; ++x)
        for (int y = 0; y < params_.ny; ++y)
            for (int z = 0; z < params_.nz; ++z)
                reference_[at(x, y, z)] = ref[at(z, y, x)];
}

void
Fft3D::transformPlanesXy(std::vector<Complex> &grid, int z0, int z1,
                         bool inverse)
{
    auto nx = static_cast<std::size_t>(params_.nx);
    auto ny = static_cast<std::size_t>(params_.ny);
    for (int z = z0; z < z1; ++z) {
        for (int y = 0; y < params_.ny; ++y)
            fftLine(grid, at(0, y, z), 1, nx, inverse);
        for (int x = 0; x < params_.nx; ++x)
            fftLine(grid, at(x, 0, z), nx, ny, inverse);
    }
}

void
Fft3D::transformSlabZ(std::vector<Complex> &grid, int z0, int z1,
                      bool inverse)
{
    auto nx = static_cast<std::size_t>(params_.nx);
    for (int z = z0; z < z1; ++z)
        for (int y = 0; y < params_.ny; ++y)
            fftLine(grid, at(0, y, z), 1, nx, inverse);
}

desim::Task<void>
Fft3D::runRank(mp::MpContext ctx)
{
    // Synchronization note: no explicit barriers are used, exactly
    // like NAS FT — the all-to-all itself orders the phases. A rank
    // reads remote portions of gridA_/gridB_ only after its own
    // all-to-all completes, which implies every peer finished the
    // writes that precede that peer's all-to-all sends.
    int planes = params_.nz / ctx.size();
    int z0 = ctx.rank() * planes;
    int z1 = z0 + planes;
    std::size_t total = gridA_.size();
    int transposeBytes = static_cast<int>(
        total * sizeof(Complex) /
        (static_cast<std::size_t>(ctx.size()) *
         static_cast<std::size_t>(ctx.size())));
    double planeCost = params_.pointCost *
                       static_cast<double>(params_.nx) *
                       static_cast<double>(params_.ny);

    for (int iter = 0; iter < params_.iterations; ++iter) {
        // Parameter/twiddle broadcast from the root.
        co_await ctx.bcast(0, 64);

        // Forward: x/y transforms on own z-planes of A.
        transformPlanesXy(gridA_, z0, z1, false);
        co_await ctx.compute(planeCost * planes * 2.0);
        co_await ctx.alltoall(transposeBytes);
        // Gather own planes of the transposed layout B from A.
        for (int z = z0; z < z1; ++z)
            for (int y = 0; y < params_.ny; ++y)
                for (int x = 0; x < params_.nx; ++x)
                    gridB_[at(x, y, z)] = gridA_[at(z, y, x)];
        transformSlabZ(gridB_, z0, z1, false);
        co_await ctx.compute(planeCost * planes);

        if (iter == 0) {
            // Check this rank's slab of the forward transform.
            double worst = 0.0;
            for (int z = z0; z < z1; ++z)
                for (int y = 0; y < params_.ny; ++y)
                    for (int x = 0; x < params_.nx; ++x)
                        worst = std::max(
                            worst, std::abs(gridB_[at(x, y, z)] -
                                            reference_[at(x, y, z)]));
            forwardError_ = std::max(forwardError_, worst);
        }

        // Checksum: reduce to p0 and broadcast the result.
        co_await ctx.reduce(0, 16);
        co_await ctx.bcast(0, 16);

        // Inverse sequence back to the original layout.
        transformSlabZ(gridB_, z0, z1, true);
        co_await ctx.compute(planeCost * planes);
        co_await ctx.alltoall(transposeBytes);
        for (int z = z0; z < z1; ++z)
            for (int y = 0; y < params_.ny; ++y)
                for (int x = 0; x < params_.nx; ++x)
                    gridA_[at(x, y, z)] = gridB_[at(z, y, x)];
        transformPlanesXy(gridA_, z0, z1, true);
        co_await ctx.compute(planeCost * planes * 2.0);

        // Round-trip identity on this rank's planes.
        double worst = 0.0;
        for (int z = z0; z < z1; ++z)
            for (int y = 0; y < params_.ny; ++y)
                for (int x = 0; x < params_.nx; ++x)
                    worst = std::max(worst,
                                     std::abs(gridA_[at(x, y, z)] -
                                              original_[at(x, y, z)]));
        if (worst > 1e-9)
            roundTripOk_ = false;

        // Keep iterations numerically identical: restore the input so
        // every iteration transforms the same data.
        for (int z = z0; z < z1; ++z)
            for (int y = 0; y < params_.ny; ++y)
                for (int x = 0; x < params_.nx; ++x)
                    gridA_[at(x, y, z)] = original_[at(x, y, z)];
    }
}

bool
Fft3D::verify() const
{
    return roundTripOk_ && forwardError_ < 1e-9 * gridA_.size();
}

} // namespace cchar::apps
