/**
 * @file
 * IS — Integer Sort shared-memory application.
 *
 * Reproduces the SPASM IS kernel: "IS is an Integer Sort kernel that
 * uses bucket sort to rank a list of integers. This application also
 * has a regular communication pattern. The input data is equally
 * partitioned among the processors. Each processor maintains local
 * buckets for the chunk of the input list that is allocated to it",
 * after which the local buckets are merged into global bucket arrays.
 *
 * The global bucket structures are homed at processor 0 (the "master"
 * arrays), which reproduces the favorite-processor / bimodal-uniform
 * spatial pattern the paper reports for IS: p0 receives the maximum
 * number of messages while the remaining traffic (ranked-key
 * placement into the block-distributed output) is spread evenly.
 */

#ifndef CCHAR_APPS_IS_HH
#define CCHAR_APPS_IS_HH

#include <memory>
#include <vector>

#include "app.hh"

namespace cchar::apps {

/** Integer Sort (bucket-sort ranking) workload. */
class IntegerSort : public SharedMemoryApp
{
  public:
    struct Params
    {
        /** Number of keys (multiple of nprocs). */
        std::size_t n = 1024;
        /** Number of buckets. */
        int buckets = 32;
        /** Key range [0, maxKey). */
        int maxKey = 4096;
        /** Compute time charged per key operation (us). */
        double opCost = 0.02;
        std::uint64_t seed = 7;
    };

    IntegerSort() : IntegerSort(Params{}) {}
    explicit IntegerSort(const Params &params) : params_(params) {}

    std::string name() const override { return "is"; }
    void setup(ccnuma::Machine &machine) override;
    desim::Task<void> runProcess(ccnuma::ProcContext ctx) override;
    bool verify() const override;

  private:
    /** Lock id protecting bucket b (offset past the barrier ids). */
    int bucketLock(int b) const { return 16 + b; }

    Params params_;
    std::vector<int> original_;
    std::unique_ptr<ccnuma::SharedArray<int>> keys_;      // blocked
    std::unique_ptr<ccnuma::SharedArray<int>> bucketNext_; // at node 0
    std::unique_ptr<ccnuma::SharedArray<int>> output_;    // blocked
};

} // namespace cchar::apps

#endif // CCHAR_APPS_IS_HH
