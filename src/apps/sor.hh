/**
 * @file
 * SOR — red-black successive over-relaxation (extension workload).
 *
 * A classic shared-memory kernel beyond the paper's original five:
 * a 2-D Laplace solver with red/black colouring, row-block
 * partitioning, and barrier-separated half-sweeps. Its communication
 * is boundary-row exchange between neighbouring processors — the
 * canonical nearest-neighbour spatial pattern, complementing the
 * favorite-processor (IS) and uniform (Nbody) patterns in the suite.
 *
 * Verified against a sequential execution of the identical iteration
 * (bitwise comparison) plus a residual-decrease check.
 */

#ifndef CCHAR_APPS_SOR_HH
#define CCHAR_APPS_SOR_HH

#include <memory>
#include <vector>

#include "app.hh"

namespace cchar::apps {

/** Red-black SOR on a 2-D grid. */
class RedBlackSor : public SharedMemoryApp
{
  public:
    struct Params
    {
        /** Grid extent (n x n, boundary included; n-2 interior). */
        int n = 32;
        /** Half-sweep iterations (each = red phase + black phase). */
        int iterations = 4;
        /** Over-relaxation factor. */
        double omega = 1.5;
        /** Compute time charged per grid-point update (us). */
        double pointCost = 0.02;
        std::uint64_t seed = 41;
    };

    RedBlackSor() : RedBlackSor(Params{}) {}
    explicit RedBlackSor(const Params &params) : params_(params) {}

    std::string name() const override { return "sor"; }
    void setup(ccnuma::Machine &machine) override;
    desim::Task<void> runProcess(ccnuma::ProcContext ctx) override;
    bool verify() const override;

  private:
    std::size_t
    at(int row, int col) const
    {
        return static_cast<std::size_t>(row) *
                   static_cast<std::size_t>(params_.n) +
               static_cast<std::size_t>(col);
    }

    static void sequentialSweep(std::vector<double> &grid, int n,
                                double omega, int parity);

    Params params_;
    std::vector<double> reference_;
    std::unique_ptr<ccnuma::SharedArray<double>> grid_; // blocked rows
};

} // namespace cchar::apps

#endif // CCHAR_APPS_SOR_HH
