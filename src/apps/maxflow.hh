/**
 * @file
 * Maxflow — parallel push-relabel maximum flow.
 *
 * Reproduces the paper's Maxflow workload ("finds the maximum flow
 * from a source to a sink, in a directed graph"), following the
 * Anderson-Setubal parallelization of Goldberg's algorithm that the
 * paper cites: a shared FIFO work queue of active vertices, per-vertex
 * locks acquired in ascending order (deadlock-free), pushes validated
 * under both endpoint locks, and relabels computed holding the vertex
 * and all of its neighbors.
 *
 * The resulting flow value is verified against a sequential
 * Edmonds-Karp reference on the same graph, and flow conservation is
 * checked at every vertex.
 */

#ifndef CCHAR_APPS_MAXFLOW_HH
#define CCHAR_APPS_MAXFLOW_HH

#include <memory>
#include <vector>

#include "app.hh"

namespace cchar::apps {

/** Parallel push-relabel max-flow workload. */
class Maxflow : public SharedMemoryApp
{
  public:
    struct Params
    {
        /** Vertices (including source 0 and sink n-1). */
        int n = 24;
        /** Edge probability between distinct vertices. */
        double edgeProbability = 0.12;
        /** Maximum edge capacity (integer capacities). */
        int maxCapacity = 20;
        /** Compute time charged per arithmetic step (us). */
        double opCost = 0.02;
        std::uint64_t seed = 17;
    };

    Maxflow() : Maxflow(Params{}) {}
    explicit Maxflow(const Params &params) : params_(params) {}

    std::string name() const override { return "maxflow"; }
    void setup(ccnuma::Machine &machine) override;
    desim::Task<void> runProcess(ccnuma::ProcContext ctx) override;
    bool verify() const override;

    /** Reference max-flow value (after setup). */
    double referenceFlow() const { return referenceFlow_; }

  private:
    struct Arc
    {
        int from;
        int to;
        int rev; ///< index of the reverse arc
    };

    static constexpr int queueLock = 2;
    int vertexLock(int v) const { return 100 + v; }

    desim::Task<void> discharge(ccnuma::ProcContext &ctx, int u);
    desim::Task<void> enqueue(ccnuma::ProcContext &ctx, int v);

    double edmondsKarp() const;

    Params params_;
    std::vector<Arc> arcs_;
    std::vector<std::vector<int>> adjacency_; ///< arc ids per vertex
    std::vector<double> capacity_;            ///< initial residual
    double referenceFlow_ = 0.0;

    std::unique_ptr<ccnuma::SharedArray<double>> resid_;
    std::unique_ptr<ccnuma::SharedArray<double>> excess_;
    std::unique_ptr<ccnuma::SharedArray<int>> height_;
    std::unique_ptr<ccnuma::SharedArray<int>> ring_;
    /** [0]=head, [1]=tail, [2]=busy workers; homed at node 0. */
    std::unique_ptr<ccnuma::SharedArray<int>> qmeta_;
};

} // namespace cchar::apps

#endif // CCHAR_APPS_MAXFLOW_HH
