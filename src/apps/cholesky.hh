/**
 * @file
 * Cholesky — sparse Cholesky factorization (SPLASH-style).
 *
 * Reproduces the paper's Cholesky workload: "This application performs
 * a Cholesky factorization of a sparse positive definite matrix. The
 * sparse nature of the matrix results in an algorithm with a
 * data-dependent dynamic access pattern."
 *
 * Implementation: right-looking column Cholesky over a randomly
 * generated sparse SPD matrix (A = L0 L0^T + n I). At each
 * elimination step k, the pivot column is claimed dynamically through
 * a lock-protected shared cursor, scaled, and the sparse trailing
 * update touches only columns j > k with L[j][k] != 0 — making both
 * the work distribution and the address stream data-dependent. The
 * factor is verified by reconstructing L L^T and comparing against A.
 */

#ifndef CCHAR_APPS_CHOLESKY_HH
#define CCHAR_APPS_CHOLESKY_HH

#include <memory>
#include <vector>

#include "app.hh"

namespace cchar::apps {

/** Sparse Cholesky factorization workload. */
class SparseCholesky : public SharedMemoryApp
{
  public:
    struct Params
    {
        /** Matrix dimension. */
        int n = 32;
        /** Density of the generating sparse factor. */
        double density = 0.15;
        /** Compute time charged per floating-point update (us). */
        double opCost = 0.02;
        std::uint64_t seed = 11;
    };

    SparseCholesky() : SparseCholesky(Params{}) {}
    explicit SparseCholesky(const Params &params) : params_(params) {}

    std::string name() const override { return "cholesky"; }
    void setup(ccnuma::Machine &machine) override;
    desim::Task<void> runProcess(ccnuma::ProcContext ctx) override;
    bool verify() const override;

  private:
    std::size_t
    idx(int i, int j) const
    {
        return static_cast<std::size_t>(i) *
                   static_cast<std::size_t>(params_.n) +
               static_cast<std::size_t>(j);
    }

    static constexpr int cursorLock = 1;

    Params params_;
    std::vector<double> original_;
    std::unique_ptr<ccnuma::SharedArray<double>> matrix_; // interleaved
    std::unique_ptr<ccnuma::SharedArray<int>> cursor_;    // at node 0
};

} // namespace cchar::apps

#endif // CCHAR_APPS_CHOLESKY_HH
