/**
 * @file
 * Diagnostic workloads for exercising the orchestration layer.
 *
 * These are not paper workloads: they exist so tests, CI smokes and
 * operators can provoke the failure modes the sweep orchestrator must
 * survive — a job that never finishes (deadline/quarantine paths) and
 * a job that throws mid-run (worker-pool exception safety). They are
 * constructible through the app registry by name ("diag-spin",
 * "diag-throw") but deliberately kept out of the standard
 * shared-memory / message-passing name lists, so `characterize`-all
 * loops, benches and the default sweep matrices never pick them up by
 * accident.
 */

#ifndef CCHAR_APPS_DIAG_HH
#define CCHAR_APPS_DIAG_HH

#include "app.hh"

namespace cchar::apps {

/**
 * "diag-spin": every rank computes forever in small steps and never
 * communicates or terminates. In sim terms it makes perpetual
 * progress (events keep committing), so only a wall-clock deadline —
 * `cchar sweep --job-timeout` — or the kernel's event-cap safety
 * valve ever stops it. The canonical permanently-hanging job.
 */
class DiagSpin : public MessagePassingApp
{
  public:
    std::string name() const override { return "diag-spin"; }
    void setup(mp::MpWorld &world) override;
    desim::Task<void> runRank(mp::MpContext ctx) override;
    bool verify() const override { return false; }
};

/**
 * "diag-throw": every rank throws std::runtime_error from its
 * coroutine body immediately after a token compute step. The kernel
 * stores the exception in the process state and rethrows it out of
 * Simulator::run(), so this reproduces a job blowing up mid-
 * simulation inside a sweep worker.
 */
class DiagThrow : public MessagePassingApp
{
  public:
    std::string name() const override { return "diag-throw"; }
    void setup(mp::MpWorld &world) override;
    desim::Task<void> runRank(mp::MpContext ctx) override;
    bool verify() const override { return false; }
};

} // namespace cchar::apps

#endif // CCHAR_APPS_DIAG_HH
