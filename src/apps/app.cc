#include "app.hh"

namespace cchar::apps {

void
launch(ccnuma::Machine &machine, SharedMemoryApp &app)
{
    app.setup(machine);
    for (int p = 0; p < machine.nprocs(); ++p) {
        machine.spawnProcess(
            p, app.runProcess(ccnuma::ProcContext{machine, p}),
            app.name() + "-p" + std::to_string(p));
    }
}

void
launch(mp::MpWorld &world, MessagePassingApp &app)
{
    app.setup(world);
    for (int r = 0; r < world.size(); ++r) {
        world.spawnRank(r, app.runRank(mp::MpContext{world, r}),
                        app.name() + "-r" + std::to_string(r));
    }
}

} // namespace cchar::apps
