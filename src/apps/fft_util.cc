#include "fft_util.hh"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace cchar::apps {

bool
isPowerOfTwo(std::size_t n)
{
    return n > 0 && (n & (n - 1)) == 0;
}

void
bitReverse(std::vector<Complex> &xs)
{
    std::size_t n = xs.size();
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(xs[i], xs[j]);
    }
}

void
fftInPlace(std::vector<Complex> &xs, bool inverse)
{
    std::size_t n = xs.size();
    if (!isPowerOfTwo(n))
        throw std::invalid_argument("fft: size must be a power of two");
    bitReverse(xs);
    for (std::size_t len = 2; len <= n; len <<= 1) {
        double angle = 2.0 * std::numbers::pi / static_cast<double>(len);
        if (!inverse)
            angle = -angle;
        Complex wlen{std::cos(angle), std::sin(angle)};
        for (std::size_t i = 0; i < n; i += len) {
            Complex w{1.0, 0.0};
            for (std::size_t k = 0; k < len / 2; ++k) {
                Complex u = xs[i + k];
                Complex v = xs[i + k + len / 2] * w;
                xs[i + k] = u + v;
                xs[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }
}

std::vector<Complex>
naiveDft(const std::vector<Complex> &xs, bool inverse)
{
    std::size_t n = xs.size();
    std::vector<Complex> out(n);
    double sign = inverse ? 1.0 : -1.0;
    for (std::size_t k = 0; k < n; ++k) {
        Complex acc{0.0, 0.0};
        for (std::size_t j = 0; j < n; ++j) {
            double angle = sign * 2.0 * std::numbers::pi *
                           static_cast<double>(k * j) /
                           static_cast<double>(n);
            acc += xs[j] * Complex{std::cos(angle), std::sin(angle)};
        }
        out[k] = acc;
    }
    return out;
}

double
maxError(const std::vector<Complex> &a, const std::vector<Complex> &b)
{
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size() && i < b.size(); ++i)
        worst = std::max(worst, std::abs(a[i] - b[i]));
    if (a.size() != b.size())
        return 1e300;
    return worst;
}

} // namespace cchar::apps
