#include "cholesky.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/rng.hh"

namespace cchar::apps {

void
SparseCholesky::setup(ccnuma::Machine &machine)
{
    int n = params_.n;
    if (n < 2)
        throw std::invalid_argument("cholesky: n too small");

    matrix_ = std::make_unique<ccnuma::SharedArray<double>>(
        machine, static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
        ccnuma::Placement::Interleaved);
    cursor_ = std::make_unique<ccnuma::SharedArray<int>>(machine, 1, 0);

    // Generate a sparse SPD matrix: A = L0 L0^T + n I.
    stats::Rng rng{params_.seed};
    std::vector<double> l0(static_cast<std::size_t>(n) *
                               static_cast<std::size_t>(n),
                           0.0);
    for (int i = 0; i < n; ++i) {
        l0[idx(i, i)] = rng.uniform(0.5, 1.5);
        for (int j = 0; j < i; ++j) {
            if (rng.chance(params_.density))
                l0[idx(i, j)] = rng.uniform(-1.0, 1.0);
        }
    }
    original_.assign(static_cast<std::size_t>(n) *
                         static_cast<std::size_t>(n),
                     0.0);
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j <= i; ++j) {
            double sum = (i == j) ? static_cast<double>(n) : 0.0;
            for (int k = 0; k <= j; ++k)
                sum += l0[idx(i, k)] * l0[idx(j, k)];
            original_[idx(i, j)] = sum;
            original_[idx(j, i)] = sum;
        }
    }
    for (std::size_t e = 0; e < original_.size(); ++e)
        (*matrix_)[e] = original_[e];
}

desim::Task<void>
SparseCholesky::runProcess(ccnuma::ProcContext ctx)
{
    int n = params_.n;
    int nprocs = ctx.nprocs();
    int self = ctx.self();
    auto &a = *matrix_;

    for (int k = 0; k < n; ++k) {
        // Dynamically claim the pivot task through the shared cursor.
        co_await ctx.lock(cursorLock);
        int next = co_await cursor_->get(ctx, 0);
        bool mine = (next == k);
        if (mine)
            co_await cursor_->put(ctx, 0, k + 1);
        co_await ctx.unlock(cursorLock);

        if (mine) {
            double pivot = co_await a.get(ctx, idx(k, k));
            double lkk = std::sqrt(pivot);
            co_await a.put(ctx, idx(k, k), lkk);
            co_await ctx.compute(params_.opCost);
            for (int i = k + 1; i < n; ++i) {
                double v = a[idx(i, k)]; // sparsity probe (native)
                if (v == 0.0)
                    continue;
                (void)co_await a.get(ctx, idx(i, k));
                co_await a.put(ctx, idx(i, k), v / lkk);
                co_await ctx.compute(params_.opCost);
            }
        }
        co_await ctx.barrier(0);

        // Sparse trailing update: column j of the remaining matrix is
        // touched only if L[j][k] != 0; columns are assigned
        // cyclically.
        for (int j = k + 1; j < n; ++j) {
            if (j % nprocs != self)
                continue;
            double ljk = a[idx(j, k)];
            if (ljk == 0.0)
                continue;
            (void)co_await a.get(ctx, idx(j, k));
            for (int i = j; i < n; ++i) {
                double lik = a[idx(i, k)];
                if (lik == 0.0)
                    continue;
                (void)co_await a.get(ctx, idx(i, k));
                double old = co_await a.get(ctx, idx(i, j));
                co_await a.put(ctx, idx(i, j), old - lik * ljk);
                co_await ctx.compute(params_.opCost);
            }
        }
        co_await ctx.barrier(0);
    }
}

bool
SparseCholesky::verify() const
{
    if (!matrix_)
        return false;
    int n = params_.n;
    // Reconstruct L L^T from the lower triangle and compare with A.
    double worst = 0.0;
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j <= i; ++j) {
            double sum = 0.0;
            for (int k = 0; k <= j; ++k)
                sum += (*matrix_)[idx(i, k)] * (*matrix_)[idx(j, k)];
            worst = std::max(worst,
                             std::fabs(sum - original_[idx(i, j)]));
        }
    }
    return worst < 1e-8 * static_cast<double>(n);
}

} // namespace cchar::apps
