#include "fft1d.hh"

#include <stdexcept>

#include "stats/rng.hh"

namespace cchar::apps {

void
Fft1D::setup(ccnuma::Machine &machine)
{
    std::size_t n = params_.n;
    auto nprocs = static_cast<std::size_t>(machine.nprocs());
    if (!isPowerOfTwo(n) || n < 2 * nprocs)
        throw std::invalid_argument("1d-fft: n must be a power of two "
                                    ">= 2 * nprocs");

    data_ = std::make_unique<ccnuma::SharedArray<Complex>>(
        machine, n, ccnuma::Placement::Blocked);

    stats::Rng rng{params_.seed};
    std::vector<Complex> input(n);
    for (auto &x : input)
        x = Complex{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};

    // Sequential reference of the same input.
    reference_ = input;
    fftInPlace(reference_);

    // The simulated run starts from the bit-reversed layout.
    bitReverse(input);
    for (std::size_t i = 0; i < n; ++i)
        (*data_)[i] = input[i];
}

desim::Task<void>
Fft1D::runProcess(ccnuma::ProcContext ctx)
{
    std::size_t n = params_.n;
    auto nprocs = static_cast<std::size_t>(ctx.nprocs());
    std::size_t block = n / nprocs;
    auto self = static_cast<std::size_t>(ctx.self());
    auto &data = *data_;

    for (std::size_t len = 2; len <= n; len <<= 1) {
        double angle = -2.0 * 3.14159265358979323846 /
                       static_cast<double>(len);
        std::size_t half = len / 2;
        // This processor executes the butterflies whose low index
        // falls in its block; for len <= block all accesses stay in
        // the local partition (the paper's local phases).
        for (std::size_t i = self * block; i < (self + 1) * block; ++i) {
            if ((i & half) != 0)
                continue;
            std::size_t j = i + half;
            Complex u = co_await data.get(ctx, i);
            Complex v = co_await data.get(ctx, j);
            // Twiddle index: position within the span.
            std::size_t k = i & (half - 1);
            Complex w = std::polar(1.0, angle * static_cast<double>(k));
            Complex t = v * w;
            co_await ctx.compute(params_.butterflyCost);
            co_await data.put(ctx, i, u + t);
            co_await data.put(ctx, j, u - t);
        }
        co_await ctx.barrier(0);
    }
}

bool
Fft1D::verify() const
{
    if (!data_)
        return false;
    std::vector<Complex> result(params_.n);
    for (std::size_t i = 0; i < params_.n; ++i)
        result[i] = (*data_)[i];
    return maxError(result, reference_) < 1e-6;
}

} // namespace cchar::apps
