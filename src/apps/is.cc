#include "is.hh"

#include <algorithm>
#include <stdexcept>

#include "stats/rng.hh"

namespace cchar::apps {

void
IntegerSort::setup(ccnuma::Machine &machine)
{
    auto nprocs = static_cast<std::size_t>(machine.nprocs());
    if (params_.n % nprocs != 0)
        throw std::invalid_argument("is: n must be a multiple of nprocs");
    if (params_.buckets <= 0 || params_.maxKey <= 0)
        throw std::invalid_argument("is: bad bucket/key parameters");

    keys_ = std::make_unique<ccnuma::SharedArray<int>>(
        machine, params_.n, ccnuma::Placement::Blocked);
    // Master bucket cursors homed at processor 0 (favorite processor).
    bucketNext_ = std::make_unique<ccnuma::SharedArray<int>>(
        machine, static_cast<std::size_t>(params_.buckets), 0);
    output_ = std::make_unique<ccnuma::SharedArray<int>>(
        machine, params_.n, ccnuma::Placement::Blocked);

    stats::Rng rng{params_.seed};
    original_.resize(params_.n);
    for (auto &k : original_)
        k = static_cast<int>(rng.below(
            static_cast<std::uint64_t>(params_.maxKey)));
    for (std::size_t i = 0; i < params_.n; ++i)
        (*keys_)[i] = original_[i];
}

desim::Task<void>
IntegerSort::runProcess(ccnuma::ProcContext ctx)
{
    auto nprocs = static_cast<std::size_t>(ctx.nprocs());
    std::size_t block = params_.n / nprocs;
    auto self = static_cast<std::size_t>(ctx.self());
    int nbuckets = params_.buckets;
    int bucketWidth = (params_.maxKey + nbuckets - 1) / nbuckets;

    // Phase 1 (local): count our chunk into private buckets.
    std::vector<int> local(static_cast<std::size_t>(nbuckets), 0);
    for (std::size_t i = self * block; i < (self + 1) * block; ++i) {
        int key = co_await keys_->get(ctx, i);
        ++local[static_cast<std::size_t>(key / bucketWidth)];
        co_await ctx.compute(params_.opCost);
    }

    // Phase 2 (merge): accumulate into the master bucket counters at
    // processor 0 under per-bucket locks.
    for (int b = 0; b < nbuckets; ++b) {
        if (local[static_cast<std::size_t>(b)] == 0)
            continue;
        co_await ctx.lock(bucketLock(b));
        int count = co_await bucketNext_->get(
            ctx, static_cast<std::size_t>(b));
        co_await bucketNext_->put(ctx, static_cast<std::size_t>(b),
                                  count +
                                      local[static_cast<std::size_t>(b)]);
        co_await ctx.unlock(bucketLock(b));
    }
    co_await ctx.barrier(0);

    // Phase 3: processor 0 turns counts into starting offsets
    // (local work at the master arrays' home).
    if (ctx.self() == 0) {
        int running = 0;
        for (int b = 0; b < nbuckets; ++b) {
            int count =
                co_await bucketNext_->get(ctx, static_cast<std::size_t>(b));
            co_await bucketNext_->put(ctx, static_cast<std::size_t>(b),
                                      running);
            running += count;
            co_await ctx.compute(params_.opCost);
        }
    }
    co_await ctx.barrier(0);

    // Phase 4 (rank & place): claim output positions bucket by bucket
    // and write keys into the block-distributed output array.
    for (std::size_t i = self * block; i < (self + 1) * block; ++i) {
        int key = (*keys_)[i]; // cached from phase 1
        int b = key / bucketWidth;
        co_await ctx.lock(bucketLock(b));
        int pos = co_await bucketNext_->get(
            ctx, static_cast<std::size_t>(b));
        co_await bucketNext_->put(ctx, static_cast<std::size_t>(b),
                                  pos + 1);
        co_await ctx.unlock(bucketLock(b));
        co_await output_->put(ctx, static_cast<std::size_t>(pos), key);
        co_await ctx.compute(params_.opCost);
    }
    co_await ctx.barrier(0);
}

bool
IntegerSort::verify() const
{
    if (!output_)
        return false;
    std::vector<int> result(params_.n);
    for (std::size_t i = 0; i < params_.n; ++i)
        result[i] = (*output_)[i];
    // Keys within a bucket are unordered relative to each other, but
    // buckets are ordered: the per-bucket-sorted result must equal the
    // fully sorted input. Bucket-sort ranking guarantees that after
    // sorting within each bucket span the whole array is sorted.
    int nbuckets = params_.buckets;
    int bucketWidth = (params_.maxKey + nbuckets - 1) / nbuckets;
    // Check each element landed in its bucket's span and the multiset
    // matches the input.
    std::vector<int> sortedInput = original_;
    std::sort(sortedInput.begin(), sortedInput.end());
    std::vector<int> sortedResult = result;
    std::sort(sortedResult.begin(), sortedResult.end());
    if (sortedResult != sortedInput)
        return false;
    // Bucket monotonicity: bucket index must be non-decreasing along
    // the output.
    for (std::size_t i = 1; i < result.size(); ++i) {
        if (result[i] / bucketWidth < result[i - 1] / bucketWidth)
            return false;
    }
    return true;
}

} // namespace cchar::apps
