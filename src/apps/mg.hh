/**
 * @file
 * MG — NAS-style 3-D multigrid kernel (message passing).
 *
 * Reproduces the paper's MG workload: "The multigrid benchmark is a
 * simple multigrid solver in computing a three dimensional potential
 * field. It solves only a constant coefficient equation, on a uniform
 * cubical field. It requires a power-of-two number of processors."
 *
 * A real V-cycle solver for the 7-point Poisson equation: weighted-
 * Jacobi smoothing with ghost-plane exchanges between z-neighbour
 * ranks, full-coarsening restriction and prolongation with plane
 * redistribution messages, and a residual-norm allreduce per cycle.
 * Verified by the residual norm dropping monotonically across
 * V-cycles.
 */

#ifndef CCHAR_APPS_MG_HH
#define CCHAR_APPS_MG_HH

#include <memory>
#include <vector>

#include "app.hh"

namespace cchar::apps {

/** NAS-MG-style multigrid workload. */
class Multigrid : public MessagePassingApp
{
  public:
    struct Params
    {
        /** Finest grid extent (power of two, multiple of nranks). */
        int n = 16;
        /** Grid levels (finest has extent n, coarsest n >> (levels-1)). */
        int levels = 3;
        /** V-cycles to run. */
        int vCycles = 2;
        /** Jacobi sweeps before/after coarse correction. */
        int preSmooth = 2;
        int postSmooth = 2;
        /** Jacobi damping factor. */
        double omega = 0.8;
        /** Compute cost per grid point per sweep (us). */
        double pointCost = 0.001;
        std::uint64_t seed = 29;
    };

    Multigrid() : Multigrid(Params{}) {}
    explicit Multigrid(const Params &params) : params_(params) {}

    std::string name() const override { return "mg"; }
    void setup(mp::MpWorld &world) override;
    desim::Task<void> runRank(mp::MpContext ctx) override;
    bool verify() const override;

    /** Residual L2 norm after each V-cycle (index 0 = initial). */
    const std::vector<double> &residualHistory() const
    {
        return residuals_;
    }

  private:
    /** One grid level: solution u, right-hand side f, extent. */
    struct Level
    {
        int extent;
        std::vector<double> u;
        std::vector<double> f;
    };

    static std::size_t
    at(int ext, int x, int y, int z)
    {
        return (static_cast<std::size_t>(z) * static_cast<std::size_t>(ext) +
                static_cast<std::size_t>(y)) *
                   static_cast<std::size_t>(ext) +
               static_cast<std::size_t>(x);
    }

    /** Ranks that own planes at a level (extent may be < nranks). */
    int activeRanks(int extent) const;
    /** Plane range [z0, z1) of `rank` at a level. */
    std::pair<int, int> planeRange(int extent, int rank) const;

    void smoothPlanes(Level &level, int z0, int z1);
    double residualNormSq(const Level &level, int z0, int z1) const;
    void computeResidual(const Level &fine, std::vector<double> &out,
                         int z0, int z1) const;

    desim::Task<void> exchangeGhosts(mp::MpContext &ctx, int lvl);
    desim::Task<void> vCycle(mp::MpContext &ctx, int lvl);

    Params params_;
    int nranks_ = 0;
    std::vector<Level> levels_;
    std::vector<std::vector<double>> scratch_; ///< per-level residual
    std::vector<double> residuals_;
};

} // namespace cchar::apps

#endif // CCHAR_APPS_MG_HH
