/**
 * @file
 * Common interface of the workload applications.
 *
 * The paper characterizes five shared-memory applications (1D-FFT, IS,
 * Cholesky, Maxflow, Nbody) executed on the simulated CC-NUMA machine,
 * and two message-passing applications (3D-FFT, MG from the NAS suite)
 * executed on the SP2. Every application here performs its real
 * computation (natively, SPASM-style) and self-verifies its result, so
 * the traffic fed to the characterization pipeline comes from a
 * genuine execution of the algorithm.
 */

#ifndef CCHAR_APPS_APP_HH
#define CCHAR_APPS_APP_HH

#include <memory>
#include <string>
#include <vector>

#include "ccnuma/machine.hh"
#include "mp/mp.hh"

namespace cchar::apps {

/** A shared-memory (dynamic strategy) application. */
class SharedMemoryApp
{
  public:
    virtual ~SharedMemoryApp() = default;

    /** Short identifier, e.g. "1d-fft". */
    virtual std::string name() const = 0;

    /** Allocate shared regions and initialize problem data. */
    virtual void setup(ccnuma::Machine &machine) = 0;

    /** Per-processor program. */
    virtual desim::Task<void> runProcess(ccnuma::ProcContext ctx) = 0;

    /** Check the computed result after the run. */
    virtual bool verify() const = 0;
};

/** A message-passing (static strategy) application. */
class MessagePassingApp
{
  public:
    virtual ~MessagePassingApp() = default;

    virtual std::string name() const = 0;
    virtual void setup(mp::MpWorld &world) = 0;
    virtual desim::Task<void> runRank(mp::MpContext ctx) = 0;
    virtual bool verify() const = 0;
};

/** Set up and spawn an application on a machine (does not run it). */
void launch(ccnuma::Machine &machine, SharedMemoryApp &app);

/** Set up and spawn an application on an MP world (does not run it). */
void launch(mp::MpWorld &world, MessagePassingApp &app);

} // namespace cchar::apps

#endif // CCHAR_APPS_APP_HH
