/**
 * @file
 * Small FFT helpers shared by the 1D-FFT and 3D-FFT applications:
 * an in-place iterative radix-2 transform and a reference naive DFT
 * for verification.
 */

#ifndef CCHAR_APPS_FFT_UTIL_HH
#define CCHAR_APPS_FFT_UTIL_HH

#include <complex>
#include <vector>

namespace cchar::apps {

using Complex = std::complex<double>;

/** True if n is a power of two (and > 0). */
bool isPowerOfTwo(std::size_t n);

/** Bit-reversal permutation of `xs` in place (n must be 2^k). */
void bitReverse(std::vector<Complex> &xs);

/**
 * In-place iterative radix-2 Cooley-Tukey FFT.
 * @param inverse if true computes the unscaled inverse transform.
 */
void fftInPlace(std::vector<Complex> &xs, bool inverse = false);

/** O(n^2) reference DFT (verification only). */
std::vector<Complex> naiveDft(const std::vector<Complex> &xs,
                              bool inverse = false);

/** Max |a_i - b_i| over two equal-length vectors. */
double maxError(const std::vector<Complex> &a,
                const std::vector<Complex> &b);

} // namespace cchar::apps

#endif // CCHAR_APPS_FFT_UTIL_HH
