#include "maxflow.hh"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "stats/rng.hh"

namespace cchar::apps {

void
Maxflow::setup(ccnuma::Machine &machine)
{
    int n = params_.n;
    if (n < 4)
        throw std::invalid_argument("maxflow: n too small");

    // Random directed graph plus a guaranteed s->...->t chain.
    stats::Rng rng{params_.seed};
    adjacency_.assign(static_cast<std::size_t>(n), {});
    arcs_.clear();
    capacity_.clear();
    auto addEdge = [&](int u, int v, int cap) {
        int a = static_cast<int>(arcs_.size());
        arcs_.push_back({u, v, a + 1});
        arcs_.push_back({v, u, a});
        capacity_.push_back(static_cast<double>(cap));
        capacity_.push_back(0.0);
        adjacency_[static_cast<std::size_t>(u)].push_back(a);
        adjacency_[static_cast<std::size_t>(v)].push_back(a + 1);
    };
    for (int u = 0; u < n; ++u) {
        for (int v = 0; v < n; ++v) {
            if (u == v || v == 0 || u == n - 1)
                continue; // no edges into s or out of t
            if (rng.chance(params_.edgeProbability)) {
                addEdge(u, v,
                        1 + static_cast<int>(rng.below(
                                static_cast<std::uint64_t>(
                                    params_.maxCapacity))));
            }
        }
    }
    for (int u = 0; u + 1 < n; ++u)
        addEdge(u, u + 1,
                1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(
                        params_.maxCapacity))));

    referenceFlow_ = edmondsKarp();

    resid_ = std::make_unique<ccnuma::SharedArray<double>>(
        machine, arcs_.size(), ccnuma::Placement::Interleaved);
    excess_ = std::make_unique<ccnuma::SharedArray<double>>(
        machine, static_cast<std::size_t>(n),
        ccnuma::Placement::Interleaved);
    height_ = std::make_unique<ccnuma::SharedArray<int>>(
        machine, static_cast<std::size_t>(n),
        ccnuma::Placement::Interleaved);
    std::size_t ringCap =
        static_cast<std::size_t>(n) * static_cast<std::size_t>(n) * 8;
    ring_ = std::make_unique<ccnuma::SharedArray<int>>(
        machine, ringCap, ccnuma::Placement::Interleaved);
    qmeta_ = std::make_unique<ccnuma::SharedArray<int>>(machine, 3, 0);

    for (std::size_t a = 0; a < arcs_.size(); ++a)
        (*resid_)[a] = capacity_[a];
    for (int v = 0; v < n; ++v) {
        (*excess_)[static_cast<std::size_t>(v)] = 0.0;
        (*height_)[static_cast<std::size_t>(v)] = 0;
    }
    (*height_)[0] = n;
    (*qmeta_)[0] = (*qmeta_)[1] = (*qmeta_)[2] = 0;
}

double
Maxflow::edmondsKarp() const
{
    std::vector<double> resid = capacity_;
    int n = params_.n;
    double flow = 0.0;
    for (;;) {
        std::vector<int> throughArc(static_cast<std::size_t>(n), -1);
        std::deque<int> frontier{0};
        throughArc[0] = -2;
        while (!frontier.empty() && throughArc[static_cast<std::size_t>(
                                        n - 1)] == -1) {
            int u = frontier.front();
            frontier.pop_front();
            for (int a : adjacency_[static_cast<std::size_t>(u)]) {
                int v = arcs_[static_cast<std::size_t>(a)].to;
                if (resid[static_cast<std::size_t>(a)] > 0.0 &&
                    throughArc[static_cast<std::size_t>(v)] == -1) {
                    throughArc[static_cast<std::size_t>(v)] = a;
                    frontier.push_back(v);
                }
            }
        }
        if (throughArc[static_cast<std::size_t>(n - 1)] == -1)
            break;
        double bottleneck = 1e300;
        for (int v = n - 1; v != 0;) {
            int a = throughArc[static_cast<std::size_t>(v)];
            bottleneck =
                std::min(bottleneck, resid[static_cast<std::size_t>(a)]);
            v = arcs_[static_cast<std::size_t>(a)].from;
        }
        for (int v = n - 1; v != 0;) {
            int a = throughArc[static_cast<std::size_t>(v)];
            resid[static_cast<std::size_t>(a)] -= bottleneck;
            resid[static_cast<std::size_t>(
                arcs_[static_cast<std::size_t>(a)].rev)] += bottleneck;
            v = arcs_[static_cast<std::size_t>(a)].from;
        }
        flow += bottleneck;
    }
    return flow;
}

desim::Task<void>
Maxflow::enqueue(ccnuma::ProcContext &ctx, int v)
{
    co_await ctx.lock(queueLock);
    int tail = co_await qmeta_->get(ctx, 1);
    if (static_cast<std::size_t>(tail) -
            static_cast<std::size_t>((*qmeta_)[0]) >=
        ring_->size()) {
        throw std::logic_error("maxflow: work ring overflow");
    }
    co_await ring_->put(
        ctx, static_cast<std::size_t>(tail) % ring_->size(), v);
    co_await qmeta_->put(ctx, 1, tail + 1);
    co_await ctx.unlock(queueLock);
}

desim::Task<void>
Maxflow::discharge(ccnuma::ProcContext &ctx, int u)
{
    int n = params_.n;
    auto &resid = *resid_;
    auto &excess = *excess_;
    auto &height = *height_;
    auto su = static_cast<std::size_t>(u);

    for (;;) {
        // One sweep of push attempts over u's arcs.
        for (int a : adjacency_[su]) {
            const Arc &arc = arcs_[static_cast<std::size_t>(a)];
            int v = arc.to;
            int first = std::min(u, v), second = std::max(u, v);
            co_await ctx.lock(vertexLock(first));
            co_await ctx.lock(vertexLock(second));
            double eu = co_await excess.get(ctx, su);
            if (eu <= 0.0) {
                co_await ctx.unlock(vertexLock(second));
                co_await ctx.unlock(vertexLock(first));
                co_return;
            }
            double r = co_await resid.get(ctx,
                                          static_cast<std::size_t>(a));
            int hu = co_await height.get(ctx, su);
            int hv =
                co_await height.get(ctx, static_cast<std::size_t>(v));
            bool becameActive = false;
            if (r > 0.0 && hu == hv + 1) {
                double delta = std::min(eu, r);
                co_await resid.put(ctx, static_cast<std::size_t>(a),
                                   r - delta);
                double rrev = resid[static_cast<std::size_t>(arc.rev)];
                co_await resid.put(ctx,
                                   static_cast<std::size_t>(arc.rev),
                                   rrev + delta);
                co_await excess.put(ctx, su, eu - delta);
                double ev =
                    co_await excess.get(ctx, static_cast<std::size_t>(v));
                co_await excess.put(ctx, static_cast<std::size_t>(v),
                                    ev + delta);
                becameActive =
                    (ev == 0.0 && v != 0 && v != n - 1);
                co_await ctx.compute(params_.opCost);
            }
            co_await ctx.unlock(vertexLock(second));
            co_await ctx.unlock(vertexLock(first));
            if (becameActive)
                co_await enqueue(ctx, v);
        }

        // Drained?
        co_await ctx.lock(vertexLock(u));
        double eu = co_await excess.get(ctx, su);
        co_await ctx.unlock(vertexLock(u));
        if (eu <= 0.0)
            co_return;

        // Relabel: lock u and all neighbors in ascending order, take
        // the true minimum over residual arcs.
        std::vector<int> who{u};
        for (int a : adjacency_[su])
            who.push_back(arcs_[static_cast<std::size_t>(a)].to);
        std::sort(who.begin(), who.end());
        who.erase(std::unique(who.begin(), who.end()), who.end());
        for (int w : who)
            co_await ctx.lock(vertexLock(w));
        int best = 2 * n + 1;
        for (int a : adjacency_[su]) {
            double r =
                co_await resid.get(ctx, static_cast<std::size_t>(a));
            if (r > 0.0) {
                int hv = co_await height.get(
                    ctx, static_cast<std::size_t>(
                             arcs_[static_cast<std::size_t>(a)].to));
                best = std::min(best, hv);
            }
        }
        co_await height.put(ctx, su, best + 1);
        co_await ctx.compute(params_.opCost);
        for (auto it = who.rbegin(); it != who.rend(); ++it)
            co_await ctx.unlock(vertexLock(*it));
    }
}

desim::Task<void>
Maxflow::runProcess(ccnuma::ProcContext ctx)
{
    int n = params_.n;
    auto &resid = *resid_;
    auto &excess = *excess_;

    // Processor 0 saturates the source's outgoing arcs.
    if (ctx.self() == 0) {
        for (int a : adjacency_[0]) {
            const Arc &arc = arcs_[static_cast<std::size_t>(a)];
            double cap = capacity_[static_cast<std::size_t>(a)];
            if (cap <= 0.0)
                continue;
            int v = arc.to;
            co_await ctx.lock(vertexLock(v));
            co_await resid.put(ctx, static_cast<std::size_t>(a), 0.0);
            co_await resid.put(ctx, static_cast<std::size_t>(arc.rev),
                               cap);
            double ev =
                co_await excess.get(ctx, static_cast<std::size_t>(v));
            co_await excess.put(ctx, static_cast<std::size_t>(v),
                                ev + cap);
            co_await ctx.unlock(vertexLock(v));
            if (v != n - 1)
                co_await enqueue(ctx, v);
        }
    }
    co_await ctx.barrier(0);

    // Worker loop with shared-queue termination detection.
    for (;;) {
        co_await ctx.lock(queueLock);
        int head = co_await qmeta_->get(ctx, 0);
        int tail = co_await qmeta_->get(ctx, 1);
        if (head < tail) {
            int u = co_await ring_->get(
                ctx, static_cast<std::size_t>(head) % ring_->size());
            co_await qmeta_->put(ctx, 0, head + 1);
            int busy = co_await qmeta_->get(ctx, 2);
            co_await qmeta_->put(ctx, 2, busy + 1);
            co_await ctx.unlock(queueLock);

            co_await discharge(ctx, u);

            co_await ctx.lock(queueLock);
            int busyNow = co_await qmeta_->get(ctx, 2);
            co_await qmeta_->put(ctx, 2, busyNow - 1);
            co_await ctx.unlock(queueLock);
        } else {
            int busy = co_await qmeta_->get(ctx, 2);
            co_await ctx.unlock(queueLock);
            if (busy == 0)
                break;
            co_await ctx.compute(2.0); // back off and poll again
        }
    }
}

bool
Maxflow::verify() const
{
    if (!excess_)
        return false;
    int n = params_.n;
    // The sink's excess is the achieved flow value.
    double flow = (*excess_)[static_cast<std::size_t>(n - 1)];
    if (flow != referenceFlow_)
        return false;
    // Conservation: every interior vertex drained its excess.
    for (int v = 1; v < n - 1; ++v) {
        if ((*excess_)[static_cast<std::size_t>(v)] != 0.0)
            return false;
    }
    // Capacity constraints: residuals within [0, cap + reverse cap].
    for (std::size_t a = 0; a < arcs_.size(); ++a) {
        double r = (*resid_)[a];
        double total = capacity_[a] +
                       capacity_[static_cast<std::size_t>(arcs_[a].rev)];
        if (r < 0.0 || r > total)
            return false;
    }
    return true;
}

} // namespace cchar::apps
