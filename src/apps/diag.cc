#include "diag.hh"

#include <stdexcept>

namespace cchar::apps {

void
DiagSpin::setup(mp::MpWorld &world)
{
    (void)world;
}

desim::Task<void>
DiagSpin::runRank(mp::MpContext ctx)
{
    // Small steps keep the kernel's periodic ticks (and with them any
    // armed watchdog's cancellation check) firing at a high wall-clock
    // rate while the rank spins.
    for (;;)
        co_await ctx.compute(100.0);
}

void
DiagThrow::setup(mp::MpWorld &world)
{
    (void)world;
}

desim::Task<void>
DiagThrow::runRank(mp::MpContext ctx)
{
    co_await ctx.compute(10.0);
    throw std::runtime_error("diag-throw: deliberate mid-run failure (rank " +
                             std::to_string(ctx.rank()) + ")");
}

} // namespace cchar::apps
