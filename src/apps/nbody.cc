#include "nbody.hh"

#include <array>
#include <cmath>
#include <stdexcept>

#include "stats/rng.hh"

namespace cchar::apps {

void
Nbody::accumulate(const Body &on, const Body &from, double softening,
                  double &ax, double &ay, double &az)
{
    double dx = from.x - on.x;
    double dy = from.y - on.y;
    double dz = from.z - on.z;
    double r2 = dx * dx + dy * dy + dz * dz + softening * softening;
    double inv = 1.0 / (r2 * std::sqrt(r2));
    ax += from.mass * dx * inv;
    ay += from.mass * dy * inv;
    az += from.mass * dz * inv;
}

void
Nbody::setup(ccnuma::Machine &machine)
{
    auto nprocs = static_cast<std::size_t>(machine.nprocs());
    if (params_.n % nprocs != 0)
        throw std::invalid_argument("nbody: n must be a multiple of "
                                    "nprocs");

    bodies_ = std::make_unique<ccnuma::SharedArray<Body>>(
        machine, params_.n, ccnuma::Placement::Blocked);
    accel_ = std::make_unique<ccnuma::SharedArray<double>>(
        machine, params_.n * 3, ccnuma::Placement::Blocked);

    stats::Rng rng{params_.seed};
    for (std::size_t i = 0; i < params_.n; ++i) {
        Body b;
        b.x = rng.uniform(-1.0, 1.0);
        b.y = rng.uniform(-1.0, 1.0);
        b.z = rng.uniform(-1.0, 1.0);
        b.vx = rng.uniform(-0.1, 0.1);
        b.vy = rng.uniform(-0.1, 0.1);
        b.vz = rng.uniform(-0.1, 0.1);
        b.mass = rng.uniform(0.5, 1.5);
        (*bodies_)[i] = b;
    }

    // Sequential reference with the identical summation order.
    reference_.resize(params_.n);
    for (std::size_t i = 0; i < params_.n; ++i)
        reference_[i] = (*bodies_)[i];
    for (int step = 0; step < params_.steps; ++step) {
        std::vector<std::array<double, 3>> acc(params_.n,
                                               {0.0, 0.0, 0.0});
        for (std::size_t i = 0; i < params_.n; ++i) {
            for (std::size_t j = 0; j < params_.n; ++j) {
                if (j != i) {
                    accumulate(reference_[i], reference_[j],
                               params_.softening, acc[i][0], acc[i][1],
                               acc[i][2]);
                }
            }
        }
        for (std::size_t i = 0; i < params_.n; ++i) {
            Body &b = reference_[i];
            b.vx += acc[i][0] * params_.dt;
            b.vy += acc[i][1] * params_.dt;
            b.vz += acc[i][2] * params_.dt;
            b.x += b.vx * params_.dt;
            b.y += b.vy * params_.dt;
            b.z += b.vz * params_.dt;
        }
    }
}

desim::Task<void>
Nbody::runProcess(ccnuma::ProcContext ctx)
{
    auto nprocs = static_cast<std::size_t>(ctx.nprocs());
    std::size_t block = params_.n / nprocs;
    auto self = static_cast<std::size_t>(ctx.self());
    auto &bodies = *bodies_;
    auto &accel = *accel_;

    for (int step = 0; step < params_.steps; ++step) {
        // Phase 1: force computation — reads every other body.
        for (std::size_t i = self * block; i < (self + 1) * block; ++i) {
            double ax = 0.0, ay = 0.0, az = 0.0;
            Body mine = co_await bodies.get(ctx, i);
            for (std::size_t j = 0; j < params_.n; ++j) {
                if (j == i)
                    continue;
                Body other = co_await bodies.get(ctx, j);
                accumulate(mine, other, params_.softening, ax, ay, az);
                co_await ctx.compute(params_.pairCost);
            }
            co_await accel.put(ctx, 3 * i + 0, ax);
            co_await accel.put(ctx, 3 * i + 1, ay);
            co_await accel.put(ctx, 3 * i + 2, az);
        }
        co_await ctx.barrier(0);

        // Phase 2: integrate own bodies (local).
        for (std::size_t i = self * block; i < (self + 1) * block; ++i) {
            Body b = co_await bodies.get(ctx, i);
            double ax = co_await accel.get(ctx, 3 * i + 0);
            double ay = co_await accel.get(ctx, 3 * i + 1);
            double az = co_await accel.get(ctx, 3 * i + 2);
            b.vx += ax * params_.dt;
            b.vy += ay * params_.dt;
            b.vz += az * params_.dt;
            b.x += b.vx * params_.dt;
            b.y += b.vy * params_.dt;
            b.z += b.vz * params_.dt;
            co_await bodies.put(ctx, i, b);
        }

        // Phase 3: step barrier.
        co_await ctx.barrier(0);
    }
}

bool
Nbody::verify() const
{
    if (!bodies_)
        return false;
    for (std::size_t i = 0; i < params_.n; ++i) {
        const Body &got = (*bodies_)[i];
        const Body &want = reference_[i];
        if (got.x != want.x || got.y != want.y || got.z != want.z ||
            got.vx != want.vx || got.vy != want.vy || got.vz != want.vz) {
            return false;
        }
    }
    return true;
}

} // namespace cchar::apps
