/**
 * @file
 * 3D-FFT — NAS FT-style message-passing application.
 *
 * Reproduces the paper's 3D-FFT workload: "A 3-D array of data is
 * distributed according to z-planes of the array[;] one or more planes
 * are stored in each processor", with processor p0 as "the root of all
 * the broadcast calls resulting in processor p0 being the favorite
 * [destination]" while "the volume distribution is uniform for all the
 * processors" (Figure 9).
 *
 * Each iteration performs a real forward 3-D FFT (x- and y-transforms
 * on local z-planes, an all-to-all transpose, then the z-transform), a
 * checksum reduced to rank 0 and broadcast back, and the inverse
 * sequence. The numerical result is verified against a sequential 3-D
 * FFT and against round-trip identity.
 */

#ifndef CCHAR_APPS_FFT3D_HH
#define CCHAR_APPS_FFT3D_HH

#include <memory>
#include <vector>

#include "app.hh"
#include "fft_util.hh"

namespace cchar::apps {

/** NAS-FT-style 3D FFT workload. */
class Fft3D : public MessagePassingApp
{
  public:
    struct Params
    {
        /** Grid extent per dimension (power of two; nz >= nranks). */
        int nx = 16;
        int ny = 16;
        int nz = 16;
        /** Evolve/checksum iterations. */
        int iterations = 2;
        /** Compute cost per point per 1-D transform (us). */
        double pointCost = 0.002;
        std::uint64_t seed = 23;
    };

    Fft3D() : Fft3D(Params{}) {}
    explicit Fft3D(const Params &params) : params_(params) {}

    std::string name() const override { return "3d-fft"; }
    void setup(mp::MpWorld &world) override;
    desim::Task<void> runRank(mp::MpContext ctx) override;
    bool verify() const override;

  private:
    std::size_t
    at(int x, int y, int z) const
    {
        return (static_cast<std::size_t>(z) *
                    static_cast<std::size_t>(params_.ny) +
                static_cast<std::size_t>(y)) *
                   static_cast<std::size_t>(params_.nx) +
               static_cast<std::size_t>(x);
    }

    /** 1-D transforms along x then y on this rank's plane range. */
    void transformPlanesXy(std::vector<Complex> &grid, int z0, int z1,
                           bool inverse);
    /** 1-D transform along the third axis (x rows of the transposed
     *  layout) on this rank's plane range. */
    void transformSlabZ(std::vector<Complex> &grid, int z0, int z1,
                        bool inverse);

    Params params_;
    int nranks_ = 0;
    std::vector<Complex> gridA_;    ///< z-plane layout
    std::vector<Complex> gridB_;    ///< x<->z transposed layout
    std::vector<Complex> original_; ///< initial data
    std::vector<Complex> reference_; ///< sequential forward FFT
    bool roundTripOk_ = true;
    double forwardError_ = 0.0;
};

} // namespace cchar::apps

#endif // CCHAR_APPS_FFT3D_HH
