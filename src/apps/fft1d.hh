/**
 * @file
 * 1D-FFT shared-memory application.
 *
 * Reproduces the SPASM 1D-FFT workload: "Each processor works on an
 * assigned portion of the data space that is equally partitioned.
 * There are three main phases in the execution. In the first and last
 * phase, the processors perform the radix-2 Butterfly computation,
 * which is an entirely local operation." The middle stages pair
 * elements across processor blocks and generate the communication.
 *
 * The implementation runs a real radix-2 FFT: the data lives in a
 * block-distributed SharedArray (each block homed at its owner), the
 * input is bit-reversed up front, and stages proceed from short
 * spans (purely local) to long spans (remote partners), separated by
 * barriers. The result is verified against a sequential FFT.
 */

#ifndef CCHAR_APPS_FFT1D_HH
#define CCHAR_APPS_FFT1D_HH

#include <memory>
#include <vector>

#include "app.hh"
#include "fft_util.hh"

namespace cchar::apps {

/** 1D-FFT workload. */
class Fft1D : public SharedMemoryApp
{
  public:
    struct Params
    {
        /** Number of complex points (power of two, >= 2 * nprocs). */
        std::size_t n = 256;
        /** Compute time charged per butterfly (us). */
        double butterflyCost = 0.05;
        std::uint64_t seed = 1;
    };

    Fft1D() : Fft1D(Params{}) {}
    explicit Fft1D(const Params &params) : params_(params) {}

    std::string name() const override { return "1d-fft"; }
    void setup(ccnuma::Machine &machine) override;
    desim::Task<void> runProcess(ccnuma::ProcContext ctx) override;
    bool verify() const override;

  private:
    Params params_;
    std::vector<Complex> reference_;
    std::unique_ptr<ccnuma::SharedArray<Complex>> data_;
};

} // namespace cchar::apps

#endif // CCHAR_APPS_FFT1D_HH
