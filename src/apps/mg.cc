#include "mg.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/rng.hh"

namespace cchar::apps {

namespace {

constexpr int tagGhostUp = 300;
constexpr int tagGhostDown = 301;
constexpr int tagRestrict = 302;
constexpr int tagProlong = 303;

} // namespace

int
Multigrid::activeRanks(int extent) const
{
    return std::min(nranks_, extent);
}

std::pair<int, int>
Multigrid::planeRange(int extent, int rank) const
{
    int active = activeRanks(extent);
    if (rank >= active)
        return {0, 0};
    int per = extent / active;
    int rem = extent % active;
    int z0 = rank * per + std::min(rank, rem);
    int z1 = z0 + per + (rank < rem ? 1 : 0);
    return {z0, z1};
}

void
Multigrid::setup(mp::MpWorld &world)
{
    nranks_ = world.size();
    int n = params_.n;
    if ((n & (n - 1)) != 0)
        throw std::invalid_argument("mg: n must be a power of two");
    if ((nranks_ & (nranks_ - 1)) != 0)
        throw std::invalid_argument("mg: rank count must be a power "
                                    "of two");
    if (n >> (params_.levels - 1) < 4)
        throw std::invalid_argument("mg: too many levels for n");

    levels_.clear();
    scratch_.clear();
    for (int l = 0; l < params_.levels; ++l) {
        int ext = n >> l;
        Level lev;
        lev.extent = ext;
        std::size_t total = static_cast<std::size_t>(ext) *
                            static_cast<std::size_t>(ext) *
                            static_cast<std::size_t>(ext);
        lev.u.assign(total, 0.0);
        lev.f.assign(total, 0.0);
        levels_.push_back(std::move(lev));
        scratch_.emplace_back(total, 0.0);
    }

    // Random smooth-ish right-hand side on the finest grid interior.
    stats::Rng rng{params_.seed};
    Level &fine = levels_[0];
    for (int z = 1; z < n - 1; ++z)
        for (int y = 1; y < n - 1; ++y)
            for (int x = 1; x < n - 1; ++x)
                fine.f[at(n, x, y, z)] = rng.uniform(-1.0, 1.0);
    residuals_.clear();
}

void
Multigrid::smoothPlanes(Level &level, int z0, int z1)
{
    // Damped Jacobi on interior points of planes [z0, z1); new values
    // land in a scratch copy merged back by the caller's barrier
    // protocol (Jacobi semantics independent of rank order).
    int ext = level.extent;
    for (int z = std::max(z0, 1); z < std::min(z1, ext - 1); ++z) {
        for (int y = 1; y < ext - 1; ++y) {
            for (int x = 1; x < ext - 1; ++x) {
                double sum = level.u[at(ext, x - 1, y, z)] +
                             level.u[at(ext, x + 1, y, z)] +
                             level.u[at(ext, x, y - 1, z)] +
                             level.u[at(ext, x, y + 1, z)] +
                             level.u[at(ext, x, y, z - 1)] +
                             level.u[at(ext, x, y, z + 1)];
                double jac = (sum + level.f[at(ext, x, y, z)]) / 6.0;
                std::size_t i = at(ext, x, y, z);
                scratch_[static_cast<std::size_t>(
                    &level - levels_.data())][i] =
                    (1.0 - params_.omega) * level.u[i] +
                    params_.omega * jac;
            }
        }
    }
}

void
Multigrid::computeResidual(const Level &level, std::vector<double> &out,
                           int z0, int z1) const
{
    int ext = level.extent;
    for (int z = std::max(z0, 1); z < std::min(z1, ext - 1); ++z) {
        for (int y = 1; y < ext - 1; ++y) {
            for (int x = 1; x < ext - 1; ++x) {
                double sum = level.u[at(ext, x - 1, y, z)] +
                             level.u[at(ext, x + 1, y, z)] +
                             level.u[at(ext, x, y - 1, z)] +
                             level.u[at(ext, x, y + 1, z)] +
                             level.u[at(ext, x, y, z - 1)] +
                             level.u[at(ext, x, y, z + 1)];
                out[at(ext, x, y, z)] =
                    level.f[at(ext, x, y, z)] -
                    (6.0 * level.u[at(ext, x, y, z)] - sum);
            }
        }
    }
}

double
Multigrid::residualNormSq(const Level &level, int z0, int z1) const
{
    std::vector<double> r(level.u.size(), 0.0);
    computeResidual(level, r, z0, z1);
    double s = 0.0;
    for (double v : r)
        s += v * v;
    return s;
}

desim::Task<void>
Multigrid::exchangeGhosts(mp::MpContext &ctx, int lvl)
{
    int ext = levels_[static_cast<std::size_t>(lvl)].extent;
    int active = activeRanks(ext);
    int rank = ctx.rank();
    int planeBytes = ext * ext * 8;
    if (rank >= active)
        co_return;
    if (rank + 1 < active)
        co_await ctx.send(rank + 1, planeBytes, tagGhostUp + lvl * 16);
    if (rank > 0)
        co_await ctx.send(rank - 1, planeBytes, tagGhostDown + lvl * 16);
    if (rank > 0)
        (void)co_await ctx.recv(rank - 1, tagGhostUp + lvl * 16);
    if (rank + 1 < active)
        (void)co_await ctx.recv(rank + 1, tagGhostDown + lvl * 16);
}

desim::Task<void>
Multigrid::vCycle(mp::MpContext &ctx, int lvl)
{
    Level &level = levels_[static_cast<std::size_t>(lvl)];
    int ext = level.extent;
    int rank = ctx.rank();
    auto [z0, z1] = planeRange(ext, rank);
    double sweepCost = params_.pointCost * static_cast<double>(ext) *
                       static_cast<double>(ext) *
                       static_cast<double>(z1 - z0);

    auto jacobiSweep = [&](int count) -> desim::Task<void> {
        for (int s = 0; s < count; ++s) {
            co_await exchangeGhosts(ctx, lvl);
            smoothPlanes(level, z0, z1);
            co_await ctx.compute(sweepCost);
            co_await ctx.barrier();
            // Merge this rank's planes from the scratch buffer.
            for (int z = std::max(z0, 1);
                 z < std::min(z1, ext - 1); ++z) {
                for (int y = 1; y < ext - 1; ++y)
                    for (int x = 1; x < ext - 1; ++x)
                        level.u[at(ext, x, y, z)] =
                            scratch_[static_cast<std::size_t>(lvl)]
                                    [at(ext, x, y, z)];
            }
            co_await ctx.barrier();
        }
    };

    if (lvl == params_.levels - 1) {
        co_await jacobiSweep(12); // coarsest-level "solve"
        co_return;
    }

    co_await jacobiSweep(params_.preSmooth);

    // Residual on own planes, then redistribute fine planes to the
    // coarse owners (plane messages), then restrict (injection x4).
    computeResidual(level, scratch_[static_cast<std::size_t>(lvl)], z0,
                    z1);
    co_await ctx.barrier();

    Level &coarse = levels_[static_cast<std::size_t>(lvl + 1)];
    int cext = coarse.extent;
    int planeBytes = ext * ext * 8;
    for (int cz = 0; cz < cext; ++cz) {
        auto srcRange = planeRange(ext, rank);
        auto dstRange = planeRange(cext, rank);
        int fz = 2 * cz;
        bool iOwnFine = fz >= srcRange.first && fz < srcRange.second;
        bool iOwnCoarse = cz >= dstRange.first && cz < dstRange.second;
        // Find the owners deterministically.
        int fineOwner = 0, coarseOwner = 0;
        for (int r = 0; r < nranks_; ++r) {
            auto pr = planeRange(ext, r);
            if (fz >= pr.first && fz < pr.second)
                fineOwner = r;
            auto cr = planeRange(cext, r);
            if (cz >= cr.first && cz < cr.second)
                coarseOwner = r;
        }
        if (fineOwner != coarseOwner) {
            if (iOwnFine)
                co_await ctx.send(coarseOwner, planeBytes,
                                  tagRestrict + lvl * 16);
            if (iOwnCoarse)
                (void)co_await ctx.recv(fineOwner,
                                        tagRestrict + lvl * 16);
        }
    }
    co_await ctx.barrier();
    if (rank == 0) {
        std::fill(coarse.u.begin(), coarse.u.end(), 0.0);
        const auto &r = scratch_[static_cast<std::size_t>(lvl)];
        // Full-weighting restriction (tensor of [1/4, 1/2, 1/4]),
        // scaled by 4 for the h^2-absorbed coarse operator.
        auto w1 = [](int d) { return d == 0 ? 0.5 : 0.25; };
        for (int z = 1; z < cext - 1; ++z) {
            for (int y = 1; y < cext - 1; ++y) {
                for (int x = 1; x < cext - 1; ++x) {
                    double acc = 0.0;
                    for (int dz = -1; dz <= 1; ++dz)
                        for (int dy = -1; dy <= 1; ++dy)
                            for (int dx = -1; dx <= 1; ++dx)
                                acc += w1(dx) * w1(dy) * w1(dz) *
                                       r[at(ext, 2 * x + dx,
                                            2 * y + dy, 2 * z + dz)];
                    coarse.f[at(cext, x, y, z)] = 4.0 * acc;
                }
            }
        }
    }
    co_await ctx.barrier();

    co_await vCycle(ctx, lvl + 1);

    // Prolongate the coarse correction (trilinear) back to the fine
    // grid; plane redistribution mirrors the restriction.
    for (int cz = 0; cz < cext; ++cz) {
        int fz = 2 * cz;
        int fineOwner = 0, coarseOwner = 0;
        for (int r = 0; r < nranks_; ++r) {
            auto pr = planeRange(ext, r);
            if (fz >= pr.first && fz < pr.second)
                fineOwner = r;
            auto cr = planeRange(cext, r);
            if (cz >= cr.first && cz < cr.second)
                coarseOwner = r;
        }
        auto srcRange = planeRange(cext, rank);
        auto dstRange = planeRange(ext, rank);
        bool iOwnCoarse = cz >= srcRange.first && cz < srcRange.second;
        bool iOwnFine = fz >= dstRange.first && fz < dstRange.second;
        if (fineOwner != coarseOwner) {
            if (iOwnCoarse)
                co_await ctx.send(fineOwner, planeBytes,
                                  tagProlong + lvl * 16);
            if (iOwnFine)
                (void)co_await ctx.recv(coarseOwner,
                                        tagProlong + lvl * 16);
        }
    }
    co_await ctx.barrier();
    if (rank == 0) {
        for (int z = 1; z < ext - 1; ++z) {
            for (int y = 1; y < ext - 1; ++y) {
                for (int x = 1; x < ext - 1; ++x) {
                    // Trilinear interpolation of the coarse grid.
                    double acc = 0.0;
                    for (int dz = 0; dz < 2; ++dz) {
                        for (int dy = 0; dy < 2; ++dy) {
                            for (int dx = 0; dx < 2; ++dx) {
                                int cx = (x + dx) / 2;
                                int cy = (y + dy) / 2;
                                int cz2 = (z + dz) / 2;
                                double wx = (x % 2 == 0) ? (dx ? 0.0 : 1.0)
                                                         : 0.5;
                                double wy = (y % 2 == 0) ? (dy ? 0.0 : 1.0)
                                                         : 0.5;
                                double wz = (z % 2 == 0) ? (dz ? 0.0 : 1.0)
                                                         : 0.5;
                                if (cx < cext && cy < cext && cz2 < cext)
                                    acc += wx * wy * wz *
                                           coarse.u[at(cext, cx, cy,
                                                       cz2)];
                            }
                        }
                    }
                    level.u[at(ext, x, y, z)] += acc;
                }
            }
        }
    }
    co_await ctx.barrier();

    co_await jacobiSweep(params_.postSmooth);
}

desim::Task<void>
Multigrid::runRank(mp::MpContext ctx)
{
    // Initial residual norm (u = 0 so it is ||f||), reduced to rank 0
    // and broadcast — the NAS-MG norm check pattern.
    if (ctx.rank() == 0)
        residuals_.push_back(std::sqrt(
            residualNormSq(levels_[0], 0, levels_[0].extent)));
    co_await ctx.barrier();

    for (int cycle = 0; cycle < params_.vCycles; ++cycle) {
        co_await vCycle(ctx, 0);
        co_await ctx.allreduce(8); // residual norm reduction
        if (ctx.rank() == 0)
            residuals_.push_back(std::sqrt(
                residualNormSq(levels_[0], 0, levels_[0].extent)));
        co_await ctx.barrier();
    }
}

bool
Multigrid::verify() const
{
    if (residuals_.size() !=
        static_cast<std::size_t>(params_.vCycles) + 1) {
        return false;
    }
    for (std::size_t i = 1; i < residuals_.size(); ++i) {
        if (residuals_[i] >= residuals_[i - 1])
            return false;
    }
    return residuals_.back() < 0.5 * residuals_.front();
}

} // namespace cchar::apps
