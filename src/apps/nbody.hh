/**
 * @file
 * Nbody shared-memory application.
 *
 * Reproduces the SPLASH-style Nbody workload the paper uses: "The
 * Nbody application simulates over time the movement of bodies due to
 * the gravitational forces exerted on one another... The parallel
 * implementation statically allocates a set of bodies to each
 * processor and goes through three phases for each simulated time
 * step": force computation (reads of every other body's position),
 * position/velocity update (local writes), and a barrier.
 *
 * Direct O(n^2) force summation; the parallel result is verified to
 * match a sequential simulation bit for bit (same summation order).
 */

#ifndef CCHAR_APPS_NBODY_HH
#define CCHAR_APPS_NBODY_HH

#include <memory>
#include <vector>

#include "app.hh"

namespace cchar::apps {

/** Gravitational N-body workload. */
class Nbody : public SharedMemoryApp
{
  public:
    struct Params
    {
        /** Number of bodies (multiple of nprocs). */
        std::size_t n = 64;
        /** Simulated time steps. */
        int steps = 2;
        double dt = 0.01;
        double softening = 0.05;
        /** Compute time charged per body-body interaction (us). */
        double pairCost = 0.01;
        std::uint64_t seed = 3;
    };

    struct Body
    {
        double x, y, z;
        double vx, vy, vz;
        double mass;
    };

    Nbody() : Nbody(Params{}) {}
    explicit Nbody(const Params &params) : params_(params) {}

    std::string name() const override { return "nbody"; }
    void setup(ccnuma::Machine &machine) override;
    desim::Task<void> runProcess(ccnuma::ProcContext ctx) override;
    bool verify() const override;

  private:
    static void accumulate(const Body &on, const Body &from,
                           double softening, double &ax, double &ay,
                           double &az);

    Params params_;
    std::vector<Body> reference_;
    std::unique_ptr<ccnuma::SharedArray<Body>> bodies_; // blocked
    std::unique_ptr<ccnuma::SharedArray<double>> accel_; // blocked, 3n
};

} // namespace cchar::apps

#endif // CCHAR_APPS_NBODY_HH
