/**
 * @file
 * Name-based registry of the workload applications.
 *
 * One place that knows every application the tool chain can run, so
 * the CLI, the sweep engine and the tests all agree on names and
 * construction. Names match the paper's tables ("1d-fft", "is",
 * "cholesky", "maxflow", "nbody", "sor" on the CC-NUMA side; "3d-fft",
 * "mg" on the message-passing side).
 */

#ifndef CCHAR_APPS_REGISTRY_HH
#define CCHAR_APPS_REGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "app.hh"

namespace cchar::apps {

/** Names of the shared-memory (dynamic strategy) applications. */
const std::vector<std::string> &sharedMemoryAppNames();

/** Names of the message-passing (static strategy) applications. */
const std::vector<std::string> &messagePassingAppNames();

/**
 * Names of the built-in diagnostic workloads ("diag-spin",
 * "diag-throw"). Constructible and isKnownApp()-accepted like any
 * app, but kept out of the standard lists above so they only run
 * when asked for by name.
 */
const std::vector<std::string> &diagnosticAppNames();

/**
 * Register (or replace) a custom app factory under `name`. The
 * dynamic table is consulted before the built-ins by the make*
 * functions and isKnownApp(), which lets tests inject bespoke
 * behavior (throw on first attempt, hang until cancelled...) behind
 * an ordinary registry name. Not thread-safe: register before
 * running a sweep, never from inside one.
 */
void registerSharedMemoryApp(
    const std::string &name,
    std::function<std::unique_ptr<SharedMemoryApp>()> factory);
void registerMessagePassingApp(
    const std::string &name,
    std::function<std::unique_ptr<MessagePassingApp>()> factory);

/** Construct a shared-memory app by name; nullptr if unknown. */
std::unique_ptr<SharedMemoryApp>
makeSharedMemoryApp(const std::string &name);

/** Construct a message-passing app by name; nullptr if unknown. */
std::unique_ptr<MessagePassingApp>
makeMessagePassingApp(const std::string &name);

/** True if `name` names any registered application. */
bool isKnownApp(const std::string &name);

} // namespace cchar::apps

#endif // CCHAR_APPS_REGISTRY_HH
