/**
 * @file
 * Name-based registry of the workload applications.
 *
 * One place that knows every application the tool chain can run, so
 * the CLI, the sweep engine and the tests all agree on names and
 * construction. Names match the paper's tables ("1d-fft", "is",
 * "cholesky", "maxflow", "nbody", "sor" on the CC-NUMA side; "3d-fft",
 * "mg" on the message-passing side).
 */

#ifndef CCHAR_APPS_REGISTRY_HH
#define CCHAR_APPS_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "app.hh"

namespace cchar::apps {

/** Names of the shared-memory (dynamic strategy) applications. */
const std::vector<std::string> &sharedMemoryAppNames();

/** Names of the message-passing (static strategy) applications. */
const std::vector<std::string> &messagePassingAppNames();

/** Construct a shared-memory app by name; nullptr if unknown. */
std::unique_ptr<SharedMemoryApp>
makeSharedMemoryApp(const std::string &name);

/** Construct a message-passing app by name; nullptr if unknown. */
std::unique_ptr<MessagePassingApp>
makeMessagePassingApp(const std::string &name);

/** True if `name` names any registered application. */
bool isKnownApp(const std::string &name);

} // namespace cchar::apps

#endif // CCHAR_APPS_REGISTRY_HH
