#include "sor.hh"

#include <stdexcept>

#include "stats/rng.hh"

namespace cchar::apps {

void
RedBlackSor::sequentialSweep(std::vector<double> &grid, int n,
                             double omega, int parity)
{
    for (int row = 1; row < n - 1; ++row) {
        for (int col = 1; col < n - 1; ++col) {
            if ((row + col) % 2 != parity)
                continue;
            std::size_t i = static_cast<std::size_t>(row) *
                                static_cast<std::size_t>(n) +
                            static_cast<std::size_t>(col);
            double gs = 0.25 * (grid[i - 1] + grid[i + 1] +
                                grid[i - static_cast<std::size_t>(n)] +
                                grid[i + static_cast<std::size_t>(n)]);
            grid[i] = (1.0 - omega) * grid[i] + omega * gs;
        }
    }
}

void
RedBlackSor::setup(ccnuma::Machine &machine)
{
    int n = params_.n;
    auto nprocs = machine.nprocs();
    if (n < 4 || (n % nprocs) != 0)
        throw std::invalid_argument("sor: n must be a multiple of "
                                    "nprocs and >= 4");

    grid_ = std::make_unique<ccnuma::SharedArray<double>>(
        machine, static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
        ccnuma::Placement::Blocked);

    stats::Rng rng{params_.seed};
    std::vector<double> init(static_cast<std::size_t>(n) *
                                 static_cast<std::size_t>(n),
                             0.0);
    // Hot left boundary, random interior.
    for (int row = 0; row < n; ++row)
        init[at(row, 0)] = 100.0;
    for (int row = 1; row < n - 1; ++row)
        for (int col = 1; col < n - 1; ++col)
            init[at(row, col)] = rng.uniform(0.0, 1.0);
    for (std::size_t i = 0; i < init.size(); ++i)
        (*grid_)[i] = init[i];

    // Sequential reference: identical red/black sweeps. Within one
    // colour all updates are independent, so the parallel execution
    // must match bitwise.
    reference_ = init;
    for (int iter = 0; iter < params_.iterations; ++iter) {
        sequentialSweep(reference_, n, params_.omega, 0);
        sequentialSweep(reference_, n, params_.omega, 1);
    }
}

desim::Task<void>
RedBlackSor::runProcess(ccnuma::ProcContext ctx)
{
    int n = params_.n;
    int rowsPerProc = n / ctx.nprocs();
    int row0 = ctx.self() * rowsPerProc;
    int row1 = row0 + rowsPerProc;
    auto &grid = *grid_;

    for (int iter = 0; iter < params_.iterations; ++iter) {
        for (int parity = 0; parity < 2; ++parity) {
            for (int row = std::max(row0, 1);
                 row < std::min(row1, n - 1); ++row) {
                for (int col = 1; col < n - 1; ++col) {
                    if ((row + col) % 2 != parity)
                        continue;
                    // Neighbour reads: up/down rows touch the
                    // neighbouring processors' blocks at the edges.
                    double left = co_await grid.get(ctx, at(row, col - 1));
                    double right =
                        co_await grid.get(ctx, at(row, col + 1));
                    double up = co_await grid.get(ctx, at(row - 1, col));
                    double down =
                        co_await grid.get(ctx, at(row + 1, col));
                    double centre = co_await grid.get(ctx, at(row, col));
                    double gs = 0.25 * (left + right + up + down);
                    co_await grid.put(ctx, at(row, col),
                                      (1.0 - params_.omega) * centre +
                                          params_.omega * gs);
                    co_await ctx.compute(params_.pointCost);
                }
            }
            co_await ctx.barrier(0);
        }
    }
}

bool
RedBlackSor::verify() const
{
    if (!grid_)
        return false;
    for (std::size_t i = 0; i < reference_.size(); ++i) {
        if ((*grid_)[i] != reference_[i])
            return false;
    }
    return true;
}

} // namespace cchar::apps
