/**
 * @file
 * Inline small vector for hot-path, trivially-copyable records.
 *
 * The mesh transfers tens of thousands of worms per simulated
 * millisecond, and each one used to heap-allocate two short vectors
 * (its route and its held-lane stack). Paths on the simulated meshes
 * are a handful of hops, so both fit in inline storage essentially
 * always; SmallVec keeps the first N elements in the object itself and
 * only touches the allocator for the rare longer path.
 *
 * Deliberately restricted to trivially copyable, trivially
 * destructible element types: growth is a memcpy and teardown is a
 * free, which is exactly what the POD hop/lane records need and keeps
 * this header small enough to audit.
 */

#ifndef CCHAR_DESIM_SMALLVEC_HH
#define CCHAR_DESIM_SMALLVEC_HH

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <type_traits>

namespace cchar::desim {

/** Vector with N inline slots; spills to the heap past that. */
template <typename T, std::size_t N>
class SmallVec
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "SmallVec growth is a raw memcpy");
    static_assert(std::is_trivially_destructible_v<T>,
                  "SmallVec never runs element destructors");
    static_assert(N > 0, "SmallVec needs at least one inline slot");

  public:
    SmallVec() : data_(inlineSlots()) {}

    SmallVec(const SmallVec &) = delete;
    SmallVec &operator=(const SmallVec &) = delete;

    ~SmallVec()
    {
        if (data_ != inlineSlots())
            std::free(data_);
    }

    void
    push_back(const T &v)
    {
        if (size_ == capacity_)
            grow();
        data_[size_++] = v;
    }

    void pop_back() { --size_; }

    T &back() { return data_[size_ - 1]; }
    const T &back() const { return data_[size_ - 1]; }

    T &operator[](std::size_t i) { return data_[i]; }
    const T &operator[](std::size_t i) const { return data_[i]; }

    T *begin() { return data_; }
    T *end() { return data_ + size_; }
    const T *begin() const { return data_; }
    const T *end() const { return data_ + size_; }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    void clear() { size_ = 0; }

  private:
    void
    grow()
    {
        std::size_t newCap = capacity_ * 2;
        T *fresh = static_cast<T *>(std::malloc(newCap * sizeof(T)));
        if (!fresh)
            throw std::bad_alloc{};
        std::memcpy(fresh, data_, size_ * sizeof(T));
        if (data_ != inlineSlots())
            std::free(data_);
        data_ = fresh;
        capacity_ = newCap;
    }

    T *inlineSlots() { return reinterpret_cast<T *>(storage_); }

    alignas(T) unsigned char storage_[N * sizeof(T)];
    T *data_;
    std::size_t size_ = 0;
    std::size_t capacity_ = N;
};

} // namespace cchar::desim

#endif // CCHAR_DESIM_SMALLVEC_HH
