/**
 * @file
 * FIFO resource (CSIM "facility" equivalent) with usage statistics.
 *
 * A Resource models a server pool with a fixed capacity. Processes
 * acquire units with `co_await res.acquire()` and release them with
 * `res.release()`. Waiters are granted strictly in FIFO order, which
 * keeps the simulation deterministic and models the FIFO arbitration of
 * physical channels in the wormhole network.
 *
 * The resource tracks the statistics the paper reports for network
 * resources: utilization (busy-time integral / elapsed time), number of
 * acquisitions, and the waiting-time tally (the "contention" component
 * of message latency).
 */

#ifndef CCHAR_DESIM_RESOURCE_HH
#define CCHAR_DESIM_RESOURCE_HH

#include <coroutine>
#include <cstdint>
#include <deque>
#include <string>

#include "simulator.hh"
#include "statistics.hh"

namespace cchar::desim {

/** FIFO multi-server resource. */
class Resource
{
  public:
    /**
     * @param sim      Owning simulator.
     * @param capacity Number of concurrently holdable units (>= 1).
     * @param name     Diagnostic name.
     */
    Resource(Simulator &sim, int capacity = 1, std::string name = {})
        : sim_(&sim), capacity_(capacity), name_(std::move(name))
    {}

    Resource(const Resource &) = delete;
    Resource &operator=(const Resource &) = delete;
    Resource(Resource &&) = default;
    Resource &operator=(Resource &&) = default;

    /** Awaitable returned by acquire(). */
    class Acquire
    {
      public:
        explicit Acquire(Resource *res) : res_(res) {}

        bool
        await_ready()
        {
            if (res_->inUse_ < res_->capacity_) {
                res_->grant(0.0);
                return true;
            }
            return false;
        }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            res_->waiters_.push_back({h, res_->sim_->now()});
        }

        void await_resume() const noexcept {}

      private:
        Resource *res_;
    };

    /** Request one unit; suspends until granted (FIFO). */
    Acquire acquire() { return Acquire{this}; }

    /** Return one unit; wakes the head waiter, if any. */
    void
    release()
    {
        accumulateBusy();
        --inUse_;
        if (!waiters_.empty()) {
            Waiter w = waiters_.front();
            waiters_.pop_front();
            grant(sim_->now() - w.since);
            sim_->scheduleResume(w.handle, sim_->now());
        }
    }

    /** Try to acquire without waiting. */
    bool
    tryAcquire()
    {
        if (inUse_ < capacity_) {
            grant(0.0);
            return true;
        }
        return false;
    }

    int capacity() const { return capacity_; }
    int inUse() const { return inUse_; }
    std::size_t queueLength() const { return waiters_.size(); }
    const std::string &name() const { return name_; }

    /** Total completed acquisitions. */
    std::uint64_t acquisitions() const { return acquisitions_; }

    /** Waiting-time statistics across all acquisitions. */
    const Tally &waitTime() const { return waitTime_; }

    /**
     * Fraction of [0, at] during which at least one unit was held,
     * normalized by capacity (i.e., mean busy servers / capacity).
     */
    double
    utilization(SimTime at) const
    {
        if (at <= 0.0)
            return 0.0;
        double busy = busyIntegral_;
        busy += static_cast<double>(inUse_) * (at - lastChange_);
        return busy / (static_cast<double>(capacity_) * at);
    }

  private:
    struct Waiter
    {
        std::coroutine_handle<> handle;
        SimTime since;
    };

    void
    grant(SimTime waited)
    {
        accumulateBusy();
        ++inUse_;
        ++acquisitions_;
        waitTime_.record(waited);
    }

    void
    accumulateBusy()
    {
        SimTime t = sim_->now();
        busyIntegral_ += static_cast<double>(inUse_) * (t - lastChange_);
        lastChange_ = t;
    }

    Simulator *sim_;
    int capacity_;
    int inUse_ = 0;
    std::string name_;
    std::deque<Waiter> waiters_;
    std::uint64_t acquisitions_ = 0;
    Tally waitTime_;
    double busyIntegral_ = 0.0;
    SimTime lastChange_ = 0.0;
};

/**
 * RAII helper: release on scope exit. Usage:
 *   co_await res.acquire();
 *   ResourceHold hold{res};
 */
class ResourceHold
{
  public:
    explicit ResourceHold(Resource &res) : res_(&res) {}

    ResourceHold(ResourceHold &&other) noexcept
        : res_(other.res_)
    {
        other.res_ = nullptr;
    }

    ResourceHold(const ResourceHold &) = delete;
    ResourceHold &operator=(const ResourceHold &) = delete;
    ResourceHold &operator=(ResourceHold &&) = delete;

    ~ResourceHold()
    {
        if (res_)
            res_->release();
    }

    /** Release early (idempotent). */
    void
    release()
    {
        if (res_) {
            res_->release();
            res_ = nullptr;
        }
    }

  private:
    Resource *res_;
};

} // namespace cchar::desim

#endif // CCHAR_DESIM_RESOURCE_HH
