/**
 * @file
 * Observation accumulators used across the simulators.
 *
 * Tally accumulates independent observations (message latencies,
 * waiting times); TimeWeighted integrates a piecewise-constant signal
 * over simulated time (queue lengths, buffer occupancy).
 */

#ifndef CCHAR_DESIM_STATISTICS_HH
#define CCHAR_DESIM_STATISTICS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace cchar::desim {

/** Accumulator over independent observations. */
class Tally
{
  public:
    void
    record(double x)
    {
        ++count_;
        sum_ += x;
        sumSq_ += x * x;
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    double
    mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    /** Population variance. */
    double
    variance() const
    {
        if (count_ == 0)
            return 0.0;
        double m = mean();
        double v = sumSq_ / static_cast<double>(count_) - m * m;
        return v > 0.0 ? v : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }

    /** Coefficient of variation (stddev / mean). */
    double
    cv() const
    {
        double m = mean();
        return m != 0.0 ? stddev() / m : 0.0;
    }

    void
    reset()
    {
        count_ = 0;
        sum_ = sumSq_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Time-weighted integral of a piecewise-constant signal. */
class TimeWeighted
{
  public:
    explicit TimeWeighted(double initial = 0.0) : value_(initial) {}

    /** Record a new value effective at time t. */
    void
    update(double value, double t)
    {
        integral_ += value_ * (t - lastTime_);
        value_ = value;
        lastTime_ = t;
    }

    double value() const { return value_; }

    /** Time average over [0, t]. */
    double
    average(double t) const
    {
        if (t <= 0.0)
            return value_;
        double integral = integral_ + value_ * (t - lastTime_);
        return integral / t;
    }

  private:
    double value_;
    double integral_ = 0.0;
    double lastTime_ = 0.0;
};

} // namespace cchar::desim

#endif // CCHAR_DESIM_STATISTICS_HH
