#include "simulator.hh"

#include <chrono>
#include <sstream>
#include <stdexcept>

namespace cchar::desim {

void
Delay::await_suspend(std::coroutine_handle<> h)
{
    SimTime dt = dt_ < 0.0 ? 0.0 : dt_;
    sim_->scheduleResume(h, sim_->now() + dt);
}

Simulator::Simulator()
{
    // Resolve observability handles once; the dispatch loop never does
    // a name lookup. With no sinks installed these stay detached and
    // every use is a null check.
    if (obs::MetricsRegistry *reg = obs::metrics()) {
        eventsCtr_ = reg->counter("desim.events");
        calendarPeakGauge_ = reg->gauge("desim.calendar_peak");
        eventsPerSecGauge_ = reg->gauge("desim.events_per_sec");
    }
    tracer_ = obs::tracer();
}

Simulator::~Simulator()
{
    // Frames still on the calendar belong to root processes owned by
    // processes_; destroying the Task<void> runners tears down the
    // whole suspended coroutine chains.
}

Task<void>
Simulator::processRunner(Task<void> body,
                         std::shared_ptr<ProcessState> state, Simulator *sim)
{
    try {
        co_await std::move(body);
    } catch (...) {
        state->error = std::current_exception();
    }
    state->done = true;
    if (sim->tracer_) {
        obs::Tracer *tr = sim->tracer_;
        tr->span(tr->lane("proc:" + state->name), tr->name("process"),
                 state->spawnTime, sim->now_ - state->spawnTime);
    }
    for (auto h : state->joiners)
        sim->scheduleResume(h, sim->now());
    state->joiners.clear();
}

ProcessRef
Simulator::spawn(Task<void> body, std::string name)
{
    auto state = std::make_shared<ProcessState>();
    if (name.empty()) {
        std::ostringstream os;
        os << "process-" << processes_.size();
        name = os.str();
    }
    state->name = std::move(name);
    state->spawnTime = now_;

    Task<void> runner = processRunner(std::move(body), state, this);
    // Schedule the runner's first resumption at the current time; the
    // frame itself stays owned by the registry entry so teardown is
    // deterministic even if the process never completes.
    calendar_.push(CalendarEvent{now_, seq_++, runner.rawHandle(), 0});
    processes_.push_back(RootProcess{std::move(runner), state});
    return ProcessRef{std::move(state)};
}

void
Simulator::scheduleResume(std::coroutine_handle<> h, SimTime at)
{
    if (at < now_)
        at = now_;
    calendar_.push(CalendarEvent{at, seq_++, h, 0});
}

std::uint32_t
Simulator::allocFnSlot(std::function<void()> fn)
{
    if (!fnFree_.empty()) {
        std::uint32_t slot = fnFree_.back();
        fnFree_.pop_back();
        fnSlots_[slot - 1] = std::move(fn);
        return slot;
    }
    fnSlots_.push_back(std::move(fn));
    return static_cast<std::uint32_t>(fnSlots_.size());
}

void
Simulator::schedule(std::function<void()> fn, SimTime at)
{
    if (at < now_)
        at = now_;
    calendar_.push(CalendarEvent{at, seq_++, {}, allocFnSlot(std::move(fn))});
}

void
Simulator::attachPeriodic(std::function<void(SimTime)> fn, SimTime period)
{
    if (period <= 0.0)
        throw std::invalid_argument("desim: periodic period must be > 0");
    if (!fn)
        throw std::invalid_argument("desim: null periodic callback");
    schedulePeriodicTick(
        std::make_shared<std::function<void(SimTime)>>(std::move(fn)),
        period);
}

void
Simulator::schedulePeriodicTick(
    std::shared_ptr<std::function<void(SimTime)>> fn, SimTime period)
{
    ++periodicPending_;
    schedule(
        [this, fn, period] {
            --periodicPending_;
            (*fn)(now_);
            // Re-arm only while non-periodic work remains; otherwise
            // periodic chains would keep each other (and run())
            // alive forever.
            if (calendar_.size() > periodicPending_)
                schedulePeriodicTick(fn, period);
        },
        now_ + period);
}

void
Simulator::dispatch(const CalendarEvent &ev)
{
    now_ = ev.time;
    ++processed_;
    eventsCtr_.add(1);
    if (ev.handle) {
        ev.handle.resume();
    } else if (ev.fnSlot != 0) {
        // Move the callback out of its slot before invoking it: the
        // callback may schedule again and reuse the freed slot.
        std::function<void()> fn = std::move(fnSlots_[ev.fnSlot - 1]);
        fnFree_.push_back(ev.fnSlot);
        fn();
    }
    if (calendar_.size() > calendarPeak_)
        calendarPeak_ = calendar_.size();
}

void
Simulator::publishRunStats()
{
    calendarPeakGauge_.high(static_cast<double>(calendarPeak_));
    eventsPerSecGauge_.set(wallEventsPerSec());
}

void
Simulator::run()
{
    auto wallStart = std::chrono::steady_clock::now();
    while (!calendar_.empty()) {
        if (processed_ >= maxEvents_)
            throw std::runtime_error(
                "desim: event cap exceeded (runaway simulation?)");
        CalendarEvent ev = calendar_.popMin();
        dispatch(ev);
    }
    wallSeconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wallStart)
            .count();
    publishRunStats();
    rethrowProcessErrors();
}

void
Simulator::runUntil(SimTime t)
{
    auto wallStart = std::chrono::steady_clock::now();
    while (!calendar_.empty() && calendar_.top().time <= t) {
        if (processed_ >= maxEvents_)
            throw std::runtime_error(
                "desim: event cap exceeded (runaway simulation?)");
        CalendarEvent ev = calendar_.popMin();
        dispatch(ev);
    }
    if (now_ < t)
        now_ = t;
    wallSeconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wallStart)
            .count();
    publishRunStats();
    rethrowProcessErrors();
}

void
Simulator::rethrowProcessErrors() const
{
    for (const auto &proc : processes_) {
        if (proc.state->error)
            std::rethrow_exception(proc.state->error);
    }
}

void
Simulator::destroyProcesses()
{
    // Frame teardown may release resources, which may in turn push
    // wake-up events for sibling frames — destroy everything first,
    // then drop the (now dangling) calendar entries and callbacks.
    processes_.clear();
    calendar_.clear();
    fnSlots_.clear();
    fnFree_.clear();
    periodicPending_ = 0;
}

std::vector<std::string>
Simulator::unfinishedProcesses() const
{
    std::vector<std::string> names;
    for (const auto &proc : processes_) {
        if (!proc.state->done)
            names.push_back(proc.state->name);
    }
    return names;
}

} // namespace cchar::desim
