#include "simulator.hh"

#include <sstream>
#include <stdexcept>

namespace cchar::desim {

void
Delay::await_suspend(std::coroutine_handle<> h)
{
    SimTime dt = dt_ < 0.0 ? 0.0 : dt_;
    sim_->scheduleResume(h, sim_->now() + dt);
}

Simulator::~Simulator()
{
    // Frames still on the calendar belong to root processes owned by
    // processes_; destroying the Task<void> runners tears down the
    // whole suspended coroutine chains.
}

Task<void>
Simulator::processRunner(Task<void> body,
                         std::shared_ptr<ProcessState> state, Simulator *sim)
{
    try {
        co_await std::move(body);
    } catch (...) {
        state->error = std::current_exception();
    }
    state->done = true;
    for (auto h : state->joiners)
        sim->scheduleResume(h, sim->now());
    state->joiners.clear();
}

ProcessRef
Simulator::spawn(Task<void> body, std::string name)
{
    auto state = std::make_shared<ProcessState>();
    if (name.empty()) {
        std::ostringstream os;
        os << "process-" << processes_.size();
        name = os.str();
    }
    state->name = std::move(name);

    Task<void> runner = processRunner(std::move(body), state, this);
    // Schedule the runner's first resumption at the current time; the
    // frame itself stays owned by the registry entry so teardown is
    // deterministic even if the process never completes.
    calendar_.push(Event{now_, seq_++, runner.rawHandle(), {}});
    processes_.push_back(RootProcess{std::move(runner), state});
    return ProcessRef{std::move(state), this};
}

void
Simulator::scheduleResume(std::coroutine_handle<> h, SimTime at)
{
    if (at < now_)
        at = now_;
    calendar_.push(Event{at, seq_++, h, {}});
}

void
Simulator::schedule(std::function<void()> fn, SimTime at)
{
    if (at < now_)
        at = now_;
    calendar_.push(Event{at, seq_++, {}, std::move(fn)});
}

void
Simulator::dispatch(Event &ev)
{
    now_ = ev.time;
    ++processed_;
    if (ev.handle)
        ev.handle.resume();
    else if (ev.fn)
        ev.fn();
}

void
Simulator::run()
{
    while (!calendar_.empty()) {
        if (processed_ >= maxEvents_)
            throw std::runtime_error(
                "desim: event cap exceeded (runaway simulation?)");
        Event ev = calendar_.top();
        calendar_.pop();
        dispatch(ev);
    }
    rethrowProcessErrors();
}

void
Simulator::runUntil(SimTime t)
{
    while (!calendar_.empty() && calendar_.top().time <= t) {
        if (processed_ >= maxEvents_)
            throw std::runtime_error(
                "desim: event cap exceeded (runaway simulation?)");
        Event ev = calendar_.top();
        calendar_.pop();
        dispatch(ev);
    }
    if (now_ < t)
        now_ = t;
    rethrowProcessErrors();
}

void
Simulator::rethrowProcessErrors() const
{
    for (const auto &proc : processes_) {
        if (proc.state->error)
            std::rethrow_exception(proc.state->error);
    }
}

std::vector<std::string>
Simulator::unfinishedProcesses() const
{
    std::vector<std::string> names;
    for (const auto &proc : processes_) {
        if (!proc.state->done)
            names.push_back(proc.state->name);
    }
    return names;
}

} // namespace cchar::desim
