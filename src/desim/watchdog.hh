/**
 * @file
 * No-progress watchdog for the simulation kernel.
 *
 * A discrete-event simulation cannot "hang" in the OS sense, but it
 * can livelock: events keep committing (retransmission loops, polling
 * protocols) while no useful work completes, so run() never drains.
 * The Watchdog rides the kernel's periodic-tick mechanism and checks
 * a progress probe every checkPeriodUs of sim time; after
 * `stallChecks` consecutive checks with no probe advance — or when
 * the sim clock passes `maxSimTimeUs` — it trips, assembles a
 * per-process diagnostic (sim time, events committed, calendar depth,
 * every unfinished process with its spawn time), and throws
 * WatchdogError out of run() instead of letting the simulation spin
 * forever.
 *
 * The default probe counts completed root processes; drivers that
 * know better (e.g. the mesh's delivered-message count) install their
 * own with setProgressProbe(). Because watchdog ticks use
 * attachPeriodic, the watchdog never keeps an otherwise-drained
 * simulation alive.
 */

#ifndef CCHAR_DESIM_WATCHDOG_HH
#define CCHAR_DESIM_WATCHDOG_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

#include "simulator.hh"

namespace cchar::desim {

/** Watchdog parameters (times in sim microseconds). */
struct WatchdogConfig
{
    /** Probe period. */
    double checkPeriodUs = 5000.0;
    /** Consecutive no-progress checks before the watchdog trips. */
    int stallChecks = 8;
    /** Absolute sim-time horizon; 0 disables the horizon. */
    double maxSimTimeUs = 0.0;
    /**
     * Optional external cancellation flag, polled at every periodic
     * check before the progress probe. When another thread stores
     * `true` (a wall-clock deadline monitor, a signal handler's
     * drain path), the watchdog trips on its next tick with
     * `cancelReason` and WatchdogError::cancelled() set — the only
     * sanctioned way to stop a running simulation from outside,
     * since the kernel itself is single-threaded.
     */
    const std::atomic<bool> *cancelFlag = nullptr;
    /** Trip message used for external cancellation. */
    std::string cancelReason = "cancelled by external request";
};

/** Thrown out of Simulator::run() when the watchdog trips. */
class WatchdogError : public std::runtime_error
{
  public:
    explicit WatchdogError(const std::string &diagnostic,
                           bool cancelled = false)
        : std::runtime_error(diagnostic), cancelled_(cancelled)
    {}

    /**
     * True when the trip was requested through
     * WatchdogConfig::cancelFlag rather than detected (livelock or
     * sim-time horizon). Callers use this to classify the failure:
     * a cancellation is the *caller's* wall-clock policy (deadline,
     * shutdown), not a property of the simulated system.
     */
    bool cancelled() const { return cancelled_; }

  private:
    bool cancelled_ = false;
};

/** Livelock / no-progress detector; arm() before Simulator::run(). */
class Watchdog
{
  public:
    explicit Watchdog(Simulator &sim, WatchdogConfig cfg = {});

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /**
     * Install a custom progress probe. The watchdog only requires
     * that the value advances while useful work happens; delivered
     * messages, completed transactions and finished processes all
     * qualify.
     */
    void setProgressProbe(std::function<std::uint64_t()> probe);

    /** Attach the periodic check. Call once, before run(). */
    void arm();

    bool tripped() const { return tripped_; }

    /** Checks performed so far (testing / introspection). */
    std::uint64_t checks() const { return checks_; }

  private:
    [[noreturn]] void trip(const std::string &reason,
                           bool cancelled = false);

    Simulator *sim_;
    WatchdogConfig cfg_;
    std::function<std::uint64_t()> probe_;
    bool armed_ = false;
    bool tripped_ = false;
    std::uint64_t checks_ = 0;
    std::uint64_t lastProbe_ = 0;
    int stalled_ = 0;
};

} // namespace cchar::desim

#endif // CCHAR_DESIM_WATCHDOG_HH
