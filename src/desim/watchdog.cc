#include "watchdog.hh"

#include <sstream>
#include <stdexcept>

namespace cchar::desim {

Watchdog::Watchdog(Simulator &sim, WatchdogConfig cfg)
    : sim_(&sim), cfg_(cfg)
{
    if (cfg_.checkPeriodUs <= 0.0)
        throw std::invalid_argument(
            "watchdog: check period must be positive");
    if (cfg_.stallChecks < 1)
        throw std::invalid_argument(
            "watchdog: need at least one stall check");
}

void
Watchdog::setProgressProbe(std::function<std::uint64_t()> probe)
{
    probe_ = std::move(probe);
}

void
Watchdog::arm()
{
    if (armed_)
        throw std::logic_error("watchdog: already armed");
    armed_ = true;
    if (!probe_) {
        // Default probe: the shrinking unfinished-process count. The
        // watchdog only cares about *change*, so a decreasing signal
        // works as well as an increasing one.
        Simulator *sim = sim_;
        probe_ = [sim] {
            return static_cast<std::uint64_t>(
                sim->unfinishedProcesses().size());
        };
    }
    lastProbe_ = probe_();
    sim_->attachPeriodic(
        [this](SimTime now) {
            ++checks_;
            if (cfg_.cancelFlag != nullptr &&
                cfg_.cancelFlag->load(std::memory_order_acquire))
                trip(cfg_.cancelReason, /*cancelled=*/true);
            if (cfg_.maxSimTimeUs > 0.0 && now >= cfg_.maxSimTimeUs) {
                std::ostringstream os;
                os << "sim-time horizon exceeded (t=" << now
                   << "us >= " << cfg_.maxSimTimeUs << "us)";
                trip(os.str());
            }
            std::uint64_t value = probe_();
            if (value != lastProbe_) {
                lastProbe_ = value;
                stalled_ = 0;
                return;
            }
            if (++stalled_ >= cfg_.stallChecks) {
                std::ostringstream os;
                os << "no progress for " << stalled_ << " checks ("
                   << cfg_.checkPeriodUs * stalled_
                   << "us of sim time)";
                trip(os.str());
            }
        },
        cfg_.checkPeriodUs);
}

void
Watchdog::trip(const std::string &reason, bool cancelled)
{
    tripped_ = true;
    std::ostringstream os;
    os << "desim: watchdog tripped: " << reason << "\n"
       << "  sim time: " << sim_->now() << "us\n"
       << "  events committed: " << sim_->processedEvents() << "\n"
       << "  calendar depth: " << sim_->calendarSize() << "\n";
    auto unfinished = sim_->unfinishedProcesses();
    os << "  unfinished processes (" << unfinished.size() << "):";
    constexpr std::size_t kMaxListed = 16;
    for (std::size_t i = 0; i < unfinished.size() && i < kMaxListed;
         ++i)
        os << (i == 0 ? " " : ", ") << unfinished[i];
    if (unfinished.size() > kMaxListed)
        os << ", ... (" << unfinished.size() - kMaxListed << " more)";
    throw WatchdogError(os.str(), cancelled);
}

} // namespace cchar::desim
