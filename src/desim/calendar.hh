/**
 * @file
 * The simulation ready-queue: a 4-ary min-heap over compact events.
 *
 * The kernel dispatches tens of millions of events per second, so the
 * calendar layout is the hottest data structure in the project. Three
 * deliberate choices versus the former std::priority_queue<Event>:
 *
 *  - Events are 32-byte PODs. The rare callback events (schedule(),
 *    periodic ticks) park their std::function in a side slot pool and
 *    carry only a 32-bit slot index, so heap percolation never moves
 *    (or worse, copies) a std::function.
 *  - The heap is 4-ary: ~half the tree depth of a binary heap, and the
 *    four children of a node share one cache line, which is where
 *    sift-down spends its comparisons.
 *  - popMin() moves the minimum out instead of the copy-then-pop
 *    top()/pop() dance a std::priority_queue forces.
 *
 * Ordering is identical to the old calendar: by time, ties broken by
 * insertion sequence, so every run stays bit-identical.
 */

#ifndef CCHAR_DESIM_CALENDAR_HH
#define CCHAR_DESIM_CALENDAR_HH

#include <coroutine>
#include <cstdint>
#include <utility>
#include <vector>

namespace cchar::desim {

/** One scheduled entry: a coroutine resumption or a callback slot. */
struct CalendarEvent
{
    double time = 0.0;
    std::uint64_t seq = 0;
    /** Coroutine to resume (null for callback events). */
    std::coroutine_handle<> handle{};
    /** 1-based callback slot index; 0 = none (see Simulator). */
    std::uint32_t fnSlot = 0;
};

/** 4-ary min-heap of CalendarEvent, (time, seq)-ordered. */
class EventCalendar
{
  public:
    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** The minimum entry (undefined when empty). */
    const CalendarEvent &top() const { return heap_.front(); }

    void
    push(const CalendarEvent &ev)
    {
        std::size_t i = heap_.size();
        heap_.push_back(ev);
        // Fast path: most pushes land in (time, seq) order already —
        // the delay loop of a single process never percolates.
        if (i == 0 || !before(ev, heap_[(i - 1) / 4]))
            return;
        siftUp(i);
    }

    /** Remove and return the minimum entry. */
    CalendarEvent
    popMin()
    {
        CalendarEvent min = heap_.front();
        if (heap_.size() > 1) {
            heap_.front() = heap_.back();
            heap_.pop_back();
            siftDown(0);
        } else {
            heap_.pop_back();
        }
        return min;
    }

    void reserve(std::size_t n) { heap_.reserve(n); }

    /** Drop every pending entry (teardown; see Simulator). */
    void clear() { heap_.clear(); }

  private:
    static bool
    before(const CalendarEvent &a, const CalendarEvent &b)
    {
        if (a.time != b.time)
            return a.time < b.time;
        return a.seq < b.seq;
    }

    void
    siftUp(std::size_t i)
    {
        CalendarEvent ev = heap_[i];
        while (i > 0) {
            std::size_t parent = (i - 1) / 4;
            if (!before(ev, heap_[parent]))
                break;
            heap_[i] = heap_[parent];
            i = parent;
        }
        heap_[i] = ev;
    }

    void
    siftDown(std::size_t i)
    {
        CalendarEvent ev = heap_[i];
        std::size_t n = heap_.size();
        for (;;) {
            std::size_t first = 4 * i + 1;
            if (first >= n)
                break;
            std::size_t last = first + 4 < n ? first + 4 : n;
            std::size_t best = first;
            for (std::size_t c = first + 1; c < last; ++c) {
                if (before(heap_[c], heap_[best]))
                    best = c;
            }
            if (!before(heap_[best], ev))
                break;
            heap_[i] = heap_[best];
            i = best;
        }
        heap_[i] = ev;
    }

    std::vector<CalendarEvent> heap_;
};

} // namespace cchar::desim

#endif // CCHAR_DESIM_CALENDAR_HH
