/**
 * @file
 * Process-oriented discrete-event simulation kernel.
 *
 * This is the reproduction's stand-in for the CSIM simulation package the
 * paper's 2-D mesh network simulator was written in. It provides:
 *
 *  - a global simulation clock (double-precision, microseconds by
 *    convention throughout this project);
 *  - processes expressed as C++20 coroutines (Task<void>), spawned and
 *    joined through the Simulator;
 *  - a deterministic event calendar (ties broken by insertion order, so
 *    every run of the same model with the same seed is bit-identical).
 *
 * Blocking primitives (Delay, Resource, Mailbox, SimEvent) live in their
 * own headers and interoperate with any coroutine driven by this kernel.
 *
 * Observability: the kernel self-instruments against the process-wide
 * obs hooks (see obs/obs.hh) — events dispatched, peak calendar depth,
 * and wall-clock events/sec land in the installed MetricsRegistry, and
 * every completed process emits a lifetime span to the installed
 * Tracer. With no sinks installed the handles are detached and the
 * per-event cost is a null check.
 */

#ifndef CCHAR_DESIM_SIMULATOR_HH
#define CCHAR_DESIM_SIMULATOR_HH

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "calendar.hh"
#include "obs/obs.hh"
#include "task.hh"

namespace cchar::desim {

/** Simulated time. Convention: microseconds. */
using SimTime = double;

class Simulator;

/** Shared completion state of a spawned root process. */
struct ProcessState
{
    std::string name;
    /** Time the process was spawned (lifetime span start). */
    SimTime spawnTime = 0.0;
    bool done = false;
    std::exception_ptr error{};
    std::vector<std::coroutine_handle<>> joiners;
};

/**
 * Lightweight handle to a spawned process; awaitable (join semantics).
 *
 * `co_await ref` suspends the awaiting process until the referenced
 * process completes. Joining an already-finished process does not
 * suspend.
 */
class ProcessRef
{
  public:
    ProcessRef() = default;

    explicit ProcessRef(std::shared_ptr<ProcessState> state)
        : state_(std::move(state))
    {}

    bool valid() const { return static_cast<bool>(state_); }
    bool done() const { return state_ && state_->done; }
    const std::string &name() const { return state_->name; }

    /** Time the process was spawned. */
    SimTime spawnTime() const { return state_->spawnTime; }

    struct Awaiter
    {
        ProcessState *state;

        bool await_ready() const noexcept { return state->done; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            state->joiners.push_back(h);
        }

        void await_resume() const noexcept {}
    };

    Awaiter operator co_await() const { return Awaiter{state_.get()}; }

  private:
    std::shared_ptr<ProcessState> state_{};
};

/**
 * Awaitable that suspends the current process for a fixed duration.
 *
 * Single-shot: each Delay schedules exactly one resumption, so it is
 * move-only — a copy could be awaited a second time and resume a
 * coroutine handle that no longer exists.
 */
class Delay
{
  public:
    Delay(Simulator *sim, SimTime dt) : sim_(sim), dt_(dt) {}

    Delay(const Delay &) = delete;
    Delay &operator=(const Delay &) = delete;
    Delay(Delay &&) = default;
    Delay &operator=(Delay &&) = default;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}

  private:
    Simulator *sim_;
    SimTime dt_;
};

/**
 * The simulation kernel: event calendar, clock, and process registry.
 */
class Simulator
{
  public:
    Simulator();
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;
    ~Simulator();

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /** Awaitable: suspend the calling process for dt time units. */
    Delay
    delay(SimTime dt)
    {
        return Delay{this, dt};
    }

    /**
     * Adopt a coroutine as a root process and schedule it to start at
     * the current simulated time.
     *
     * @param body  The process body; ownership of the frame transfers
     *              to the simulator.
     * @param name  Diagnostic name (deadlock reports, error messages).
     * @return A joinable handle to the process.
     */
    ProcessRef spawn(Task<void> body, std::string name = {});

    /** Schedule resumption of a suspended coroutine at absolute time. */
    void scheduleResume(std::coroutine_handle<> h, SimTime at);

    /** Schedule a plain callback at absolute time. */
    void schedule(std::function<void()> fn, SimTime at);

    /**
     * Run `fn(now)` every `period` time units, starting one period from
     * now, for as long as the calendar holds any other work. Periodic
     * ticks do not keep the simulation alive: once only periodic ticks
     * remain, the chain stops and run() drains. Telemetry samplers and
     * progress reporting hang off this.
     */
    void attachPeriodic(std::function<void(SimTime)> fn, SimTime period);

    /**
     * Run until the event calendar drains.
     *
     * @throws std::runtime_error if any process terminated with an
     *         exception, or if the event cap is exceeded.
     */
    void run();

    /**
     * Run events with timestamp <= t, then stop. The clock ends at
     * min(t, time of last executed event ... t).
     */
    void runUntil(SimTime t);

    /** Number of calendar events executed so far. */
    std::uint64_t processedEvents() const { return processed_; }

    /** Pending events in the calendar. */
    std::size_t calendarSize() const { return calendar_.size(); }

    /** Largest calendar depth observed so far. */
    std::size_t calendarPeak() const { return calendarPeak_; }

    /** Wall-clock seconds spent inside run()/runUntil() so far. */
    double wallSeconds() const { return wallSeconds_; }

    /** Self-profiled dispatch throughput (events / wall second). */
    double
    wallEventsPerSec() const
    {
        return wallSeconds_ > 0.0
                   ? static_cast<double>(processed_) / wallSeconds_
                   : 0.0;
    }

    /** Safety valve: maximum events before run() aborts. */
    void setMaxEvents(std::uint64_t n) { maxEvents_ = n; }

    /**
     * Tear down every root process (destroying suspended coroutine
     * chains) and drop all pending calendar entries. Idempotent.
     *
     * Owners of simulation resources (networks, machines) call this
     * from their destructors: suspended frames hold RAII releases
     * onto those resources, so the frames must die first. The object
     * declaration order at every call site (simulator before machine)
     * would otherwise destroy them in exactly the wrong order when a
     * run ends abnormally (deadlock, watchdog trip).
     */
    void destroyProcesses();

    /**
     * Names of spawned processes that have not completed. Non-empty
     * after run() indicates deadlock (every process blocked with no
     * pending events).
     */
    std::vector<std::string> unfinishedProcesses() const;

    /** True if all spawned processes have completed. */
    bool allProcessesDone() const { return unfinishedProcesses().empty(); }

    /** Trace sink this kernel resolved at construction (may be null). */
    obs::Tracer *tracer() const { return tracer_; }

  private:
    struct RootProcess
    {
        Task<void> runner;
        std::shared_ptr<ProcessState> state;
    };

    static Task<void> processRunner(Task<void> body,
                                    std::shared_ptr<ProcessState> state,
                                    Simulator *sim);

    void dispatch(const CalendarEvent &ev);
    std::uint32_t allocFnSlot(std::function<void()> fn);
    void rethrowProcessErrors() const;
    void schedulePeriodicTick(
        std::shared_ptr<std::function<void(SimTime)>> fn, SimTime period);
    void publishRunStats();

    SimTime now_ = 0.0;
    std::uint64_t seq_ = 0;
    std::uint64_t processed_ = 0;
    std::uint64_t maxEvents_ = 2'000'000'000;
    std::size_t calendarPeak_ = 0;
    /** Periodic ticks currently sitting in the calendar. */
    std::size_t periodicPending_ = 0;
    double wallSeconds_ = 0.0;
    EventCalendar calendar_;
    /**
     * Side storage for callback events: the calendar entry carries a
     * 1-based index into fnSlots_ so heap percolation only ever moves
     * 32-byte PODs. Freed indices are recycled through fnFree_.
     */
    std::vector<std::function<void()>> fnSlots_;
    std::vector<std::uint32_t> fnFree_;
    std::vector<RootProcess> processes_;

    // Observability handles, resolved once at construction.
    obs::Tracer *tracer_ = nullptr;
    obs::Counter eventsCtr_;
    obs::Gauge calendarPeakGauge_;
    obs::Gauge eventsPerSecGauge_;
};

} // namespace cchar::desim

#endif // CCHAR_DESIM_SIMULATOR_HH
