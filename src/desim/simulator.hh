/**
 * @file
 * Process-oriented discrete-event simulation kernel.
 *
 * This is the reproduction's stand-in for the CSIM simulation package the
 * paper's 2-D mesh network simulator was written in. It provides:
 *
 *  - a global simulation clock (double-precision, microseconds by
 *    convention throughout this project);
 *  - processes expressed as C++20 coroutines (Task<void>), spawned and
 *    joined through the Simulator;
 *  - a deterministic event calendar (ties broken by insertion order, so
 *    every run of the same model with the same seed is bit-identical).
 *
 * Blocking primitives (Delay, Resource, Mailbox, SimEvent) live in their
 * own headers and interoperate with any coroutine driven by this kernel.
 */

#ifndef CCHAR_DESIM_SIMULATOR_HH
#define CCHAR_DESIM_SIMULATOR_HH

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "task.hh"

namespace cchar::desim {

/** Simulated time. Convention: microseconds. */
using SimTime = double;

class Simulator;

/** Shared completion state of a spawned root process. */
struct ProcessState
{
    std::string name;
    bool done = false;
    std::exception_ptr error{};
    std::vector<std::coroutine_handle<>> joiners;
};

/**
 * Lightweight handle to a spawned process; awaitable (join semantics).
 *
 * `co_await ref` suspends the awaiting process until the referenced
 * process completes. Joining an already-finished process does not
 * suspend.
 */
class ProcessRef
{
  public:
    ProcessRef() = default;

    ProcessRef(std::shared_ptr<ProcessState> state, Simulator *sim)
        : state_(std::move(state)), sim_(sim)
    {}

    bool valid() const { return static_cast<bool>(state_); }
    bool done() const { return state_ && state_->done; }
    const std::string &name() const { return state_->name; }

    struct Awaiter
    {
        ProcessState *state;

        bool await_ready() const noexcept { return state->done; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            state->joiners.push_back(h);
        }

        void await_resume() const noexcept {}
    };

    Awaiter operator co_await() const { return Awaiter{state_.get()}; }

  private:
    std::shared_ptr<ProcessState> state_{};
    Simulator *sim_ = nullptr;
};

/** Awaitable that suspends the current process for a fixed duration. */
class Delay
{
  public:
    Delay(Simulator *sim, SimTime dt) : sim_(sim), dt_(dt) {}

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}

  private:
    Simulator *sim_;
    SimTime dt_;
};

/**
 * The simulation kernel: event calendar, clock, and process registry.
 */
class Simulator
{
  public:
    Simulator() = default;
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;
    ~Simulator();

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /** Awaitable: suspend the calling process for dt time units. */
    Delay
    delay(SimTime dt)
    {
        return Delay{this, dt};
    }

    /**
     * Adopt a coroutine as a root process and schedule it to start at
     * the current simulated time.
     *
     * @param body  The process body; ownership of the frame transfers
     *              to the simulator.
     * @param name  Diagnostic name (deadlock reports, error messages).
     * @return A joinable handle to the process.
     */
    ProcessRef spawn(Task<void> body, std::string name = {});

    /** Schedule resumption of a suspended coroutine at absolute time. */
    void scheduleResume(std::coroutine_handle<> h, SimTime at);

    /** Schedule a plain callback at absolute time. */
    void schedule(std::function<void()> fn, SimTime at);

    /**
     * Run until the event calendar drains.
     *
     * @throws std::runtime_error if any process terminated with an
     *         exception, or if the event cap is exceeded.
     */
    void run();

    /**
     * Run events with timestamp <= t, then stop. The clock ends at
     * min(t, time of last executed event ... t).
     */
    void runUntil(SimTime t);

    /** Number of calendar events executed so far. */
    std::uint64_t processedEvents() const { return processed_; }

    /** Safety valve: maximum events before run() aborts. */
    void setMaxEvents(std::uint64_t n) { maxEvents_ = n; }

    /**
     * Names of spawned processes that have not completed. Non-empty
     * after run() indicates deadlock (every process blocked with no
     * pending events).
     */
    std::vector<std::string> unfinishedProcesses() const;

    /** True if all spawned processes have completed. */
    bool allProcessesDone() const { return unfinishedProcesses().empty(); }

  private:
    struct Event
    {
        SimTime time;
        std::uint64_t seq;
        std::coroutine_handle<> handle{};
        std::function<void()> fn{};
    };

    struct EventOrder
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    struct RootProcess
    {
        Task<void> runner;
        std::shared_ptr<ProcessState> state;
    };

    static Task<void> processRunner(Task<void> body,
                                    std::shared_ptr<ProcessState> state,
                                    Simulator *sim);

    void dispatch(Event &ev);
    void rethrowProcessErrors() const;

    SimTime now_ = 0.0;
    std::uint64_t seq_ = 0;
    std::uint64_t processed_ = 0;
    std::uint64_t maxEvents_ = 2'000'000'000;
    std::priority_queue<Event, std::vector<Event>, EventOrder> calendar_;
    std::vector<RootProcess> processes_;
};

} // namespace cchar::desim

#endif // CCHAR_DESIM_SIMULATOR_HH
