/**
 * @file
 * Umbrella header for the discrete-event simulation kernel.
 */

#ifndef CCHAR_DESIM_DESIM_HH
#define CCHAR_DESIM_DESIM_HH

#include "event.hh"
#include "mailbox.hh"
#include "resource.hh"
#include "simulator.hh"
#include "statistics.hh"
#include "task.hh"
#include "watchdog.hh"

#endif // CCHAR_DESIM_DESIM_HH
