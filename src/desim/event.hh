/**
 * @file
 * One-shot and pulse condition events for simulated processes.
 *
 * SimEvent supports two uses:
 *  - latch: trigger() fires the event permanently; waiters (present and
 *    future) proceed. reset() re-arms it.
 *  - pulse: pulse() wakes only the processes currently waiting and
 *    leaves the event unfired.
 */

#ifndef CCHAR_DESIM_EVENT_HH
#define CCHAR_DESIM_EVENT_HH

#include <coroutine>
#include <vector>

#include "simulator.hh"

namespace cchar::desim {

/** Broadcast condition variable for simulated processes. */
class SimEvent
{
  public:
    explicit SimEvent(Simulator &sim) : sim_(&sim) {}

    SimEvent(const SimEvent &) = delete;
    SimEvent &operator=(const SimEvent &) = delete;
    SimEvent(SimEvent &&) = default;
    SimEvent &operator=(SimEvent &&) = default;

    class Wait
    {
      public:
        explicit Wait(SimEvent *ev) : ev_(ev) {}

        bool await_ready() const noexcept { return ev_->fired_; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            ev_->waiters_.push_back(h);
        }

        void await_resume() const noexcept {}

      private:
        SimEvent *ev_;
    };

    /** Suspend until the event fires (no-op if already fired). */
    Wait wait() { return Wait{this}; }

    /** Latch the event and wake all waiters. */
    void
    trigger()
    {
        fired_ = true;
        wakeAll();
    }

    /** Wake current waiters without latching. */
    void pulse() { wakeAll(); }

    /** Re-arm a latched event. */
    void reset() { fired_ = false; }

    bool fired() const { return fired_; }
    std::size_t waiterCount() const { return waiters_.size(); }

  private:
    void
    wakeAll()
    {
        for (auto h : waiters_)
            sim_->scheduleResume(h, sim_->now());
        waiters_.clear();
    }

    Simulator *sim_;
    bool fired_ = false;
    std::vector<std::coroutine_handle<>> waiters_;
};

} // namespace cchar::desim

#endif // CCHAR_DESIM_EVENT_HH
