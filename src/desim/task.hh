/**
 * @file
 * Coroutine task type for the process-oriented discrete-event kernel.
 *
 * A Task<T> is a lazily-started coroutine representing (a slice of) a
 * simulated process. Tasks compose: a task may co_await another task,
 * which transfers control to the child until the child either completes
 * or suspends on a kernel awaitable (Delay, Resource::acquire,
 * Mailbox::receive, ...). This mirrors the process abstraction of the
 * CSIM package used by the original paper, expressed with C++20
 * coroutines.
 */

#ifndef CCHAR_DESIM_TASK_HH
#define CCHAR_DESIM_TASK_HH

#include <coroutine>
#include <cstddef>
#include <exception>
#include <optional>
#include <utility>

#include "pool.hh"

namespace cchar::desim {

template <typename T>
class Task;

namespace detail {

/** Common promise state shared by all task specializations. */
struct PromiseBase
{
    /** Coroutine to resume when this task completes (symmetric transfer). */
    std::coroutine_handle<> continuation{};
    /** Exception thrown out of the coroutine body, if any. */
    std::exception_ptr exception{};

    /** Tasks are lazy: they run only once awaited or spawned. */
    std::suspend_always initial_suspend() noexcept { return {}; }

    /**
     * Final awaiter: transfer control back to the awaiting coroutine.
     * Root processes (spawned, never awaited) simply stop here; the
     * Simulator owns and later destroys their frames.
     */
    struct FinalAwaiter
    {
        bool await_ready() noexcept { return false; }

        template <typename Promise>
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<Promise> h) noexcept
        {
            auto &promise = h.promise();
            if (promise.continuation)
                return promise.continuation;
            return std::noop_coroutine();
        }

        void await_resume() noexcept {}
    };

    FinalAwaiter final_suspend() noexcept { return {}; }

    void unhandled_exception() { exception = std::current_exception(); }

    /**
     * Coroutine frames are allocated from a thread-local size-bucketed
     * pool: simulated processes are created and destroyed by the
     * million, and frame reuse keeps the allocator off the hot path.
     */
    static void *
    operator new(std::size_t n)
    {
        return framePool().allocate(n);
    }

    static void
    operator delete(void *p, std::size_t n) noexcept
    {
        framePool().deallocate(p, n);
    }
};

} // namespace detail

/**
 * Lazily-started coroutine with a result of type T.
 *
 * Ownership: the Task object owns the coroutine frame and destroys it in
 * its destructor. When used as `co_await child()`, the temporary Task
 * lives until the full expression completes, which is after the child
 * has finished, so the frame lifetime is always correct.
 */
template <typename T = void>
class [[nodiscard]] Task
{
  public:
    struct promise_type : detail::PromiseBase
    {
        std::optional<T> value{};

        Task get_return_object()
        {
            return Task{
                std::coroutine_handle<promise_type>::from_promise(*this)};
        }

        template <typename U>
        void return_value(U &&v) { value.emplace(std::forward<U>(v)); }
    };

    Task() = default;

    explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

    Task(Task &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {}

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    /** True if this task refers to a live coroutine frame. */
    bool valid() const { return static_cast<bool>(handle_); }

    /** True once the coroutine body has run to completion. */
    bool done() const { return !handle_ || handle_.done(); }

    /** Awaiter implementing child-task composition. */
    struct Awaiter
    {
        std::coroutine_handle<promise_type> child;

        bool await_ready() const noexcept { return !child || child.done(); }

        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<> parent) noexcept
        {
            child.promise().continuation = parent;
            return child;
        }

        T
        await_resume()
        {
            auto &promise = child.promise();
            if (promise.exception)
                std::rethrow_exception(promise.exception);
            return std::move(*promise.value);
        }
    };

    Awaiter operator co_await() && noexcept { return Awaiter{handle_}; }
    Awaiter operator co_await() & noexcept { return Awaiter{handle_}; }

    /**
     * Release ownership of the coroutine frame to the caller.
     * Used by the Simulator when adopting a root process.
     */
    std::coroutine_handle<promise_type>
    release()
    {
        return std::exchange(handle_, nullptr);
    }

    /** Start or resume the coroutine (kernel use only). */
    void resume() { handle_.resume(); }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    std::coroutine_handle<promise_type> handle_{};
};

/** Void specialization of Task. */
template <>
class [[nodiscard]] Task<void>
{
  public:
    struct promise_type : detail::PromiseBase
    {
        Task get_return_object()
        {
            return Task{
                std::coroutine_handle<promise_type>::from_promise(*this)};
        }

        void return_void() {}
    };

    Task() = default;

    explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

    Task(Task &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {}

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    bool valid() const { return static_cast<bool>(handle_); }
    bool done() const { return !handle_ || handle_.done(); }

    struct Awaiter
    {
        std::coroutine_handle<promise_type> child;

        bool await_ready() const noexcept { return !child || child.done(); }

        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<> parent) noexcept
        {
            child.promise().continuation = parent;
            return child;
        }

        void
        await_resume()
        {
            auto &promise = child.promise();
            if (promise.exception)
                std::rethrow_exception(promise.exception);
        }
    };

    Awaiter operator co_await() && noexcept { return Awaiter{handle_}; }
    Awaiter operator co_await() & noexcept { return Awaiter{handle_}; }

    std::coroutine_handle<promise_type>
    release()
    {
        return std::exchange(handle_, nullptr);
    }

    void resume() { handle_.resume(); }

    /** Non-owning view of the coroutine frame (kernel use only). */
    std::coroutine_handle<> rawHandle() const { return handle_; }

    /** Exception captured by the promise, if the body threw. */
    std::exception_ptr
    exception() const
    {
        return handle_ ? handle_.promise().exception : nullptr;
    }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    std::coroutine_handle<promise_type> handle_{};
};

} // namespace cchar::desim

#endif // CCHAR_DESIM_TASK_HH
