/**
 * @file
 * Typed FIFO message queue between simulated processes.
 *
 * Mailbox<T> is the inter-process communication primitive of the
 * kernel: senders never block, receivers block until a message is
 * available. Delivery to blocked receivers is direct-handoff (the
 * message is moved into the receiver's await frame at send time), so a
 * message can never be stolen by a receiver that arrived later —
 * receive order is strictly FIFO among waiters.
 */

#ifndef CCHAR_DESIM_MAILBOX_HH
#define CCHAR_DESIM_MAILBOX_HH

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "simulator.hh"

namespace cchar::desim {

/** Unbounded FIFO mailbox. */
template <typename T>
class Mailbox
{
  public:
    explicit Mailbox(Simulator &sim) : sim_(&sim) {}

    Mailbox(const Mailbox &) = delete;
    Mailbox &operator=(const Mailbox &) = delete;
    Mailbox(Mailbox &&) = default;
    Mailbox &operator=(Mailbox &&) = default;

    /** Awaitable returned by receive(). */
    class Receive
    {
      public:
        explicit Receive(Mailbox *mb) : mb_(mb) {}

        bool
        await_ready()
        {
            if (!mb_->items_.empty()) {
                value_.emplace(std::move(mb_->items_.front()));
                mb_->items_.pop_front();
                return true;
            }
            return false;
        }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            mb_->receivers_.push_back({h, &value_});
        }

        T await_resume() { return std::move(*value_); }

      private:
        Mailbox *mb_;
        std::optional<T> value_{};
    };

    /** Block until a message arrives; returns it. */
    Receive receive() { return Receive{this}; }

    /** Deposit a message; wakes the head receiver, if any. */
    void
    send(T value)
    {
        if (!receivers_.empty()) {
            Waiter w = receivers_.front();
            receivers_.pop_front();
            w.slot->emplace(std::move(value));
            sim_->scheduleResume(w.handle, sim_->now());
        } else {
            items_.push_back(std::move(value));
        }
    }

    /** Non-blocking receive. */
    std::optional<T>
    tryReceive()
    {
        if (items_.empty())
            return std::nullopt;
        T v = std::move(items_.front());
        items_.pop_front();
        return v;
    }

    /** Messages queued (excludes in-flight handoffs). */
    std::size_t pending() const { return items_.size(); }

    /** Receivers currently blocked. */
    std::size_t blockedReceivers() const { return receivers_.size(); }

  private:
    struct Waiter
    {
        std::coroutine_handle<> handle;
        std::optional<T> *slot;
    };

    Simulator *sim_;
    std::deque<T> items_;
    std::deque<Waiter> receivers_;
};

} // namespace cchar::desim

#endif // CCHAR_DESIM_MAILBOX_HH
