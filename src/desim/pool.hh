/**
 * @file
 * Thread-local slab recycler for coroutine frames.
 *
 * Every simulated process slice — a mesh transfer, an MP send, a
 * coherence transaction — is a coroutine whose frame the compiler
 * allocates with the promise's operator new. On the hot path that is
 * one heap allocation and one deallocation per message. This pool
 * intercepts both (see detail::PromiseBase in task.hh) and recycles
 * frames through size-bucketed free lists:
 *
 *  - sizes are rounded up to 64-byte classes, so a frame is nearly
 *    always satisfied by popping the head of its class's free list;
 *  - the lists are thread_local, so sweep workers never contend and
 *    no lock or atomic appears anywhere on the path;
 *  - frames larger than kMaxPooled (rare: none of the project's
 *    coroutines come close) fall through to the global heap.
 *
 * Invariant: a frame must be deallocated on the thread that allocated
 * it. That holds by construction here — a Simulator and every
 * coroutine it drives live and die on a single thread (the sweep
 * engine gives each job its own Simulator on its worker thread).
 */

#ifndef CCHAR_DESIM_POOL_HH
#define CCHAR_DESIM_POOL_HH

#include <cstddef>
#include <cstdint>
#include <new>

namespace cchar::desim {

/** Size-bucketed free-list allocator (see file comment). */
class FramePool
{
  public:
    static constexpr std::size_t kAlign = 64;
    static constexpr std::size_t kMaxPooled = 4096;
    static constexpr std::size_t kClasses = kMaxPooled / kAlign;

    FramePool() = default;
    FramePool(const FramePool &) = delete;
    FramePool &operator=(const FramePool &) = delete;

    ~FramePool()
    {
        for (std::size_t c = 0; c < kClasses; ++c) {
            FreeNode *node = free_[c];
            while (node) {
                FreeNode *next = node->next;
                ::operator delete(static_cast<void *>(node));
                node = next;
            }
            free_[c] = nullptr;
        }
    }

    void *
    allocate(std::size_t n)
    {
        if (n == 0)
            n = 1;
        if (n > kMaxPooled)
            return ::operator new(n);
        std::size_t c = classOf(n);
        if (FreeNode *node = free_[c]) {
            free_[c] = node->next;
            return static_cast<void *>(node);
        }
        return ::operator new((c + 1) * kAlign);
    }

    void
    deallocate(void *p, std::size_t n) noexcept
    {
        if (n == 0)
            n = 1;
        if (n > kMaxPooled) {
            ::operator delete(p);
            return;
        }
        std::size_t c = classOf(n);
        FreeNode *node = static_cast<FreeNode *>(p);
        node->next = free_[c];
        free_[c] = node;
    }

  private:
    struct FreeNode
    {
        FreeNode *next;
    };

    static std::size_t
    classOf(std::size_t n)
    {
        return (n - 1) / kAlign;
    }

    FreeNode *free_[kClasses] = {};
};

/** The calling thread's frame pool. */
inline FramePool &
framePool()
{
    thread_local FramePool pool;
    return pool;
}

} // namespace cchar::desim

#endif // CCHAR_DESIM_POOL_HH
