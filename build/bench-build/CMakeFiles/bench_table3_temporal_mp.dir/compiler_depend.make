# Empty compiler generated dependencies file for bench_table3_temporal_mp.
# This may be replaced when dependencies are built.
