file(REMOVE_RECURSE
  "../bench/bench_table3_temporal_mp"
  "../bench/bench_table3_temporal_mp.pdb"
  "CMakeFiles/bench_table3_temporal_mp.dir/bench_table3_temporal_mp.cc.o"
  "CMakeFiles/bench_table3_temporal_mp.dir/bench_table3_temporal_mp.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_temporal_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
