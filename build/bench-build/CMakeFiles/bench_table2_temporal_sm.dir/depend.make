# Empty dependencies file for bench_table2_temporal_sm.
# This may be replaced when dependencies are built.
