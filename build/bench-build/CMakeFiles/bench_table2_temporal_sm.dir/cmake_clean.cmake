file(REMOVE_RECURSE
  "../bench/bench_table2_temporal_sm"
  "../bench/bench_table2_temporal_sm.pdb"
  "CMakeFiles/bench_table2_temporal_sm.dir/bench_table2_temporal_sm.cc.o"
  "CMakeFiles/bench_table2_temporal_sm.dir/bench_table2_temporal_sm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_temporal_sm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
