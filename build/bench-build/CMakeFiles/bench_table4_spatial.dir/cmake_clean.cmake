file(REMOVE_RECURSE
  "../bench/bench_table4_spatial"
  "../bench/bench_table4_spatial.pdb"
  "CMakeFiles/bench_table4_spatial.dir/bench_table4_spatial.cc.o"
  "CMakeFiles/bench_table4_spatial.dir/bench_table4_spatial.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
