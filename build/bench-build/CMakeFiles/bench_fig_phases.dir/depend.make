# Empty dependencies file for bench_fig_phases.
# This may be replaced when dependencies are built.
