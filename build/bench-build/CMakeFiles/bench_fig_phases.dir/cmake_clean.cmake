file(REMOVE_RECURSE
  "../bench/bench_fig_phases"
  "../bench/bench_fig_phases.pdb"
  "CMakeFiles/bench_fig_phases.dir/bench_fig_phases.cc.o"
  "CMakeFiles/bench_fig_phases.dir/bench_fig_phases.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
