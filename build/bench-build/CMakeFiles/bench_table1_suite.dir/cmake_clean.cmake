file(REMOVE_RECURSE
  "../bench/bench_table1_suite"
  "../bench/bench_table1_suite.pdb"
  "CMakeFiles/bench_table1_suite.dir/bench_table1_suite.cc.o"
  "CMakeFiles/bench_table1_suite.dir/bench_table1_suite.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
