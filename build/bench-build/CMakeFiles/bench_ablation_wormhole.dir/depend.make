# Empty dependencies file for bench_ablation_wormhole.
# This may be replaced when dependencies are built.
