file(REMOVE_RECURSE
  "../bench/bench_ablation_wormhole"
  "../bench/bench_ablation_wormhole.pdb"
  "CMakeFiles/bench_ablation_wormhole.dir/bench_ablation_wormhole.cc.o"
  "CMakeFiles/bench_ablation_wormhole.dir/bench_ablation_wormhole.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_wormhole.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
