# Empty compiler generated dependencies file for bench_fig_loadsweep.
# This may be replaced when dependencies are built.
