file(REMOVE_RECURSE
  "../bench/bench_fig_loadsweep"
  "../bench/bench_fig_loadsweep.pdb"
  "CMakeFiles/bench_fig_loadsweep.dir/bench_fig_loadsweep.cc.o"
  "CMakeFiles/bench_fig_loadsweep.dir/bench_fig_loadsweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_loadsweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
