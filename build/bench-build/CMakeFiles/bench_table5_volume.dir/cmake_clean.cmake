file(REMOVE_RECURSE
  "../bench/bench_table5_volume"
  "../bench/bench_table5_volume.pdb"
  "CMakeFiles/bench_table5_volume.dir/bench_table5_volume.cc.o"
  "CMakeFiles/bench_table5_volume.dir/bench_table5_volume.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
