file(REMOVE_RECURSE
  "../bench/bench_fig_interarrival"
  "../bench/bench_fig_interarrival.pdb"
  "CMakeFiles/bench_fig_interarrival.dir/bench_fig_interarrival.cc.o"
  "CMakeFiles/bench_fig_interarrival.dir/bench_fig_interarrival.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_interarrival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
