# Empty dependencies file for bench_fig_interarrival.
# This may be replaced when dependencies are built.
