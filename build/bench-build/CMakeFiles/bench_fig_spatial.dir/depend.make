# Empty dependencies file for bench_fig_spatial.
# This may be replaced when dependencies are built.
