# Empty dependencies file for bench_ablation_fitter.
# This may be replaced when dependencies are built.
