file(REMOVE_RECURSE
  "../bench/bench_ablation_fitter"
  "../bench/bench_ablation_fitter.pdb"
  "CMakeFiles/bench_ablation_fitter.dir/bench_ablation_fitter.cc.o"
  "CMakeFiles/bench_ablation_fitter.dir/bench_ablation_fitter.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
