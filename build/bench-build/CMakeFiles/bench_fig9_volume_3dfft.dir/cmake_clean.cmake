file(REMOVE_RECURSE
  "../bench/bench_fig9_volume_3dfft"
  "../bench/bench_fig9_volume_3dfft.pdb"
  "CMakeFiles/bench_fig9_volume_3dfft.dir/bench_fig9_volume_3dfft.cc.o"
  "CMakeFiles/bench_fig9_volume_3dfft.dir/bench_fig9_volume_3dfft.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_volume_3dfft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
