# Empty dependencies file for bench_fig9_volume_3dfft.
# This may be replaced when dependencies are built.
