
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig9_volume_3dfft.cc" "bench-build/CMakeFiles/bench_fig9_volume_3dfft.dir/bench_fig9_volume_3dfft.cc.o" "gcc" "bench-build/CMakeFiles/bench_fig9_volume_3dfft.dir/bench_fig9_volume_3dfft.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/apps.dir/DependInfo.cmake"
  "/root/repo/build/src/ccnuma/CMakeFiles/ccnuma.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/mp.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/trace.dir/DependInfo.cmake"
  "/root/repo/build/src/desim/CMakeFiles/desim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
