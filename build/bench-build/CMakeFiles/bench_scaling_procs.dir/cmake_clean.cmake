file(REMOVE_RECURSE
  "../bench/bench_scaling_procs"
  "../bench/bench_scaling_procs.pdb"
  "CMakeFiles/bench_scaling_procs.dir/bench_scaling_procs.cc.o"
  "CMakeFiles/bench_scaling_procs.dir/bench_scaling_procs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_procs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
