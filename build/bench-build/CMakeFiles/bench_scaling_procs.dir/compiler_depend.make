# Empty compiler generated dependencies file for bench_scaling_procs.
# This may be replaced when dependencies are built.
