# Empty dependencies file for bench_table6_sp2_overhead.
# This may be replaced when dependencies are built.
