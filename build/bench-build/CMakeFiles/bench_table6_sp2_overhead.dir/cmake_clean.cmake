file(REMOVE_RECURSE
  "../bench/bench_table6_sp2_overhead"
  "../bench/bench_table6_sp2_overhead.pdb"
  "CMakeFiles/bench_table6_sp2_overhead.dir/bench_table6_sp2_overhead.cc.o"
  "CMakeFiles/bench_table6_sp2_overhead.dir/bench_table6_sp2_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_sp2_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
