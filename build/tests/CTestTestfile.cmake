# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_desim[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_ccnuma[1]_include.cmake")
include("/root/repo/build/tests/test_mp[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_patterns[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_analytic[1]_include.cmake")
include("/root/repo/build/tests/test_sweeps[1]_include.cmake")
