file(REMOVE_RECURSE
  "CMakeFiles/test_ccnuma.dir/test_ccnuma.cc.o"
  "CMakeFiles/test_ccnuma.dir/test_ccnuma.cc.o.d"
  "test_ccnuma"
  "test_ccnuma.pdb"
  "test_ccnuma[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ccnuma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
