# Empty dependencies file for test_ccnuma.
# This may be replaced when dependencies are built.
