# Empty compiler generated dependencies file for cchar.
# This may be replaced when dependencies are built.
