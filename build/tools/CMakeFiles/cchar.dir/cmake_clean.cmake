file(REMOVE_RECURSE
  "CMakeFiles/cchar.dir/cchar.cc.o"
  "CMakeFiles/cchar.dir/cchar.cc.o.d"
  "cchar"
  "cchar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cchar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
