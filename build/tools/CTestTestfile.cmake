# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_list "/root/repo/build/tools/cchar" "list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_characterize "/root/repo/build/tools/cchar" "characterize" "1d-fft" "--width" "2" "--height" "2")
set_tests_properties(cli_characterize PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/cchar" "bogus")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
