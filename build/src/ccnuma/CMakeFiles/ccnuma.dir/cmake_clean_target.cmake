file(REMOVE_RECURSE
  "libccnuma.a"
)
