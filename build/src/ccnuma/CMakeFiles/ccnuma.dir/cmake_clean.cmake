file(REMOVE_RECURSE
  "CMakeFiles/ccnuma.dir/cache.cc.o"
  "CMakeFiles/ccnuma.dir/cache.cc.o.d"
  "CMakeFiles/ccnuma.dir/machine.cc.o"
  "CMakeFiles/ccnuma.dir/machine.cc.o.d"
  "CMakeFiles/ccnuma.dir/node.cc.o"
  "CMakeFiles/ccnuma.dir/node.cc.o.d"
  "CMakeFiles/ccnuma.dir/protocol.cc.o"
  "CMakeFiles/ccnuma.dir/protocol.cc.o.d"
  "libccnuma.a"
  "libccnuma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccnuma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
