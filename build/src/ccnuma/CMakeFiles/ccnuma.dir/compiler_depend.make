# Empty compiler generated dependencies file for ccnuma.
# This may be replaced when dependencies are built.
