
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ccnuma/cache.cc" "src/ccnuma/CMakeFiles/ccnuma.dir/cache.cc.o" "gcc" "src/ccnuma/CMakeFiles/ccnuma.dir/cache.cc.o.d"
  "/root/repo/src/ccnuma/machine.cc" "src/ccnuma/CMakeFiles/ccnuma.dir/machine.cc.o" "gcc" "src/ccnuma/CMakeFiles/ccnuma.dir/machine.cc.o.d"
  "/root/repo/src/ccnuma/node.cc" "src/ccnuma/CMakeFiles/ccnuma.dir/node.cc.o" "gcc" "src/ccnuma/CMakeFiles/ccnuma.dir/node.cc.o.d"
  "/root/repo/src/ccnuma/protocol.cc" "src/ccnuma/CMakeFiles/ccnuma.dir/protocol.cc.o" "gcc" "src/ccnuma/CMakeFiles/ccnuma.dir/protocol.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/desim/CMakeFiles/desim.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
