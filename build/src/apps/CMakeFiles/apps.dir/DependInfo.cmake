
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app.cc" "src/apps/CMakeFiles/apps.dir/app.cc.o" "gcc" "src/apps/CMakeFiles/apps.dir/app.cc.o.d"
  "/root/repo/src/apps/cholesky.cc" "src/apps/CMakeFiles/apps.dir/cholesky.cc.o" "gcc" "src/apps/CMakeFiles/apps.dir/cholesky.cc.o.d"
  "/root/repo/src/apps/fft1d.cc" "src/apps/CMakeFiles/apps.dir/fft1d.cc.o" "gcc" "src/apps/CMakeFiles/apps.dir/fft1d.cc.o.d"
  "/root/repo/src/apps/fft3d.cc" "src/apps/CMakeFiles/apps.dir/fft3d.cc.o" "gcc" "src/apps/CMakeFiles/apps.dir/fft3d.cc.o.d"
  "/root/repo/src/apps/fft_util.cc" "src/apps/CMakeFiles/apps.dir/fft_util.cc.o" "gcc" "src/apps/CMakeFiles/apps.dir/fft_util.cc.o.d"
  "/root/repo/src/apps/is.cc" "src/apps/CMakeFiles/apps.dir/is.cc.o" "gcc" "src/apps/CMakeFiles/apps.dir/is.cc.o.d"
  "/root/repo/src/apps/maxflow.cc" "src/apps/CMakeFiles/apps.dir/maxflow.cc.o" "gcc" "src/apps/CMakeFiles/apps.dir/maxflow.cc.o.d"
  "/root/repo/src/apps/mg.cc" "src/apps/CMakeFiles/apps.dir/mg.cc.o" "gcc" "src/apps/CMakeFiles/apps.dir/mg.cc.o.d"
  "/root/repo/src/apps/nbody.cc" "src/apps/CMakeFiles/apps.dir/nbody.cc.o" "gcc" "src/apps/CMakeFiles/apps.dir/nbody.cc.o.d"
  "/root/repo/src/apps/sor.cc" "src/apps/CMakeFiles/apps.dir/sor.cc.o" "gcc" "src/apps/CMakeFiles/apps.dir/sor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ccnuma/CMakeFiles/ccnuma.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/mp.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/stats.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/desim/CMakeFiles/desim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
