file(REMOVE_RECURSE
  "CMakeFiles/apps.dir/app.cc.o"
  "CMakeFiles/apps.dir/app.cc.o.d"
  "CMakeFiles/apps.dir/cholesky.cc.o"
  "CMakeFiles/apps.dir/cholesky.cc.o.d"
  "CMakeFiles/apps.dir/fft1d.cc.o"
  "CMakeFiles/apps.dir/fft1d.cc.o.d"
  "CMakeFiles/apps.dir/fft3d.cc.o"
  "CMakeFiles/apps.dir/fft3d.cc.o.d"
  "CMakeFiles/apps.dir/fft_util.cc.o"
  "CMakeFiles/apps.dir/fft_util.cc.o.d"
  "CMakeFiles/apps.dir/is.cc.o"
  "CMakeFiles/apps.dir/is.cc.o.d"
  "CMakeFiles/apps.dir/maxflow.cc.o"
  "CMakeFiles/apps.dir/maxflow.cc.o.d"
  "CMakeFiles/apps.dir/mg.cc.o"
  "CMakeFiles/apps.dir/mg.cc.o.d"
  "CMakeFiles/apps.dir/nbody.cc.o"
  "CMakeFiles/apps.dir/nbody.cc.o.d"
  "CMakeFiles/apps.dir/sor.cc.o"
  "CMakeFiles/apps.dir/sor.cc.o.d"
  "libapps.a"
  "libapps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
