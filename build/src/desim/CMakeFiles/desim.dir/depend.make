# Empty dependencies file for desim.
# This may be replaced when dependencies are built.
