file(REMOVE_RECURSE
  "CMakeFiles/desim.dir/simulator.cc.o"
  "CMakeFiles/desim.dir/simulator.cc.o.d"
  "libdesim.a"
  "libdesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
