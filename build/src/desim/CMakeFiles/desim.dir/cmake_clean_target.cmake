file(REMOVE_RECURSE
  "libdesim.a"
)
