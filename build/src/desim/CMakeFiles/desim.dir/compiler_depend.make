# Empty compiler generated dependencies file for desim.
# This may be replaced when dependencies are built.
