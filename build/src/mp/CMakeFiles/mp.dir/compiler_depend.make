# Empty compiler generated dependencies file for mp.
# This may be replaced when dependencies are built.
