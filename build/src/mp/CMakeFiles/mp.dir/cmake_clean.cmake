file(REMOVE_RECURSE
  "CMakeFiles/mp.dir/mp.cc.o"
  "CMakeFiles/mp.dir/mp.cc.o.d"
  "libmp.a"
  "libmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
