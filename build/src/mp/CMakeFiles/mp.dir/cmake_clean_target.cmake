file(REMOVE_RECURSE
  "libmp.a"
)
