file(REMOVE_RECURSE
  "CMakeFiles/trace.dir/record.cc.o"
  "CMakeFiles/trace.dir/record.cc.o.d"
  "CMakeFiles/trace.dir/trace.cc.o"
  "CMakeFiles/trace.dir/trace.cc.o.d"
  "libtrace.a"
  "libtrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
