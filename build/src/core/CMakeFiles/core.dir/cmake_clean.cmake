file(REMOVE_RECURSE
  "CMakeFiles/core.dir/analytic.cc.o"
  "CMakeFiles/core.dir/analytic.cc.o.d"
  "CMakeFiles/core.dir/analyzers.cc.o"
  "CMakeFiles/core.dir/analyzers.cc.o.d"
  "CMakeFiles/core.dir/patterns.cc.o"
  "CMakeFiles/core.dir/patterns.cc.o.d"
  "CMakeFiles/core.dir/pipeline.cc.o"
  "CMakeFiles/core.dir/pipeline.cc.o.d"
  "CMakeFiles/core.dir/replay.cc.o"
  "CMakeFiles/core.dir/replay.cc.o.d"
  "CMakeFiles/core.dir/report.cc.o"
  "CMakeFiles/core.dir/report.cc.o.d"
  "CMakeFiles/core.dir/synthetic.cc.o"
  "CMakeFiles/core.dir/synthetic.cc.o.d"
  "libcore.a"
  "libcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
