
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analytic.cc" "src/core/CMakeFiles/core.dir/analytic.cc.o" "gcc" "src/core/CMakeFiles/core.dir/analytic.cc.o.d"
  "/root/repo/src/core/analyzers.cc" "src/core/CMakeFiles/core.dir/analyzers.cc.o" "gcc" "src/core/CMakeFiles/core.dir/analyzers.cc.o.d"
  "/root/repo/src/core/patterns.cc" "src/core/CMakeFiles/core.dir/patterns.cc.o" "gcc" "src/core/CMakeFiles/core.dir/patterns.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/replay.cc" "src/core/CMakeFiles/core.dir/replay.cc.o" "gcc" "src/core/CMakeFiles/core.dir/replay.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/core.dir/report.cc.o.d"
  "/root/repo/src/core/synthetic.cc" "src/core/CMakeFiles/core.dir/synthetic.cc.o" "gcc" "src/core/CMakeFiles/core.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/apps.dir/DependInfo.cmake"
  "/root/repo/build/src/ccnuma/CMakeFiles/ccnuma.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/mp.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/trace.dir/DependInfo.cmake"
  "/root/repo/build/src/desim/CMakeFiles/desim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
