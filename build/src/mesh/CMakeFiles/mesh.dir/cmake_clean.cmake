file(REMOVE_RECURSE
  "CMakeFiles/mesh.dir/mesh.cc.o"
  "CMakeFiles/mesh.dir/mesh.cc.o.d"
  "libmesh.a"
  "libmesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
