file(REMOVE_RECURSE
  "CMakeFiles/stats.dir/distributions.cc.o"
  "CMakeFiles/stats.dir/distributions.cc.o.d"
  "CMakeFiles/stats.dir/fit.cc.o"
  "CMakeFiles/stats.dir/fit.cc.o.d"
  "CMakeFiles/stats.dir/spatial.cc.o"
  "CMakeFiles/stats.dir/spatial.cc.o.d"
  "CMakeFiles/stats.dir/special.cc.o"
  "CMakeFiles/stats.dir/special.cc.o.d"
  "CMakeFiles/stats.dir/summary.cc.o"
  "CMakeFiles/stats.dir/summary.cc.o.d"
  "libstats.a"
  "libstats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
