# Empty compiler generated dependencies file for synthetic_workload.
# This may be replaced when dependencies are built.
