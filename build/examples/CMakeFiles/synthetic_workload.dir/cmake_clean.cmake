file(REMOVE_RECURSE
  "CMakeFiles/synthetic_workload.dir/synthetic_workload.cpp.o"
  "CMakeFiles/synthetic_workload.dir/synthetic_workload.cpp.o.d"
  "synthetic_workload"
  "synthetic_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
