/**
 * @file
 * cchar — command-line driver for the characterization tool chain.
 *
 * Subcommands:
 *   list                             show available applications
 *   characterize <app> [options]     run + print the full report
 *   report <app> [options]           run + write the HTML run report
 *                                    to --out FILE (default stdout)
 *   trace <mp-app> --out FILE        collect an SP2-style trace
 *   replay <FILE> [options]          replay a trace into a mesh
 *
 * Common options:
 *   --width W --height H             network dimensions
 *   --torus                          torus topology (2 VCs)
 *   --vcs N                          virtual channels
 *   --windows N                      print a windowed phase profile
 *   --phases                         detect execution phases and
 *                                    characterize each one
 *   --synthetic                      also run the fitted synthetic
 *                                    model and report validation
 *
 * Observability options:
 *   --trace-out FILE                 write a Chrome trace-event JSON
 *                                    with message flow arrows (load
 *                                    in Perfetto / about:tracing)
 *   --metrics-out FILE               write the metrics registry,
 *                                    windowed telemetry and message
 *                                    lifecycle records as JSON
 *   --report-out FILE                write the self-contained HTML
 *                                    run report (implies --phases)
 *   --sample-period US               telemetry sampling period in
 *                                    simulated microseconds (default 50)
 *   --progress                       periodic progress line on stderr
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/obs.hh"

#include "apps/cholesky.hh"
#include "apps/fft1d.hh"
#include "apps/fft3d.hh"
#include "apps/is.hh"
#include "apps/maxflow.hh"
#include "apps/mg.hh"
#include "apps/nbody.hh"
#include "apps/sor.hh"
#include "core/core.hh"

namespace {

using namespace cchar;

struct Options
{
    int width = 4;
    int height = 4;
    bool torus = false;
    int vcs = 1;
    int windows = 0;
    bool phases = false;
    bool synthetic = false;
    bool json = false;
    std::string out;
    std::string traceOut;
    std::string metricsOut;
    std::string reportOut;
    double samplePeriodUs = 50.0;
    bool progress = false;
    /** `cchar report` invocation: render HTML instead of text/JSON. */
    bool reportMode = false;

    /** Any observability output requested at all. */
    bool
    wantsObs() const
    {
        return !traceOut.empty() || !metricsOut.empty() ||
               !reportOut.empty() || reportMode;
    }
};

const std::vector<std::string> sharedMemoryApps{
    "1d-fft", "is", "cholesky", "maxflow", "nbody", "sor"};
const std::vector<std::string> messagePassingApps{"3d-fft", "mg"};

std::unique_ptr<apps::SharedMemoryApp>
makeSharedMemoryApp(const std::string &name)
{
    if (name == "1d-fft")
        return std::make_unique<apps::Fft1D>();
    if (name == "is")
        return std::make_unique<apps::IntegerSort>();
    if (name == "cholesky")
        return std::make_unique<apps::SparseCholesky>();
    if (name == "maxflow")
        return std::make_unique<apps::Maxflow>();
    if (name == "nbody")
        return std::make_unique<apps::Nbody>();
    if (name == "sor")
        return std::make_unique<apps::RedBlackSor>();
    return nullptr;
}

std::unique_ptr<apps::MessagePassingApp>
makeMessagePassingApp(const std::string &name)
{
    if (name == "3d-fft")
        return std::make_unique<apps::Fft3D>();
    if (name == "mg")
        return std::make_unique<apps::Multigrid>();
    return nullptr;
}

mesh::MeshConfig
meshOf(const Options &opts)
{
    mesh::MeshConfig cfg;
    cfg.width = opts.width;
    cfg.height = opts.height;
    if (opts.torus) {
        cfg.topology = mesh::Topology::Torus;
        cfg.virtualChannels = std::max(opts.vcs, 2);
    } else {
        cfg.virtualChannels = opts.vcs;
    }
    return cfg;
}

/**
 * Observability sinks for one tool invocation. Installs the process-
 * wide metrics registry / tracer before any simulator is built (so
 * components resolve their handles) and writes the requested output
 * files on finish().
 */
class ObsSession
{
  public:
    explicit ObsSession(const Options &opts)
        : opts_(opts),
          scope_(opts.wantsObs() ? &registry_ : nullptr,
                 opts.traceOut.empty() ? nullptr : &tracer_,
                 opts.wantsObs() ? &flows_ : nullptr)
    {}

    /** The sampler to hand to the run, or nullptr when unwanted. */
    obs::WindowedSampler *sampler()
    {
        return !opts_.metricsOut.empty() || !opts_.reportOut.empty() ||
                       opts_.reportMode
                   ? &sampler_
                   : nullptr;
    }

    double samplePeriodUs() const { return opts_.samplePeriodUs; }

    /** Installed sinks, for report rendering (null when inactive). */
    const obs::MetricsRegistry *registry() const
    {
        return opts_.wantsObs() ? &registry_ : nullptr;
    }
    const obs::FlowTracker *flows() const
    {
        return opts_.wantsObs() ? &flows_ : nullptr;
    }

    /** Write --trace-out / --metrics-out files. False on I/O error. */
    bool finish()
    {
        if (opts_.wantsObs()) {
            obs::publishSinkStats(
                registry_,
                opts_.traceOut.empty() ? nullptr : &tracer_, &flows_);
        }
        if (!opts_.traceOut.empty()) {
            std::ofstream f{opts_.traceOut};
            tracer_.writeChromeJson(f);
            if (!f) {
                std::cerr << "error: cannot write " << opts_.traceOut
                          << "\n";
                return false;
            }
            std::cerr << "wrote trace (" << tracer_.size()
                      << " records, " << tracer_.dropped()
                      << " dropped) to " << opts_.traceOut << "\n";
            if (tracer_.dropped() > 0) {
                std::cerr << "warning: trace ring buffer overwrote "
                          << tracer_.dropped()
                          << " records; the exported trace is "
                             "truncated at the front\n";
            }
        }
        if (!opts_.metricsOut.empty()) {
            std::ofstream f{opts_.metricsOut};
            core::writeMetricsJson(f, &registry_, &sampler_, &flows_);
            if (!f) {
                std::cerr << "error: cannot write " << opts_.metricsOut
                          << "\n";
                return false;
            }
            std::cerr << "wrote metrics to " << opts_.metricsOut
                      << "\n";
        }
        return true;
    }

  private:
    const Options &opts_;
    obs::MetricsRegistry registry_;
    obs::Tracer tracer_;
    obs::WindowedSampler sampler_;
    obs::FlowTracker flows_;
    obs::ScopedObservability scope_;
};

/** Periodic progress line on stderr, driven by the simulator clock. */
void
attachProgress(desim::Simulator &sim, double periodUs)
{
    sim.attachPeriodic(
        [&sim](desim::SimTime t) {
            std::cerr << "[cchar] t=" << t << "us  events="
                      << sim.processedEvents() << "  calendar="
                      << sim.calendarSize() << "\n";
        },
        periodUs);
}

int
usage()
{
    std::cerr
        << "usage:\n"
           "  cchar list\n"
           "  cchar characterize <app> [--width W] [--height H]\n"
           "                     [--torus] [--vcs N] [--windows N]\n"
           "                     [--phases] [--synthetic] [--json]\n"
           "                     [--trace-out FILE] [--metrics-out FILE]\n"
           "                     [--report-out FILE]\n"
           "                     [--sample-period US] [--progress]\n"
           "  cchar report <app> [--out FILE] [characterize options]\n"
           "  cchar trace <mp-app> --out FILE [--width W] [--height H]\n"
           "  cchar replay <FILE> [--width W] [--height H] [--torus]\n"
           "                      [--trace-out FILE] [--metrics-out FILE]\n";
    return 2;
}

bool
parseOptions(int argc, char **argv, int first, Options &opts)
{
    for (int i = first; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&](int &slot) {
            if (i + 1 >= argc)
                return false;
            slot = std::atoi(argv[++i]);
            return true;
        };
        if (arg == "--width") {
            if (!next(opts.width))
                return false;
        } else if (arg == "--height") {
            if (!next(opts.height))
                return false;
        } else if (arg == "--vcs") {
            if (!next(opts.vcs))
                return false;
        } else if (arg == "--windows") {
            if (!next(opts.windows))
                return false;
        } else if (arg == "--torus") {
            opts.torus = true;
        } else if (arg == "--phases") {
            opts.phases = true;
        } else if (arg == "--synthetic") {
            opts.synthetic = true;
        } else if (arg == "--json") {
            opts.json = true;
        } else if (arg == "--out") {
            if (i + 1 >= argc)
                return false;
            opts.out = argv[++i];
        } else if (arg == "--trace-out") {
            if (i + 1 >= argc)
                return false;
            opts.traceOut = argv[++i];
        } else if (arg == "--metrics-out") {
            if (i + 1 >= argc)
                return false;
            opts.metricsOut = argv[++i];
        } else if (arg == "--report-out") {
            if (i + 1 >= argc)
                return false;
            opts.reportOut = argv[++i];
        } else if (arg == "--sample-period") {
            if (i + 1 >= argc)
                return false;
            opts.samplePeriodUs = std::atof(argv[++i]);
            if (opts.samplePeriodUs <= 0.0)
                return false;
        } else if (arg == "--progress") {
            opts.progress = true;
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            return false;
        }
    }
    return true;
}

void
printWindows(const trace::TrafficLog &log, int windows)
{
    core::TemporalAnalyzer analyzer;
    auto fits = analyzer.analyzeWindows(log, windows);
    auto bw = core::BandwidthAnalyzer::profile(log, windows);
    std::cout << "\n-- Phase profile (" << windows << " windows) --\n";
    std::cout << "  win   rate(/us)      CV   bytes/us  family\n";
    for (std::size_t w = 0; w < fits.size(); ++w) {
        double rate = fits[w].stats.mean > 0.0
                          ? 1.0 / fits[w].stats.mean
                          : 0.0;
        std::cout << "  " << w << "    " << rate << "  "
                  << fits[w].stats.cv << "  "
                  << (w < bw.size() ? bw[w] : 0.0) << "  "
                  << (fits[w].fit.dist ? fits[w].fit.dist->name()
                                       : std::string{"(sparse)"})
                  << "\n";
    }
}

/** Shared run-and-analyze step of `characterize` and `report`. */
int
cmdCharacterize(const std::string &name, const Options &opts)
{
    ObsSession obsSession{opts};
    core::PipelineOptions popts;
    popts.detectPhases =
        opts.phases || opts.reportMode || !opts.reportOut.empty();
    core::CharacterizationPipeline pipeline{popts};
    core::CharacterizationReport report;
    trace::TrafficLog logCopy;

    if (auto app = makeSharedMemoryApp(name)) {
        ccnuma::MachineConfig cfg;
        cfg.mesh = meshOf(opts);
        // Re-run manually to keep the raw log for --windows.
        desim::Simulator sim;
        ccnuma::Machine machine{sim, cfg};
        if (auto *sampler = obsSession.sampler()) {
            core::attachNetworkTelemetry(sim, machine.network(),
                                         *sampler,
                                         obsSession.samplePeriodUs());
        }
        if (opts.progress)
            attachProgress(sim, opts.samplePeriodUs * 10.0);
        apps::launch(machine, *app);
        machine.run();
        core::NetworkSummary net;
        net.latencyMean = machine.network().latencyStats().mean();
        net.latencyMax = machine.network().latencyStats().max();
        net.contentionMean =
            machine.network().contentionStats().mean();
        net.makespan = machine.log().lastDeliverTime();
        net.avgChannelUtilization =
            machine.network().averageChannelUtilization(sim.now());
        net.maxChannelUtilization =
            machine.network().maxChannelUtilization(sim.now());
        report = pipeline.analyze(machine.log(), cfg.mesh, name,
                                  core::Strategy::Dynamic, net);
        report.verified = app->verify();
        logCopy = machine.log();
    } else if (auto mpApp = makeMessagePassingApp(name)) {
        // Run the two static-strategy phases in the open so the replay
        // log is kept for --windows without replaying twice.
        mp::MpConfig cfg;
        cfg.mesh = meshOf(opts);
        desim::Simulator sim;
        mp::MpWorld world{sim, cfg};
        world.enableTracing();
        if (opts.progress)
            attachProgress(sim, opts.samplePeriodUs * 10.0);
        apps::launch(world, *mpApp);
        world.run();
        bool verified = mpApp->verify();
        trace::Trace collected = world.collectedTrace();

        auto replayed = core::TraceReplayer::replay(
            collected, cfg.mesh, true, obsSession.sampler(),
            obsSession.samplePeriodUs());
        core::NetworkSummary net;
        net.latencyMean = replayed.latencyMean;
        net.latencyMax = replayed.latencyMax;
        net.contentionMean = replayed.contentionMean;
        net.makespan = replayed.makespan;
        net.avgChannelUtilization = replayed.avgChannelUtilization;
        net.maxChannelUtilization = replayed.maxChannelUtilization;
        report = pipeline.analyze(replayed.log, cfg.mesh, name,
                                  core::Strategy::Static, net);
        report.verified = verified;
        logCopy = replayed.log;
    } else {
        std::cerr << "unknown application: " << name << "\n";
        return usage();
    }

    if (!obsSession.finish())
        return 1;

    core::HtmlReportInputs html;
    html.report = &report;
    html.registry = obsSession.registry();
    html.sampler = obsSession.sampler();
    html.flows = obsSession.flows();
    if (!opts.reportOut.empty()) {
        std::ofstream f{opts.reportOut};
        core::writeHtmlReport(f, html);
        if (!f) {
            std::cerr << "error: cannot write " << opts.reportOut
                      << "\n";
            return 1;
        }
        std::cerr << "wrote HTML report to " << opts.reportOut << "\n";
    }

    if (opts.reportMode) {
        if (opts.reportOut.empty()) {
            if (!opts.out.empty()) {
                std::ofstream f{opts.out};
                core::writeHtmlReport(f, html);
                if (!f) {
                    std::cerr << "error: cannot write " << opts.out
                              << "\n";
                    return 1;
                }
                std::cerr << "wrote HTML report to " << opts.out
                          << "\n";
            } else {
                core::writeHtmlReport(std::cout, html);
            }
        }
        return report.verified ? 0 : 1;
    }

    if (opts.json)
        report.writeJson(std::cout);
    else
        report.print(std::cout);
    if (!report.verified) {
        std::cerr << "WARNING: application verification FAILED\n";
        return 1;
    }
    // The text phase profile would trail the JSON document and break
    // `cchar ... --json | python3 -m json.tool` style consumers, so it
    // is text-mode only.
    if (opts.windows > 0 && !opts.json)
        printWindows(logCopy, opts.windows);
    if (opts.synthetic) {
        auto v = core::validateModel(report);
        std::cout << "\n-- Synthetic model validation --\n"
                  << "  latency original " << v.originalLatencyMean
                  << "us, synthetic " << v.syntheticLatencyMean
                  << "us (" << v.latencyError() * 100.0 << "%)\n";
    }
    return 0;
}

int
cmdTrace(const std::string &name, const Options &opts)
{
    auto app = makeMessagePassingApp(name);
    if (!app) {
        std::cerr << "unknown message-passing application: " << name
                  << "\n";
        return usage();
    }
    if (opts.out.empty()) {
        std::cerr << "trace requires --out FILE\n";
        return usage();
    }
    desim::Simulator sim;
    mp::MpConfig cfg;
    cfg.mesh = meshOf(opts);
    mp::MpWorld world{sim, cfg};
    world.enableTracing();
    apps::launch(world, *app);
    world.run();
    world.collectedTrace().saveFile(opts.out);
    std::cout << "wrote " << world.collectedTrace().size()
              << " events to " << opts.out
              << " (verified: " << (app->verify() ? "yes" : "NO")
              << ")\n";
    return app->verify() ? 0 : 1;
}

int
cmdReplay(const std::string &path, const Options &opts)
{
    trace::Trace t = trace::Trace::loadFile(path);
    ObsSession obsSession{opts};
    auto result = core::TraceReplayer::replay(
        t, meshOf(opts), true, obsSession.sampler(),
        obsSession.samplePeriodUs());
    std::cout << "replayed " << result.log.size() << " messages: "
              << "latency mean " << result.latencyMean
              << "us, contention mean " << result.contentionMean
              << "us, makespan " << result.makespan << "us\n";
    core::CharacterizationPipeline pipeline;
    core::NetworkSummary net;
    net.latencyMean = result.latencyMean;
    net.latencyMax = result.latencyMax;
    net.contentionMean = result.contentionMean;
    net.makespan = result.makespan;
    net.avgChannelUtilization = result.avgChannelUtilization;
    net.maxChannelUtilization = result.maxChannelUtilization;
    auto report = pipeline.analyze(result.log, meshOf(opts), path,
                                   core::Strategy::Static, net);
    report.print(std::cout);
    return obsSession.finish() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];

    if (cmd == "list") {
        std::cout << "shared-memory (dynamic strategy):\n";
        for (const auto &name : sharedMemoryApps)
            std::cout << "  " << name << "\n";
        std::cout << "message-passing (static strategy):\n";
        for (const auto &name : messagePassingApps)
            std::cout << "  " << name << "\n";
        return 0;
    }

    if (argc < 3)
        return usage();
    std::string target = argv[2];
    Options opts;
    if (!parseOptions(argc, argv, 3, opts))
        return usage();

    try {
        if (cmd == "characterize")
            return cmdCharacterize(target, opts);
        if (cmd == "report") {
            opts.reportMode = true;
            return cmdCharacterize(target, opts);
        }
        if (cmd == "trace")
            return cmdTrace(target, opts);
        if (cmd == "replay")
            return cmdReplay(target, opts);
    } catch (const std::exception &err) {
        std::cerr << "error: " << err.what() << "\n";
        return 1;
    }
    return usage();
}
