/**
 * @file
 * cchar — command-line driver for the characterization tool chain.
 *
 * Subcommands:
 *   list                             show available applications
 *   characterize <app> [options]     run + print the full report
 *   report <app> [options]           run + write the HTML run report
 *                                    to --out FILE (default stdout)
 *   trace <mp-app> --out FILE        collect an SP2-style trace
 *   replay <FILE> [options]          replay a trace into a mesh
 *   synth <MODEL.json> [options]     drive the mesh with synthetic
 *                                    traffic drawn from a saved
 *                                    characterization (the --json
 *                                    output of `characterize`),
 *                                    re-characterize it and report
 *                                    per-attribute model fidelity
 *   sweep <SPEC|@FILE> [options]     run a job matrix on a worker
 *                                    pool, merge deterministically
 *
 * Common options:
 *   --width W --height H             network dimensions
 *   --torus                          torus topology (2 VCs)
 *   --vcs N                          virtual channels
 *   --windows N                      print a windowed phase profile
 *   --phases                         detect execution phases and
 *                                    characterize each one
 *   --synthetic                      also run the fitted synthetic
 *                                    model and report validation
 *
 * Observability options:
 *   --trace-out FILE                 write a Chrome trace-event JSON
 *                                    with message flow arrows (load
 *                                    in Perfetto / about:tracing)
 *   --metrics-out FILE               write the metrics registry,
 *                                    windowed telemetry and message
 *                                    lifecycle records as JSON
 *   --report-out FILE                write the self-contained HTML
 *                                    run report (implies --phases)
 *   --sample-period US               telemetry sampling period in
 *                                    simulated microseconds (default 50)
 *   --rank-activity                  record per-rank activity
 *                                    timelines and report skew /
 *                                    idle-fraction / idle-wave
 *                                    desynchronization analytics
 *                                    (off by default; default
 *                                    outputs are unchanged)
 *   --link-stats                     record per-link utilization and
 *                                    queue occupancy and report the
 *                                    network-weather analysis
 *                                    (hotspots, Gini, congestion
 *                                    onset; off by default, default
 *                                    outputs are unchanged)
 *   --top-links N                    ranked links/routers kept in the
 *                                    network-weather output (16)
 *   --progress                       periodic progress line on stderr
 *                                    (sweep: live done/total + ETA
 *                                    and per-worker stats)
 *
 * Resilience options:
 *   --fault-plan SPEC|@FILE          run under a fault plan (clauses
 *                                    like "link:3->4:down@[10ms,25ms];
 *                                    drop:p=0.001", or @file with the
 *                                    textual or JSON plan form)
 *   --seed N                         fault-decision RNG seed override
 *   --trace-errors strict|skip       malformed trace records abort
 *                                    (strict, default) or are skipped
 *                                    with a diagnostic (skip)
 *   --strict / --lenient             aliases for --trace-errors
 *   --watchdog-period US             no-progress check period (5000)
 *   --watchdog-stalls N              checks without progress before
 *                                    the watchdog trips (8)
 *   --max-sim-time US                hard sim-time horizon (0 = none)
 *
 * Exit codes:
 *   0  success
 *   1  analysis or application-verification failure
 *   2  usage error (bad command line)
 *   3  input error (malformed trace or fault plan, missing file)
 *   4  simulation error (deadlock, delivery failure wedge...)
 *   5  no-progress watchdog tripped
 *   6  a sweep job exceeded its --job-timeout deadline (after
 *      exhausting --job-retries) and was quarantined
 *   7  interrupted by SIGINT/SIGTERM; a journaled sweep can be
 *      continued with --resume
 */

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "fault/injector.hh"
#include "obs/obs.hh"

#include "apps/registry.hh"
#include "core/core.hh"
#include "sweep/chaos.hh"
#include "sweep/engine.hh"

namespace {

using namespace cchar;

struct Options
{
    int width = 4;
    int height = 4;
    bool torus = false;
    int vcs = 1;
    int windows = 0;
    bool phases = false;
    bool synthetic = false;
    bool json = false;
    std::string out;
    std::string traceOut;
    std::string metricsOut;
    std::string reportOut;
    double samplePeriodUs = 50.0;
    bool progress = false;
    /** Track per-rank activity and run the desync analysis. */
    bool rankActivity = false;
    /** Track per-link stats and run the network-weather analysis. */
    bool linkStats = false;
    /** Ranked links/routers kept in link-weather output. */
    int topLinks = 16;
    /** `cchar report` invocation: render HTML instead of text/JSON. */
    bool reportMode = false;

    /** --fault-plan SPEC or @FILE ("" = fault-free). */
    std::string faultPlan;
    /** --no-reroute: disable fault-aware adaptive routing. */
    bool reroute = true;
    std::uint64_t seed = 0;
    bool seedSet = false;
    trace::ErrorMode traceErrors = trace::ErrorMode::Strict;
    desim::WatchdogConfig watchdog{};

    bool faulted() const { return !faultPlan.empty(); }

    /** Any observability output requested at all. */
    bool
    wantsObs() const
    {
        return !traceOut.empty() || !metricsOut.empty() ||
               !reportOut.empty() || reportMode;
    }
};

using apps::makeMessagePassingApp;
using apps::makeSharedMemoryApp;

mesh::MeshConfig
meshOf(const Options &opts)
{
    mesh::MeshConfig cfg;
    cfg.width = opts.width;
    cfg.height = opts.height;
    if (opts.torus) {
        cfg.topology = mesh::Topology::Torus;
        cfg.virtualChannels = std::max(opts.vcs, 2);
    } else {
        cfg.virtualChannels = opts.vcs;
    }
    cfg.adaptiveRouting = opts.reroute;
    return cfg;
}

/**
 * Observability sinks for one tool invocation. Installs the process-
 * wide metrics registry / tracer before any simulator is built (so
 * components resolve their handles) and writes the requested output
 * files on finish().
 */
class ObsSession
{
  public:
    explicit ObsSession(const Options &opts)
        : opts_(opts),
          scope_(opts.wantsObs() ? &registry_ : nullptr,
                 opts.traceOut.empty() ? nullptr : &tracer_,
                 opts.wantsObs() ? &flows_ : nullptr,
                 opts.rankActivity ? &activity_ : nullptr,
                 opts.linkStats ? &linkStats_ : nullptr)
    {}

    /** The sampler to hand to the run, or nullptr when unwanted. */
    obs::WindowedSampler *sampler()
    {
        return !opts_.metricsOut.empty() || !opts_.reportOut.empty() ||
                       opts_.reportMode
                   ? &sampler_
                   : nullptr;
    }

    double samplePeriodUs() const { return opts_.samplePeriodUs; }

    /** Installed sinks, for report rendering (null when inactive). */
    const obs::MetricsRegistry *registry() const
    {
        return opts_.wantsObs() ? &registry_ : nullptr;
    }
    const obs::FlowTracker *flows() const
    {
        return opts_.wantsObs() ? &flows_ : nullptr;
    }

    /** The rank-activity tracker, or nullptr without --rank-activity. */
    obs::RankActivityTracker *activity()
    {
        return opts_.rankActivity ? &activity_ : nullptr;
    }

    /** The link-stats tracker, or nullptr without --link-stats. */
    obs::LinkStatsTracker *linkStats()
    {
        return opts_.linkStats ? &linkStats_ : nullptr;
    }

    /** Writable registry for post-run metric publication. */
    obs::MetricsRegistry *mutableRegistry()
    {
        return opts_.wantsObs() ? &registry_ : nullptr;
    }

    /** Write --trace-out / --metrics-out files. False on I/O error. */
    bool finish()
    {
        if (opts_.wantsObs()) {
            obs::publishSinkStats(
                registry_,
                opts_.traceOut.empty() ? nullptr : &tracer_, &flows_);
        }
        if (!opts_.traceOut.empty()) {
            core::AtomicFileWriter writer{opts_.traceOut};
            tracer_.writeChromeJson(writer.stream());
            writer.commit();
            std::cerr << "wrote trace (" << tracer_.size()
                      << " records, " << tracer_.dropped()
                      << " dropped) to " << opts_.traceOut << "\n";
            if (tracer_.dropped() > 0) {
                std::cerr << "warning: trace ring buffer overwrote "
                          << tracer_.dropped()
                          << " records; the exported trace is "
                             "truncated at the front\n";
            }
        }
        if (!opts_.metricsOut.empty()) {
            core::AtomicFileWriter writer{opts_.metricsOut};
            core::writeMetricsJson(writer.stream(), &registry_,
                                   &sampler_, &flows_);
            writer.commit();
            std::cerr << "wrote metrics to " << opts_.metricsOut
                      << "\n";
        }
        return true;
    }

  private:
    const Options &opts_;
    obs::MetricsRegistry registry_;
    obs::Tracer tracer_;
    obs::WindowedSampler sampler_;
    obs::FlowTracker flows_;
    obs::RankActivityTracker activity_;
    obs::LinkStatsTracker linkStats_;
    obs::ScopedObservability scope_;
};

/** Periodic progress line on stderr, driven by the simulator clock. */
void
attachProgress(desim::Simulator &sim, double periodUs)
{
    sim.attachPeriodic(
        [&sim](desim::SimTime t) {
            std::cerr << "[cchar] t=" << t << "us  events="
                      << sim.processedEvents() << "  calendar="
                      << sim.calendarSize() << "\n";
        },
        periodUs);
}

int
usage()
{
    std::cerr
        << "usage:\n"
           "  cchar list\n"
           "  cchar characterize <app> [--width W] [--height H]\n"
           "                     [--torus] [--vcs N] [--windows N]\n"
           "                     [--phases] [--synthetic] [--json]\n"
           "                     [--trace-out FILE] [--metrics-out FILE]\n"
           "                     [--report-out FILE] [--rank-activity]\n"
           "                     [--link-stats] [--top-links N]\n"
           "                     [--sample-period US] [--progress]\n"
           "                     [--fault-plan SPEC|@FILE] [--seed N]\n"
           "                     [--no-reroute]\n"
           "                     [--watchdog-period US]\n"
           "                     [--watchdog-stalls N]\n"
           "                     [--max-sim-time US]\n"
           "  cchar report <app> [--out FILE] [characterize options]\n"
           "  cchar trace <mp-app> --out FILE [--width W] [--height H]\n"
           "  cchar replay <FILE> [--width W] [--height H] [--torus]\n"
           "                      [--trace-out FILE] [--metrics-out FILE]\n"
           "                      [--link-stats] [--top-links N]\n"
           "                      [--fault-plan SPEC|@FILE] [--seed N]\n"
           "                      [--no-reroute]\n"
           "                      [--trace-errors strict|skip]\n"
           "  cchar synth <MODEL.json> [--scale-procs N] [--messages M]\n"
           "              [--seed N] [--time-scale X]\n"
           "              [--max-outstanding N] [--use-phases]\n"
           "              [--phases] [--json] [--out FILE]\n"
           "              [--report-out FILE] [--metrics-out FILE]\n"
           "              [--rank-activity] [--link-stats]\n"
           "              [--top-links N] [--progress]\n"
           "  cchar sweep [--spec FILE] [--apps LIST] [--procs LIST]\n"
           "              [--loads LIST] [--seeds LIST|A..B]\n"
           "              [--fault-plan SPEC]... [--torus] [--vcs N]\n"
           "              [--rank-activity] [--link-stats] [--synthetic]\n"
           "              [--progress]\n"
           "              [-j N] [--out FILE] [--csv FILE]\n"
           "              [--journal FILE] [--resume FILE]\n"
           "              [--job-timeout SEC] [--job-retries N]\n"
           "              [--retry-backoff-ms MS]\n"
           "  cchar chaos [--seed N] [--plans N] [--apps LIST]\n"
           "              [--procs N] [--max-faults N] [--horizon US]\n"
           "              [--shrink-budget N] [--torus] [--vcs N]\n"
           "              [--json] [--out FILE] [-j N] [--progress]\n"
           "exit codes: 0 ok, 1 verification/analysis failure, 2 usage,\n"
           "            3 input error, 4 simulation error, 5 watchdog,\n"
           "            6 job deadline exceeded, 7 interrupted (resume\n"
           "              with --resume JOURNAL)\n";
    return 2;
}

bool
parseOptions(int argc, char **argv, int first, Options &opts)
{
    for (int i = first; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&](int &slot) {
            if (i + 1 >= argc)
                return false;
            slot = std::atoi(argv[++i]);
            return true;
        };
        if (arg == "--width") {
            if (!next(opts.width))
                return false;
        } else if (arg == "--height") {
            if (!next(opts.height))
                return false;
        } else if (arg == "--vcs") {
            if (!next(opts.vcs))
                return false;
        } else if (arg == "--windows") {
            if (!next(opts.windows))
                return false;
        } else if (arg == "--torus") {
            opts.torus = true;
        } else if (arg == "--phases") {
            opts.phases = true;
        } else if (arg == "--synthetic") {
            opts.synthetic = true;
        } else if (arg == "--json") {
            opts.json = true;
        } else if (arg == "--out") {
            if (i + 1 >= argc)
                return false;
            opts.out = argv[++i];
        } else if (arg == "--trace-out") {
            if (i + 1 >= argc)
                return false;
            opts.traceOut = argv[++i];
        } else if (arg == "--metrics-out") {
            if (i + 1 >= argc)
                return false;
            opts.metricsOut = argv[++i];
        } else if (arg == "--report-out") {
            if (i + 1 >= argc)
                return false;
            opts.reportOut = argv[++i];
        } else if (arg == "--sample-period") {
            if (i + 1 >= argc)
                return false;
            opts.samplePeriodUs = std::atof(argv[++i]);
            if (opts.samplePeriodUs <= 0.0)
                return false;
        } else if (arg == "--progress") {
            opts.progress = true;
        } else if (arg == "--rank-activity") {
            opts.rankActivity = true;
        } else if (arg == "--link-stats") {
            opts.linkStats = true;
        } else if (arg == "--top-links") {
            if (!next(opts.topLinks) || opts.topLinks < 1)
                return false;
        } else if (arg == "--fault-plan") {
            if (i + 1 >= argc)
                return false;
            opts.faultPlan = argv[++i];
            if (opts.faultPlan.empty())
                return false;
        } else if (arg == "--no-reroute") {
            opts.reroute = false;
        } else if (arg == "--seed") {
            if (i + 1 >= argc)
                return false;
            char *end = nullptr;
            opts.seed = std::strtoull(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0')
                return false;
            opts.seedSet = true;
        } else if (arg == "--trace-errors") {
            if (i + 1 >= argc)
                return false;
            std::string mode = argv[++i];
            if (mode == "strict")
                opts.traceErrors = trace::ErrorMode::Strict;
            else if (mode == "skip")
                opts.traceErrors = trace::ErrorMode::Lenient;
            else
                return false;
        } else if (arg == "--strict") {
            opts.traceErrors = trace::ErrorMode::Strict;
        } else if (arg == "--lenient") {
            opts.traceErrors = trace::ErrorMode::Lenient;
        } else if (arg == "--watchdog-period") {
            if (i + 1 >= argc)
                return false;
            opts.watchdog.checkPeriodUs = std::atof(argv[++i]);
            if (opts.watchdog.checkPeriodUs <= 0.0)
                return false;
        } else if (arg == "--watchdog-stalls") {
            int stalls = 0;
            if (!next(stalls) || stalls < 1)
                return false;
            opts.watchdog.stallChecks = stalls;
        } else if (arg == "--max-sim-time") {
            if (i + 1 >= argc)
                return false;
            opts.watchdog.maxSimTimeUs = std::atof(argv[++i]);
            if (opts.watchdog.maxSimTimeUs < 0.0)
                return false;
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            return false;
        }
    }
    return true;
}

/**
 * Build the fault plan of --fault-plan (inline spec or @file), with
 * the --seed override applied.
 * @throws core::CCharError IoError on a missing @file, ParseError on
 *         a malformed plan.
 */
fault::FaultPlan
loadFaultPlan(const Options &opts)
{
    std::string text = opts.faultPlan;
    if (!text.empty() && text[0] == '@') {
        std::ifstream f{text.substr(1)};
        if (!f) {
            throw core::CCharError(core::StatusCode::IoError,
                                   "fault plan: cannot open " +
                                       text.substr(1));
        }
        std::ostringstream ss;
        ss << f.rdbuf();
        text = ss.str();
    }
    fault::FaultPlan plan = fault::FaultPlan::parse(text);
    if (opts.seedSet)
        plan.setSeed(opts.seed);
    return plan;
}

/** Fill the report's Resilience section from the run's fault state. */
void
fillResilience(core::ResilienceSummary &rs,
               const fault::FaultInjector &injector,
               std::uint64_t retransmits, std::uint64_t deliveryFailures,
               std::uint64_t traceRecordsSkipped)
{
    rs.enabled = true;
    rs.planDescription = injector.plan().describe();
    rs.faultsPlanned = injector.plan().faults().size();
    rs.droppedPackets = injector.drops();
    rs.corruptedPackets = injector.corrupts();
    rs.linkDrops = injector.linkDrops();
    rs.routerStalls = injector.routerStalls();
    rs.retransmits = retransmits;
    rs.deliveryFailures = deliveryFailures;
    rs.traceRecordsSkipped = traceRecordsSkipped;
    rs.plannedLinkDowntimeUs = injector.plan().plannedLinkDowntimeUs();
    rs.reroutedPackets = injector.reroutes();
    rs.rerouteExtraHops = injector.rerouteExtraHops();
}

void
printWindows(const trace::TrafficLog &log, int windows)
{
    core::TemporalAnalyzer analyzer;
    auto fits = analyzer.analyzeWindows(log, windows);
    auto bw = core::BandwidthAnalyzer::profile(log, windows);
    std::cout << "\n-- Phase profile (" << windows << " windows) --\n";
    std::cout << "  win   rate(/us)      CV   bytes/us  family\n";
    for (std::size_t w = 0; w < fits.size(); ++w) {
        double rate = fits[w].stats.mean > 0.0
                          ? 1.0 / fits[w].stats.mean
                          : 0.0;
        std::cout << "  " << w << "    " << rate << "  "
                  << fits[w].stats.cv << "  "
                  << (w < bw.size() ? bw[w] : 0.0) << "  "
                  << (fits[w].fit.dist ? fits[w].fit.dist->name()
                                       : std::string{"(sparse)"})
                  << "\n";
    }
}

/** Shared run-and-analyze step of `characterize` and `report`. */
int
cmdCharacterize(const std::string &name, const Options &opts)
{
    ObsSession obsSession{opts};
    // The injector registers its fault.* metrics at construction, so
    // it must come after the ObsSession installs the registry.
    std::optional<fault::FaultInjector> injector;
    if (opts.faulted())
        injector.emplace(loadFaultPlan(opts));
    core::PipelineOptions popts;
    popts.detectPhases =
        opts.phases || opts.reportMode || !opts.reportOut.empty();
    core::CharacterizationPipeline pipeline{popts};
    core::CharacterizationReport report;
    trace::TrafficLog logCopy;

    if (auto app = makeSharedMemoryApp(name)) {
        ccnuma::MachineConfig cfg;
        cfg.mesh = meshOf(opts);
        if (injector)
            cfg.mesh.faults = &*injector;
        // Re-run manually to keep the raw log for --windows.
        desim::Simulator sim;
        ccnuma::Machine machine{sim, cfg};
        desim::Watchdog watchdog{sim, opts.watchdog};
        if (injector) {
            watchdog.setProgressProbe(
                [&machine] { return machine.network().messageCount(); });
            watchdog.arm();
        }
        if (auto *sampler = obsSession.sampler()) {
            core::attachNetworkTelemetry(sim, machine.network(),
                                         *sampler,
                                         obsSession.samplePeriodUs());
        }
        if (opts.progress)
            attachProgress(sim, opts.samplePeriodUs * 10.0);
        apps::launch(machine, *app);
        machine.run();
        core::NetworkSummary net;
        net.latencyMean = machine.network().latencyStats().mean();
        net.latencyMax = machine.network().latencyStats().max();
        net.contentionMean =
            machine.network().contentionStats().mean();
        net.makespan = machine.log().lastDeliverTime();
        net.avgChannelUtilization =
            machine.network().averageChannelUtilization(sim.now());
        net.maxChannelUtilization =
            machine.network().maxChannelUtilization(sim.now());
        report = pipeline.analyze(machine.log(), cfg.mesh, name,
                                  core::Strategy::Dynamic, net);
        report.verified = app->verify();
        logCopy = machine.log();
        if (injector)
            fillResilience(report.resilience, *injector, 0, 0, 0);
        if (auto *tracker = obsSession.activity()) {
            tracker->finish(sim.now());
            report.rankActivity =
                core::RankActivityAnalyzer{}.analyze(*tracker,
                                                     report.phases);
        }
        if (auto *tracker = obsSession.linkStats()) {
            tracker->finish(sim.now());
            core::LinkWeatherConfig lwcfg;
            lwcfg.topLinks = opts.topLinks;
            report.linkStats = core::LinkWeatherAnalyzer{lwcfg}.analyze(
                *tracker, cfg.mesh, report.phases);
        }
    } else if (auto mpApp = makeMessagePassingApp(name)) {
        // Run the two static-strategy phases in the open so the replay
        // log is kept for --windows without replaying twice.
        mp::MpConfig cfg;
        cfg.mesh = meshOf(opts);
        if (injector)
            cfg.mesh.faults = &*injector;
        desim::Simulator sim;
        mp::MpWorld world{sim, cfg};
        desim::Watchdog watchdog{sim, opts.watchdog};
        if (injector) {
            // Delivered messages plus resolved delivery failures: a
            // bounded retry budget draining on a hostile plan (e.g.
            // drop:1.0) is progress toward the accounted failure
            // exit, while an unbounded no-delivery retry loop still
            // trips the watchdog as livelock.
            watchdog.setProgressProbe([&world] {
                return world.network().messageCount() +
                       world.deliveryFailures();
            });
            watchdog.arm();
        }
        world.enableTracing();
        if (opts.progress)
            attachProgress(sim, opts.samplePeriodUs * 10.0);
        apps::launch(world, *mpApp);
        world.run();
        bool verified = mpApp->verify();
        trace::Trace collected = world.collectedTrace();
        if (auto *tracker = obsSession.activity())
            tracker->finish(sim.now());
        // The replay below rebuilds the network; detach the tracker so
        // the replayed traffic does not double-count comm spans on top
        // of the application run just recorded.
        obs::ScopedRankActivity detachActivity{nullptr};

        core::ReplayOptions ropts;
        ropts.sampler = obsSession.sampler();
        ropts.samplePeriodUs = obsSession.samplePeriodUs();
        if (injector) {
            ropts.faults = &*injector;
            ropts.enableWatchdog = true;
            ropts.watchdog = opts.watchdog;
        }
        // The replay mesh is the network the static-strategy report
        // describes, so the link sink restarts here: the replay
        // re-declares the same topology and only its traffic enters
        // the weather analysis.
        if (auto *tracker = obsSession.linkStats())
            tracker->reset();
        auto replayed =
            core::TraceReplayer::replay(collected, cfg.mesh, ropts);
        core::NetworkSummary net;
        net.latencyMean = replayed.latencyMean;
        net.latencyMax = replayed.latencyMax;
        net.contentionMean = replayed.contentionMean;
        net.makespan = replayed.makespan;
        net.avgChannelUtilization = replayed.avgChannelUtilization;
        net.maxChannelUtilization = replayed.maxChannelUtilization;
        report = pipeline.analyze(replayed.log, cfg.mesh, name,
                                  core::Strategy::Static, net);
        report.verified = verified;
        logCopy = replayed.log;
        if (injector) {
            fillResilience(report.resilience, *injector,
                           world.retransmits() + replayed.retransmits,
                           world.deliveryFailures() +
                               replayed.deliveryFailures,
                           0);
            report.resilience.rankRetransmits = world.rankRetransmits();
            report.resilience.rankCorruptDiscards =
                world.rankCorruptDiscards();
        }
        if (auto *tracker = obsSession.activity()) {
            report.rankActivity =
                core::RankActivityAnalyzer{}.analyze(*tracker,
                                                     report.phases);
        }
        if (auto *tracker = obsSession.linkStats()) {
            tracker->finish(replayed.makespan);
            core::LinkWeatherConfig lwcfg;
            lwcfg.topLinks = opts.topLinks;
            report.linkStats = core::LinkWeatherAnalyzer{lwcfg}.analyze(
                *tracker, cfg.mesh, report.phases);
        }
    } else {
        std::cerr << "unknown application: " << name << "\n";
        return usage();
    }

    if (report.rankActivity.enabled) {
        if (auto *reg = obsSession.mutableRegistry())
            core::publishRankMetrics(*reg, report.rankActivity);
    }
    if (report.linkStats.enabled) {
        if (auto *reg = obsSession.mutableRegistry())
            core::publishLinkMetrics(*reg, report.linkStats);
    }

    if (!obsSession.finish())
        return 1;

    core::HtmlReportInputs html;
    html.report = &report;
    html.registry = obsSession.registry();
    html.sampler = obsSession.sampler();
    html.flows = obsSession.flows();
    if (!opts.reportOut.empty()) {
        core::AtomicFileWriter writer{opts.reportOut};
        core::writeHtmlReport(writer.stream(), html);
        writer.commit();
        std::cerr << "wrote HTML report to " << opts.reportOut << "\n";
    }

    if (opts.reportMode) {
        if (opts.reportOut.empty()) {
            if (!opts.out.empty()) {
                core::AtomicFileWriter writer{opts.out};
                core::writeHtmlReport(writer.stream(), html);
                writer.commit();
                std::cerr << "wrote HTML report to " << opts.out
                          << "\n";
            } else {
                core::writeHtmlReport(std::cout, html);
            }
        }
        return report.verified ? 0 : 1;
    }

    if (opts.json)
        report.writeJson(std::cout);
    else
        report.print(std::cout);
    if (!report.verified) {
        std::cerr << "WARNING: application verification FAILED\n";
        return 1;
    }
    // The text phase profile would trail the JSON document and break
    // `cchar ... --json | python3 -m json.tool` style consumers, so it
    // is text-mode only.
    if (opts.windows > 0 && !opts.json)
        printWindows(logCopy, opts.windows);
    if (opts.synthetic) {
        auto v = core::validateModel(report);
        std::cout << "\n-- Synthetic model validation --\n"
                  << "  latency original " << v.originalLatencyMean
                  << "us, synthetic " << v.syntheticLatencyMean
                  << "us (" << v.latencyError() * 100.0 << "%)\n";
    }
    return 0;
}

int
cmdTrace(const std::string &name, const Options &opts)
{
    auto app = makeMessagePassingApp(name);
    if (!app) {
        std::cerr << "unknown message-passing application: " << name
                  << "\n";
        return usage();
    }
    if (opts.out.empty()) {
        std::cerr << "trace requires --out FILE\n";
        return usage();
    }
    desim::Simulator sim;
    mp::MpConfig cfg;
    cfg.mesh = meshOf(opts);
    mp::MpWorld world{sim, cfg};
    world.enableTracing();
    apps::launch(world, *app);
    world.run();
    world.collectedTrace().saveFile(opts.out);
    std::cout << "wrote " << world.collectedTrace().size()
              << " events to " << opts.out
              << " (verified: " << (app->verify() ? "yes" : "NO")
              << ")\n";
    return app->verify() ? 0 : 1;
}

int
cmdReplay(const std::string &path, const Options &opts)
{
    trace::TraceLoadOptions lopts;
    lopts.errors = opts.traceErrors;
    trace::Trace t = trace::Trace::loadFile(path, lopts);
    if (t.skippedRecords() > 0) {
        std::cerr << "warning: skipped " << t.skippedRecords()
                  << " malformed trace record"
                  << (t.skippedRecords() == 1 ? "" : "s") << "\n";
    }
    ObsSession obsSession{opts};
    std::optional<fault::FaultInjector> injector;
    if (opts.faulted())
        injector.emplace(loadFaultPlan(opts));
    core::ReplayOptions ropts;
    ropts.sampler = obsSession.sampler();
    ropts.samplePeriodUs = obsSession.samplePeriodUs();
    if (injector) {
        ropts.faults = &*injector;
        ropts.enableWatchdog = true;
        ropts.watchdog = opts.watchdog;
    }
    auto result = core::TraceReplayer::replay(t, meshOf(opts), ropts);
    std::cout << "replayed " << result.log.size() << " messages: "
              << "latency mean " << result.latencyMean
              << "us, contention mean " << result.contentionMean
              << "us, makespan " << result.makespan << "us\n";
    if (injector) {
        std::cout << "resilience: " << result.linkDrops
                  << " link drops, " << result.droppedPackets
                  << " drops, " << result.corruptedPackets
                  << " corrupted, " << result.retransmits
                  << " retransmits, " << result.deliveryFailures
                  << " delivery failures\n";
    }
    core::CharacterizationPipeline pipeline;
    core::NetworkSummary net;
    net.latencyMean = result.latencyMean;
    net.latencyMax = result.latencyMax;
    net.contentionMean = result.contentionMean;
    net.makespan = result.makespan;
    net.avgChannelUtilization = result.avgChannelUtilization;
    net.maxChannelUtilization = result.maxChannelUtilization;
    auto report = pipeline.analyze(result.log, meshOf(opts), path,
                                   core::Strategy::Static, net);
    if (injector) {
        fillResilience(report.resilience, *injector,
                       result.retransmits, result.deliveryFailures,
                       t.skippedRecords());
    } else if (t.skippedRecords() > 0) {
        report.resilience.enabled = true;
        report.resilience.planDescription = "none (lenient ingest)";
        report.resilience.traceRecordsSkipped = t.skippedRecords();
    }
    // A replay has no application threads, so the tracker only holds
    // in-network comm spans — still useful as a per-rank traffic
    // timeline, with no blocked intervals or skew.
    if (auto *tracker = obsSession.activity()) {
        tracker->finish(result.makespan);
        report.rankActivity =
            core::RankActivityAnalyzer{}.analyze(*tracker,
                                                 report.phases);
        if (auto *reg = obsSession.mutableRegistry())
            core::publishRankMetrics(*reg, report.rankActivity);
    }
    if (auto *tracker = obsSession.linkStats()) {
        tracker->finish(result.makespan);
        core::LinkWeatherConfig lwcfg;
        lwcfg.topLinks = opts.topLinks;
        report.linkStats = core::LinkWeatherAnalyzer{lwcfg}.analyze(
            *tracker, meshOf(opts), report.phases);
        if (auto *reg = obsSession.mutableRegistry())
            core::publishLinkMetrics(*reg, report.linkStats);
    }
    report.print(std::cout);
    return obsSession.finish() ? 0 : 1;
}

/**
 * `cchar synth` — model-driven traffic replay at arbitrary scale.
 *
 * Loads a characterization JSON (the --json output of `characterize`),
 * optionally re-projects it onto a larger topology (--scale-procs) and
 * a larger message budget (--messages), drives the mesh simulator with
 * seeded draws from the fitted distributions, re-characterizes the
 * synthetic traffic, and reports the per-attribute KS divergence
 * between the model and what it produced — the closed loop of the
 * methodology. Deterministic: identical inputs produce byte-identical
 * output.
 */
int
cmdSynth(int argc, char **argv)
{
    if (argc < 3 || argv[2][0] == '-') {
        throw core::CCharError(core::StatusCode::UsageError,
                               "synth: needs a model JSON path");
    }
    std::string modelPath = argv[2];
    Options opts;
    core::SynthRunOptions ropts;
    int scaleProcs = 0;
    std::uint64_t messages = 0;

    auto value = [&](int &i, const std::string &flag) -> std::string {
        if (i + 1 >= argc) {
            throw core::CCharError(core::StatusCode::UsageError,
                                   "synth: " + flag + " needs a value");
        }
        return argv[++i];
    };

    for (int i = 3; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--scale-procs") {
            scaleProcs = std::atoi(value(i, arg).c_str());
            if (scaleProcs < 1) {
                throw core::CCharError(core::StatusCode::UsageError,
                                       "synth: --scale-procs must be "
                                       ">= 1");
            }
        } else if (arg == "--messages") {
            std::string v = value(i, arg);
            char *end = nullptr;
            messages = std::strtoull(v.c_str(), &end, 10);
            if (end == v.c_str() || *end != '\0') {
                throw core::CCharError(core::StatusCode::UsageError,
                                       "synth: bad --messages value '" +
                                           v + "'");
            }
        } else if (arg == "--seed") {
            std::string v = value(i, arg);
            char *end = nullptr;
            ropts.seed = std::strtoull(v.c_str(), &end, 10);
            if (end == v.c_str() || *end != '\0') {
                throw core::CCharError(core::StatusCode::UsageError,
                                       "synth: bad --seed value '" + v +
                                           "'");
            }
        } else if (arg == "--time-scale") {
            ropts.timeScale = std::atof(value(i, arg).c_str());
            if (ropts.timeScale <= 0.0) {
                throw core::CCharError(core::StatusCode::UsageError,
                                       "synth: --time-scale must be "
                                       "> 0");
            }
        } else if (arg == "--max-outstanding") {
            ropts.maxOutstanding = std::atoi(value(i, arg).c_str());
            if (ropts.maxOutstanding < 0) {
                throw core::CCharError(core::StatusCode::UsageError,
                                       "synth: --max-outstanding "
                                       "cannot be negative");
            }
        } else if (arg == "--use-phases") {
            ropts.usePhases = true;
        } else if (arg == "--phases") {
            opts.phases = true;
        } else if (arg == "--json") {
            opts.json = true;
        } else if (arg == "--out") {
            opts.out = value(i, arg);
        } else if (arg == "--report-out") {
            opts.reportOut = value(i, arg);
        } else if (arg == "--metrics-out") {
            opts.metricsOut = value(i, arg);
        } else if (arg == "--rank-activity") {
            opts.rankActivity = true;
        } else if (arg == "--link-stats") {
            opts.linkStats = true;
        } else if (arg == "--top-links") {
            opts.topLinks = std::atoi(value(i, arg).c_str());
            if (opts.topLinks < 1) {
                throw core::CCharError(core::StatusCode::UsageError,
                                       "synth: --top-links must be "
                                       ">= 1");
            }
        } else if (arg == "--progress") {
            opts.progress = true;
        } else {
            throw core::CCharError(core::StatusCode::UsageError,
                                   "synth: unknown option '" + arg +
                                       "'");
        }
    }

    core::SyntheticModel model =
        core::SyntheticModel::fromJsonFile(modelPath);
    const int origProcs = model.nprocs;
    const int origNodes = model.mesh.nodes();
    const std::size_t origTotal = model.totalMessages();
    if (scaleProcs > 0 || messages > 0)
        model = model.scaleTo(scaleProcs, messages);

    // The trackers must be ambient before the generator builds its
    // MeshNetwork (components resolve the sinks at construction).
    ObsSession obsSession{opts};
    core::DriveResult result =
        core::SyntheticTrafficGenerator::run(model, ropts);

    core::PipelineOptions popts;
    popts.detectPhases = opts.phases || !opts.reportOut.empty();
    core::CharacterizationPipeline pipeline{popts};
    core::NetworkSummary net;
    net.latencyMean = result.latencyMean;
    net.latencyMax = result.latencyMax;
    net.contentionMean = result.contentionMean;
    net.makespan = result.makespan;
    net.avgChannelUtilization = result.avgChannelUtilization;
    net.maxChannelUtilization = result.maxChannelUtilization;
    std::string label = model.application.empty()
                            ? modelPath
                            : model.application + " (synthetic)";
    core::CharacterizationReport report = pipeline.analyze(
        result.log, model.mesh, label, core::Strategy::Static, net);
    report.verified = true; // a model replay has no app invariant

    report.synthFidelity = core::computeSynthFidelity(model, result.log);
    report.synthFidelity.modelSource = modelPath;
    report.synthFidelity.modelProcs = origProcs;
    report.synthFidelity.scaleTiles = model.mesh.nodes() / origNodes;
    report.synthFidelity.messageScale =
        origTotal > 0 ? static_cast<double>(model.totalMessages()) /
                            static_cast<double>(origTotal)
                      : 1.0;
    report.synthFidelity.seed = ropts.seed;

    if (auto *tracker = obsSession.activity()) {
        tracker->finish(result.makespan);
        report.rankActivity = core::RankActivityAnalyzer{}.analyze(
            *tracker, report.phases);
        if (auto *reg = obsSession.mutableRegistry())
            core::publishRankMetrics(*reg, report.rankActivity);
    }
    if (auto *tracker = obsSession.linkStats()) {
        tracker->finish(result.makespan);
        core::LinkWeatherConfig lwcfg;
        lwcfg.topLinks = opts.topLinks;
        report.linkStats = core::LinkWeatherAnalyzer{lwcfg}.analyze(
            *tracker, model.mesh, report.phases);
        if (auto *reg = obsSession.mutableRegistry())
            core::publishLinkMetrics(*reg, report.linkStats);
    }

    if (!obsSession.finish())
        return 1;

    if (!opts.reportOut.empty()) {
        core::HtmlReportInputs html;
        html.report = &report;
        html.registry = obsSession.registry();
        html.sampler = obsSession.sampler();
        html.flows = obsSession.flows();
        core::AtomicFileWriter writer{opts.reportOut};
        core::writeHtmlReport(writer.stream(), html);
        writer.commit();
        std::cerr << "wrote HTML report to " << opts.reportOut << "\n";
    }

    if (opts.out.empty()) {
        if (opts.json)
            report.writeJson(std::cout);
        else
            report.print(std::cout);
    } else {
        core::AtomicFileWriter writer{opts.out, "synth"};
        if (opts.json)
            report.writeJson(writer.stream());
        else
            report.print(writer.stream());
        writer.commit();
    }
    std::cerr << "synth: " << result.log.size() << " messages from "
              << modelPath << " (KS temporal "
              << report.synthFidelity.temporalKs << ", spatial "
              << report.synthFidelity.spatialKs << ", volume "
              << report.synthFidelity.volumeKs << ")\n";
    return 0;
}

} // namespace

/**
 * `cchar sweep` — run a whole experiment matrix across worker threads.
 *
 * Dimensions come from a JSON spec file (--spec) and/or CLI lists;
 * CLI dimension flags override the spec file. The aggregate report is
 * deterministic: byte-identical output for any -j value.
 */
/**
 * Graceful-shutdown signal counter. The handler only bumps the
 * counter (async-signal-safe); the sweep engine's monitor thread and
 * drain loops poll it: one signal stops job claiming and drains, a
 * second also cancels in-flight jobs at their next watchdog tick.
 */
std::atomic<int> gSweepSignals{0};

extern "C" void
sweepSignalHandler(int)
{
    int level = gSweepSignals.fetch_add(1, std::memory_order_relaxed);
    // write(2) is on the async-signal-safe list; iostreams are not.
    const char *msg =
        level == 0
            ? "\nsweep: shutdown requested; draining in-flight jobs "
              "(signal again to cancel them)\n"
            : "\nsweep: cancelling in-flight jobs\n";
    ssize_t ignored = ::write(2, msg, std::strlen(msg));
    (void)ignored;
}

/** Installs SIGINT/SIGTERM handlers for the sweep, restores on exit. */
class ScopedSweepSignals
{
  public:
    ScopedSweepSignals()
    {
        gSweepSignals.store(0, std::memory_order_relaxed);
        struct sigaction sa = {};
        sa.sa_handler = sweepSignalHandler;
        sigemptyset(&sa.sa_mask);
        sa.sa_flags = SA_RESTART;
        sigaction(SIGINT, &sa, &oldInt_);
        sigaction(SIGTERM, &sa, &oldTerm_);
    }
    ~ScopedSweepSignals()
    {
        sigaction(SIGINT, &oldInt_, nullptr);
        sigaction(SIGTERM, &oldTerm_, nullptr);
    }

  private:
    struct sigaction oldInt_ = {};
    struct sigaction oldTerm_ = {};
};

int
cmdSweep(int argc, char **argv)
{
    sweep::SweepSpec spec;
    int jobs = 1;
    bool progress = false;
    std::string outPath, csvPath;
    sweep::SweepRunOptions ropts;

    auto value = [&](int &i, const std::string &flag) -> std::string {
        if (i + 1 >= argc) {
            throw core::CCharError(core::StatusCode::UsageError,
                                   "sweep: " + flag + " needs a value");
        }
        return argv[++i];
    };

    // Pass 1: the spec file seeds the matrix...
    for (int i = 2; i < argc; ++i) {
        if (std::string{argv[i]} == "--spec")
            spec = sweep::SweepSpec::fromJsonFile(value(i, "--spec"));
    }
    // ...pass 2: CLI flags override individual dimensions.
    bool sawFaultPlan = false;
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--spec") {
            ++i; // consumed in pass 1
        } else if (arg == "--apps") {
            spec.apps = sweep::parseList(value(i, arg));
        } else if (arg == "--procs") {
            spec.procs.clear();
            for (const std::string &item :
                 sweep::parseList(value(i, arg))) {
                try {
                    spec.procs.push_back(std::stoi(item));
                } catch (const std::exception &) {
                    throw core::CCharError(core::StatusCode::UsageError,
                                           "sweep: bad procs value '" +
                                               item + "'");
                }
            }
        } else if (arg == "--loads") {
            spec.loads.clear();
            for (const std::string &item :
                 sweep::parseList(value(i, arg))) {
                try {
                    spec.loads.push_back(std::stod(item));
                } catch (const std::exception &) {
                    throw core::CCharError(core::StatusCode::UsageError,
                                           "sweep: bad load value '" +
                                               item + "'");
                }
            }
        } else if (arg == "--seeds") {
            spec.seeds = sweep::parseSeeds(value(i, arg));
        } else if (arg == "--fault-plan") {
            if (!sawFaultPlan) {
                spec.faultPlans.clear();
                sawFaultPlan = true;
            }
            spec.faultPlans.push_back(value(i, arg));
        } else if (arg == "--torus") {
            spec.torus = true;
        } else if (arg == "--vcs") {
            spec.vcs = std::atoi(value(i, arg).c_str());
        } else if (arg == "--rank-activity") {
            spec.rankActivity = true;
        } else if (arg == "--link-stats") {
            spec.linkStats = true;
        } else if (arg == "--synthetic") {
            spec.synthetic = true;
        } else if (arg == "--progress") {
            progress = true;
        } else if (arg == "-j" || arg == "--jobs" ||
                   arg.rfind("-j", 0) == 0) {
            // Accept both "-j 8" and the make-style joined "-j8".
            std::string count = (arg == "-j" || arg == "--jobs")
                                    ? value(i, arg)
                                    : arg.substr(2);
            jobs = std::atoi(count.c_str());
            if (jobs < 1) {
                throw core::CCharError(core::StatusCode::UsageError,
                                       "sweep: -j needs a positive "
                                       "worker count");
            }
        } else if (arg == "--out") {
            outPath = value(i, arg);
        } else if (arg == "--csv") {
            csvPath = value(i, arg);
        } else if (arg == "--journal") {
            ropts.journalPath = value(i, arg);
        } else if (arg == "--resume") {
            ropts.resumePath = value(i, arg);
        } else if (arg == "--job-timeout") {
            ropts.policy.jobTimeoutSec =
                std::atof(value(i, arg).c_str());
            if (ropts.policy.jobTimeoutSec <= 0.0) {
                throw core::CCharError(core::StatusCode::UsageError,
                                       "sweep: --job-timeout needs a "
                                       "positive number of seconds");
            }
        } else if (arg == "--job-retries") {
            ropts.policy.maxRetries = std::atoi(value(i, arg).c_str());
            if (ropts.policy.maxRetries < 0) {
                throw core::CCharError(core::StatusCode::UsageError,
                                       "sweep: --job-retries cannot "
                                       "be negative");
            }
        } else if (arg == "--retry-backoff-ms") {
            ropts.policy.backoffMs = std::atof(value(i, arg).c_str());
            if (ropts.policy.backoffMs < 0.0) {
                throw core::CCharError(core::StatusCode::UsageError,
                                       "sweep: --retry-backoff-ms "
                                       "cannot be negative");
            }
        } else {
            throw core::CCharError(core::StatusCode::UsageError,
                                   "sweep: unknown option '" + arg +
                                       "'");
        }
    }

    ropts.workers = jobs;
    ropts.progress = progress;
    ropts.shutdown = &gSweepSignals;
    ScopedSweepSignals signalScope;

    sweep::SweepEngine engine{std::move(spec)};
    sweep::SweepResult result = engine.run(ropts);

    if (result.resumedJobs > 0) {
        std::cerr << "sweep: resumed " << result.resumedJobs
                  << " completed job"
                  << (result.resumedJobs == 1 ? "" : "s")
                  << " from journal\n";
    }

    if (result.interrupted) {
        // A partial aggregate would be mistaken for a complete one;
        // the journal already holds everything that finished.
        std::string journalPath = !ropts.journalPath.empty()
                                      ? ropts.journalPath
                                      : ropts.resumePath;
        std::cerr << "sweep: interrupted after "
                  << (result.outcomes.size() -
                      result.interruptedCount())
                  << "/" << result.outcomes.size() << " jobs";
        if (!journalPath.empty()) {
            std::cerr << "; resume with: cchar sweep ... --resume "
                      << journalPath;
        } else {
            std::cerr << " (no --journal: completed work was not "
                         "persisted)";
        }
        std::cerr << "\n";
        return core::exitCodeOf(core::StatusCode::Interrupted);
    }

    if (outPath.empty()) {
        result.writeJson(std::cout);
    } else {
        core::AtomicFileWriter writer{outPath, "sweep"};
        result.writeJson(writer.stream());
        writer.commit();
    }
    if (!csvPath.empty()) {
        core::AtomicFileWriter writer{csvPath, "sweep"};
        result.writeCsv(writer.stream());
        writer.commit();
    }

    std::size_t unverified = 0;
    for (const auto &o : result.outcomes)
        unverified += (o.ok() && !o.verified) ? 1 : 0;
    std::cerr << "sweep: " << result.outcomes.size() << " jobs, "
              << result.failures() << " failed, " << unverified
              << " unverified";
    if (std::size_t q = result.quarantinedCount())
        std::cerr << ", " << q << " quarantined";
    if (std::size_t r = result.retries())
        std::cerr << ", " << r << " retries";
    std::cerr << "\n";
    if (progress) {
        // The wall-clock worker view only ever reaches stderr; the
        // serialized reports keep the matching gauges zeroed so they
        // stay byte-identical across -j (see sweep/engine.cc).
        for (std::size_t w = 0; w < result.workerStats.size(); ++w) {
            const auto &ws = result.workerStats[w];
            std::cerr << "sweep: worker " << w << ": "
                      << ws.jobsCompleted << " jobs, busy "
                      << static_cast<int>(ws.busyFraction * 100.0 + 0.5)
                      << "%\n";
        }
    }
    // Exit-code precedence: a deadline-killed job is the most
    // actionable signal (raise --job-timeout or quarantine the app),
    // so it outranks the generic failure code.
    for (const auto &o : result.outcomes) {
        if (o.status ==
            core::toString(core::StatusCode::DeadlineExceeded))
            return core::exitCodeOf(core::StatusCode::DeadlineExceeded);
    }
    return (result.failures() || unverified) ? 1 : 0;
}

/**
 * `cchar chaos`: seeded chaos campaign over generated fault plans.
 * Exit 0 when the campaign completes (failing plans are the product,
 * not an error) — nonzero only for usage or infrastructure problems.
 */
int
cmdChaos(int argc, char **argv)
{
    sweep::ChaosOptions copts;
    int jobs = 1;
    bool progress = false;
    bool json = false;
    std::string outPath;

    auto value = [&](int &i, const std::string &flag) -> std::string {
        if (i + 1 >= argc) {
            throw core::CCharError(core::StatusCode::UsageError,
                                   "chaos: " + flag + " needs a value");
        }
        return argv[++i];
    };

    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--apps") {
            copts.apps = sweep::parseList(value(i, arg));
        } else if (arg == "--procs") {
            copts.procs = std::atoi(value(i, arg).c_str());
            if (copts.procs < 1) {
                throw core::CCharError(core::StatusCode::UsageError,
                                       "chaos: --procs must be >= 1");
            }
        } else if (arg == "--plans") {
            copts.plans = std::atoi(value(i, arg).c_str());
        } else if (arg == "--seed") {
            copts.seed =
                std::strtoull(value(i, arg).c_str(), nullptr, 10);
        } else if (arg == "--max-faults") {
            copts.maxFaults = std::atoi(value(i, arg).c_str());
        } else if (arg == "--horizon") {
            copts.horizonUs = std::atof(value(i, arg).c_str());
            if (copts.horizonUs < 2.0) {
                throw core::CCharError(core::StatusCode::UsageError,
                                       "chaos: --horizon must be >= 2");
            }
        } else if (arg == "--shrink-budget") {
            copts.shrinkBudget = std::atoi(value(i, arg).c_str());
            if (copts.shrinkBudget < 0) {
                throw core::CCharError(core::StatusCode::UsageError,
                                       "chaos: --shrink-budget cannot "
                                       "be negative");
            }
        } else if (arg == "--torus") {
            copts.torus = true;
        } else if (arg == "--vcs") {
            copts.vcs = std::atoi(value(i, arg).c_str());
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--out") {
            outPath = value(i, arg);
        } else if (arg == "--progress") {
            progress = true;
        } else if (arg == "-j" || arg == "--jobs" ||
                   arg.rfind("-j", 0) == 0) {
            std::string count = (arg == "-j" || arg == "--jobs")
                                    ? value(i, arg)
                                    : arg.substr(2);
            jobs = std::atoi(count.c_str());
            if (jobs < 1) {
                throw core::CCharError(core::StatusCode::UsageError,
                                       "chaos: -j needs a positive "
                                       "worker count");
            }
        } else {
            throw core::CCharError(core::StatusCode::UsageError,
                                   "chaos: unknown option '" + arg +
                                       "'");
        }
    }

    sweep::ChaosHarness harness{copts};
    sweep::ChaosResult result = harness.run(jobs, progress);

    if (outPath.empty()) {
        if (json)
            result.writeJson(std::cout);
        else
            result.print(std::cout);
    } else {
        core::AtomicFileWriter writer{outPath, "chaos"};
        if (json)
            result.writeJson(writer.stream());
        else
            result.print(writer.stream());
        writer.commit();
    }
    std::cerr << "chaos: " << result.jobs.size() << " jobs, "
              << result.failingCount() << " failing plans shrunk\n";
    return 0;
}

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];

    if (cmd == "list") {
        std::cout << "shared-memory (dynamic strategy):\n";
        for (const auto &name : apps::sharedMemoryAppNames())
            std::cout << "  " << name << "\n";
        std::cout << "message-passing (static strategy):\n";
        for (const auto &name : apps::messagePassingAppNames())
            std::cout << "  " << name << "\n";
        return 0;
    }

    if (cmd == "sweep" || cmd == "chaos" || cmd == "synth") {
        try {
            return cmd == "sweep"   ? cmdSweep(argc, argv)
                   : cmd == "chaos" ? cmdChaos(argc, argv)
                                    : cmdSynth(argc, argv);
        } catch (const core::CCharError &err) {
            std::cerr << "error: " << err.what() << "\n";
            return core::exitCodeOf(err.status().code());
        } catch (const std::exception &err) {
            std::cerr << "error: " << err.what() << "\n";
            return core::exitCodeOf(core::StatusCode::SimError);
        }
    }

    if (argc < 3)
        return usage();
    std::string target = argv[2];
    Options opts;
    if (!parseOptions(argc, argv, 3, opts))
        return usage();

    // Recoverable problems (lenient trace ingest, delivery failures)
    // land here instead of aborting; dumped to stderr on exit.
    core::DiagnosticSink sink;
    core::ScopedDiagnostics diagGuard{&sink};
    auto flushDiagnostics = [&sink] {
        if (!sink.empty())
            sink.writeText(std::cerr);
    };

    try {
        int rc = 2;
        if (cmd == "characterize") {
            rc = cmdCharacterize(target, opts);
        } else if (cmd == "report") {
            opts.reportMode = true;
            rc = cmdCharacterize(target, opts);
        } else if (cmd == "trace") {
            rc = cmdTrace(target, opts);
        } else if (cmd == "replay") {
            rc = cmdReplay(target, opts);
        } else {
            return usage();
        }
        flushDiagnostics();
        return rc;
    } catch (const desim::WatchdogError &err) {
        flushDiagnostics();
        std::cerr << "error: " << err.what() << "\n";
        return core::exitCodeOf(core::StatusCode::WatchdogTrip);
    } catch (const core::CCharError &err) {
        flushDiagnostics();
        std::cerr << "error: " << err.what() << "\n";
        return core::exitCodeOf(err.status().code());
    } catch (const std::exception &err) {
        flushDiagnostics();
        std::cerr << "error: " << err.what() << "\n";
        return core::exitCodeOf(core::StatusCode::SimError);
    }
}
