#!/bin/sh
# Crash-safety end-to-end test: SIGKILL a journaled sweep at several
# points in its life (before the first job lands, mid-matrix, near the
# end), resume each time, and require the final aggregate JSON and CSV
# to be byte-identical to an uninterrupted single-shot run.
#
# SIGKILL — not SIGTERM — on purpose: the process gets no chance to
# flush or clean up, so this exercises the torn-tail tolerance of the
# journal loader, not the graceful-shutdown path (which has its own
# test).
#
# Usage: kill_resume_test.sh <cchar-binary> <workdir>
set -eu

B=$1
D=$2
rm -rf "$D"
mkdir -p "$D"
cd "$D"

SWEEP="--apps is,mg --procs 4,8 --loads 0.1,0.3 --seeds 1..2 -j2"

# Uninterrupted reference, deliberately at -j1: the resumed -j2 runs
# must match across the interruption AND the worker count.
"$B" sweep --apps is,mg --procs 4,8 --loads 0.1,0.3 --seeds 1..2 -j1 \
     --out base.json --csv base.csv 2>/dev/null

for delay in 0.05 0.15 0.30; do
    rm -f j.jsonl out.json out.csv
    "$B" sweep $SWEEP --journal j.jsonl --out out.json 2>/dev/null &
    pid=$!
    sleep "$delay"
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true

    if [ -f j.jsonl ]; then
        # Typical case: the journal exists (possibly header-only,
        # possibly with a torn final record) and the resumed run must
        # reproduce the reference bytes.
        "$B" sweep $SWEEP --resume j.jsonl \
             --out out.json --csv out.csv 2>/dev/null
    else
        # Killed before the journal file was even created: a fresh
        # journaled run must still match.
        "$B" sweep $SWEEP --journal j.jsonl \
             --out out.json --csv out.csv 2>/dev/null
    fi

    cmp base.json out.json || {
        echo "kill-resume: JSON mismatch after kill at ${delay}s" >&2
        exit 1
    }
    cmp base.csv out.csv || {
        echo "kill-resume: CSV mismatch after kill at ${delay}s" >&2
        exit 1
    }
    echo "kill-resume: kill at ${delay}s -> byte-identical resume"
done

echo "kill-resume: OK"
