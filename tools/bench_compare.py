#!/usr/bin/env python3
"""Compare bench self-reports (BENCH_*.json) against committed baselines.

Every bench binary drops a BENCH_<name>.json record in the working
directory (see bench/self_report.hh). This tool diffs those records
against the blessed copies in bench/baselines/ and exits non-zero when
a bench regressed:

 - `events` and `messages` are simulation-derived and deterministic:
   any difference means the simulated behaviour changed, which is a
   hard failure regardless of tolerance. A report can opt out by
   setting `"counts_deterministic": false` (used by benches whose
   totals scale with google-benchmark's adaptive iteration counts).
 - `events_per_sec` and `messages_per_sec` are wall-clock throughput:
   a drop of more than --tolerance (relative, default 25%) below the
   baseline is reported as a WARN but never affects the exit code —
   runner throughput is too machine-dependent to gate on.
   Improvements never warn. Pass --strict-rates to turn throughput
   warnings into failures on a stable machine.
 - boolean fields ending in `_within_noise` are in-process guarantees
   the bench measured against its own noise floor (e.g. the link-stats
   flag-off path costing nothing measurable). They are machine-
   independent by construction, so a `false` value is a hard failure,
   as is a flag the baseline records but the current report dropped.

Baselines are machine-dependent for the throughput fields; refresh
them with --bless after intentional changes. CI runs this step as a
hard gate for the deterministic counters only.

Usage:
  tools/bench_compare.py [options] [BENCH_*.json ...]

With no files, all BENCH_*.json in the current directory are compared.

Options:
  --baselines DIR   baseline directory (default: bench/baselines next
                    to this script's repository root)
  --tolerance F     relative throughput tolerance (default: 0.25)
  --strict-rates    throughput drops beyond tolerance fail instead of
                    warning
  --bless           copy the current reports over the baselines
                    instead of comparing
"""

import glob
import json
import os
import shutil
import sys

EXACT_FIELDS = ("events", "messages")
RATE_FIELDS = ("events_per_sec", "messages_per_sec", "synth_messages_per_sec")
NOISE_FLAG_SUFFIX = "_within_noise"


def repo_root():
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def parse_args(argv):
    opts = {
        "baselines": os.path.join(repo_root(), "bench", "baselines"),
        "tolerance": 0.25,
        "strict_rates": False,
        "bless": False,
        "files": [],
    }
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--baselines":
            i += 1
            opts["baselines"] = argv[i]
        elif arg == "--tolerance":
            i += 1
            opts["tolerance"] = float(argv[i])
        elif arg == "--strict-rates":
            opts["strict_rates"] = True
        elif arg == "--bless":
            opts["bless"] = True
        elif arg in ("-h", "--help"):
            print(__doc__)
            sys.exit(0)
        elif arg.startswith("-"):
            sys.exit(f"bench_compare: unknown option: {arg}")
        else:
            opts["files"].append(arg)
        i += 1
    if not opts["files"]:
        opts["files"] = sorted(glob.glob("BENCH_*.json"))
    return opts


def compare_one(current_path, baseline_path, tolerance):
    """Return (failures, warnings) lists of diff strings."""
    with open(current_path) as f:
        cur = json.load(f)
    with open(baseline_path) as f:
        base = json.load(f)
    failures = []
    warnings = []
    exact_fields = EXACT_FIELDS if cur.get("counts_deterministic", True) else ()
    for field in exact_fields:
        if cur.get(field) != base.get(field):
            failures.append(
                f"{field}: {base.get(field)} -> {cur.get(field)} "
                "(deterministic field changed)"
            )
    for field in RATE_FIELDS:
        b, c = base.get(field, 0.0), cur.get(field, 0.0)
        if b > 0.0 and c < b * (1.0 - tolerance):
            warnings.append(
                f"{field}: {c:.3g}/s is {100 * (1 - c / b):.1f}% below "
                f"baseline {b:.3g}/s (tolerance {100 * tolerance:.0f}%)"
            )
    for field in sorted(cur):
        if field.endswith(NOISE_FLAG_SUFFIX) and cur[field] is False:
            failures.append(
                f"{field}: false (overhead exceeded the bench's own "
                "noise floor)"
            )
    for field in sorted(base):
        if field.endswith(NOISE_FLAG_SUFFIX) and field not in cur:
            failures.append(
                f"{field}: recorded in baseline but missing from the "
                "current report"
            )
    return failures, warnings


def main(argv):
    opts = parse_args(argv)
    if not opts["files"]:
        sys.exit("bench_compare: no BENCH_*.json reports found")

    if opts["bless"]:
        os.makedirs(opts["baselines"], exist_ok=True)
        for path in opts["files"]:
            dest = os.path.join(opts["baselines"], os.path.basename(path))
            shutil.copyfile(path, dest)
            print(f"blessed {dest}")
        return 0

    regressed = 0
    slow = 0
    missing = 0
    for path in opts["files"]:
        name = os.path.basename(path)
        baseline = os.path.join(opts["baselines"], name)
        if not os.path.exists(baseline):
            print(f"NEW   {name}: no baseline (run with --bless to add)")
            missing += 1
            continue
        failures, warnings = compare_one(path, baseline, opts["tolerance"])
        if opts["strict_rates"]:
            failures, warnings = failures + warnings, []
        if failures:
            regressed += 1
            print(f"FAIL  {name}")
            for failure in failures:
                print(f"      {failure}")
        elif warnings:
            slow += 1
            print(f"WARN  {name}")
            for warning in warnings:
                print(f"      {warning}")
        else:
            print(f"OK    {name}")

    total = len(opts["files"])
    print(
        f"bench_compare: {total - regressed - slow - missing}/{total} ok, "
        f"{regressed} regressed, {slow} slow (advisory), "
        f"{missing} without baseline"
    )
    return 1 if regressed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
