/**
 * @file
 * Experiment F-LS — why the uniform-traffic assumption misleads.
 *
 * The paper's motivation: "most performance models for interconnection
 * networks have been accused of making unrealistic assumptions about
 * the communication workload[, t]he most critical one being the
 * uniform traffic assumption". This figure sweeps the offered load
 * and compares the mesh latency under (a) the classical assumption —
 * exponential inter-arrivals, uniform destinations, fixed length —
 * and (b) the application-fitted model of IS (favorite-processor
 * spatial pattern, hyperexponential arrivals, bimodal lengths). The
 * shapes diverge increasingly with load: the fitted model saturates
 * earlier because traffic converges on the favorite processor.
 */

#include <iomanip>
#include <iostream>

#include "common.hh"

int
main()
{
    cchar::bench::SelfReport selfReport{"fig_loadsweep"};
    using namespace cchar;
    using namespace cchar::bench;

    // Fit the IS application once.
    auto report = sharedMemoryReport("is");
    auto fitted = core::SyntheticModel::fromReport(report);

    // The classical model: same per-source rates and message count,
    // but exponential gaps, uniform destinations, fixed mean length.
    core::SyntheticModel uniform;
    uniform.mesh = fitted.mesh;
    uniform.nprocs = fitted.nprocs;
    int meanLen =
        static_cast<int>(report.volume.lengthStats.mean + 0.5);
    uniform.lengthPmf = {{meanLen, 1.0}};
    for (const auto &sm : fitted.sources) {
        core::SyntheticModel::SourceModel um;
        um.source = sm.source;
        um.messageCount = sm.messageCount;
        um.interArrival = std::make_unique<stats::Exponential>(
            1.0 / sm.interArrival->mean());
        std::vector<double> dest(
            static_cast<std::size_t>(uniform.nprocs),
            1.0 / static_cast<double>(uniform.nprocs - 1));
        dest[static_cast<std::size_t>(sm.source)] = 0.0;
        um.destination = stats::DiscretePmf{std::move(dest)};
        uniform.sources.push_back(std::move(um));
    }

    std::cout << "F-LS: latency vs offered load — uniform assumption "
                 "vs fitted IS model (time_scale < 1 = higher load)\n\n";
    std::cout << std::right << std::setw(11) << "time-scale"
              << std::setw(13) << "unif-lat" << std::setw(13)
              << "fitted-lat" << std::setw(13) << "unif-cont"
              << std::setw(13) << "fitted-cont" << std::setw(11)
              << "unif-util" << std::setw(12) << "fitted-util"
              << "\n";
    std::cout << std::string(86, '-') << "\n";

    for (double scale : {4.0, 2.0, 1.0, 0.5, 0.25}) {
        auto u = core::SyntheticTrafficGenerator::run(uniform, 31,
                                                      scale);
        auto f = core::SyntheticTrafficGenerator::run(fitted, 31,
                                                      scale);
        std::cout << std::fixed << std::setprecision(2) << std::setw(11)
                  << scale << std::setprecision(4) << std::setw(13)
                  << u.latencyMean << std::setw(13) << f.latencyMean
                  << std::setw(13) << u.contentionMean << std::setw(13)
                  << f.contentionMean << std::setprecision(3)
                  << std::setw(11) << u.avgChannelUtilization
                  << std::setw(12) << f.avgChannelUtilization << "\n";
    }
    std::cout << "\nExpected shape: comparable at light load; the "
                 "fitted (favorite-processor) model shows markedly "
                 "higher latency as load grows — the uniform "
                 "assumption underestimates hot-spot contention.\n";
    return 0;
}
