/**
 * @file
 * Experiment T5 — the volume attribute: message counts and message
 * length distributions per application ("volume of communication is
 * specified by the number of messages and the message length
 * distribution").
 */

#include <iomanip>
#include <iostream>

#include "common.hh"

namespace {

void
printRow(const cchar::core::CharacterizationReport &report)
{
    const auto &v = report.volume;
    double minCount = 1e300, maxCount = 0.0;
    for (double c : v.perSourceCounts) {
        if (c > 0.0) {
            minCount = std::min(minCount, c);
            maxCount = std::max(maxCount, c);
        }
    }
    std::cout << std::left << std::setw(10) << report.application
              << std::right << std::setw(9) << v.messageCount
              << std::setw(12) << std::fixed << std::setprecision(0)
              << v.totalBytes << std::setw(9) << std::setprecision(1)
              << v.lengthStats.mean << std::setw(8)
              << static_cast<int>(v.lengthStats.min) << std::setw(8)
              << static_cast<int>(v.lengthStats.max) << std::setw(9)
              << std::setprecision(0) << minCount << std::setw(9)
              << maxCount << "   ";
    for (const auto &[bytes, prob] : v.lengthPmf) {
        std::cout << bytes << "B:" << std::setprecision(2)
                  << std::fixed << prob << " ";
    }
    std::cout << "\n";
}

} // namespace

int
main()
{
    cchar::bench::SelfReport selfReport{"table5_volume"};
    using namespace cchar::bench;

    std::cout << "T5: volume attribute — message count and length "
                 "distribution\n\n";
    std::cout << std::left << std::setw(10) << "app" << std::right
              << std::setw(9) << "msgs" << std::setw(12) << "bytes"
              << std::setw(9) << "mean(B)" << std::setw(8) << "min"
              << std::setw(8) << "max" << std::setw(9) << "src-min"
              << std::setw(9) << "src-max"
              << "   length pmf\n";
    std::cout << std::string(110, '-') << "\n";

    for (const auto &name : sharedMemoryAppNames())
        printRow(sharedMemoryReport(name));
    for (const auto &name : messagePassingAppNames())
        printRow(messagePassingReport(name));
    return 0;
}
