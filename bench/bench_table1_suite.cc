/**
 * @file
 * Experiment T1 — application suite and communication summary.
 *
 * One row per application: strategy, processors, verified result,
 * message count, byte volume, mean message length, mean inter-arrival
 * time and its CV. Reproduces the paper's workload overview of the
 * five shared-memory and two message-passing applications.
 */

#include <iomanip>
#include <iostream>

#include "common.hh"

int
main()
{
    cchar::bench::SelfReport selfReport{"table1_suite"};
    using namespace cchar;
    using namespace cchar::bench;

    std::cout << "T1: application suite and communication volume\n";
    std::cout << "(shared memory: 16-proc 4x4 mesh CC-NUMA, dynamic "
                 "strategy;\n message passing: 8 ranks, SP2 software "
                 "model, static strategy)\n\n";
    std::cout << std::left << std::setw(10) << "app" << std::setw(9)
              << "strategy" << std::right << std::setw(6) << "procs"
              << std::setw(5) << "ok" << std::setw(10) << "msgs"
              << std::setw(12) << "bytes" << std::setw(10) << "len(B)"
              << std::setw(10) << "IAT(us)" << std::setw(7) << "CV"
              << "\n";
    std::cout << std::string(79, '-') << "\n";

    auto printRow = [](const core::CharacterizationReport &r) {
        std::cout << std::left << std::setw(10) << r.application
                  << std::setw(9) << core::toString(r.strategy)
                  << std::right << std::setw(6) << r.nprocs
                  << std::setw(5) << (r.verified ? "yes" : "NO")
                  << std::setw(10) << r.volume.messageCount
                  << std::setw(12) << std::fixed << std::setprecision(0)
                  << r.volume.totalBytes << std::setw(10)
                  << std::setprecision(1) << r.volume.lengthStats.mean
                  << std::setw(10) << std::setprecision(3)
                  << r.temporalAggregate.stats.mean << std::setw(7)
                  << std::setprecision(2) << r.temporalAggregate.stats.cv
                  << "\n";
    };

    for (const auto &name : sharedMemoryAppNames())
        printRow(sharedMemoryReport(name));
    for (const auto &name : messagePassingAppNames())
        printRow(messagePassingReport(name));
    return 0;
}
