/**
 * @file
 * Experiment T4 — spatial pattern classification per application.
 *
 * The paper classifies destination distributions against simple
 * models — uniform, "bimodal uniform" (one favorite processor gets
 * the maximum number of messages, the rest equal shares), or general
 * data-dependent patterns. One row per application: the aggregate
 * classification, per-pattern source counts, and the locality profile
 * (mean hops, fraction at 1 hop).
 */

#include <iomanip>
#include <iostream>
#include <map>

#include "common.hh"

namespace {

void
printRow(const cchar::core::CharacterizationReport &report)
{
    using cchar::stats::SpatialPattern;
    std::map<SpatialPattern, int> counts;
    for (const auto &sf : report.spatialPerSource)
        ++counts[sf.classification.pattern];
    std::cout << std::left << std::setw(10) << report.application
              << std::setw(20)
              << cchar::stats::toString(report.spatialAggregate.pattern)
              << std::right << std::setw(9)
              << counts[SpatialPattern::Uniform] << std::setw(9)
              << counts[SpatialPattern::BimodalUniform] << std::setw(9)
              << counts[SpatialPattern::SingleDestination]
              << std::setw(9) << counts[SpatialPattern::General]
              << std::setw(10) << std::fixed << std::setprecision(2)
              << report.network.avgHops << std::setw(9)
              << std::setprecision(2)
              << (report.hopDistancePmf.size() > 1
                      ? report.hopDistancePmf[1]
                      : 0.0)
              << "\n";
}

} // namespace

int
main()
{
    cchar::bench::SelfReport selfReport{"table4_spatial"};
    using namespace cchar::bench;

    std::cout << "T4: spatial pattern classification "
                 "(per-source destination distributions)\n\n";
    std::cout << std::left << std::setw(10) << "app" << std::setw(20)
              << "aggregate pattern" << std::right << std::setw(9)
              << "uniform" << std::setw(9) << "bimodal" << std::setw(9)
              << "single" << std::setw(9) << "general" << std::setw(10)
              << "avgHops" << std::setw(9) << "1-hop"
              << "\n";
    std::cout << std::string(85, '-') << "\n";

    for (const auto &name : sharedMemoryAppNames())
        printRow(sharedMemoryReport(name));
    for (const auto &name : messagePassingAppNames())
        printRow(messagePassingReport(name));
    return 0;
}
