/**
 * @file
 * Experiment V1 — methodology validation: the fitted distributions
 * must reproduce the network behaviour of the original traffic when
 * used as synthetic workload models ("These distributions can be used
 * in the analysis of ICNs for developing realistic performance
 * models").
 *
 * For each application: original (application-driven) vs synthetic
 * (model-driven) network latency, contention and utilization.
 */

#include <cmath>
#include <iomanip>
#include <iostream>

#include "common.hh"

namespace {

void
validateRow(const cchar::core::CharacterizationReport &report)
{
    auto open = cchar::core::validateModel(report, 1234, 0);
    auto paced = cchar::core::validateModel(report, 1234, 4);
    std::cout << std::left << std::setw(10) << report.application
              << std::right << std::fixed << std::setprecision(4)
              << std::setw(11) << open.originalLatencyMean
              << std::setw(11) << open.syntheticLatencyMean
              << std::setw(11) << paced.syntheticLatencyMean
              << std::setw(11) << open.originalContentionMean
              << std::setw(11) << paced.syntheticContentionMean
              << std::setw(10) << std::setprecision(1)
              << open.latencyError() * 100.0 << "%" << std::setw(9)
              << paced.latencyError() * 100.0 << "%\n";
}

} // namespace

int
main()
{
    cchar::bench::SelfReport selfReport{"validation"};
    using namespace cchar::bench;

    std::cout << "V1: synthetic-model validation — original vs "
                 "model-driven network behaviour\n\n";
    std::cout << "(open = unbounded open-loop injection; paced = "
                 "4 outstanding messages per source)\n\n";
    std::cout << std::left << std::setw(10) << "app" << std::right
              << std::setw(11) << "lat-orig" << std::setw(11)
              << "lat-open" << std::setw(11) << "lat-paced"
              << std::setw(11) << "cont-orig" << std::setw(11)
              << "cont-paced" << std::setw(11) << "err-open"
              << std::setw(10) << "err-paced"
              << "\n";
    std::cout << std::string(86, '-') << "\n";

    for (const auto &name : sharedMemoryAppNames())
        validateRow(sharedMemoryReport(name));
    for (const auto &name : messagePassingAppNames())
        validateRow(messagePassingReport(name));
    return 0;
}
