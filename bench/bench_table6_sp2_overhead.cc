/**
 * @file
 * Experiment T6 — the SP2 communication-software overhead model.
 *
 * The paper validates "the software overheads amount to
 * 4.63e-2 x + 73.42 microseconds to transfer x bytes of data". This
 * bench measures the end-to-end one-message completion time of the MP
 * runtime across message sizes, subtracts the (tiny) mesh network
 * time, and fits the linear model back — the recovered coefficients
 * must match the configured model.
 */

#include <iomanip>
#include <iostream>
#include <vector>

#include "common.hh"

namespace {

using namespace cchar;

/** End-to-end completion time of one `bytes`-sized message. */
double
oneMessageTime(int bytes)
{
    desim::Simulator sim;
    mp::MpWorld world{sim, bench::standardWorld()};
    double done = 0.0;
    world.spawnRank(0, [](mp::MpWorld &w, int n) -> desim::Task<void> {
        mp::MpContext ctx{w, 0};
        co_await ctx.send(1, n);
    }(world, bytes));
    world.spawnRank(1, [](mp::MpWorld &w, double &t) -> desim::Task<void> {
        mp::MpContext ctx{w, 1};
        (void)co_await ctx.recv(0);
        t = w.sim().now();
    }(world, done));
    world.run();
    // Remove the mesh transit time to isolate the software overhead.
    double network = world.network().latencyStats().mean();
    return done - network;
}

} // namespace

int
main()
{
    cchar::bench::SelfReport selfReport{"table6_sp2_overhead"};
    std::cout << "T6: SP2 communication software overhead "
                 "(paper model: 73.42 + 0.0463 x us)\n\n";
    std::cout << std::right << std::setw(9) << "bytes" << std::setw(14)
              << "overhead(us)" << std::setw(14) << "model(us)"
              << std::setw(10) << "error%"
              << "\n";
    std::cout << std::string(47, '-') << "\n";

    std::vector<int> sizes{0, 16, 64, 256, 1024, 4096, 16384, 65536};
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (int bytes : sizes) {
        double t = oneMessageTime(bytes);
        double model = 73.42 + 0.0463 * bytes;
        std::cout << std::setw(9) << bytes << std::setw(14)
                  << std::fixed << std::setprecision(3) << t
                  << std::setw(14) << model << std::setw(10)
                  << std::setprecision(2)
                  << (t - model) / model * 100.0 << "\n";
        sx += bytes;
        sy += t;
        sxx += static_cast<double>(bytes) * bytes;
        sxy += static_cast<double>(bytes) * t;
    }
    double n = static_cast<double>(sizes.size());
    double beta = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    double alpha = (sy - beta * sx) / n;
    std::cout << "\nrecovered linear model: " << std::setprecision(2)
              << alpha << " + " << std::setprecision(5) << beta
              << " x us   (paper: 73.42 + 0.0463 x us)\n";
    return 0;
}
