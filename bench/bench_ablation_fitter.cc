/**
 * @file
 * Ablation A2 — regression method: Levenberg-Marquardt vs the
 * multivariate secant (Broyden) method that SAS NLIN used in the
 * paper. Compares converged SSR and iteration counts across
 * distribution families and sample shapes.
 */

#include <iomanip>
#include <iostream>
#include <memory>
#include <vector>

#include "stats/stats.hh"

#include "self_report.hh"

int
main()
{
    cchar::bench::SelfReport selfReport{"ablation_fitter"};
    using namespace cchar::stats;

    std::cout << "A2: CDF regression — Levenberg-Marquardt vs "
                 "multivariate secant (SAS NLIN style)\n\n";
    std::cout << std::left << std::setw(26) << "truth" << std::right
              << std::setw(12) << "lm-ssr" << std::setw(9) << "lm-it"
              << std::setw(12) << "sec-ssr" << std::setw(9) << "sec-it"
              << "\n";
    std::cout << std::string(68, '-') << "\n";

    std::vector<std::unique_ptr<Distribution>> truths;
    truths.push_back(std::make_unique<Exponential>(0.8));
    truths.push_back(std::make_unique<HyperExponential2>(0.2, 4.0, 0.3));
    truths.push_back(std::make_unique<Weibull>(1.5, 2.0));
    truths.push_back(std::make_unique<GammaDist>(2.2, 1.1));
    truths.push_back(std::make_unique<LogNormal>(0.3, 0.7));

    for (const auto &truth : truths) {
        Rng rng{99};
        std::vector<double> xs(20000);
        for (auto &x : xs)
            x = truth->sample(rng);
        Ecdf ecdf{xs};
        auto pts = ecdf.regressionPoints(200);
        auto s = SummaryStats::compute(xs);

        auto fitWith = [&](FitMethod method) {
            auto d = truth->clone();
            d->initFromMoments(s);
            NonlinearLeastSquares::Options opts;
            opts.method = method;
            return std::pair{NonlinearLeastSquares::fitCdf(*d, pts, opts),
                             std::move(d)};
        };
        auto [lm, lmDist] = fitWith(FitMethod::LevenbergMarquardt);
        auto [sec, secDist] = fitWith(FitMethod::Secant);

        std::cout << std::left << std::setw(26) << truth->describe()
                  << std::right << std::scientific
                  << std::setprecision(3) << std::setw(12) << lm.ssr
                  << std::setw(9) << lm.iterations << std::setw(12)
                  << sec.ssr << std::setw(9) << sec.iterations << "\n";
    }
    std::cout << "\nExpected shape: both reach comparable SSR; the "
                 "secant method may need more iterations but avoids "
                 "per-step Jacobians.\n";
    return 0;
}
